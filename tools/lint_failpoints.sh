#!/usr/bin/env bash
# Failpoint-name cross-check (ctest: lint_failpoints; also run in CI).
#
# Chaos coverage rots silently: a new LOCS_FAILPOINT site that nobody
# arms in tools/chaos_serve.sh is a failure path no soak ever takes,
# and an armed name with no site left in the tree is a soak that
# injects nothing. This script fails unless the two stay in sync:
#
#   - every LOCS_FAILPOINT("name") site in src/ appears in
#     chaos_serve.sh, either in the armed LOCS_FAILPOINT= list or as an
#     explicit `# chaos-unarmed: name — reason` annotation;
#   - every name chaos_serve.sh references (armed or unarmed) still has
#     a site in the tree;
#   - no name is both armed and annotated unarmed.
#
# Exit: 0 in sync, 1 any drift.
set -euo pipefail

cd "$(dirname "$0")/.."
chaos="tools/chaos_serve.sh"

# Source-tree inventory; comment-only lines (doc examples) are skipped.
sites="$(grep -rn 'LOCS_FAILPOINT("' src --include='*.cc' --include='*.h' |
  grep -vE ':[0-9]+: *//' |
  grep -oE 'LOCS_FAILPOINT\("[a-z0-9._]+"' |
  sed 's/LOCS_FAILPOINT("//; s/"$//' | sort -u)"

# Armed list: the LOCS_FAILPOINT="a[=v][%n],b,..." assignment.
armed="$(sed -n 's/^LOCS_FAILPOINT="\(.*\)" *\\*$/\1/p' "${chaos}" |
  tr ',' '\n' | sed 's/[=%].*//' | sed '/^$/d' | sort -u)"

# Acknowledged exclusions: `# chaos-unarmed: name — reason` lines.
unarmed="$(sed -n 's/^# chaos-unarmed: \([a-z0-9._]*\).*/\1/p' "${chaos}" |
  sort -u)"

fail=0

if [[ -z "${sites}" ]]; then
  echo "FAIL: no LOCS_FAILPOINT sites found under src/ — inventory broken" >&2
  exit 1
fi
if [[ -z "${armed}" ]]; then
  echo "FAIL: no armed LOCS_FAILPOINT list parsed from ${chaos}" >&2
  exit 1
fi

covered="$(printf '%s\n%s\n' "${armed}" "${unarmed}" | sed '/^$/d' | sort -u)"

while IFS= read -r name; do
  if ! grep -qx "${name}" <<<"${covered}"; then
    echo "FAIL: failpoint '${name}' has a site in src/ but ${chaos}" \
         "neither arms it nor documents it as chaos-unarmed" >&2
    fail=1
  fi
done <<<"${sites}"

while IFS= read -r name; do
  [[ -z "${name}" ]] && continue
  if ! grep -qx "${name}" <<<"${sites}"; then
    echo "FAIL: '${name}' is referenced in ${chaos} but no" \
         "LOCS_FAILPOINT(\"${name}\") site exists in src/" >&2
    fail=1
  fi
done <<<"${covered}"

while IFS= read -r name; do
  [[ -z "${name}" ]] && continue
  if grep -qx "${name}" <<<"${unarmed}"; then
    echo "FAIL: '${name}' is both armed and annotated chaos-unarmed" \
         "in ${chaos}" >&2
    fail=1
  fi
done <<<"${armed}"

if [[ ${fail} -eq 0 ]]; then
  total="$(wc -l <<<"${sites}")"
  echo "failpoint cross-check: ${total} sites in sync" \
       "($(wc -l <<<"${armed}") armed, $(wc -l <<<"${unarmed}") unarmed)"
fi
exit "${fail}"
