#!/usr/bin/env bash
# Chaos soak for the hardened serving layer: runs locsd under armed
# failpoints and hostile clients and fails unless the daemon degrades
# the way the failure model promises — typed errors and reaped
# sessions, never a hang, a crash, or a leaked ledger entry.
#
#   1. Failpoint soak — locsd on TCP loopback with periodic faults armed
#      via LOCS_FAILPOINT (solver errors, dropped cache inserts, read
#      delays, torn/failed reply writes, failed reads) plus io/idle
#      timeouts, soaked by >= CHAOS_SESSIONS concurrent self-healing
#      clients for >= CHAOS_SOAK_SECONDS. A silent connection opened at
#      soak start must be idle-reaped along the way. Afterwards the
#      daemon must still answer PING and its STATS ledger must conserve
#      q_attempted = q_completed + q_failed + q_shed.
#   2. Kill + restart recovery — bench_micro_serve --port runs its
#      closed loops through the RetryClient while the daemon is
#      SIGKILLed mid-run and restarted on the same port; the bench must
#      finish with zero ultimately-failed requests. (Skipped with a
#      notice when the build tree has benchmarks off.)
#   3. Drain — SIGTERM must exit 0 with the drain message logged.
#
# Usage: tools/chaos_serve.sh [build-dir]     (default: build)
# Env:   CHAOS_SOAK_SECONDS (>= 30 default), CHAOS_SESSIONS (>= 8
#        default), CHAOS_BENCH_QUERIES (per-session, default 10000).
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"
soak="${CHAOS_SOAK_SECONDS:-30}"
sessions="${CHAOS_SESSIONS:-8}"
bench_queries="${CHAOS_BENCH_QUERIES:-10000}"

cmake --build "${build}" -j "${jobs}" --target locsd locs_cli

locsd="${build}/tools/locsd"
cli="${build}/tools/locs_cli"
bench="${build}/bench/bench_micro_serve"
work="$(mktemp -d)"
daemon_pid=""
silent_fd=""
cleanup() {
  [[ -n "${silent_fd}" ]] && exec {silent_fd}>&- 2>/dev/null || true
  [[ -n "${daemon_pid}" ]] && kill -9 "${daemon_pid}" 2>/dev/null || true
  # CI post-mortem hook: preserve daemon logs, bench output, and the
  # final STATS snapshot before the work dir goes away.
  if [[ -n "${CHAOS_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "${CHAOS_ARTIFACT_DIR}"
    cp "${work}"/*.log "${work}"/stats.txt "${CHAOS_ARTIFACT_DIR}/" \
      2>/dev/null || true
  fi
  rm -rf "${work}"
}
trap cleanup EXIT

# Waits for the port file of the daemon just started; prints the port.
wait_port() {
  local file="$1" port=""
  for _ in $(seq 1 200); do
    [[ -s "${file}" ]] && { port="$(cat "${file}")"; break; }
    sleep 0.05
  done
  if [[ -z "${port}" ]]; then
    echo "FAIL: locsd never wrote its port file ${file}" >&2
    return 1
  fi
  echo "${port}"
}

# Extracts ` key=value` from a STATS line; empty when absent.
stat_field() {
  sed -n "s/.* $2=\([0-9][0-9]*\).*/\1/p" <<<"$1"
}

"${cli}" generate --model=lfr --n=2000 --seed=5 \
  --output="${work}/g.lcsg" >/dev/null
# Graph image for the LOADIMG churn leg of the soak.
"${cli}" compile "${work}/g.lcsg" "${work}/g.limg" >/dev/null

echo "=== chaos: failpoint soak (${sessions} sessions, ${soak}s) ==="
# Periodic (%every) faults recur throughout the soak without killing
# every request. A periodic failpoint fires on its FIRST hit past the
# skip, so the transport faults carry skips: without them the very
# first read in the daemon's lifetime — the silent connection this
# script parks for the idle reaper — would die to read_error instead
# of idling out. Clients must ride everything out via retries.
#
# Failpoints deliberately NOT armed here — tools/lint_failpoints.sh
# cross-checks these annotations against the tree, so adding a new
# LOCS_FAILPOINT site forces a decision: arm it or document why not.
# chaos-unarmed: guard.force_deadline — would trip every query's deadline, so the soak would measure only the trip path; covered by the guard unit tests.
# chaos-unarmed: io.binary.alloc — load-time fault; the soak preloads its graph exactly once, and the IO tests cover it.
# chaos-unarmed: io.binary.short_read — load-time fault on the same preload path, covered by the IO tests.
# chaos-unarmed: serve.registry.load_error — would kill this script's own --preload before any client connects.
# chaos-unarmed: serve.slow_query — a 200 ms stall per fire collapses soak throughput; the serve tests exercise it against the query deadline.
LOCS_FAILPOINT="serve.solver.error%17,serve.cache.insert_drop%7,serve.transport.read_delay=50%101,serve.transport.partial_write=50%503,serve.transport.write_error=50%709,serve.transport.read_error=200%613,serve.store.image_open_error=1%5,serve.store.image_mmap_error=1%7" \
  "${locsd}" --port=0 --port-file="${work}/port" \
  --preload=g="${work}/g.lcsg" \
  --io-timeout-ms=2000 --idle-timeout-ms=3000 \
  --max-sessions=$((sessions + 4)) --max-sessions-per-peer=$((sessions + 4)) \
  --max-inflight=4 --max-queue=8 --max-reply-bytes=8192 \
  2>"${work}/daemon.log" &
daemon_pid="$!"
port="$(wait_port "${work}/port")" || { cat "${work}/daemon.log" >&2; exit 1; }

# Silent victim for the idle reaper: connect, say nothing.
exec {silent_fd}<>"/dev/tcp/127.0.0.1/${port}" || {
  echo "FAIL: cannot open silent connection" >&2
  exit 1
}

chaos_client() {
  # One self-healing client loop: batches of queries (some drawing the
  # injected ERR internal replies — that is the point) until soak end.
  # Nonzero only when a request failed after exhausting its retries.
  local id="$1" end=$((SECONDS + soak)) batch=0
  while (( SECONDS < end )); do
    {
      for i in $(seq 1 50); do
        printf 'CST g %d 6 limit=1\n' \
          $(( (id * 7919 + i * 104729 + batch) % 2000 ))
      done
      printf 'STATS\nQUIT\n'
    } | "${cli}" client --port="${port}" --retries=8 \
          --request-deadline-ms=10000 >/dev/null 2>&1 || return 1
    batch=$((batch + 50))
  done
}

image_churn_client() {
  # Reloads the mmap'd graph image over and over (the armed
  # serve.store.* failpoints turn a periodic subset into typed
  # `ERR io open` replies), then queries whatever load last succeeded.
  local end=$((SECONDS + soak)) i=0
  while (( SECONDS < end )); do
    {
      printf 'LOADIMG gi %s\n' "${work}/g.limg"
      printf 'CST gi %d 6 limit=1\n' $(( i % 2000 ))
      printf 'QUIT\n'
    } | "${cli}" client --port="${port}" --retries=8 \
          --request-deadline-ms=10000 >/dev/null 2>&1 || return 1
    i=$((i + 1))
  done
}

client_pids=()
for s in $(seq 1 "${sessions}"); do
  chaos_client "${s}" &
  client_pids+=("$!")
done
image_churn_client &
client_pids+=("$!")
soak_failed=0
for pid in "${client_pids[@]}"; do
  wait "${pid}" || soak_failed=1
done
if [[ "${soak_failed}" -ne 0 ]]; then
  echo "FAIL: a chaos client exhausted its retries during the soak" >&2
  cat "${work}/daemon.log" >&2
  exit 1
fi
if ! kill -0 "${daemon_pid}" 2>/dev/null; then
  echo "FAIL: locsd died during the soak" >&2
  cat "${work}/daemon.log" >&2
  exit 1
fi
exec {silent_fd}>&- || true
silent_fd=""

# Post-soak health: PING must answer, and the ledger must conserve.
# Reply writes can still be torn by the armed write faults, so retry
# the STATS fetch until one parses.
stats_line=""
for _ in $(seq 1 20); do
  out="$(printf 'PING\nSTATS\nQUIT\n' | "${cli}" client --port="${port}" \
         --retries=8 --request-deadline-ms=10000 2>/dev/null)" || continue
  grep -q '^OK pong' <<<"${out}" || continue
  candidate="$(grep '^OK uptime_ms=' <<<"${out}" | head -1)"
  [[ -n "$(stat_field "${candidate}" q_attempted)" ]] || continue
  stats_line="${candidate}"
  break
done
if [[ -z "${stats_line}" ]]; then
  echo "FAIL: daemon unresponsive (or STATS unparseable) after the soak" >&2
  cat "${work}/daemon.log" >&2
  exit 1
fi
q_attempted="$(stat_field "${stats_line}" q_attempted)"
q_completed="$(stat_field "${stats_line}" q_completed)"
q_failed="$(stat_field "${stats_line}" q_failed)"
q_shed="$(stat_field "${stats_line}" q_shed)"
idle_reaped="$(stat_field "${stats_line}" idle_reaped)"
errors="$(stat_field "${stats_line}" errors)"
image_loads="$(stat_field "${stats_line}" image_loads)"
image_load_errors="$(stat_field "${stats_line}" image_load_errors)"
printf '%s\n' "${stats_line}" >"${work}/stats.txt"
echo "soak ledger: attempted=${q_attempted} completed=${q_completed}" \
     "failed=${q_failed} shed=${q_shed} idle_reaped=${idle_reaped}" \
     "errors=${errors:-?} image_loads=${image_loads:-?}" \
     "image_load_errors=${image_load_errors:-?}"
if (( q_attempted != q_completed + q_failed + q_shed )); then
  echo "FAIL: ledger leak: ${q_attempted} != ${q_completed} +" \
       "${q_failed} + ${q_shed}" >&2
  exit 1
fi
if (( q_attempted < sessions * 50 )); then
  echo "FAIL: soak barely ran (${q_attempted} queries attempted)" >&2
  exit 1
fi
if (( q_failed == 0 )); then
  echo "FAIL: no injected fault surfaced — are failpoints compiled in?" >&2
  exit 1
fi
if [[ -z "${idle_reaped}" ]] || (( idle_reaped < 1 )); then
  echo "FAIL: the silent connection was never idle-reaped" >&2
  exit 1
fi
if [[ -z "${image_loads}" ]] || (( image_loads < 1 )); then
  echo "FAIL: the image-churn client never completed a LOADIMG" >&2
  exit 1
fi
if [[ -z "${image_load_errors}" ]] || (( image_load_errors < 1 )); then
  echo "FAIL: no injected image fault surfaced during the churn" >&2
  exit 1
fi

echo "=== chaos: SIGTERM drain after soak ==="
kill -TERM "${daemon_pid}"
if ! wait "${daemon_pid}"; then
  echo "FAIL: locsd did not drain cleanly on SIGTERM" >&2
  cat "${work}/daemon.log" >&2
  exit 1
fi
daemon_pid=""
grep -q 'drained' "${work}/daemon.log" || {
  echo "FAIL: drain message missing from daemon log" >&2
  exit 1
}

echo "=== chaos: daemon kill + restart under bench load ==="
if ! cmake --build "${build}" -j "${jobs}" --target bench_micro_serve \
     >/dev/null 2>&1 || [[ ! -x "${bench}" ]]; then
  echo "SKIP: bench_micro_serve not in this tree" \
       "(configure with -DLOCS_BUILD_BENCHMARKS=ON to run this leg)"
else
  rm -f "${work}/port"
  "${locsd}" --port=0 --port-file="${work}/port" \
    2>"${work}/daemon2.log" &
  daemon_pid="$!"
  port="$(wait_port "${work}/port")" || { cat "${work}/daemon2.log" >&2; exit 1; }
  "${bench}" --port="${port}" --sessions=4 \
    --queries="${bench_queries}" >"${work}/bench.log" 2>&1 &
  bench_pid="$!"
  sleep 2
  if kill -0 "${bench_pid}" 2>/dev/null; then
    kill -9 "${daemon_pid}" 2>/dev/null || true
    wait "${daemon_pid}" 2>/dev/null || true
    sleep 0.5
    # Same port, dataset preloaded from the bench's own cache: clients
    # must reconnect and finish with zero ultimately-failed requests.
    "${locsd}" --port="${port}" \
      --preload=g=data/micro_serve_20k.lcsg 2>>"${work}/daemon2.log" &
    daemon_pid="$!"
  else
    echo "note: bench finished before the kill; restart leg degraded" \
         "to a plain bench run"
  fi
  if ! wait "${bench_pid}"; then
    echo "FAIL: bench reported failed requests across the restart" >&2
    cat "${work}/bench.log" >&2
    cat "${work}/daemon2.log" >&2
    exit 1
  fi
  cat "${work}/bench.log"
  kill -TERM "${daemon_pid}" 2>/dev/null || true
  wait "${daemon_pid}" 2>/dev/null || true
  daemon_pid=""
fi

echo "Chaos soak passed."
