// locs_cli — command-line front end for the locs library.
//
// Subcommands:
//   stats    --input=G                        graph statistics
//   cst      --input=G --vertex=V --k=K       community with δ >= K
//   csm      --input=G --vertex=V             best community
//   batch    --input=G --mode=cst|csm         batch queries on the
//            [--queries-file=F|--sample=N]    persistent executor
//   decompose --input=G [--top=N]             core decomposition summary
//   convert  --input=G --output=F             between edgelist/metis/binary
//   compile  <input> <image>                  build a mmap-ready graph
//                                             image (src/store/)
//   generate --model=lfr|ba|gnp --output=F    synthetic graphs
//
// Graph files are auto-detected: a graph image by its magic bytes (any
// extension), then by extension — .lcsg (binary), .metis / .graph
// (METIS), anything else is treated as a whitespace edge list.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/kcore.h"
#include "core/searcher.h"
#include "exec/batch_runner.h"
#include "obs/trace_sink.h"
#include "serve/daemon.h"
#include "gen/barabasi.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "graph/io.h"
#include "graph/statistics.h"
#include "graph/traversal.h"
#include "store/image.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs {
namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(),
                      suffix) == 0;
}

// Exit codes. 0 = success, 1 = generic usage/argument error, 2 = bad
// command line, 64 = unknown subcommand (distinct from `help`, so a
// script typo never parses as a successful usage request). Load failures
// and interrupted queries get distinct codes so scripts can branch
// without parsing stderr.
constexpr int kExitOpenError = 3;       // input file missing/unreadable
constexpr int kExitParseError = 4;      // input file malformed
constexpr int kExitTruncatedError = 5;  // input file short/truncated
constexpr int kExitAllocError = 6;      // graph did not fit in memory
constexpr int kExitDeadline = 10;       // query interrupted: deadline
constexpr int kExitBudget = 11;         // query interrupted: work budget
constexpr int kExitCancelled = 12;      // query interrupted: cancel flag
constexpr int kExitUnknownCommand = 64; // subcommand not recognized

int IoExitCode(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kOpen:
      return kExitOpenError;
    case IoErrorKind::kParse:
      return kExitParseError;
    case IoErrorKind::kTruncated:
      return kExitTruncatedError;
    case IoErrorKind::kAlloc:
      return kExitAllocError;
    case IoErrorKind::kNone:
      break;
  }
  return 1;
}

int StatusExitCode(Termination status) {
  switch (status) {
    case Termination::kDeadline:
      return kExitDeadline;
    case Termination::kBudgetExhausted:
      return kExitBudget;
    case Termination::kCancelled:
      return kExitCancelled;
    case Termination::kFound:
    case Termination::kNotExists:
      break;
  }
  return 0;
}

/// Per-query guard limits shared by cst/csm/batch.
QueryLimits GuardLimits(const CommandLine& cli) {
  QueryLimits limits;
  limits.deadline_ms = cli.GetDouble("query-deadline-ms", 0.0);
  limits.work_budget = static_cast<uint64_t>(cli.GetInt("work-budget", 0));
  return limits;
}

/// Opens --trace=<file> as a JSONL telemetry sink labelled with the
/// subcommand. Returns 0 with *out == nullptr when the flag is absent,
/// 0 with an open sink on success, kExitOpenError after printing an
/// error — an unopenable trace file is a hard failure, never a silent
/// untraced run.
int AttachTrace(const CommandLine& cli, const char* label,
                std::unique_ptr<obs::TraceSink>* out) {
  const std::string path = cli.GetString("trace", "");
  if (path.empty()) return 0;
  auto sink = std::make_unique<obs::TraceSink>(path);
  if (!sink->ok()) {
    std::fprintf(stderr, "error: could not open trace file '%s'\n",
                 path.c_str());
    return kExitOpenError;
  }
  sink->Annotate(label);
  *out = std::move(sink);
  return 0;
}

bool SaveAuto(const Graph& graph, const std::string& path) {
  if (EndsWith(path, ".lcsg")) return SaveBinary(graph, path);
  if (EndsWith(path, ".metis") || EndsWith(path, ".graph")) {
    return SaveMetis(graph, path);
  }
  return SaveEdgeList(graph, path);
}

/// Prints up to --limit member ids (default 50; 0 = all).
void PrintMembers(const std::vector<VertexId>& members,
                  const CommandLine& cli) {
  const auto limit = static_cast<size_t>(cli.GetInt("limit", 50));
  const size_t shown =
      limit == 0 ? members.size() : std::min(limit, members.size());
  for (size_t i = 0; i < shown; ++i) std::printf("%u ", members[i]);
  if (shown < members.size()) {
    std::printf("... (%zu more; pass --limit=0 for all)",
                members.size() - shown);
  }
  std::printf("\n");
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: locs_cli <command> [--flags]\n"
      "  stats     --input=G\n"
      "  cst       --input=G --vertex=V --k=K [--global]\n"
      "            [--query-deadline-ms=D] [--work-budget=W]\n"
      "            [--trace=F]   per-query JSONL telemetry\n"
      "  csm       --input=G --vertex=V [--global]\n"
      "            [--query-deadline-ms=D] [--work-budget=W] [--trace=F]\n"
      "  batch     --input=G --mode=cst|csm [--k=K]\n"
      "            [--queries-file=F | --sample=N --seed=S]\n"
      "            [--threads=T] [--deadline-ms=D] [--show-results]\n"
      "            [--query-deadline-ms=D] [--work-budget=W] [--trace=F]\n"
      "  decompose --input=G [--top=10]\n"
      "  convert   --input=G --output=F\n"
      "  compile   <input> <image>   precompute + serialize a graph\n"
      "            image for mmap cold loads (also --input= --output=)\n"
      "  generate  --model=lfr|ba|gnp --n=N --output=F [--seed=S]\n"
      "            [--mu=0.1 --min-degree --max-degree --min-community\n"
      "             --max-community] [--m=3] [--p=0.01]\n"
      "  serve     (--stdio | --port=P) [flags]   resident query daemon\n"
      "  client    --port=P [--retries=N]         scripted TCP session\n"
      "            [--request-deadline-ms=D]      (N>0: self-healing\n"
      "                                            reconnect + backoff)\n"
      "exit codes: 0 ok, 3 open, 4 parse, 5 truncated, 6 alloc,\n"
      "            10 deadline, 11 work-budget, 12 cancelled,\n"
      "            64 unknown command\n");
  return 2;
}

int CmdServe(const CommandLine& cli) {
  serve::DaemonOptions options;
  std::string error;
  if (!serve::ParseDaemonOptions(cli, &options, &error)) {
    std::fprintf(stderr, "error: %s\nserve flags:\n%s", error.c_str(),
                 serve::DaemonFlagHelp());
    return 2;
  }
  return serve::DaemonMain(options);
}

int CmdClient(const CommandLine& cli) {
  const int64_t port = cli.GetInt("port", -1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: client requires --port=P (1..65535)\n");
    return 2;
  }
  serve::RetryClientOptions options;
  options.port = static_cast<uint16_t>(port);
  // --retries=N grants N extra attempts per request (reconnect, backoff,
  // BUSY pacing); the default 0 keeps the historical die-on-first-error
  // lockstep semantics scripted tests rely on.
  options.max_attempts =
      1 + static_cast<unsigned>(cli.GetInt("retries", 0));
  options.request_deadline_ms =
      static_cast<uint64_t>(cli.GetInt("request-deadline-ms", 0));
  return serve::ClientMain(options);
}

/// Loads --input; on failure prints the IoError detail and stores the
/// matching exit code into *exit_code (left untouched on success).
std::optional<Graph> RequireGraph(const CommandLine& cli, int* exit_code) {
  const std::string input = cli.GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr, "error: --input is required\n");
    *exit_code = 2;
    return std::nullopt;
  }
  WallTimer timer;
  IoError error;
  // Graph images are detected by content so a compiled image works as
  // --input for every subcommand, whatever it is named.
  std::optional<Graph> graph;
  if (store::SniffGraphImage(input)) {
    auto image = store::LoadGraphImage(input, &error);
    if (image.has_value()) graph = std::move(image->graph);
  } else {
    graph = LoadGraphAuto(input, &error);
  }
  if (!graph.has_value()) {
    if (error.line > 0) {
      std::fprintf(stderr, "error: could not load '%s' (%s error): %s "
                   "(line %llu)\n",
                   input.c_str(),
                   std::string(IoErrorKindName(error.kind)).c_str(),
                   error.message.c_str(),
                   static_cast<unsigned long long>(error.line));
    } else {
      std::fprintf(stderr, "error: could not load '%s' (%s error): %s\n",
                   input.c_str(),
                   std::string(IoErrorKindName(error.kind)).c_str(),
                   error.message.c_str());
    }
    *exit_code = IoExitCode(error.kind);
    return std::nullopt;
  }
  std::fprintf(stderr, "loaded %s: %u vertices, %lu edges (%.0fms)\n",
               input.c_str(), graph->NumVertices(),
               static_cast<unsigned long>(graph->NumEdges()),
               timer.Millis());
  return graph;
}

int CmdStats(const CommandLine& cli) {
  int load_rc = 1;
  const auto graph = RequireGraph(cli, &load_rc);
  if (!graph.has_value()) return load_rc;
  const Components comps = ConnectedComponents(*graph);
  const CoreDecomposition cores = ComputeCores(*graph);
  TableWriter table({"metric", "value"});
  table.Row().Cell("vertices").Cell(FormatCount(graph->NumVertices()));
  table.Row().Cell("edges").Cell(FormatCount(graph->NumEdges()));
  table.Row().Cell("min degree").Num(uint64_t{graph->MinDegree()});
  table.Row().Cell("avg degree").Num(graph->AverageDegree(), 2);
  table.Row().Cell("max degree").Num(uint64_t{graph->MaxDegree()});
  table.Row().Cell("components").Num(uint64_t{comps.count});
  table.Row()
      .Cell("largest component")
      .Cell(FormatCount(comps.size[comps.LargestId()]));
  table.Row().Cell("degeneracy δ*(G)").Num(uint64_t{cores.degeneracy});
  table.Row()
      .Cell("avg clustering (sampled)")
      .Num(AverageClusteringCoefficient(*graph, 2000, 1), 4);
  if (graph->NumVertices() > 0) {
    table.Row()
        .Cell("approx diameter (largest comp)")
        .Num(uint64_t{ApproxDiameter(
            *graph, [&] {
              for (VertexId v = 0; v < graph->NumVertices(); ++v) {
                if (comps.label[v] == comps.LargestId()) return v;
              }
              return VertexId{0};
            }())});
  }
  table.Print();
  return 0;
}

int CmdCst(const CommandLine& cli) {
  int load_rc = 1;
  auto graph = RequireGraph(cli, &load_rc);
  if (!graph.has_value()) return load_rc;
  const auto v0 = static_cast<VertexId>(cli.GetInt("vertex", 0));
  const auto k = static_cast<uint32_t>(cli.GetInt("k", 1));
  if (v0 >= graph->NumVertices()) {
    std::fprintf(stderr, "error: vertex out of range\n");
    return 1;
  }
  CommunitySearcher searcher(std::move(*graph));
  std::unique_ptr<obs::TraceSink> trace;
  if (const int rc = AttachTrace(cli, "cst", &trace); rc != 0) return rc;
  if (trace != nullptr) searcher.set_recorder(trace.get());
  WallTimer timer;
  QueryStats stats;
  QueryGuard guard(GuardLimits(cli));
  const auto result = cli.GetBool("global", false)
                          ? searcher.CstGlobal(v0, k, &stats, &guard)
                          : searcher.Cst(v0, k, {}, &stats, &guard);
  const double ms = timer.Millis();
  if (result.Interrupted()) {
    std::printf("interrupted (%s): best so far %zu members, δ=%u "
                "(%.2fms, %lu visited)\n",
                std::string(TerminationName(result.status)).c_str(),
                result.best_so_far.members.size(),
                result.best_so_far.min_degree, ms,
                static_cast<unsigned long>(stats.visited_vertices));
    PrintMembers(result.best_so_far.members, cli);
    return StatusExitCode(result.status);
  }
  if (!result.has_value()) {
    std::printf("no community with min degree >= %u contains vertex %u "
                "(%.2fms, %lu vertices visited)\n",
                k, v0, ms,
                static_cast<unsigned long>(stats.visited_vertices));
    return 0;
  }
  std::printf("community: %zu members, δ=%u (%.2fms, %lu visited%s)\n",
              result->members.size(), result->min_degree, ms,
              static_cast<unsigned long>(stats.visited_vertices),
              stats.used_global_fallback ? ", fallback" : "");
  PrintMembers(result->members, cli);
  return 0;
}

int CmdCsm(const CommandLine& cli) {
  int load_rc = 1;
  auto graph = RequireGraph(cli, &load_rc);
  if (!graph.has_value()) return load_rc;
  const auto v0 = static_cast<VertexId>(cli.GetInt("vertex", 0));
  if (v0 >= graph->NumVertices()) {
    std::fprintf(stderr, "error: vertex out of range\n");
    return 1;
  }
  CommunitySearcher searcher(std::move(*graph));
  std::unique_ptr<obs::TraceSink> trace;
  if (const int rc = AttachTrace(cli, "csm", &trace); rc != 0) return rc;
  if (trace != nullptr) searcher.set_recorder(trace.get());
  WallTimer timer;
  QueryStats stats;
  QueryGuard guard(GuardLimits(cli));
  const auto result = cli.GetBool("global", false)
                          ? searcher.CsmGlobal(v0, &stats, &guard)
                          : searcher.Csm(v0, {}, &stats, &guard);
  const Community& community = result.Best();
  std::printf("%s community: %zu members, δ=%u (%.2fms, %lu visited)\n",
              result.Interrupted() ? "interrupted; best-so-far" : "best",
              community.members.size(), community.min_degree,
              timer.Millis(),
              static_cast<unsigned long>(stats.visited_vertices));
  PrintMembers(community.members, cli);
  return StatusExitCode(result.status);
}

/// Query vertices for `batch`: an explicit --queries-file (one vertex id
/// per line, '#' comments) or a seeded uniform --sample.
std::optional<std::vector<VertexId>> BatchQueries(const CommandLine& cli,
                                                  const Graph& graph) {
  std::vector<VertexId> queries;
  const std::string file = cli.GetString("queries-file", "");
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "error: could not read '%s'\n", file.c_str());
      return std::nullopt;
    }
    std::string token;
    while (in >> token) {
      if (token[0] == '#') {
        std::getline(in, token);
        continue;
      }
      const auto v = static_cast<uint64_t>(std::strtoull(
          token.c_str(), nullptr, 10));
      if (v >= graph.NumVertices()) {
        std::fprintf(stderr, "error: query vertex %llu out of range\n",
                     static_cast<unsigned long long>(v));
        return std::nullopt;
      }
      queries.push_back(static_cast<VertexId>(v));
    }
    return queries;
  }
  const auto count = static_cast<size_t>(cli.GetInt("sample", 1000));
  if (graph.NumVertices() == 0 || count == 0) return queries;
  Rng rng(static_cast<uint64_t>(cli.GetInt("seed", 1)));
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(
        static_cast<VertexId>(rng.Below(graph.NumVertices())));
  }
  return queries;
}

int CmdBatch(const CommandLine& cli) {
  int load_rc = 1;
  auto graph = RequireGraph(cli, &load_rc);
  if (!graph.has_value()) return load_rc;
  const std::string mode = cli.GetString("mode", "cst");
  if (mode != "cst" && mode != "csm") {
    std::fprintf(stderr, "error: --mode must be cst or csm\n");
    return 1;
  }
  const auto queries = BatchQueries(cli, *graph);
  if (!queries.has_value()) return 1;

  const GraphFacts facts = GraphFacts::Compute(*graph);
  const OrderedAdjacency ordered(*graph);
  BatchRunner runner(*graph, &ordered, &facts);
  std::unique_ptr<obs::TraceSink> trace;
  if (const int rc = AttachTrace(cli, "batch", &trace); rc != 0) return rc;
  if (trace != nullptr) runner.set_recorder(trace.get());
  BatchLimits limits;
  limits.num_threads =
      static_cast<unsigned>(cli.GetInt("threads", 0));
  limits.deadline_ms = cli.GetDouble("deadline-ms", 0.0);
  const QueryLimits per_query = GuardLimits(cli);
  limits.query_deadline_ms = per_query.deadline_ms;
  limits.query_work_budget = per_query.work_budget;

  BatchStats stats;
  std::vector<uint32_t> goodness(queries->size(), 0);
  if (mode == "cst") {
    const auto k = static_cast<uint32_t>(cli.GetInt("k", 3));
    auto result = runner.RunCst(*queries, k, {}, limits);
    stats = result.stats;
    for (size_t i = 0; i < result.results.size(); ++i) {
      goodness[i] = result.results[i].Best().min_degree;
    }
  } else {
    auto result = runner.RunCsm(*queries, {}, limits);
    stats = result.stats;
    for (size_t i = 0; i < result.results.size(); ++i) {
      goodness[i] = result.results[i].Best().min_degree;
    }
  }

  TableWriter table({"metric", "value"});
  table.Row().Cell("queries").Num(uint64_t{queries->size()});
  table.Row().Cell("completed").Num(stats.completed);
  table.Row().Cell("answered").Num(stats.answered);
  table.Row().Cell("visited vertices").Num(stats.visited_vertices);
  table.Row().Cell("scanned edges").Num(stats.scanned_edges);
  table.Row().Cell("global fallbacks").Num(stats.global_fallbacks);
  table.Row().Cell("batch wall ms").Num(stats.wall_ms, 2);
  if (stats.completed > 0 && stats.wall_ms > 0.0) {
    table.Row()
        .Cell("mean ms/query")
        .Num(stats.wall_ms / static_cast<double>(stats.completed), 4);
    table.Row()
        .Cell("throughput q/s")
        .Num(static_cast<double>(stats.completed) /
                 (stats.wall_ms / 1000.0),
             1);
  }
  for (int s = 0; s < kNumTerminations; ++s) {
    const auto status = static_cast<Termination>(s);
    if (stats.CountOf(status) == 0) continue;
    table.Row()
        .Cell(std::string("status ") +
              std::string(TerminationName(status)))
        .Num(stats.CountOf(status));
  }
  if (stats.deadline_hit) table.Row().Cell("deadline").Cell("hit");
  table.Print();

  if (cli.GetBool("show-results", false)) {
    for (size_t i = 0; i < stats.completed; ++i) {
      std::printf("%u %u\n", (*queries)[i], goodness[i]);
    }
  }
  // Per-status exit reporting: interrupted queries surface the dominant
  // interruption cause as the exit code (cancelled > deadline > budget).
  if (stats.CountOf(Termination::kCancelled) > 0) return kExitCancelled;
  if (stats.CountOf(Termination::kDeadline) > 0) return kExitDeadline;
  if (stats.CountOf(Termination::kBudgetExhausted) > 0) return kExitBudget;
  return 0;
}

int CmdDecompose(const CommandLine& cli) {
  int load_rc = 1;
  const auto graph = RequireGraph(cli, &load_rc);
  if (!graph.has_value()) return load_rc;
  const auto top = static_cast<size_t>(cli.GetInt("top", 10));
  WallTimer timer;
  const CoreDecomposition cores = ComputeCores(*graph);
  std::printf("core decomposition in %.0fms; degeneracy %u\n",
              timer.Millis(), cores.degeneracy);
  std::vector<uint64_t> shell(cores.degeneracy + 1, 0);
  for (VertexId v = 0; v < graph->NumVertices(); ++v) {
    ++shell[cores.core[v]];
  }
  TableWriter table({"k-shell", "vertices"});
  const size_t first =
      shell.size() > top ? shell.size() - top : size_t{0};
  for (size_t k = first; k < shell.size(); ++k) {
    table.Row().Num(static_cast<uint64_t>(k)).Num(shell[k]);
  }
  table.Print();
  return 0;
}

int CmdConvert(const CommandLine& cli) {
  int load_rc = 1;
  const auto graph = RequireGraph(cli, &load_rc);
  if (!graph.has_value()) return load_rc;
  const std::string output = cli.GetString("output", "");
  if (output.empty()) {
    std::fprintf(stderr, "error: --output is required\n");
    return 1;
  }
  if (!SaveAuto(*graph, output)) {
    std::fprintf(stderr, "error: could not write '%s'\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}

/// `compile <input> <image>` — parse once, precompute everything the
/// serving layer needs (facts, degree ordering, core index), and
/// serialize it as a mmap-ready graph image. Takes positional arguments
/// (and --input=/--output= as an alternative spelling), so it parses
/// argv directly instead of going through CommandLine.
int CmdCompile(int argc, char** argv) {
  std::string input;
  std::string output;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--input=", 0) == 0) {
      input = arg.substr(std::strlen("--input="));
    } else if (arg.rfind("--output=", 0) == 0) {
      output = arg.substr(std::strlen("--output="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: compile: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  for (const std::string& arg : positional) {
    if (input.empty()) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      std::fprintf(stderr, "error: compile: surplus argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (input.empty() || output.empty()) {
    std::fprintf(stderr,
                 "error: compile expects <input> <image> (or --input= "
                 "--output=)\n");
    return 2;
  }
  // Detect by content, like RequireGraph does: feeding a compiled image
  // back into compile would otherwise surface as a baffling edge-list
  // parse error.
  if (store::SniffGraphImage(input)) {
    std::fprintf(stderr,
                 "error: '%s' is already a compiled graph image; compile "
                 "expects an uncompiled graph input\n",
                 input.c_str());
    return 2;
  }
  WallTimer timer;
  IoError error;
  const auto graph = LoadGraphAuto(input, &error);
  if (!graph.has_value()) {
    std::fprintf(stderr, "error: could not load '%s' (%s error): %s\n",
                 input.c_str(),
                 std::string(IoErrorKindName(error.kind)).c_str(),
                 error.message.c_str());
    return IoExitCode(error.kind);
  }
  const double parse_ms = timer.Millis();
  timer.Restart();
  if (!store::CompileGraphImage(*graph, output, &error)) {
    std::fprintf(stderr, "error: could not write '%s' (%s error): %s\n",
                 output.c_str(),
                 std::string(IoErrorKindName(error.kind)).c_str(),
                 error.message.c_str());
    return IoExitCode(error.kind);
  }
  std::printf(
      "compiled %s -> %s: %u vertices, %lu edges "
      "(parse %.0fms, index+write %.0fms)\n",
      input.c_str(), output.c_str(), graph->NumVertices(),
      static_cast<unsigned long>(graph->NumEdges()), parse_ms,
      timer.Millis());
  return 0;
}

int CmdGenerate(const CommandLine& cli) {
  const std::string model = cli.GetString("model", "lfr");
  const std::string output = cli.GetString("output", "");
  if (output.empty()) {
    std::fprintf(stderr, "error: --output is required\n");
    return 1;
  }
  const auto n = static_cast<VertexId>(cli.GetInt("n", 10000));
  const auto seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
  Graph graph;
  if (model == "lfr") {
    gen::LfrParams params;
    params.n = n;
    params.seed = seed;
    params.mu = cli.GetDouble("mu", 0.1);
    params.min_degree =
        static_cast<uint32_t>(cli.GetInt("min-degree", 5));
    params.max_degree =
        static_cast<uint32_t>(cli.GetInt("max-degree", 100));
    params.min_community =
        static_cast<uint32_t>(cli.GetInt("min-community", 20));
    params.max_community =
        static_cast<uint32_t>(cli.GetInt("max-community", 200));
    graph = gen::Lfr(params).graph;
  } else if (model == "ba") {
    graph = gen::BarabasiAlbert(
        n, static_cast<uint32_t>(cli.GetInt("m", 3)), seed);
  } else if (model == "gnp") {
    graph = gen::ErdosRenyiGnp(n, cli.GetDouble("p", 0.001), seed);
  } else {
    std::fprintf(stderr, "error: unknown model '%s'\n", model.c_str());
    return 1;
  }
  if (!SaveAuto(graph, output)) {
    std::fprintf(stderr, "error: could not write '%s'\n", output.c_str());
    return 1;
  }
  std::printf("generated %s graph: %u vertices, %lu edges -> %s\n",
              model.c_str(), graph.NumVertices(),
              static_cast<unsigned long>(graph.NumEdges()),
              output.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return Usage();
  }
  // compile takes positional arguments; CommandLine would reject them.
  if (command == "compile") return CmdCompile(argc - 1, argv + 1);
  const CommandLine cli(argc - 1, argv + 1);
  if (command == "stats") return CmdStats(cli);
  if (command == "cst") return CmdCst(cli);
  if (command == "csm") return CmdCsm(cli);
  if (command == "batch") return CmdBatch(cli);
  if (command == "decompose") return CmdDecompose(cli);
  if (command == "convert") return CmdConvert(cli);
  if (command == "generate") return CmdGenerate(cli);
  if (command == "serve") return CmdServe(cli);
  if (command == "client") return CmdClient(cli);
  // A typo must not exit like a usage request: distinct code, explicit
  // message, and the usage text for orientation.
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  Usage();
  return kExitUnknownCommand;
}

}  // namespace
}  // namespace locs

int main(int argc, char** argv) { return locs::Run(argc, argv); }
