#!/usr/bin/env bash
# Sanitizer sweep for the test suite:
#   - ThreadSanitizer over the concurrency-labelled tests (executor,
#     batch runner, parallel batch entry points, guard interruption) —
#     the dynamic complement of the Clang thread-safety annotations
#     (src/util/thread_annotations.h), which prove lock discipline
#     statically but cannot see lock-free protocols.
#   - ASan+UBSan over the io-labelled tests first (text parsers are the
#     code most exposed to malformed input, and the fast fail matters),
#     then over the FULL suite so every solver and container path runs
#     instrumented at least once. Both rounds share one build tree, so
#     the full round costs only test time, not a rebuild.
#
# Usage: tools/run_sanitizers.sh [build-root]
# Build trees land under <build-root> (default: build-san/). Each
# sanitizer combination gets its own tree so rebuilds are incremental.
set -euo pipefail

cd "$(dirname "$0")/.."
root="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 2)"

configure_flags=(
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
  -DLOCS_BUILD_BENCHMARKS=OFF
  -DLOCS_BUILD_EXAMPLES=OFF
)

# run_pass <name> <sanitizers> [label]: build (or reuse) the tree for
# this sanitizer combination and run the labelled subset — the whole
# suite when no label is given.
run_pass() {
  local name="$1" sanitize="$2" label="${3:-}"
  local dir="${root}/${name}"
  local -a select=()
  if [[ -n "${label}" ]]; then
    select=(-L "${label}")
    echo "=== ${name}: LOCS_SANITIZE=${sanitize}, ctest -L ${label} ==="
  else
    echo "=== ${name}: LOCS_SANITIZE=${sanitize}, full ctest suite ==="
  fi
  cmake -B "${dir}" -S . "${configure_flags[@]}" \
    -DLOCS_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" "${select[@]}" --output-on-failure -j "${jobs}"
}

# TSan halts on the first data race so errors can't scroll past unseen.
# The concurrency label includes guard_test (deadline/budget/cancel
# interruption) and the executor/batch-runner suites; the serve label
# adds the serving layer's concurrent sessions (shared registry,
# admission controller, metrics, TCP drain); the obs label adds the
# telemetry sinks (AggregateRecorder/TraceSink are shared by concurrent
# workers, so their locking claims belong under TSan); the cache label
# covers the ResultCache LRU, shared by every session under one mutex;
# the store label covers mmap'd graph images whose ConstArray views are
# shared read-only across sessions.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  run_pass tsan thread 'concurrency|serve|obs|cache|chaos|store'

# The serve label rides along here too: the wire parser and transport
# framing are the newest code facing adversarial bytes. The property
# label (differential local-vs-global solver suite) and the obs label
# (telemetry layer) run instrumented early for the same fast-fail
# reason: they cover the widest solver surface per second of test time.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  run_pass asan-ubsan address,undefined \
    'io|serve|property|obs|cache|chaos|store'

# Third pass: same asan-ubsan tree (already built), everything.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  run_pass asan-ubsan address,undefined

echo "All sanitizer passes clean."
