#!/usr/bin/env bash
# Sanitizer sweep for the test suite:
#   - ThreadSanitizer over the concurrency-labelled tests (executor,
#     batch runner, parallel batch entry points)
#   - ASan+UBSan over the io-labelled tests (text parsers are the code
#     most exposed to malformed input)
#
# Usage: tools/run_sanitizers.sh [build-root]
# Build trees land under <build-root> (default: build-san/). Each
# sanitizer combination gets its own tree so rebuilds are incremental.
set -euo pipefail

cd "$(dirname "$0")/.."
root="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 2)"

configure_flags=(
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
  -DLOCS_BUILD_BENCHMARKS=OFF
  -DLOCS_BUILD_EXAMPLES=OFF
)

run_pass() {
  local name="$1" sanitize="$2" label="$3"
  local dir="${root}/${name}"
  echo "=== ${name}: LOCS_SANITIZE=${sanitize}, ctest -L ${label} ==="
  cmake -B "${dir}" -S . "${configure_flags[@]}" \
    -DLOCS_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${jobs}"
}

# TSan halts on the first data race so errors can't scroll past unseen.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  run_pass tsan thread concurrency

ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  run_pass asan-ubsan address,undefined io

echo "All sanitizer passes clean."
