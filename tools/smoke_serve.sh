#!/usr/bin/env bash
# Serving-layer smoke test: drives locsd end to end in both deployment
# modes and fails unless every query draws an OK reply.
#
#   1. scripted stdio session  — LOAD + CST + CSM + MULTI + STATS + QUIT
#   2. image-backed session    — locs_cli compile + LOAD of the .limg
#      (auto-detected by content), with every query reply required to
#      match the text-loaded transcript byte for byte
#   3. malformed-input session — typed ERR replies, clean exit (no crash)
#   4. TCP loopback session    — locsd --port=0 + locs_cli client, with
#      the CST reply required to match the stdio transcript byte for
#      byte (replies are deterministic by design), then SIGTERM drain.
#
# Usage: tools/smoke_serve.sh [build-dir]   (default: build)
# The build tree must exist; the script builds the two binaries it needs.
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake --build "${build}" -j "${jobs}" --target locsd locs_cli

locsd="${build}/tools/locsd"
cli="${build}/tools/locs_cli"
work="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "${daemon_pid}" ]] && kill -9 "${daemon_pid}" 2>/dev/null || true
  rm -rf "${work}"
}
trap cleanup EXIT

"${cli}" generate --model=lfr --n=2000 --seed=5 \
  --output="${work}/g.lcsg" >/dev/null

echo "=== smoke: stdio session ==="
stdio_out="$(printf 'PING\nLOAD g %s\nCST g 7 3 limit=5\nCSM g 7 limit=5\nMULTI g 2 7 8 limit=5\nSTATS\nQUIT\n' \
  "${work}/g.lcsg" | "${locsd}" --stdio 2>/dev/null)"
echo "${stdio_out}"
ok_lines="$(grep -c '^OK ' <<<"${stdio_out}")"
if [[ "${ok_lines}" -ne 7 ]]; then
  echo "FAIL: expected 7 OK replies over stdio, got ${ok_lines}" >&2
  exit 1
fi
grep -q '^OK status=found' <<<"${stdio_out}" || {
  echo "FAIL: no query answered over stdio" >&2
  exit 1
}

echo "=== smoke: image-backed session ==="
"${cli}" compile "${work}/g.lcsg" "${work}/g.limg"
img_out="$(printf 'PING\nLOAD g %s\nCST g 7 3 limit=5\nCSM g 7 limit=5\nMULTI g 2 7 8 limit=5\nSTATS\nQUIT\n' \
  "${work}/g.limg" | "${locsd}" --stdio 2>/dev/null)"
echo "${img_out}"
img_ok_lines="$(grep -c '^OK ' <<<"${img_out}")"
if [[ "${img_ok_lines}" -ne 7 ]]; then
  echo "FAIL: expected 7 OK replies from the image session," \
       "got ${img_ok_lines}" >&2
  exit 1
fi
grep -q 'source=image' <<<"${img_out}" || {
  echo "FAIL: LOAD of a .limg file was not detected as an image" >&2
  exit 1
}
# Query replies are deterministic; the image-backed graph must answer
# every query exactly like the text-loaded one.
if [[ "$(grep '^OK status=' <<<"${img_out}")" \
      != "$(grep '^OK status=' <<<"${stdio_out}")" ]]; then
  echo "FAIL: image-backed replies diverge from text-loaded replies" >&2
  diff <(grep '^OK status=' <<<"${stdio_out}") \
       <(grep '^OK status=' <<<"${img_out}") >&2 || true
  exit 1
fi

echo "=== smoke: malformed input survives ==="
bad_out="$(printf 'FROBNICATE\nCST\nCST g seven 3\nPING\nQUIT\n' \
  | "${locsd}" --stdio 2>/dev/null)" || {
  echo "FAIL: locsd crashed on malformed input" >&2
  exit 1
}
err_lines="$(grep -c '^ERR ' <<<"${bad_out}")"
if [[ "${err_lines}" -ne 3 ]] || ! grep -q '^OK pong' <<<"${bad_out}"; then
  echo "FAIL: malformed input must draw typed ERR and keep serving" >&2
  echo "${bad_out}" >&2
  exit 1
fi

echo "=== smoke: TCP loopback session ==="
"${locsd}" --port=0 --port-file="${work}/port" \
  --preload=g="${work}/g.lcsg" 2>"${work}/daemon.log" &
daemon_pid="$!"
port=""
for _ in $(seq 1 100); do
  [[ -s "${work}/port" ]] && { port="$(cat "${work}/port")"; break; }
  sleep 0.05
done
if [[ -z "${port}" ]]; then
  echo "FAIL: locsd never wrote its port file" >&2
  cat "${work}/daemon.log" >&2
  exit 1
fi
tcp_out="$(printf 'CST g 7 3 limit=5\nQUIT\n' \
  | "${cli}" client --port="${port}" 2>/dev/null)"
echo "${tcp_out}"
tcp_cst="$(grep '^OK status=' <<<"${tcp_out}" | head -1)"
stdio_cst="$(grep '^OK status=' <<<"${stdio_out}" | head -1)"
if [[ -z "${tcp_cst}" || "${tcp_cst}" != "${stdio_cst}" ]]; then
  echo "FAIL: TCP reply diverges from stdio reply" >&2
  echo "  stdio: ${stdio_cst}" >&2
  echo "  tcp:   ${tcp_cst}" >&2
  exit 1
fi

kill -TERM "${daemon_pid}"
if ! wait "${daemon_pid}"; then
  echo "FAIL: locsd did not drain cleanly on SIGTERM" >&2
  cat "${work}/daemon.log" >&2
  exit 1
fi
daemon_pid=""
grep -q 'drained' "${work}/daemon.log" || {
  echo "FAIL: drain message missing from daemon log" >&2
  exit 1
}

echo "Serving-layer smoke passed."
