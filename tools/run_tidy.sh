#!/usr/bin/env bash
# clang-tidy gate over src/ tools/ tests/ bench/ using the checked-in
# .clang-tidy (WarningsAsErrors: '*', so any finding fails the gate).
# src/serve/ and src/obs/ additionally pick up scoped configs that
# re-enable bugprone-narrowing-conversions (InheritParentConfig).
#
# Usage: tools/run_tidy.sh [build-dir]
#   build-dir: a CMake tree with compile_commands.json (default:
#              build-tidy/, configured on demand).
#
# Environment:
#   CLANG_TIDY    override the clang-tidy binary (default: best of
#                 clang-tidy, clang-tidy-{19..14} on PATH)
#   LOCS_TIDY_STRICT=1  fail (exit 2) when no clang-tidy binary exists
#                 instead of skipping; CI sets this so the gate can
#                 never silently vanish, while developer machines
#                 without clang degrade to a no-op.
set -euo pipefail

cd "$(dirname "$0")/.."

find_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "${CLANG_TIDY}"
    return
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return
    fi
  done
  echo ""
}

tidy="$(find_tidy)"
if [[ -z "${tidy}" ]]; then
  if [[ "${LOCS_TIDY_STRICT:-0}" == "1" ]]; then
    echo "run_tidy: no clang-tidy binary found and LOCS_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "run_tidy: clang-tidy not installed; skipping (set LOCS_TIDY_STRICT=1 to fail instead)"
  exit 0
fi

build_dir="${1:-build-tidy}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "=== configuring ${build_dir} for compile_commands.json ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DLOCS_BUILD_BENCHMARKS=ON >/dev/null
fi

# Everything we compile under src/, tools/, tests/, and bench/. Headers
# are covered through HeaderFilterRegex in .clang-tidy. Excluded: the
# lint fixtures (intentional violations, never compiled) and the
# clang-tidy plugin sources (only in the compile database where the
# clang-tidy development headers exist).
mapfile -t sources < <(find src tools tests bench -name '*.cc' \
  ! -path 'tools/lint/fixtures/*' ! -path 'tools/lint/tidy/*' | sort)
echo "=== ${tidy} over ${#sources[@]} files (${build_dir}/compile_commands.json) ==="

jobs="$(nproc 2>/dev/null || echo 2)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy}" -p "${build_dir}" \
    -j "${jobs}" -quiet "${sources[@]}"
else
  "${tidy}" -p "${build_dir}" --quiet "${sources[@]}"
fi
echo "clang-tidy gate clean."
