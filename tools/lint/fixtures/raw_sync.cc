// Fixture: locs-raw-sync — raw std:: synchronization primitives are
// invisible to Clang thread-safety analysis and must go through the
// locs:: wrappers from util/thread_annotations.h.
#include "locs_stubs.h"

namespace fixture {

// Raw primitives: each declaration fires.
std::mutex bad_mutex;
std::condition_variable bad_cv;

void BadScoped() {
  std::lock_guard<std::mutex> bad_lock(bad_mutex);
}

void BadUnique() {
  std::unique_lock<std::mutex> bad_lock(bad_mutex);
}

// The locs wrappers are the sanctioned spelling: clean.
locs::Mutex good_mutex;

void GoodScoped() {
  locs::MutexLock lock(good_mutex);
}

// Audited exception: justified interop with a third-party API.
std::mutex audited_mutex;  // NOLINT(locs-raw-sync)

}  // namespace fixture
