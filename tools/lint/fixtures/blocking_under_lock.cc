// Fixture: locs-blocking-under-lock — syscall-shaped calls must not
// run while a locs::MutexLock is live: a blocked thread must never
// hold a serving-path mutex.
#include "locs_stubs.h"

namespace fixture {

class Sink {
 public:
  // Blocking IO with the lock held: one finding per call.
  void BadAppend(const char* data, unsigned long size) {
    locs::MutexLock lock(mutex_);
    fwrite(data, 1, size, file_);
    fflush(file_);
  }

  // Sleeping on a held mutex convoys every waiting peer.
  void BadNap() {
    locs::MutexLock lock(mutex_);
    std::this_thread::sleep_for(10);
  }

  // Lock released before the IO: clean.
  void GoodAppend(const char* data, unsigned long size) {
    {
      locs::MutexLock lock(mutex_);
      dirty_ = true;
    }
    fwrite(data, 1, size, file_);
  }

  // Explicit unlock window: the syscall runs lock-free.
  void WindowedPoll() {
    locs::MutexLock lock(mutex_);
    lock.Unlock();
    poll(nullptr, 0, 0);
    lock.Lock();
  }

  // Audited exception with the required justification comment.
  void AuditedFlush() {
    locs::MutexLock lock(mutex_);
    // Serialized line-at-a-time writes must stay under the lock (see
    // docs/ARCHITECTURE.md, "Static analysis").
    fflush(file_);  // NOLINT(locs-blocking-under-lock)
  }

 private:
  locs::Mutex mutex_;
  void* file_ = nullptr;
  bool dirty_ = false;
};

}  // namespace fixture
