// Fixture: locs-wire-err-literal — every "ERR ..." reply must come
// from the typed WireError table (FormatError in serve/wire.cc),
// never an ad-hoc string literal.
#include "locs_stubs.h"

namespace fixture {

const char* BadParse() {
  return "ERR parse malformed header";
}

const char* BadBare() {
  return "ERR";
}

// Non-error wire traffic and prose mentioning errors are clean.
const char* GoodOk() {
  return "OK pong";
}

const char* GoodProse() {
  return "the ERRATA section";
}

// Audited exception: a doc string quoting the wire format.
const char* AuditedExample() {
  return "ERR busy queue_full";  // NOLINT(locs-wire-err-literal)
}

}  // namespace fixture
