// Fixture: locs-lock-order — the lock-acquisition graph must stay
// acyclic, and locs::Mutex is non-reentrant.
#include "locs_stubs.h"

namespace fixture {

class Ledger {
 public:
  // Edge Ledger::a_ -> Ledger::b_.
  void Deposit() {
    locs::MutexLock hold_a(a_);
    locs::MutexLock hold_b(b_);
  }

  // Edge Ledger::b_ -> Ledger::a_ via the LOCS_REQUIRES contract:
  // closes the cycle, so the acquisition below is the reported site.
  void Audit() LOCS_REQUIRES(b_) {
    locs::MutexLock hold_a(a_);
  }

  // Re-acquiring a mutex this scope already holds self-deadlocks.
  void Recount() LOCS_REQUIRES(c_) {
    locs::MutexLock again(c_);
  }

 private:
  locs::Mutex a_;
  locs::Mutex b_;
  locs::Mutex c_;
};

// A wait-loop re-lock after an explicit Unlock is NOT a self-edge.
class Queue {
 public:
  void Drain() {
    locs::MutexLock lock(mutex_);
    lock.Unlock();
    lock.Lock();
  }

 private:
  locs::Mutex mutex_;
};

}  // namespace fixture
