// Fixture: locs-solver-contract — every solver entry point must open
// an obs::PhaseTracker span and reach a LOCS_VALIDATE hook, or
// delegate to an entry point that does.
#include "locs_stubs.h"

namespace fixture {

// Uninstrumented entry point: both obligations missed, two findings.
SearchResult DarkSolve(int seed) {
  SearchResult result;
  result.vertices = seed;
  return result;
}

// Span opened but the result leaves unvalidated: one finding.
SearchResult HalfSolve(int seed) {
  obs::PhaseTracker tracker;
  SearchResult result;
  result.vertices = seed;
  return result;
}

// Fully instrumented: clean.
SearchResult GoodSolve(int seed) {
  obs::PhaseTracker tracker;
  SearchResult result;
  result.vertices = seed;
  LOCS_VALIDATE_RESULT("GoodSolve", result, seed, 0);
  return result;
}

// Facade delegation to an instrumented entry point: clean.
class Facade {
 public:
  SearchResult Solve(int seed) {
    return GoodSolve(seed);
  }
};

// Worker internals and factories are the caller's responsibility.
SearchResult GoodSolveImpl(int seed) {
  SearchResult result;
  result.vertices = seed;
  return result;
}

SearchResult MakeEmptyResult() {
  return SearchResult();
}

// Helpers handed a caller's span run inside its contract: clean.
SearchResult Narrow(obs::PhaseTracker& tracker, int seed) {
  SearchResult result;
  result.vertices = seed + 1;
  (void)tracker;
  return result;
}

}  // namespace fixture
