#ifndef LOCS_TOOLS_LINT_FIXTURES_INCLUDE_LOCS_STUBS_H_
#define LOCS_TOOLS_LINT_FIXTURES_INCLUDE_LOCS_STUBS_H_

// Minimal stand-ins for the project types the lint fixtures exercise,
// so the clang-tidy plugin can parse them syntax-only without the real
// tree on the include path. The lexical fallback engine never resolves
// includes — it sees only the fixture sources themselves — so nothing
// here can influence its verdicts.

namespace std {
class mutex {
 public:
  void lock();
  void unlock();
};
class condition_variable {};
template <typename M>
class lock_guard {
 public:
  explicit lock_guard(M& m);
};
template <typename M>
class unique_lock {
 public:
  explicit unique_lock(M& m);
};
namespace this_thread {
void sleep_for(int ticks);
}  // namespace this_thread
}  // namespace std

namespace locs {
class __attribute__((capability("mutex"))) Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
  void Lock();
  void Unlock();
};
class CondVar {};
}  // namespace locs

#define LOCS_REQUIRES(...) \
  __attribute__((requires_capability(__VA_ARGS__)))

namespace obs {
class PhaseTracker {
 public:
  PhaseTracker();
};
}  // namespace obs

struct SearchResult {
  int vertices = 0;
};

#define LOCS_VALIDATE_RESULT(tag, result, seed, k) ((void)(result))

// Syscall-shaped functions the blocking fixture calls.
int fwrite(const char* data, int size, unsigned long count, void* file);
int fflush(void* file);
int poll(void* fds, unsigned long nfds, int timeout_ms);

#endif  // LOCS_TOOLS_LINT_FIXTURES_INCLUDE_LOCS_STUBS_H_
