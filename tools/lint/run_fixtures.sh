#!/usr/bin/env bash
# Golden expected-diagnostics runner for the locs-* check fixtures.
#
# Each fixtures/<check>.cc encodes firing, clean, and NOLINT-audited
# variants of one invariant; fixtures/<check>.expected lists the
# diagnostics that must fire as sorted "line check-name" pairs
# (column-free so both engines normalize identically). The same
# goldens validate whichever engine runs:
#
#   run_fixtures.sh <fixtures-dir> fallback <locs_lint-binary>
#   run_fixtures.sh <fixtures-dir> plugin <clang-tidy> <module.so>
#
# Exit: 0 all fixtures match, 1 any mismatch, 2 usage.
set -uo pipefail

fixtures="${1:-}"
mode="${2:-}"
binary="${3:-}"
module="${4:-}"
usage() {
  echo "usage: run_fixtures.sh <fixtures-dir> fallback <locs_lint>" >&2
  echo "       run_fixtures.sh <fixtures-dir> plugin <clang-tidy> <module>" >&2
  exit 2
}
[[ -d "${fixtures}" && -n "${binary}" ]] || usage
case "${mode}" in
  fallback) ;;
  plugin) [[ -n "${module}" ]] || usage ;;
  *) usage ;;
esac

# clang-tidy prints "path:line:col: warning: msg [check]"; locs_lint
# matches that shape. Reduce either to sorted unique "line check" pairs
# (the plugin can double-report one construct via type sugar).
normalize() {
  sed -n 's/^[^:]*:\([0-9][0-9]*\):[0-9][0-9]*: warning: .*\[\(locs-[a-z-]*\)\]$/\1 \2/p' |
    sort -u
}

status=0
shopt -s nullglob
count=0
for fixture in "${fixtures}"/*.cc; do
  count=$((count + 1))
  name="$(basename "${fixture}" .cc)"
  expected="${fixtures}/${name}.expected"
  if [[ ! -f "${expected}" ]]; then
    echo "FAIL: ${fixture} has no ${name}.expected golden" >&2
    status=1
    continue
  fi
  if [[ "${mode}" == fallback ]]; then
    got="$("${binary}" "${fixture}" | normalize)"
  else
    got="$("${binary}" -load "${module}" --checks='-*,locs-*' --quiet \
            "${fixture}" -- -std=c++17 -I "${fixtures}/include" \
            2>/dev/null | normalize)"
  fi
  want="$(sort -u "${expected}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "FAIL: ${name}: diagnostics differ from the golden" >&2
    diff <(printf '%s\n' "${want}") <(printf '%s\n' "${got}") >&2 || true
    status=1
  fi
done
if [[ "${count}" -eq 0 ]]; then
  echo "FAIL: no fixtures found under ${fixtures}" >&2
  status=1
fi
if [[ "${status}" -eq 0 ]]; then
  echo "lint fixtures: ${count} goldens match (${mode} engine)"
fi
exit "${status}"
