#ifndef LOCS_TOOLS_LINT_TIDY_WIRE_ERR_LITERAL_CHECK_H_
#define LOCS_TOOLS_LINT_TIDY_WIRE_ERR_LITERAL_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::locs {

// locs-wire-err-literal: every "ERR ..." reply on the wire must come
// from the typed WireError table in src/serve/wire.h (rendered by
// FormatError in wire.cc). Ad-hoc "ERR foo" string literals anywhere
// else bypass the error taxonomy that clients and the chaos harness
// key on.
class WireErrLiteralCheck : public ClangTidyCheck {
 public:
  WireErrLiteralCheck(StringRef name, ClangTidyContext* context);
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void storeOptions(ClangTidyOptions::OptionMap& opts) override;

 private:
  // Files allowed to spell ERR literals: the typed table's renderer and
  // tests (which assert on the wire format).
  const std::string allowed_files_;
};

}  // namespace clang::tidy::locs

#endif  // LOCS_TOOLS_LINT_TIDY_WIRE_ERR_LITERAL_CHECK_H_
