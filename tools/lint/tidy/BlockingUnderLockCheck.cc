#include "BlockingUnderLockCheck.h"

#include "LockScope.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::locs {

void BlockingUnderLockCheck::registerMatchers(
    ast_matchers::MatchFinder* finder) {
  // Syscall-shaped free functions: raw fd IO, multiplexing, socket
  // setup, stdio, and sleeps. Matches both ::read and std::fread
  // spellings via the unqualified name.
  const auto blocking_fn = functionDecl(hasAnyName(
      "read", "pread", "readv", "write", "pwrite", "writev", "recv",
      "recvfrom", "recvmsg", "send", "sendto", "sendmsg", "poll", "ppoll",
      "select", "pselect", "epoll_wait", "epoll_pwait", "accept", "accept4",
      "connect", "open", "openat", "close", "fsync", "fdatasync", "sleep",
      "usleep", "nanosleep", "fopen", "fclose", "fread", "fwrite", "fputs",
      "fputc", "fprintf", "vfprintf", "fflush", "fgets", "getline",
      "getdelim", "printf", "puts", "system", "popen", "pclose",
      "sleep_for", "sleep_until"));
  finder->addMatcher(
      callExpr(callee(blocking_fn)).bind("call"), this);
  // Stream members that force IO while held: std::ostream::flush etc.
  finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("flush", "sync"))))
          .bind("call"),
      this);
}

void BlockingUnderLockCheck::check(
    const ast_matchers::MatchFinder::MatchResult& result) {
  const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
  if (call == nullptr) return;
  SourceLocation loc = call->getBeginLoc();
  if (loc.isInvalid()) return;
  const SourceManager& sm = *result.SourceManager;
  if (sm.isInSystemHeader(sm.getSpellingLoc(loc))) return;

  ASTContext& ctx = *result.Context;
  llvm::SmallVector<const VarDecl*, 4> live_locks;
  const FunctionDecl* enclosing = CollectLiveLocks(ctx, call, &live_locks);

  std::string mutex_name;
  if (!live_locks.empty()) {
    mutex_name = LockedMutexName(live_locks.back(), enclosing, ctx);
  } else {
    llvm::SmallVector<std::string, 2> required;
    CollectRequiredMutexes(enclosing, ctx, &required);
    if (required.empty()) return;
    mutex_name = required.front();
  }

  std::string callee = "<indirect>";
  if (const FunctionDecl* fn = call->getDirectCallee()) {
    callee = fn->getNameAsString();
  }
  diag(loc,
       "blocking call '%0' while '%1' is held; perform IO outside the "
       "critical section or audit with NOLINT(locs-blocking-under-lock)")
      << callee << mutex_name;
}

}  // namespace clang::tidy::locs
