// LocsTidyModule — project-invariant checks for the locs codebase,
// loaded into clang-tidy via `-load liblocs_tidy_module.so`.
//
// The module registers the five locs-* checks. Each check encodes one
// serving-layer invariant (see docs/ARCHITECTURE.md, "Static analysis"):
//
//   locs-raw-sync            all locking through locs::Mutex wrappers
//   locs-lock-order          the lock-acquisition graph stays acyclic
//   locs-blocking-under-lock no syscall-shaped call while a lock is live
//   locs-wire-err-literal    every "ERR ..." reply comes from wire.h
//   locs-solver-contract     solver entries open a PhaseTracker span and
//                            reach a LOCS_VALIDATE hook
//
// The portable lexical engine in ../locs_lint.cc enforces the same five
// invariants with the same check names and diagnostic format, so the
// golden fixtures under ../fixtures/ validate either engine.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "BlockingUnderLockCheck.h"
#include "LockOrderCheck.h"
#include "RawSyncCheck.h"
#include "SolverContractCheck.h"
#include "WireErrLiteralCheck.h"

namespace clang::tidy::locs {

class LocsTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& factories) override {
    factories.registerCheck<RawSyncCheck>("locs-raw-sync");
    factories.registerCheck<LockOrderCheck>("locs-lock-order");
    factories.registerCheck<BlockingUnderLockCheck>(
        "locs-blocking-under-lock");
    factories.registerCheck<WireErrLiteralCheck>("locs-wire-err-literal");
    factories.registerCheck<SolverContractCheck>("locs-solver-contract");
  }
};

static ClangTidyModuleRegistry::Add<LocsTidyModule> kLocsModule(
    "locs-module", "Project-invariant checks for the locs serving layer.");

// Anchor so the shared library exports at least one symbol the loader
// must resolve; referenced nowhere, but keeps -load from dead-stripping
// the registration on over-eager linkers.
volatile int kLocsTidyModuleAnchorSource = 0;

}  // namespace clang::tidy::locs
