#ifndef LOCS_TOOLS_LINT_TIDY_RAW_SYNC_CHECK_H_
#define LOCS_TOOLS_LINT_TIDY_RAW_SYNC_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::locs {

// locs-raw-sync: raw std:: synchronization primitives (mutex, lock
// guards, condition variables) are invisible to the Clang thread-safety
// analysis the project relies on; every use outside
// util/thread_annotations.h must go through the locs:: wrappers.
class RawSyncCheck : public ClangTidyCheck {
 public:
  RawSyncCheck(StringRef name, ClangTidyContext* context);
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void storeOptions(ClangTidyOptions::OptionMap& opts) override;

 private:
  // Files where raw primitives are allowed (the wrapper header itself).
  const std::string allowed_files_;
};

}  // namespace clang::tidy::locs

#endif  // LOCS_TOOLS_LINT_TIDY_RAW_SYNC_CHECK_H_
