#include "LockOrderCheck.h"

#include "LockScope.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::locs {

void LockOrderCheck::registerMatchers(ast_matchers::MatchFinder* finder) {
  finder->addMatcher(
      declStmt(has(varDecl(hasType(cxxRecordDecl(
                               hasName("::locs::MutexLock"))))
                       .bind("lock")))
          .bind("stmt"),
      this);
}

void LockOrderCheck::check(
    const ast_matchers::MatchFinder::MatchResult& result) {
  const auto* lock = result.Nodes.getNodeAs<VarDecl>("lock");
  const auto* stmt = result.Nodes.getNodeAs<DeclStmt>("stmt");
  if (lock == nullptr || stmt == nullptr) return;
  SourceLocation loc = lock->getLocation();
  if (loc.isInvalid()) return;
  const SourceManager& sm = *result.SourceManager;
  if (sm.isInSystemHeader(sm.getSpellingLoc(loc))) return;

  ASTContext& ctx = *result.Context;
  llvm::SmallVector<const VarDecl*, 4> enclosing_locks;
  const FunctionDecl* enclosing =
      CollectLiveLocks(ctx, stmt, &enclosing_locks);

  const std::string acquired = LockedMutexName(lock, enclosing, ctx);
  if (acquired.empty()) return;

  std::string function = "<file scope>";
  if (enclosing != nullptr) {
    function = enclosing->getQualifiedNameAsString();
  }

  llvm::SmallVector<std::string, 4> held;
  for (const VarDecl* outer : enclosing_locks) {
    held.push_back(LockedMutexName(outer, enclosing, ctx));
  }
  CollectRequiredMutexes(enclosing, ctx, &held);

  for (const std::string& from : held) {
    if (from.empty()) continue;
    if (seen_.insert({from, acquired}).second) {
      edges_.push_back({from, acquired, loc, function});
    }
  }
}

void LockOrderCheck::onEndOfTranslationUnit() {
  // Self-edges first: locs::Mutex is non-reentrant, so A -> A is a
  // certain deadlock, not just an ordering hazard.
  std::map<std::string, std::vector<const Edge*>> graph;
  for (const Edge& edge : edges_) {
    if (edge.held == edge.acquired) {
      diag(edge.loc,
           "self-deadlock: '%0' re-acquires '%1' already held in this "
           "scope (locs::Mutex is non-reentrant)")
          << edge.function << edge.acquired;
      continue;
    }
    graph[edge.held].push_back(&edge);
  }

  // DFS cycle detection over the merged acquisition graph; report the
  // edge that closes each cycle at its acquisition site.
  std::set<std::string> done;
  for (const auto& [root, unused] : graph) {
    (void)unused;
    if (done.count(root) != 0) continue;
    std::vector<std::string> path{root};
    std::set<std::string> on_path{root};
    std::vector<size_t> next{0};
    while (!next.empty()) {
      const std::string& node = path.back();
      auto it = graph.find(node);
      if (it == graph.end() || next.back() >= it->second.size()) {
        done.insert(node);
        on_path.erase(node);
        path.pop_back();
        next.pop_back();
        continue;
      }
      const Edge* edge = it->second[next.back()++];
      const std::string& target = edge->acquired;
      if (on_path.count(target) != 0) {
        std::string cycle;
        bool in_cycle = false;
        for (const std::string& n : path) {
          if (n == target) in_cycle = true;
          if (in_cycle) cycle += n + " -> ";
        }
        cycle += target;
        diag(edge->loc,
             "lock-order cycle: acquiring '%0' while holding '%1' closes "
             "%2 (potential deadlock; pick one order)")
            << target << edge->held << cycle;
        continue;
      }
      if (done.count(target) != 0) continue;
      path.push_back(target);
      on_path.insert(target);
      next.push_back(0);
    }
  }
  edges_.clear();
  seen_.clear();
}

}  // namespace clang::tidy::locs
