#include "WireErrLiteralCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::locs {

WireErrLiteralCheck::WireErrLiteralCheck(StringRef name,
                                         ClangTidyContext* context)
    : ClangTidyCheck(name, context),
      allowed_files_(
          Options.get("AllowedFiles", "serve/wire\\.cc$|tests/")) {}

void WireErrLiteralCheck::storeOptions(ClangTidyOptions::OptionMap& opts) {
  Options.store(opts, "AllowedFiles", allowed_files_);
}

void WireErrLiteralCheck::registerMatchers(
    ast_matchers::MatchFinder* finder) {
  finder->addMatcher(stringLiteral().bind("lit"), this);
}

void WireErrLiteralCheck::check(
    const ast_matchers::MatchFinder::MatchResult& result) {
  const auto* lit = result.Nodes.getNodeAs<StringLiteral>("lit");
  if (lit == nullptr || lit->getCharByteWidth() != 1) return;
  const StringRef text = lit->getString();
  // The detector must spell the pattern it detects.
  // NOLINTNEXTLINE(locs-wire-err-literal)
  if (!(text == "ERR" || text.substr(0, 4) == "ERR ")) return;

  SourceLocation loc = lit->getBeginLoc();
  if (loc.isInvalid()) return;
  const SourceManager& sm = *result.SourceManager;
  loc = sm.getSpellingLoc(loc);
  if (sm.isInSystemHeader(loc)) return;
  llvm::Regex allowed(allowed_files_);
  if (allowed.match(sm.getFilename(loc))) return;

  diag(loc,
       "ad-hoc \"ERR ...\" literal bypasses the typed WireError table; "
       "reply through FormatError(WireError::...) from serve/wire.h");
}

}  // namespace clang::tidy::locs
