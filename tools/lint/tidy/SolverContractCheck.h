#ifndef LOCS_TOOLS_LINT_TIDY_SOLVER_CONTRACT_CHECK_H_
#define LOCS_TOOLS_LINT_TIDY_SOLVER_CONTRACT_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceLocation.h"

namespace clang::tidy::locs {

// locs-solver-contract: every solver entry point — a function defined
// under src/core/ that returns a SearchResult — must open an
// obs::PhaseTracker span and reach a LOCS_VALIDATE hook (the
// LOCS_VALIDATE_RESULT macro) before returning, or visibly delegate to
// another entry point that does.
//
// Exempt: *Impl internals, Make* factories, and functions that take a
// PhaseTracker or SearchResult parameter (they run inside a caller's
// span and validation).
class SolverContractCheck : public ClangTidyCheck {
 public:
  SolverContractCheck(StringRef name, ClangTidyContext* context);
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void registerPPCallbacks(const SourceManager& sm, Preprocessor* pp,
                           Preprocessor* module_expander) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void storeOptions(ClangTidyOptions::OptionMap& opts) override;

  void RecordValidateExpansion(SourceLocation loc) {
    validate_expansions_.push_back(loc);
  }

 private:
  // Path fragments that put a file in solver-contract scope.
  const std::string contract_paths_;
  std::vector<SourceLocation> validate_expansions_;
};

}  // namespace clang::tidy::locs

#endif  // LOCS_TOOLS_LINT_TIDY_SOLVER_CONTRACT_CHECK_H_
