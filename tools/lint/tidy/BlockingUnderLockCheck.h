#ifndef LOCS_TOOLS_LINT_TIDY_BLOCKING_UNDER_LOCK_CHECK_H_
#define LOCS_TOOLS_LINT_TIDY_BLOCKING_UNDER_LOCK_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::locs {

// locs-blocking-under-lock: no syscall-shaped call (read/write/poll/
// connect/sleeps/stdio) may execute while a locs::MutexLock is live in
// the enclosing scope chain, or inside a function annotated
// LOCS_REQUIRES. A blocked syscall under a serving-path lock turns one
// slow client into a convoy.
//
// The analysis is an over-approximation: a MutexLock declared earlier
// in an enclosing scope counts as live even if lock.Unlock() was
// called before the blocking call. Audited exceptions use
// // NOLINT(locs-blocking-under-lock) with a justification comment.
class BlockingUnderLockCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
};

}  // namespace clang::tidy::locs

#endif  // LOCS_TOOLS_LINT_TIDY_BLOCKING_UNDER_LOCK_CHECK_H_
