#include "SolverContractCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::locs {

namespace {

// Records every expansion of the LOCS_VALIDATE_RESULT macro so the
// AST pass can test whether a solver body reaches a validate hook.
class ValidateMacroRecorder : public PPCallbacks {
 public:
  explicit ValidateMacroRecorder(SolverContractCheck* check)
      : check_(check) {}
  void MacroExpands(const Token& name, const MacroDefinition& definition,
                    SourceRange range, const MacroArgs* args) override {
    (void)definition;
    (void)args;
    const IdentifierInfo* ident = name.getIdentifierInfo();
    if (ident != nullptr && ident->getName() == "LOCS_VALIDATE_RESULT") {
      check_->RecordValidateExpansion(range.getBegin());
    }
  }

 private:
  SolverContractCheck* check_;
};

bool ReturnsSearchResult(const FunctionDecl* fn) {
  return fn->getReturnType().getUnqualifiedType().getAsString().find(
             "SearchResult") != std::string::npos;
}

bool TypeMentions(QualType type, StringRef needle) {
  return StringRef(type.getAsString()).contains(needle);
}

}  // namespace

SolverContractCheck::SolverContractCheck(StringRef name,
                                         ClangTidyContext* context)
    : ClangTidyCheck(name, context),
      contract_paths_(
          Options.get("ContractPaths", "src/core/|lint/fixtures/")) {}

void SolverContractCheck::storeOptions(ClangTidyOptions::OptionMap& opts) {
  Options.store(opts, "ContractPaths", contract_paths_);
}

void SolverContractCheck::registerPPCallbacks(const SourceManager& sm,
                                              Preprocessor* pp,
                                              Preprocessor* module_expander) {
  (void)sm;
  (void)module_expander;
  pp->addPPCallbacks(std::make_unique<ValidateMacroRecorder>(this));
}

void SolverContractCheck::registerMatchers(
    ast_matchers::MatchFinder* finder) {
  finder->addMatcher(functionDecl(isDefinition(), hasBody(compoundStmt()))
                         .bind("fn"),
                     this);
}

void SolverContractCheck::check(
    const ast_matchers::MatchFinder::MatchResult& result) {
  const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (fn == nullptr || !ReturnsSearchResult(fn)) return;
  SourceLocation loc = fn->getLocation();
  if (loc.isInvalid()) return;
  const SourceManager& sm = *result.SourceManager;
  loc = sm.getSpellingLoc(loc);
  llvm::Regex scope(contract_paths_);
  if (!scope.match(sm.getFilename(loc))) return;

  const std::string name = fn->getNameAsString();
  // Internals and factories run inside a caller's span; SearchResult /
  // PhaseTracker parameters mark a helper operating on a caller's
  // result or span.
  if (StringRef(name).endswith("Impl") || StringRef(name).startswith("Make"))
    return;
  for (const ParmVarDecl* param : fn->parameters()) {
    if (TypeMentions(param->getType(), "PhaseTracker") ||
        TypeMentions(param->getType(), "SearchResult")) {
      return;
    }
  }

  ASTContext& ctx = *result.Context;
  const Stmt* body = fn->getBody();

  // Delegation: a call to another SearchResult-returning function (not
  // plain recursion) hands the contract to the callee.
  for (const auto& node :
       match(findAll(callExpr().bind("call")), *body, ctx)) {
    const auto* call = node.getNodeAs<CallExpr>("call");
    const FunctionDecl* callee =
        call != nullptr ? call->getDirectCallee() : nullptr;
    if (callee == nullptr || callee->getCanonicalDecl() ==
                                 fn->getCanonicalDecl()) {
      continue;
    }
    if (ReturnsSearchResult(callee)) return;
  }

  const bool has_tracker =
      !match(findAll(varDecl(
                 hasType(cxxRecordDecl(hasName("PhaseTracker"))))),
             *body, ctx)
           .empty();

  bool has_validate = false;
  const SourceRange body_range = body->getSourceRange();
  for (SourceLocation expansion : validate_expansions_) {
    if (sm.isPointWithin(sm.getExpansionLoc(expansion),
                         sm.getExpansionLoc(body_range.getBegin()),
                         sm.getExpansionLoc(body_range.getEnd()))) {
      has_validate = true;
      break;
    }
  }

  if (!has_tracker) {
    diag(loc,
         "solver entry '%0' never opens an obs::PhaseTracker span; "
         "telemetry for this entry point is dark")
        << name;
  }
  if (!has_validate) {
    diag(loc,
         "solver entry '%0' never reaches a LOCS_VALIDATE hook; results "
         "leave the solver unvalidated")
        << name;
  }
}

}  // namespace clang::tidy::locs
