#ifndef LOCS_TOOLS_LINT_TIDY_LOCK_SCOPE_H_
#define LOCS_TOOLS_LINT_TIDY_LOCK_SCOPE_H_

// Shared scope-walking helpers for the lock-sensitive checks:
// given a statement, find every locs::MutexLock variable whose scope
// is still open at that statement (declared earlier in an enclosing
// CompoundStmt), plus the enclosing function definition.

#include <string>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/Stmt.h"
#include "clang/Lex/Lexer.h"
#include "llvm/ADT/SmallVector.h"

namespace clang::tidy::locs {

inline bool IsMutexLockType(QualType type) {
  return type.getUnqualifiedType().getAsString().find("MutexLock") !=
         std::string::npos;
}

// Source spelling of an expression (used for mutex identities: the
// ctor argument of a MutexLock, or a LOCS_REQUIRES attribute operand).
inline std::string ExprSpelling(const Expr* expr, const ASTContext& ctx) {
  if (expr == nullptr) return std::string();
  const SourceManager& sm = ctx.getSourceManager();
  CharSourceRange range =
      CharSourceRange::getTokenRange(expr->getSourceRange());
  std::string text =
      Lexer::getSourceText(range, sm, ctx.getLangOpts()).str();
  // Normalize "this->m_" and "obj.m_" to the trailing member so the
  // same mutex spells the same node in the acquisition graph.
  const size_t arrow = text.rfind("->");
  if (arrow != std::string::npos) text = text.substr(arrow + 2);
  const size_t dot = text.rfind('.');
  if (dot != std::string::npos) text = text.substr(dot + 1);
  return text;
}

// Qualifies a bare mutex member name with the class of the enclosing
// method, e.g. mutex_ inside TraceSink::Record -> "TraceSink::mutex_".
inline std::string QualifyMutex(const std::string& name,
                                const FunctionDecl* enclosing) {
  if (name.find("::") != std::string::npos) return name;
  if (const auto* method = dyn_cast_or_null<CXXMethodDecl>(enclosing)) {
    return method->getParent()->getNameAsString() + "::" + name;
  }
  return name;
}

// The mutex identity a MutexLock variable guards: the spelling of its
// constructor argument, class-qualified when inside a method.
inline std::string LockedMutexName(const VarDecl* lock,
                                   const FunctionDecl* enclosing,
                                   const ASTContext& ctx) {
  const Expr* init = lock->getInit();
  if (const auto* cleanups = dyn_cast_or_null<ExprWithCleanups>(init)) {
    init = cleanups->getSubExpr();
  }
  const Expr* arg = nullptr;
  if (const auto* construct = dyn_cast_or_null<CXXConstructExpr>(init)) {
    if (construct->getNumArgs() > 0) arg = construct->getArg(0);
  }
  return QualifyMutex(ExprSpelling(arg, ctx), enclosing);
}

// Walks the parent chain from `origin`, collecting MutexLock variables
// declared earlier in each enclosing CompoundStmt. Stops at the
// enclosing function definition and returns it (null when `origin` is
// not inside one, e.g. an initializer).
inline const FunctionDecl* CollectLiveLocks(
    ASTContext& ctx, const Stmt* origin,
    llvm::SmallVectorImpl<const VarDecl*>* locks) {
  DynTypedNode node = DynTypedNode::create(*origin);
  const Stmt* came_from = origin;
  for (int depth = 0; depth < 128; ++depth) {
    const auto parents = ctx.getParents(node);
    if (parents.empty()) return nullptr;
    const DynTypedNode parent = parents[0];
    if (const auto* fn = parent.get<FunctionDecl>()) return fn;
    if (const auto* lambda = parent.get<LambdaExpr>()) {
      return lambda->getCallOperator();
    }
    if (const auto* compound = parent.get<CompoundStmt>()) {
      for (const Stmt* child : compound->body()) {
        if (child == came_from) break;
        const auto* decl_stmt = dyn_cast<DeclStmt>(child);
        if (decl_stmt == nullptr) continue;
        for (const Decl* decl : decl_stmt->decls()) {
          const auto* var = dyn_cast<VarDecl>(decl);
          if (var != nullptr && IsMutexLockType(var->getType())) {
            locks->push_back(var);
          }
        }
      }
    }
    if (const auto* stmt = parent.get<Stmt>()) came_from = stmt;
    node = parent;
  }
  return nullptr;
}

// Mutexes a function's LOCS_REQUIRES annotation says are held on entry.
inline void CollectRequiredMutexes(const FunctionDecl* fn,
                                   const ASTContext& ctx,
                                   llvm::SmallVectorImpl<std::string>* out) {
  if (fn == nullptr) return;
  for (const auto* attr : fn->specific_attrs<RequiresCapabilityAttr>()) {
    for (const Expr* arg : attr->args()) {
      out->push_back(QualifyMutex(ExprSpelling(arg, ctx), fn));
    }
  }
}

}  // namespace clang::tidy::locs

#endif  // LOCS_TOOLS_LINT_TIDY_LOCK_SCOPE_H_
