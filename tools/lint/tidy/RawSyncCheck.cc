#include "RawSyncCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::locs {

RawSyncCheck::RawSyncCheck(StringRef name, ClangTidyContext* context)
    : ClangTidyCheck(name, context),
      allowed_files_(
          Options.get("AllowedFiles", "util/thread_annotations\\.h$")) {}

void RawSyncCheck::storeOptions(ClangTidyOptions::OptionMap& opts) {
  Options.store(opts, "AllowedFiles", allowed_files_);
}

void RawSyncCheck::registerMatchers(ast_matchers::MatchFinder* finder) {
  // Any written type that resolves to a raw std:: synchronization
  // primitive. TypeLocs catch declarations, members, parameters, and
  // template arguments alike; system headers are skipped by the
  // default clang-tidy file filter.
  const auto raw_sync = namedDecl(hasAnyName(
      "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
      "::std::recursive_timed_mutex", "::std::shared_mutex",
      "::std::shared_timed_mutex", "::std::condition_variable",
      "::std::condition_variable_any", "::std::lock_guard",
      "::std::unique_lock", "::std::scoped_lock", "::std::shared_lock"));
  finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(raw_sync)))).bind("type"), this);
}

void RawSyncCheck::check(
    const ast_matchers::MatchFinder::MatchResult& result) {
  const auto* type_loc = result.Nodes.getNodeAs<TypeLoc>("type");
  if (type_loc == nullptr) return;
  SourceLocation loc = type_loc->getBeginLoc();
  if (loc.isInvalid()) return;
  const SourceManager& sm = *result.SourceManager;
  loc = sm.getSpellingLoc(loc);
  if (sm.isInSystemHeader(loc)) return;
  llvm::Regex allowed(allowed_files_);
  if (allowed.match(sm.getFilename(loc))) return;

  const QualType type = type_loc->getType();
  std::string name = type.getUnqualifiedType().getAsString();
  diag(loc,
       "raw '%0' is invisible to thread-safety analysis; use "
       "locs::Mutex / locs::MutexLock / locs::CondVar from "
       "util/thread_annotations.h")
      << name;
}

}  // namespace clang::tidy::locs
