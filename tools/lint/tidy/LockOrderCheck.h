#ifndef LOCS_TOOLS_LINT_TIDY_LOCK_ORDER_CHECK_H_
#define LOCS_TOOLS_LINT_TIDY_LOCK_ORDER_CHECK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::locs {

// locs-lock-order: builds the lock-acquisition graph for the whole
// translation unit — an edge A -> B for every locs::MutexLock on B
// taken while A is held (via an enclosing MutexLock scope or a
// LOCS_REQUIRES annotation) — and reports any cycle as a static
// deadlock, plus any self-edge as a guaranteed self-deadlock on the
// non-reentrant locs::Mutex.
class LockOrderCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void onEndOfTranslationUnit() override;

 private:
  struct Edge {
    std::string held;
    std::string acquired;
    SourceLocation loc;
    std::string function;
  };
  std::vector<Edge> edges_;
  std::set<std::pair<std::string, std::string>> seen_;
};

}  // namespace clang::tidy::locs

#endif  // LOCS_TOOLS_LINT_TIDY_LOCK_ORDER_CHECK_H_
