// locs_lint — portable fallback engine for the locs-* project-invariant
// checks (tools/lint/).
//
// The authoritative implementation of these checks is the clang-tidy
// plugin under tools/lint/tidy/, which sees the real AST. This engine
// re-implements the same five checks over a comment/string-stripped
// token stream so the gate still runs — in ctest, in CI, and on
// developer machines — when clang-tidy development headers are absent
// (they are not packaged on Debian/Ubuntu). Both engines emit
// clang-tidy-formatted diagnostics and honor // NOLINT(locs-...) and
// // NOLINTNEXTLINE(locs-...), so one set of golden fixtures
// (tools/lint/fixtures/) validates whichever engine runs.
//
// Checks:
//   locs-raw-sync            raw std::mutex/lock_guard/condition_variable
//                            outside util/thread_annotations.h — they are
//                            invisible to Clang thread-safety analysis.
//   locs-lock-order          cycle in the lock-acquisition graph built
//                            from nested locs::MutexLock scopes plus
//                            LOCS_REQUIRES annotations (static deadlock
//                            detection; the graph is merged across every
//                            input file, so cross-TU cycles are caught).
//   locs-blocking-under-lock syscall-shaped call (read/write/poll/open/
//                            sleeps/stdio) while a locs::MutexLock is
//                            live — a blocked thread must never hold a
//                            serving-path mutex.
//   locs-wire-err-literal    an "ERR ..." string literal outside
//                            src/serve/wire.cc — every wire error must
//                            come from the typed WireError table.
//   locs-solver-contract     a solver entry point (SearchResult-returning
//                            definition under src/core/) that neither
//                            opens an obs::PhaseTracker span nor reaches
//                            a LOCS_VALIDATE_RESULT hook, and does not
//                            delegate to an entry point that does.
//
// Usage: locs_lint [--checks=a,b,...] [--list-checks] file...
// Exit:  0 clean, 1 findings, 2 usage/read error.
//
// Being lexical, the engine over-approximates scopes (a lambda defined
// under a lock counts as running under it) and identifies mutexes by
// normalized spelling (Class::member_). Both biases are conservative:
// they can produce a finding a human must audit (and suppress with a
// justified NOLINT), never silently miss the pattern they encode.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Diagnostics

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string check;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    return check < other.check;
  }
};

const char* const kAllChecks[] = {
    "locs-raw-sync", "locs-lock-order", "locs-blocking-under-lock",
    "locs-wire-err-literal", "locs-solver-contract"};

// ---------------------------------------------------------------------------
// Lexing: strip comments and strings, record literals and NOLINTs

struct StringLit {
  int line = 0;
  int col = 0;
  std::string text;
};

struct Suppression {
  bool all = false;
  std::set<std::string> checks;
};

struct SourceFile {
  std::string path;
  std::string code;  // comments/string contents blanked, newlines kept
  std::vector<StringLit> strings;
  std::map<int, Suppression> nolint;  // line -> suppressed checks
};

void AddNolint(SourceFile* file, int line, const std::string& list) {
  Suppression& sup = (*file).nolint[line];
  if (list.empty()) {
    sup.all = true;
    return;
  }
  std::stringstream stream(list);
  std::string name;
  while (std::getline(stream, name, ',')) {
    const size_t begin = name.find_first_not_of(" \t");
    const size_t end = name.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    sup.checks.insert(name.substr(begin, end - begin + 1));
  }
}

/// Parses NOLINT / NOLINTNEXTLINE directives out of one comment.
void ScanCommentForNolint(SourceFile* file, int line,
                          const std::string& comment) {
  for (size_t pos = 0; (pos = comment.find("NOLINT", pos)) !=
                       std::string::npos;) {
    size_t after = pos + 6;
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    std::string list;
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      if (close != std::string::npos) {
        list = comment.substr(after + 1, close - after - 1);
      }
    }
    AddNolint(file, target, list);
    pos = after;
  }
}

/// Reads and lexes one file. Comments and string/char contents are
/// replaced by spaces in `code` (newlines preserved, quotes kept so
/// token boundaries survive); string literals and NOLINT directives are
/// recorded on the side.
bool LexFile(const std::string& path, SourceFile* out) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) return false;
  std::stringstream buffer;
  buffer << stream.rdbuf();
  const std::string text = buffer.str();

  out->path = path;
  out->code.assign(text.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  int line = 1, col = 1;
  int tok_line = 1, tok_col = 1;    // start of current literal/comment
  std::string pending;              // current literal/comment content
  std::string raw_close;            // raw-string closing delimiter
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          tok_line = line;
          pending.clear();
          ++i, ++col;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          tok_line = line;
          pending.clear();
          ++i, ++col;
        } else if (c == '"') {
          // R"delim( ... )delim" raw string?
          bool raw = false;
          if (i > 0 && text[i - 1] == 'R') {
            const size_t open = text.find('(', i + 1);
            if (open != std::string::npos && open - i <= 18) {
              raw = true;
              raw_close = ")" + text.substr(i + 1, open - i - 1) + "\"";
              out->code[i] = '"';
              state = State::kRaw;
              tok_line = line;
              tok_col = col + 1;
              pending.clear();
              // Skip the delimiter + '(' (stay on current char loop).
              for (size_t j = i + 1; j <= open; ++j) out->code[j] = ' ';
              col += static_cast<int>(open - i);
              i = open;
              break;
            }
          }
          if (!raw) {
            out->code[i] = '"';
            state = State::kString;
            tok_line = line;
            tok_col = col + 1;
            pending.clear();
          }
        } else if (c == '\'') {
          out->code[i] = '\'';
          state = State::kChar;
        } else {
          out->code[i] = c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          ScanCommentForNolint(out, tok_line, pending);
          state = State::kCode;
          out->code[i] = '\n';
        } else {
          pending.push_back(c);
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          ScanCommentForNolint(out, tok_line, pending);
          state = State::kCode;
          ++i, ++col;
        } else {
          pending.push_back(c);
          if (c == '\n') out->code[i] = '\n';
        }
        break;
      case State::kString:
        if (c == '\\') {
          pending.push_back(c);
          if (next != '\0') pending.push_back(next);
          ++i, ++col;
        } else if (c == '"') {
          out->code[i] = '"';
          out->strings.push_back({tok_line, tok_col, pending});
          state = State::kCode;
        } else {
          pending.push_back(c);
          if (c == '\n') out->code[i] = '\n';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i, ++col;
        } else if (c == '\'') {
          out->code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          out->strings.push_back({tok_line, tok_col, pending});
          for (size_t j = 0; j + 1 < raw_close.size(); ++j) {
            ++col;
            ++i;
          }
          out->code[i] = '"';
          state = State::kCode;
        } else {
          pending.push_back(c);
          if (c == '\n') out->code[i] = '\n';
        }
        break;
    }
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Tokenization of the stripped code

struct Token {
  std::string text;
  int line = 0;
  int col = 0;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1, col = 1;
  for (size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++col;
      ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      Token token{"", line, col};
      while (i < code.size() && IsIdentChar(code[i])) {
        token.text.push_back(code[i]);
        ++i;
        ++col;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      tokens.push_back({"::", line, col});
      i += 2;
      col += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      tokens.push_back({"->", line, col});
      i += 2;
      col += 2;
      continue;
    }
    tokens.push_back({std::string(1, c), line, col});
    ++i;
    ++col;
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Structural pass: blocks, functions, lock scopes

struct Block {
  enum Kind { kNamespace, kClass, kFunction, kPlain } kind = kPlain;
  std::string name;        // class or function name (possibly qualified)
  size_t locks_below = 0;  // lock-stack size at entry
};

struct ActiveLock {
  std::string mutex_id;   // normalized mutex identity
  std::string var_name;   // RAII variable ("" for LOCS_REQUIRES)
  size_t depth = 0;       // block-stack size at declaration
  int line = 0;
  int col = 0;
  bool active = true;
};

struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  int col = 0;
};

struct FunctionDef {
  std::string file;
  std::string name;          // last component
  std::string qualified;     // Class::Name when qualified
  std::string return_type;   // first header token(s) before the name
  std::string params;        // raw parameter text
  int line = 0;
  int col = 0;
  std::string body;          // token texts of the body, space-joined
};

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> set = {
      "if", "for", "while", "switch", "catch", "return", "do",
      "else", "sizeof", "alignof", "decltype", "new", "delete"};
  return set;
}

/// Syscall-shaped callables that must never run under a serving-path
/// mutex. Matched against the unqualified callee name of free calls;
/// kBlockingMembers additionally matches explicit member calls.
const std::set<std::string>& BlockingCalls() {
  static const std::set<std::string> set = {
      "read",       "write",      "pread",     "pwrite",    "readv",
      "writev",     "recv",       "recvfrom",  "recvmsg",   "send",
      "sendto",     "sendmsg",    "poll",      "ppoll",     "select",
      "epoll_wait", "connect",    "accept",    "accept4",   "open",
      "openat",     "close",      "fsync",     "fdatasync", "unlink",
      "rename",     "mkdir",      "sleep",     "usleep",    "nanosleep",
      "system",     "popen",      "pclose",    "fork",      "waitpid",
      "fopen",      "fclose",     "fread",     "fwrite",    "fprintf",
      "vfprintf",   "fputs",      "fputc",     "fgets",     "fgetc",
      "fflush",     "fscanf",     "getline",   "printf",    "puts",
      "scanf",      "sleep_for",  "sleep_until"};
  return set;
}

const std::set<std::string>& BlockingMembers() {
  static const std::set<std::string> set = {"flush", "sync"};
  return set;
}

/// Normalizes a mutex expression to a stable identity: `this->` is
/// dropped, member access keeps only the final component, and a plain
/// member name is qualified by the enclosing class so `mutex_` in
/// GraphRegistry and in ResultCache stay distinct nodes.
std::string NormalizeMutexExpr(const std::vector<std::string>& expr,
                               const std::string& class_context) {
  std::vector<std::string> parts;
  for (const std::string& part : expr) {
    if (part == "this" || part == "->" || part == "." || part == "*" ||
        part == "&" || part == "(" || part == ")") {
      continue;
    }
    parts.push_back(part);
  }
  if (parts.empty()) return "<unknown>";
  const std::string last = parts.back();
  // Already qualified in source (ns::mu) — keep the spelling.
  if (parts.size() > 1 &&
      std::find(expr.begin(), expr.end(), "::") != expr.end()) {
    std::string joined;
    for (const std::string& part : parts) {
      if (!joined.empty()) joined += "::";
      joined += part;
    }
    return joined;
  }
  if (parts.size() == 1 && !class_context.empty()) {
    return class_context + "::" + last;
  }
  return last;
}

struct Analyzer {
  // Options.
  std::set<std::string> enabled;
  std::string wire_allow = "serve/wire.cc";  // substring allow-list entry
  std::string contract_paths = "src/core/,lint/fixtures/";

  // Cross-file state.
  std::vector<Diagnostic> diagnostics;
  std::vector<LockEdge> edges;
  std::set<std::string> entry_names;  // SearchResult-returning def names
  std::vector<FunctionDef> functions;
  std::vector<const SourceFile*> files;

  bool CheckEnabled(const std::string& name) const {
    return enabled.count(name) != 0;
  }

  void Report(const SourceFile& file, int line, int col,
              const std::string& check, const std::string& message) {
    diagnostics.push_back({file.path, line, col, check, message});
  }

  // -------------------------------------------------------------------------
  // Per-file pass

  void AnalyzeFile(const SourceFile& file) {
    files.push_back(&file);
    const std::vector<Token> tokens = Tokenize(file.code);
    CheckRawSync(file, tokens);
    CheckWireErrLiterals(file);
    WalkStructure(file, tokens);
  }

  void CheckRawSync(const SourceFile& file, const std::vector<Token>& tokens) {
    if (!CheckEnabled("locs-raw-sync")) return;
    if (file.path.find("thread_annotations.h") != std::string::npos) return;
    static const std::set<std::string> kRaw = {
        "mutex",          "timed_mutex",
        "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex",   "shared_timed_mutex",
        "lock_guard",     "unique_lock",
        "scoped_lock",    "shared_lock",
        "condition_variable", "condition_variable_any"};
    for (size_t i = 2; i < tokens.size(); ++i) {
      if (tokens[i - 2].text == "std" && tokens[i - 1].text == "::" &&
          kRaw.count(tokens[i].text) != 0) {
        Report(file, tokens[i - 2].line, tokens[i - 2].col, "locs-raw-sync",
               "raw std::" + tokens[i].text +
                   " is invisible to thread-safety analysis; use "
                   "locs::Mutex/MutexLock/CondVar from "
                   "util/thread_annotations.h");
      }
    }
  }

  void CheckWireErrLiterals(const SourceFile& file) {
    if (!CheckEnabled("locs-wire-err-literal")) return;
    if (file.path.find(wire_allow) != std::string::npos) return;
    if (file.path.find("tests/") != std::string::npos) return;
    for (const StringLit& lit : file.strings) {
      // The detector must spell the pattern it detects.
      // NOLINTNEXTLINE(locs-wire-err-literal)
      if (lit.text == "ERR" || lit.text.compare(0, 4, "ERR ") == 0) {
        Report(file, lit.line, lit.col, "locs-wire-err-literal",
               "ad-hoc \"ERR ...\" literal; wire errors must go through "
               "FormatError and the typed WireError table in serve/wire.h");
      }
    }
  }

  // Returns true when `path` is in scope for locs-solver-contract.
  bool InContractScope(const std::string& path) const {
    std::stringstream stream(contract_paths);
    std::string prefix;
    while (std::getline(stream, prefix, ',')) {
      if (!prefix.empty() && path.find(prefix) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  // -------------------------------------------------------------------------
  // Structure walk: functions, lock scopes, calls

  void WalkStructure(const SourceFile& file,
                     const std::vector<Token>& tokens) {
    std::vector<Block> blocks;
    std::vector<ActiveLock> locks;
    // Start of the current "header" (text since the last ; { }).
    size_t header_begin = 0;

    auto class_context = [&blocks]() -> std::string {
      for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
        if (it->kind == Block::kClass) return it->name;
        if (it->kind == Block::kFunction) {
          const size_t sep = it->name.rfind("::");
          if (sep != std::string::npos) return it->name.substr(0, sep);
        }
      }
      return "";
    };

    auto active_count = [&locks]() {
      size_t count = 0;
      for (const ActiveLock& lock : locks) count += lock.active ? 1 : 0;
      return count;
    };

    std::vector<size_t> function_starts;  // indices into `functions`

    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& token = tokens[i];

      if (token.text == ";") {
        header_begin = i + 1;
        continue;
      }

      if (token.text == "{") {
        // Capture the lock-stack size before ClassifyBlock: synthetic
        // LOCS_REQUIRES locks it pushes belong to the opened scope and
        // must pop with it.
        const size_t locks_below = locks.size();
        blocks.push_back(
            ClassifyBlock(file, tokens, header_begin, i, class_context(),
                          &locks, &function_starts));
        blocks.back().locks_below = locks_below;
        header_begin = i + 1;
        continue;
      }

      if (token.text == "}") {
        if (!blocks.empty()) {
          const Block closed = blocks.back();
          blocks.pop_back();
          while (locks.size() > closed.locks_below) locks.pop_back();
          if (closed.kind == Block::kFunction && !function_starts.empty()) {
            FinishFunction(tokens, function_starts.back(), i);
            function_starts.pop_back();
          }
        }
        header_begin = i + 1;
        continue;
      }

      // RAII lock declaration: [locs ::] MutexLock name ( expr ) ;
      if (token.text == "MutexLock" && i + 2 < tokens.size() &&
          IsIdentChar(tokens[i + 1].text[0]) && tokens[i + 2].text == "(") {
        std::vector<std::string> expr;
        size_t j = i + 3;
        int depth = 1;
        for (; j < tokens.size() && depth > 0; ++j) {
          if (tokens[j].text == "(") ++depth;
          if (tokens[j].text == ")") {
            --depth;
            if (depth == 0) break;
          }
          expr.push_back(tokens[j].text);
        }
        const std::string mutex_id = NormalizeMutexExpr(expr, class_context());
        RecordAcquisition(file, token, mutex_id, locks);
        locks.push_back({mutex_id, tokens[i + 1].text, blocks.size(),
                         token.line, token.col, true});
        i = j;
        continue;
      }

      // Manual lock.Unlock() / lock.Lock() on a tracked RAII variable.
      // Edges are recorded before re-activation so re-locking the same
      // mutex after a wait loop is not a self-edge.
      if ((token.text == "Unlock" || token.text == "Lock") && i >= 2 &&
          (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
          i + 1 < tokens.size() && tokens[i + 1].text == "(") {
        for (ActiveLock& lock : locks) {
          if (lock.var_name == tokens[i - 2].text) {
            if (token.text == "Lock" && !lock.active) {
              RecordAcquisition(file, token, lock.mutex_id, locks);
            }
            lock.active = token.text == "Lock";
          }
        }
        continue;
      }

      // Calls while a lock is live: the blocking-under-lock check.
      if (CheckEnabled("locs-blocking-under-lock") && active_count() > 0 &&
          IsIdentChar(token.text[0]) && i + 1 < tokens.size() &&
          tokens[i + 1].text == "(") {
        const bool member_call =
            i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
        const bool blocking =
            member_call ? BlockingMembers().count(token.text) != 0
                        : BlockingCalls().count(token.text) != 0;
        if (blocking && ControlKeywords().count(token.text) == 0) {
          Report(file, token.line, token.col, "locs-blocking-under-lock",
                 "'" + token.text + "' may block while '" +
                     InnermostActive(locks) +
                     "' is held; move the call outside the critical "
                     "section or audit with a justified NOLINT");
        }
      }

      // std::cout / std::cerr under a lock are stream writes.
      if (CheckEnabled("locs-blocking-under-lock") && active_count() > 0 &&
          (token.text == "cout" || token.text == "cerr" ||
           token.text == "clog" || token.text == "cin") &&
          i >= 2 && tokens[i - 2].text == "std" &&
          tokens[i - 1].text == "::") {
        Report(file, token.line, token.col, "locs-blocking-under-lock",
               "std::" + token.text + " performs IO while '" +
                   InnermostActive(locks) + "' is held");
      }
    }
  }

  static std::string InnermostActive(const std::vector<ActiveLock>& locks) {
    for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
      if (it->active) return it->mutex_id;
    }
    return "<none>";
  }

  /// Records lock-order edges from every live lock to `mutex_id`.
  void RecordAcquisition(const SourceFile& file, const Token& at,
                         const std::string& mutex_id,
                         const std::vector<ActiveLock>& locks) {
    if (!CheckEnabled("locs-lock-order")) return;
    for (const ActiveLock& held : locks) {
      if (!held.active) continue;
      edges.push_back(
          {held.mutex_id, mutex_id, file.path, at.line, at.col});
    }
  }

  /// Classifies the block opened at tokens[open] ("{") from its header
  /// tokens [header_begin, open). Functions push a FunctionDef skeleton;
  /// LOCS_REQUIRES annotations inject synthetic held locks.
  Block ClassifyBlock(const SourceFile& file, const std::vector<Token>& tokens,
                      size_t header_begin, size_t open,
                      const std::string& class_context,
                      std::vector<ActiveLock>* locks,
                      std::vector<size_t>* function_starts) {
    Block block;
    if (header_begin >= open) return block;
    const Token& first = tokens[header_begin];
    if (first.text == "namespace") {
      block.kind = Block::kNamespace;
      if (header_begin + 1 < open && IsIdentChar(tokens[header_begin + 1]
                                                     .text[0])) {
        block.name = tokens[header_begin + 1].text;
      }
      return block;
    }
    if (first.text == "enum") return block;  // enum class body, no scopes
    if (first.text == "extern") return block;
    // class/struct definition (not `struct X x = {...}`: no '=' allowed).
    bool has_assign = false, has_parens = false;
    for (size_t i = header_begin; i < open; ++i) {
      if (tokens[i].text == "=") has_assign = true;
      if (tokens[i].text == "(") has_parens = true;
    }
    if ((first.text == "class" || first.text == "struct" ||
         first.text == "union") &&
        !has_assign && !has_parens) {
      block.kind = Block::kClass;
      for (size_t i = header_begin + 1; i < open; ++i) {
        if (IsIdentChar(tokens[i].text[0]) &&
            tokens[i].text != "alignas" && tokens[i].text != "final") {
          block.name = tokens[i].text;
          break;
        }
      }
      return block;
    }
    if (!has_parens || has_assign) return block;  // init list / plain block
    if (ControlKeywords().count(first.text) != 0) return block;

    // Function definition: the first identifier token directly followed
    // by '(' names the function (return-type tokens never are).
    size_t name_index = 0;
    for (size_t i = header_begin; i + 1 < open; ++i) {
      if (IsIdentChar(tokens[i].text[0]) &&
          ControlKeywords().count(tokens[i].text) == 0 &&
          tokens[i + 1].text == "(") {
        name_index = i;
        break;
      }
    }
    if (name_index == 0) return block;  // lambda or expression block

    // Qualified name: walk `A :: B :: [~]name` backwards (destructors
    // carry a '~' between the '::' and the name).
    std::string qualified = tokens[name_index].text;
    size_t walk = name_index;
    if (walk >= 1 && tokens[walk - 1].text == "~") --walk;
    while (walk >= 2 && tokens[walk - 1].text == "::" &&
           IsIdentChar(tokens[walk - 2].text[0])) {
      qualified = tokens[walk - 2].text + "::" + qualified;
      walk -= 2;
    }
    block.kind = Block::kFunction;
    block.name = qualified;

    FunctionDef def;
    def.file = file.path;
    def.qualified = qualified;
    def.name = tokens[name_index].text;
    def.line = tokens[name_index].line;
    def.col = tokens[name_index].col;
    for (size_t i = header_begin; i < walk; ++i) {
      if (!def.return_type.empty()) def.return_type += " ";
      def.return_type += tokens[i].text;
    }
    // Parameter text: the balanced group right after the name.
    int depth = 0;
    size_t params_end = name_index + 1;
    for (size_t i = name_index + 1; i < open; ++i) {
      if (tokens[i].text == "(") ++depth;
      if (tokens[i].text == ")") {
        --depth;
        if (depth == 0) {
          params_end = i;
          break;
        }
      }
      if (depth >= 1 && i > name_index + 1) {
        def.params += tokens[i].text;
        def.params += " ";
      }
    }
    functions.push_back(def);
    function_starts->push_back(functions.size() - 1);
    if (def.return_type.find("SearchResult") != std::string::npos) {
      entry_names.insert(def.name);
    }

    // LOCS_REQUIRES(mu[, mu2]) after the parameter list: the listed
    // mutexes are held for the whole body.
    for (size_t i = params_end; i + 1 < open; ++i) {
      if (tokens[i].text != "LOCS_REQUIRES" || tokens[i + 1].text != "(") {
        continue;
      }
      std::vector<std::string> expr;
      int req_depth = 1;
      for (size_t j = i + 2; j < open && req_depth > 0; ++j) {
        if (tokens[j].text == "(") ++req_depth;
        if (tokens[j].text == ")") {
          --req_depth;
          if (req_depth == 0) break;
        }
        if (tokens[j].text == ",") {
          locks->push_back({NormalizeMutexExpr(expr, class_context), "",
                            /*depth=*/0, tokens[i].line, tokens[i].col,
                            true});
          expr.clear();
          continue;
        }
        expr.push_back(tokens[j].text);
      }
      if (!expr.empty()) {
        locks->push_back({NormalizeMutexExpr(expr, class_context), "",
                          /*depth=*/0, tokens[i].line, tokens[i].col, true});
      }
    }
    return block;
  }

  /// Captures the body text of the function whose definition is
  /// functions[index]; the body ends at tokens[close] ("}").
  void FinishFunction(const std::vector<Token>& tokens, size_t index,
                      size_t close) {
    FunctionDef& def = functions[index];
    // The body starts right after the first '{' following the header;
    // approximate by joining all tokens from the definition line's name
    // to the closing brace. Good enough for containment queries.
    std::string body;
    for (size_t i = 0; i < close && i < tokens.size(); ++i) {
      if (tokens[i].line < def.line) continue;
      body += tokens[i].text;
      body += ' ';
    }
    def.body = std::move(body);
  }

  // -------------------------------------------------------------------------
  // Cross-file passes (after every AnalyzeFile call)

  void Finalize() {
    CheckLockOrder();
    CheckSolverContract();
  }

  void CheckLockOrder() {
    if (!CheckEnabled("locs-lock-order")) return;
    // Dedup edges; self-edges are immediate deadlocks.
    std::map<std::pair<std::string, std::string>, const LockEdge*> unique;
    for (const LockEdge& edge : edges) {
      unique.emplace(std::make_pair(edge.from, edge.to), &edge);
    }
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto& [key, edge] : unique) {
      if (key.first == key.second) {
        diagnostics.push_back(
            {edge->file, edge->line, edge->col, "locs-lock-order",
             "mutex '" + key.first +
                 "' re-acquired while already held (self-deadlock)"});
        continue;
      }
      graph[key.first].push_back(key.second);
    }
    // DFS cycle detection; report each cycle once, at the edge that
    // closes it, with the full path in the message.
    std::set<std::string> done;
    std::set<std::string> reported;
    for (const auto& [start, unused] : graph) {
      (void)unused;
      std::vector<std::string> path;
      std::set<std::string> on_path;
      DfsCycles(graph, unique, start, &path, &on_path, &done, &reported);
    }
  }

  void DfsCycles(
      const std::map<std::string, std::vector<std::string>>& graph,
      const std::map<std::pair<std::string, std::string>, const LockEdge*>&
          unique,
      const std::string& node, std::vector<std::string>* path,
      std::set<std::string>* on_path, std::set<std::string>* done,
      std::set<std::string>* reported) {
    if (done->count(node) != 0) return;
    path->push_back(node);
    on_path->insert(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const std::string& next : it->second) {
        if (on_path->count(next) != 0) {
          // Cycle: from the first occurrence of `next` in path to node.
          std::string cycle;
          bool in_cycle = false;
          for (const std::string& hop : *path) {
            if (hop == next) in_cycle = true;
            if (in_cycle) {
              cycle += hop;
              cycle += " -> ";
            }
          }
          cycle += next;
          if (reported->insert(cycle).second) {
            const LockEdge* edge = unique.at({node, next});
            diagnostics.push_back(
                {edge->file, edge->line, edge->col, "locs-lock-order",
                 "lock-order cycle (potential deadlock): " + cycle});
          }
          continue;
        }
        DfsCycles(graph, unique, next, path, on_path, done, reported);
      }
    }
    on_path->erase(node);
    path->pop_back();
    done->insert(node);
  }

  void CheckSolverContract() {
    if (!CheckEnabled("locs-solver-contract")) return;
    // NOLINT lookup needs the owning file.
    std::map<std::string, const SourceFile*> by_path;
    for (const SourceFile* file : files) by_path[file->path] = file;
    for (const FunctionDef& def : functions) {
      if (!InContractScope(def.file)) continue;
      if (def.file.size() < 3 ||
          def.file.compare(def.file.size() - 3, 3, ".cc") != 0) {
        continue;
      }
      if (def.return_type.find("SearchResult") == std::string::npos) continue;
      // Exemptions: *Impl workers (their caller owns the span), Make*
      // factories, transformers taking a SearchResult, and internal
      // helpers handed an already-open PhaseTracker.
      if (def.name.size() >= 4 &&
          def.name.compare(def.name.size() - 4, 4, "Impl") == 0) {
        continue;
      }
      if (def.name.compare(0, 4, "Make") == 0) continue;
      if (def.params.find("PhaseTracker") != std::string::npos) continue;
      if (def.params.find("SearchResult") != std::string::npos) continue;

      // Delegation: calling another entry point (or an Impl worker)
      // satisfies both obligations — the callee's are checked on its own
      // definition. A member-qualified call to a same-named method
      // (facade pattern: `multi_solver_.CstMulti(...)`) is delegation; a
      // bare same-named call is recursion and does not count.
      bool delegates = false;
      for (const std::string& name : entry_names) {
        if (name != def.name &&
            def.body.find(" " + name + " (") != std::string::npos) {
          delegates = true;
          break;
        }
        if (def.body.find(". " + name + " (") != std::string::npos ||
            def.body.find("-> " + name + " (") != std::string::npos) {
          delegates = true;
          break;
        }
      }
      if (!delegates &&
          def.body.find(" " + def.name + "Impl (") != std::string::npos) {
        delegates = true;
      }
      const bool has_tracker =
          def.body.find("PhaseTracker") != std::string::npos;
      const bool has_validate =
          def.body.find("LOCS_VALIDATE_RESULT") != std::string::npos ||
          def.body.find("DieOnViolation") != std::string::npos;
      const SourceFile* file = by_path[def.file];
      if (file == nullptr) continue;
      if (!has_tracker && !delegates) {
        Report(*file, def.line, def.col, "locs-solver-contract",
               "solver entry point '" + def.qualified +
                   "' opens no obs::PhaseTracker span and delegates to no "
                   "instrumented entry point");
      }
      if (!has_validate && !delegates) {
        Report(*file, def.line, def.col, "locs-solver-contract",
               "solver entry point '" + def.qualified +
                   "' never reaches a LOCS_VALIDATE_RESULT hook");
      }
    }
  }
};

// ---------------------------------------------------------------------------

bool Suppressed(const SourceFile& file, const Diagnostic& diag) {
  const auto it = file.nolint.find(diag.line);
  if (it == file.nolint.end()) return false;
  return it->second.all || it->second.checks.count(diag.check) != 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: locs_lint [--checks=c1,c2,...] [--wire-allow=SUBSTR]\n"
      "                 [--contract-paths=P1,P2] [--list-checks] file...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Analyzer analyzer;
  for (const char* check : kAllChecks) analyzer.enabled.insert(check);

  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const char* check : kAllChecks) std::printf("%s\n", check);
      return 0;
    }
    if (arg.compare(0, 9, "--checks=") == 0) {
      analyzer.enabled.clear();
      std::stringstream stream(arg.substr(9));
      std::string name;
      while (std::getline(stream, name, ',')) {
        const bool known =
            std::find_if(std::begin(kAllChecks), std::end(kAllChecks),
                         [&name](const char* c) { return name == c; }) !=
            std::end(kAllChecks);
        if (!known) {
          std::fprintf(stderr, "locs_lint: unknown check '%s'\n",
                       name.c_str());
          return 2;
        }
        analyzer.enabled.insert(name);
      }
      continue;
    }
    if (arg.compare(0, 13, "--wire-allow=") == 0) {
      analyzer.wire_allow = arg.substr(13);
      continue;
    }
    if (arg.compare(0, 17, "--contract-paths=") == 0) {
      analyzer.contract_paths = arg.substr(17);
      continue;
    }
    if (arg.compare(0, 2, "--") == 0) return Usage();
    paths.push_back(arg);
  }
  if (paths.empty()) return Usage();

  // Lex every file first (the lock graph and the entry-point set are
  // whole-input properties), then analyze.
  std::vector<SourceFile> sources(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!LexFile(paths[i], &sources[i])) {
      std::fprintf(stderr, "locs_lint: cannot read '%s'\n", paths[i].c_str());
      return 2;
    }
  }
  for (const SourceFile& file : sources) analyzer.AnalyzeFile(file);
  analyzer.Finalize();

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : sources) by_path[file.path] = &file;
  std::sort(analyzer.diagnostics.begin(), analyzer.diagnostics.end());
  int findings = 0;
  for (const Diagnostic& diag : analyzer.diagnostics) {
    const SourceFile* file = by_path[diag.file];
    if (file != nullptr && Suppressed(*file, diag)) continue;
    std::printf("%s:%d:%d: warning: %s [%s]\n", diag.file.c_str(), diag.line,
                diag.col, diag.message.c_str(), diag.check.c_str());
    ++findings;
  }
  if (findings == 0) {
    std::fprintf(stderr, "locs_lint: %zu files clean\n", sources.size());
    return 0;
  }
  std::fprintf(stderr, "locs_lint: %d finding(s)\n", findings);
  return 1;
}
