#!/usr/bin/env bash
# Degraded-mode coverage for the locs-lint gate (ctest: lint_degraded).
#
#   1. plugin engine requested but unavailable  -> clean skip + notice
#   2. same under LOCS_LINT_STRICT=1            -> exit 2
#   3. tampered golden                          -> runner exits nonzero
#   4. missing golden                           -> runner exits nonzero
#
# Usage: test_degraded.sh <locs_lint-binary>
set -uo pipefail

binary="${1:-}"
if [[ ! -x "${binary}" ]]; then
  echo "usage: test_degraded.sh <locs_lint-binary>" >&2
  exit 2
fi
cd "$(dirname "$0")/../.."
fail=0

# 1. Plugin requested, no clang-tidy: a developer machine without clang
# must get a notice and a zero exit, never a hard failure.
out="$(LOCS_LINT_ENGINE=plugin CLANG_TIDY=/nonexistent/clang-tidy \
       LOCS_LINT_STRICT=0 LOCS_LINT_MODULE= bash tools/run_lint.sh 2>&1)"
rc=$?
if [[ ${rc} -ne 0 ]] || ! grep -q "skipping the locs-lint gate" <<<"${out}"
then
  echo "FAIL: plugin-missing mode did not skip cleanly (rc=${rc}):" >&2
  printf '%s\n' "${out}" >&2
  fail=1
fi

# 2. CI pins LOCS_LINT_STRICT=1 so the gate can never silently vanish.
out="$(LOCS_LINT_ENGINE=plugin CLANG_TIDY=/nonexistent/clang-tidy \
       LOCS_LINT_STRICT=1 LOCS_LINT_MODULE= bash tools/run_lint.sh 2>&1)"
rc=$?
if [[ ${rc} -ne 2 ]]; then
  echo "FAIL: plugin-missing strict mode exited ${rc}, want 2:" >&2
  printf '%s\n' "${out}" >&2
  fail=1
fi

# 3. A golden that disagrees with the engine must fail the runner —
# this is the inverted-fixture proof that the gate can go red.
work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT
cp tools/lint/fixtures/*.cc tools/lint/fixtures/*.expected "${work}/"
mkdir -p "${work}/include"
cp tools/lint/fixtures/include/locs_stubs.h "${work}/include/"
echo "999 locs-raw-sync" >>"${work}/raw_sync.expected"
if bash tools/lint/run_fixtures.sh "${work}" fallback "${binary}" \
    >/dev/null 2>&1; then
  echo "FAIL: tampered golden did not fail the fixture runner" >&2
  fail=1
fi

# 4. A fixture without its golden is a broken invariant, not a skip.
rm "${work}/raw_sync.expected"
if bash tools/lint/run_fixtures.sh "${work}" fallback "${binary}" \
    >/dev/null 2>&1; then
  echo "FAIL: missing golden did not fail the fixture runner" >&2
  fail=1
fi

if [[ ${fail} -eq 0 ]]; then
  echo "lint degraded modes: all 4 cases behave"
fi
exit "${fail}"
