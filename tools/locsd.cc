// locsd — the resident community-search daemon.
//
// Serves the wire protocol (src/serve/wire.h) over stdin/stdout
// (--stdio: piped scripts, tests, inetd-style supervision) or a TCP
// loopback socket (--port). Graphs live in a shared registry; sessions
// are concurrent; per-query deadlines/budgets and max-inflight
// admission control bound every request. SIGTERM/SIGINT drain
// gracefully: in-flight requests finish, a final STATS line goes to
// stderr.
//
//   locsd --stdio --preload=g=web.lcsg
//   locsd --port=0 --port-file=/tmp/locsd.port &
//   locs_cli client --port="$(cat /tmp/locsd.port)"

#include <cstdio>
#include <string>

#include "serve/daemon.h"
#include "util/cli.h"

namespace locs {
namespace {

int Usage() {
  std::fprintf(stderr, "usage: locsd (--stdio | --port=P) [flags]\n%s",
               serve::DaemonFlagHelp());
  return 2;
}

int Run(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "help" || first == "--help" || first == "-h") {
      return Usage();
    }
  }
  const CommandLine cli(argc, argv);
  serve::DaemonOptions options;
  std::string error;
  if (!serve::ParseDaemonOptions(cli, &options, &error)) {
    std::fprintf(stderr, "locsd: %s\n", error.c_str());
    return Usage();
  }
  return serve::DaemonMain(options);
}

}  // namespace
}  // namespace locs

int main(int argc, char** argv) { return locs::Run(argc, argv); }
