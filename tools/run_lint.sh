#!/usr/bin/env bash
# locs-lint gate: the five project-invariant checks (locs-raw-sync,
# locs-lock-order, locs-blocking-under-lock, locs-wire-err-literal,
# locs-solver-contract) over the full tree, mirroring run_tidy.sh.
#
# Two engines implement the same checks (same names, same diagnostic
# format, same NOLINT semantics, one set of goldens):
#   plugin    the clang-tidy module tools/lint/tidy/ (authoritative,
#             AST-accurate) — needs a clang-tidy binary AND the module
#             .so, which only builds where clang-tidy development
#             headers exist (they are not packaged everywhere).
#   fallback  the portable lexical engine tools/lint/locs_lint.cc —
#             builds with any C++20 compiler, so the gate never
#             silently vanishes.
#
# Usage: tools/run_lint.sh [build-dir]
#   build-dir: a CMake tree with compile_commands.json for plugin mode
#              (default: build-tidy/, configured on demand).
#
# Environment:
#   LOCS_LINT_ENGINE   auto (default) | plugin | fallback
#   LOCS_LINT_BIN      prebuilt locs_lint binary (fallback engine)
#   LOCS_LINT_MODULE   prebuilt liblocs_tidy_module.so (plugin engine)
#   CLANG_TIDY         override the clang-tidy binary
#   LOCS_LINT_STRICT=1 fail (exit 2) when the requested engine is
#                      unavailable instead of skipping; CI sets this.
#
# Exit: 0 clean (or graceful skip), 1 findings or fixture mismatch,
#       2 requested engine unavailable under LOCS_LINT_STRICT=1.
set -euo pipefail

cd "$(dirname "$0")/.."

engine="${LOCS_LINT_ENGINE:-auto}"
strict="${LOCS_LINT_STRICT:-0}"
build_dir="${1:-build-tidy}"
fixtures="tools/lint/fixtures"

find_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "${CLANG_TIDY}" >/dev/null 2>&1 && echo "${CLANG_TIDY}"
    return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 0
}

find_module() {
  if [[ -n "${LOCS_LINT_MODULE:-}" && -f "${LOCS_LINT_MODULE}" ]]; then
    echo "${LOCS_LINT_MODULE}"
    return 0
  fi
  local candidate
  for candidate in "${build_dir}/tools/lint/liblocs_tidy_module.so" \
                   build/tools/lint/liblocs_tidy_module.so; do
    if [[ -f "${candidate}" ]]; then
      echo "${candidate}"
      return 0
    fi
  done
  return 0
}

# Fallback binary: an explicit override, an existing build, or a
# direct one-file compile (no configure needed).
find_fallback() {
  if [[ -n "${LOCS_LINT_BIN:-}" && -x "${LOCS_LINT_BIN}" ]]; then
    echo "${LOCS_LINT_BIN}"
    return 0
  fi
  local candidate
  for candidate in build/tools/lint/locs_lint \
                   "${build_dir}/tools/lint/locs_lint"; do
    if [[ -x "${candidate}" && "${candidate}" -nt tools/lint/locs_lint.cc ]]
    then
      echo "${candidate}"
      return 0
    fi
  done
  local cxx="${CXX:-c++}"
  mkdir -p build-lint
  if "${cxx}" -std=c++20 -O2 -o build-lint/locs_lint \
      tools/lint/locs_lint.cc 2>build-lint/locs_lint.build.log; then
    echo "build-lint/locs_lint"
  fi
  return 0
}

tidy="$(find_tidy)"
module="$(find_module)"
plugin_ready=0
[[ -n "${tidy}" && -n "${module}" ]] && plugin_ready=1

if [[ "${engine}" == "auto" ]]; then
  if [[ "${plugin_ready}" == "1" ]]; then
    engine="plugin"
  else
    engine="fallback"
  fi
fi

if [[ "${engine}" == "plugin" && "${plugin_ready}" != "1" ]]; then
  reason="clang-tidy binary"
  [[ -n "${tidy}" ]] && reason="plugin module (clang-tidy dev headers absent at configure time)"
  if [[ "${strict}" == "1" ]]; then
    echo "run_lint: plugin engine requested but no ${reason} found (LOCS_LINT_STRICT=1)" >&2
    exit 2
  fi
  echo "run_lint: no ${reason} found; skipping the locs-lint gate" \
       "(set LOCS_LINT_STRICT=1 to fail instead, or use LOCS_LINT_ENGINE=fallback)"
  exit 0
fi

if [[ "${engine}" == "fallback" ]]; then
  binary="$(find_fallback)"
  if [[ -z "${binary}" ]]; then
    if [[ "${strict}" == "1" ]]; then
      echo "run_lint: cannot build the fallback engine (LOCS_LINT_STRICT=1)" >&2
      [[ -f build-lint/locs_lint.build.log ]] && cat build-lint/locs_lint.build.log >&2
      exit 2
    fi
    echo "run_lint: no C++ compiler for the fallback engine; skipping"
    exit 0
  fi
fi

# Self-test first: every check must still fire on its golden fixture.
# A gate whose checks are silently broken is worse than no gate.
if [[ "${engine}" == "plugin" ]]; then
  bash tools/lint/run_fixtures.sh "${fixtures}" plugin "${tidy}" "${module}" \
    2> >(grep -v 'finding(s)$' >&2 || true)
else
  bash tools/lint/run_fixtures.sh "${fixtures}" fallback "${binary}" \
    2> >(grep -v 'finding(s)$' >&2 || true)
fi

# Tree sweep: everything the compile database covers, headers included;
# the fixtures are intentional violations and stay out.
mapfile -t sources < <(find src tools tests bench examples \
  \( -name '*.cc' -o -name '*.h' \) ! -path 'tools/lint/fixtures/*' | sort)

if [[ "${engine}" == "plugin" ]]; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "=== configuring ${build_dir} for compile_commands.json ==="
    cmake -B "${build_dir}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DLOCS_BUILD_BENCHMARKS=ON >/dev/null
  fi
  # The plugin sweeps exactly the compile database's translation units
  # (headers ride along through HeaderFilterRegex in .clang-tidy).
  mapfile -t sources < <(grep -o '"file": *"[^"]*"' \
      "${build_dir}/compile_commands.json" |
    sed 's/.*"file": *"//; s/"$//' |
    grep -vE 'tools/lint/fixtures/' | sort -u)
  echo "=== locs-lint (plugin) over ${#sources[@]} files ==="
  "${tidy}" -load "${module}" -p "${build_dir}" --quiet \
    --checks='-*,locs-*' --warnings-as-errors='locs-*' "${sources[@]}"
else
  echo "=== locs-lint (fallback) over ${#sources[@]} files ==="
  "${binary}" "${sources[@]}"
fi
echo "locs-lint gate clean (${engine} engine)."
