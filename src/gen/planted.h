// Planted-partition graphs with ground-truth labels — stand-ins for the
// paper's real-world case studies (Figure 6: the DBLP coauthor community
// and the WordNet "pot" community).

#ifndef LOCS_GEN_PLANTED_H_
#define LOCS_GEN_PLANTED_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace locs::gen {

/// A graph with a planted community structure and per-vertex community ids.
struct PlantedGraph {
  Graph graph;
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
};

/// Planted partition model: `num_communities` blocks of `community_size`
/// vertices; within-block edges appear with probability `p_in`,
/// cross-block edges with probability `p_out`.
PlantedGraph PlantedPartition(uint32_t num_communities,
                              uint32_t community_size, double p_in,
                              double p_out, uint64_t seed);

/// Relaxed-caveman graph: cliques of the given sizes, then each edge is
/// rewired to a random endpoint with probability `rewire`. Communities stay
/// recognizable but acquire the inter-community "noise" links real networks
/// show.
PlantedGraph RelaxedCaveman(const std::vector<uint32_t>& clique_sizes,
                            double rewire, uint64_t seed);

}  // namespace locs::gen

#endif  // LOCS_GEN_PLANTED_H_
