#include "gen/powerlaw.h"

#include "graph/builder.h"

namespace locs::gen {

std::vector<uint32_t> PowerLawDegreeSequence(VertexId n, double exponent,
                                             uint32_t min_degree,
                                             uint32_t max_degree, Rng& rng) {
  LOCS_CHECK_GE(min_degree, 1u);
  LOCS_CHECK_LE(min_degree, max_degree);
  std::vector<uint32_t> degrees(n);
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = static_cast<uint32_t>(
        rng.PowerLaw(min_degree, max_degree, exponent));
    total += degrees[v];
  }
  if (n > 0 && total % 2 == 1) {
    // Make the stub count even; bump the first vertex that has headroom.
    for (VertexId v = 0; v < n; ++v) {
      if (degrees[v] < max_degree) {
        ++degrees[v];
        break;
      }
      if (degrees[v] > min_degree) {
        --degrees[v];
        break;
      }
    }
  }
  return degrees;
}

Graph ConfigurationModel(const std::vector<uint32_t>& degrees, Rng& rng) {
  const auto n = static_cast<VertexId>(degrees.size());
  std::vector<VertexId> stubs;
  uint64_t total = 0;
  for (uint32_t d : degrees) total += d;
  stubs.reserve(total);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  rng.Shuffle(stubs);
  GraphBuilder builder(n);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    // Self-loops dropped by the builder; duplicates collapsed at Build().
    builder.AddEdge(stubs[i], stubs[i + 1]);
  }
  return builder.Build();
}

Graph PowerLawGraph(VertexId n, double exponent, uint32_t min_degree,
                    uint32_t max_degree, uint64_t seed) {
  Rng rng(seed);
  const std::vector<uint32_t> degrees =
      PowerLawDegreeSequence(n, exponent, min_degree, max_degree, rng);
  return ConfigurationModel(degrees, rng);
}

}  // namespace locs::gen
