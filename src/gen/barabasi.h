// Barabási–Albert preferential-attachment scale-free graphs.

#ifndef LOCS_GEN_BARABASI_H_
#define LOCS_GEN_BARABASI_H_

#include <cstdint>

#include "graph/graph.h"

namespace locs::gen {

/// Barabási–Albert model: starts from a clique on `m + 1` vertices; each
/// subsequent vertex attaches to `m` existing vertices chosen with
/// probability proportional to their current degree (repeat-endpoint
/// sampling, duplicates collapsed). Produces a power-law degree tail.
Graph BarabasiAlbert(VertexId n, uint32_t m, uint64_t seed);

}  // namespace locs::gen

#endif  // LOCS_GEN_BARABASI_H_
