#include "gen/planted.h"

#include <numeric>

#include "graph/builder.h"
#include "util/rng.h"

namespace locs::gen {

PlantedGraph PlantedPartition(uint32_t num_communities,
                              uint32_t community_size, double p_in,
                              double p_out, uint64_t seed) {
  LOCS_CHECK_GT(num_communities, 0u);
  LOCS_CHECK_GT(community_size, 0u);
  Rng rng(seed);
  const VertexId n = num_communities * community_size;
  GraphBuilder builder(n);
  PlantedGraph result;
  result.community.resize(n);
  result.num_communities = num_communities;
  for (VertexId v = 0; v < n; ++v) result.community[v] = v / community_size;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const double p =
          result.community[u] == result.community[v] ? p_in : p_out;
      if (rng.Chance(p)) builder.AddEdge(u, v);
    }
  }
  result.graph = builder.Build();
  return result;
}

PlantedGraph RelaxedCaveman(const std::vector<uint32_t>& clique_sizes,
                            double rewire, uint64_t seed) {
  LOCS_CHECK(!clique_sizes.empty());
  Rng rng(seed);
  const auto n = static_cast<VertexId>(
      std::accumulate(clique_sizes.begin(), clique_sizes.end(), 0u));
  PlantedGraph result;
  result.community.resize(n);
  result.num_communities = static_cast<uint32_t>(clique_sizes.size());
  EdgeList edges;
  VertexId base = 0;
  for (uint32_t c = 0; c < clique_sizes.size(); ++c) {
    const uint32_t size = clique_sizes[c];
    for (VertexId i = 0; i < size; ++i) {
      result.community[base + i] = c;
      for (VertexId j = i + 1; j < size; ++j) {
        edges.emplace_back(base + i, base + j);
      }
    }
    base += size;
  }
  for (auto& [u, v] : edges) {
    if (rng.Chance(rewire)) {
      v = static_cast<VertexId>(rng.Below(n));
    }
  }
  result.graph = BuildGraph(n, edges);
  return result;
}

}  // namespace locs::gen
