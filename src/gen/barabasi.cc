#include "gen/barabasi.h"

#include "graph/builder.h"
#include "util/rng.h"

namespace locs::gen {

Graph BarabasiAlbert(VertexId n, uint32_t m, uint64_t seed) {
  LOCS_CHECK_GE(m, 1u);
  LOCS_CHECK_GT(n, m);
  Rng rng(seed);
  GraphBuilder builder(n);
  // `targets` holds one entry per half-edge; uniform sampling from it is
  // degree-proportional sampling.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(n) * m * 2);
  const VertexId seed_size = m + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (VertexId v = seed_size; v < n; ++v) {
    // Sample m endpoints (with repetition in the pool; duplicate edges are
    // collapsed by the builder, matching the common BA implementation).
    for (uint32_t i = 0; i < m; ++i) {
      const VertexId t = targets[rng.Below(targets.size())];
      if (t == v) continue;
      builder.AddEdge(v, t);
      targets.push_back(t);
      targets.push_back(v);
    }
  }
  return builder.Build();
}

}  // namespace locs::gen
