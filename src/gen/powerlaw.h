// Configuration-model graphs with power-law degree sequences.
//
// The paper's candidate-size estimation (§4.2.3, Theorem 4) reasons about
// graphs characterized purely by their degree distribution; the
// configuration model is the canonical way to realize such graphs, and it
// also underlies the LFR generator's wiring step.

#ifndef LOCS_GEN_POWERLAW_H_
#define LOCS_GEN_POWERLAW_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace locs::gen {

/// Samples a degree sequence of n values from the bounded power law
/// P(d) ∝ d^(-exponent) over [min_degree, max_degree], then adjusts the last
/// entry's parity so the total stub count is even.
std::vector<uint32_t> PowerLawDegreeSequence(VertexId n, double exponent,
                                             uint32_t min_degree,
                                             uint32_t max_degree, Rng& rng);

/// Wires a degree sequence with the configuration model: stubs are shuffled
/// and paired; self-loops and duplicate pairings are dropped (the "erased"
/// configuration model), so realized degrees can fall slightly short of the
/// requested sequence.
Graph ConfigurationModel(const std::vector<uint32_t>& degrees, Rng& rng);

/// Convenience: power-law degree sequence + configuration wiring.
Graph PowerLawGraph(VertexId n, double exponent, uint32_t min_degree,
                    uint32_t max_degree, uint64_t seed);

}  // namespace locs::gen

#endif  // LOCS_GEN_POWERLAW_H_
