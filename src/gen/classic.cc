#include "gen/classic.h"

#include "graph/builder.h"

namespace locs::gen {

Graph Clique(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph Cycle(VertexId n) {
  LOCS_CHECK_GE(n, 3u);
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  return builder.Build();
}

Graph Path(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph Star(VertexId n) {
  LOCS_CHECK_GE(n, 1u);
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

Graph CompleteBipartite(VertexId a, VertexId b) {
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) builder.AddEdge(u, a + v);
  }
  return builder.Build();
}

Graph Grid(VertexId rows, VertexId cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return builder.Build();
}

Graph Barbell(VertexId k, VertexId bridge) {
  LOCS_CHECK_GE(k, 2u);
  const VertexId n = 2 * k + bridge;
  GraphBuilder builder(n);
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) builder.AddEdge(u, v);
  }
  const VertexId right = k + bridge;
  for (VertexId u = right; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  // Chain: last vertex of the left clique -> bridge vertices -> first vertex
  // of the right clique.
  VertexId prev = k - 1;
  for (VertexId b = 0; b < bridge; ++b) {
    builder.AddEdge(prev, k + b);
    prev = k + b;
  }
  builder.AddEdge(prev, right);
  return builder.Build();
}

VertexId Figure1Vertex(char label) {
  LOCS_CHECK(label >= 'a' && label <= 'n');
  return static_cast<VertexId>(label - 'a');
}

std::string Figure1Label(VertexId v) {
  LOCS_CHECK_LT(v, 14u);
  return std::string(1, static_cast<char>('a' + v));
}

Graph PaperFigure1() {
  GraphBuilder builder(14);
  auto edge = [&builder](char u, char v) {
    builder.AddEdge(Figure1Vertex(u), Figure1Vertex(v));
  };
  // V1 = {a,b,c,d,e}: δ(G[V1]) = 3; a and c each adjacent to exactly
  // {b,d,e} and {b,d,e} respectively within V1.
  edge('a', 'b');
  edge('a', 'd');
  edge('a', 'e');
  edge('b', 'c');
  edge('b', 'd');
  edge('c', 'd');
  edge('c', 'e');
  edge('d', 'e');
  // f: the weak link between V1 and V2, plus the tail through m. Global
  // degree 3 lets the naive CST(3) generation enqueue f (Example 7), while
  // m's peeling keeps f outside the 3-core (Example 5).
  edge('e', 'f');
  edge('f', 'g');
  edge('f', 'm');
  // V2 core: K5 on {g,h,i,j,k}.
  edge('g', 'h');
  edge('g', 'i');
  edge('g', 'j');
  edge('g', 'k');
  edge('h', 'i');
  edge('h', 'j');
  edge('h', 'k');
  edge('i', 'j');
  edge('i', 'k');
  edge('j', 'k');
  // l attaches with degree 4 so that the 4-core is {g,h,i,j,k,l}.
  edge('l', 'g');
  edge('l', 'h');
  edge('l', 'i');
  edge('l', 'k');
  // Degree-1 tail removed first by global search (Example 2).
  edge('m', 'n');
  return builder.Build();
}

}  // namespace locs::gen
