#include "gen/erdos_renyi.h"

#include <cmath>

#include "graph/builder.h"

namespace locs::gen {

Graph ErdosRenyiGnp(VertexId n, double p, uint64_t seed) {
  LOCS_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.Build();
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
    }
    return builder.Build();
  }
  // Enumerate potential edges (v, w) with w < v in lexicographic order,
  // skipping ahead by geometrically-distributed gaps
  // (Batagelj & Brandes 2005).
  const double log1mp = std::log1p(-p);
  int64_t v = 1;
  int64_t w = -1;
  const auto nn = static_cast<int64_t>(n);
  while (v < nn) {
    const double r = rng.NextDouble();
    w += 1 + static_cast<int64_t>(std::floor(std::log1p(-r) / log1mp));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      builder.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return builder.Build();
}

Graph ErdosRenyiGnm(VertexId n, uint64_t m, uint64_t seed) {
  const uint64_t possible =
      static_cast<uint64_t>(n) * (static_cast<uint64_t>(n) - 1) / 2;
  LOCS_CHECK_LE(m, possible);
  Rng rng(seed);
  GraphBuilder builder(n);
  // Sample m distinct edge indices in [0, possible), then decode each index
  // into the (u, v) pair it denotes.
  const std::vector<uint64_t> picks = rng.SampleDistinct(possible, m);
  for (uint64_t code : picks) {
    // Row u starts at offset u*n - u*(u+3)/2 ... decode by walking rows is
    // O(n) worst case; use the closed form via quadratic inversion instead.
    // code = u*(2n - u - 1)/2 + (v - u - 1)
    const double nn = static_cast<double>(n);
    auto u = static_cast<uint64_t>(
        std::floor(nn - 0.5 -
                   std::sqrt((nn - 0.5) * (nn - 0.5) -
                             2.0 * static_cast<double>(code))));
    // Guard floating-point rounding at row boundaries.
    auto row_start = [n](uint64_t row) {
      return row * (2 * static_cast<uint64_t>(n) - row - 1) / 2;
    };
    while (u > 0 && row_start(u) > code) --u;
    while (row_start(u + 1) <= code) ++u;
    const uint64_t v = u + 1 + (code - row_start(u));
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

}  // namespace locs::gen
