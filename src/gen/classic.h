// Deterministic classic graph families, used heavily by the tests, plus the
// paper's running example graph of Figure 1.

#ifndef LOCS_GEN_CLASSIC_H_
#define LOCS_GEN_CLASSIC_H_

#include <string>

#include "graph/graph.h"

namespace locs::gen {

/// Complete graph K_n.
Graph Clique(VertexId n);

/// Cycle C_n (n >= 3).
Graph Cycle(VertexId n);

/// Path P_n (n-1 edges).
Graph Path(VertexId n);

/// Star S_n: vertex 0 connected to 1..n-1. This is the paper's Figure 2
/// construction (one vertex of degree N, N vertices of degree 1).
Graph Star(VertexId n);

/// Complete bipartite graph K_{a,b}; part A is 0..a-1, part B is a..a+b-1.
Graph CompleteBipartite(VertexId a, VertexId b);

/// rows x cols grid graph.
Graph Grid(VertexId rows, VertexId cols);

/// Two cliques K_k joined by a path of `bridge` intermediate vertices
/// (bridge == 0 joins them with a single edge).
Graph Barbell(VertexId k, VertexId bridge);

/// The example graph of Figure 1 in the paper: vertices a..n mapped to ids
/// 0..13. The paper does not print the edge list, so it is reconstructed
/// from the constraints stated across Examples 1-9:
///   - V1 = {a,b,c,d,e} induces δ = 3 with a adjacent to exactly {b,d,e}
///     and c adjacent to exactly {b,d,e} (Examples 1, 3, 9);
///   - f bridges V1 and V2 as their only connection (Example 1's "weak
///     link"), adjacent to e, g, and m — global degree 3 so the naive
///     CST(3) candidate generation enqueues it (Example 7), yet outside
///     the 3-core because m peels away (Example 5);
///   - {g,h,i,j,k} form K5 and l attaches to {g,h,i,k}, so the 4-core is
///     {g,...,l} as stated in Example 5;
///   - the tail f—m—n gives the low-degree vertices removed first by the
///     global search of Example 2, and keeps m, n outside every CST(2)
///     answer so the admissible set of Example 6 is exactly V − {m,n}.
/// Two paper statements cannot be satisfied by any reconstruction
/// consistent with the rest: Example 2's claim that the best community for
/// j is exactly {g,h,i,j,k} contradicts Example 5's 4-core ({g..l}) — we
/// follow Example 5 — and Example 7's queue snapshot containing n at step 3
/// contradicts both Example 6 and Example 7's own final candidate set
/// V − {m,n}.
Graph PaperFigure1();

/// Human-readable label ('a'..'n') for a PaperFigure1 vertex id.
std::string Figure1Label(VertexId v);

/// Vertex id for a Figure 1 label character in 'a'..'n'.
VertexId Figure1Vertex(char label);

}  // namespace locs::gen

#endif  // LOCS_GEN_CLASSIC_H_
