// Erdős–Rényi random graphs.

#ifndef LOCS_GEN_ERDOS_RENYI_H_
#define LOCS_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace locs::gen {

/// G(n, p): each of the C(n,2) possible edges present independently with
/// probability p. Uses geometric skipping, so the cost is O(n + |E|) rather
/// than O(n^2).
Graph ErdosRenyiGnp(VertexId n, double p, uint64_t seed);

/// G(n, m): exactly m distinct edges sampled uniformly among the C(n,2)
/// possibilities (m must not exceed that count).
Graph ErdosRenyiGnm(VertexId n, uint64_t m, uint64_t seed);

}  // namespace locs::gen

#endif  // LOCS_GEN_ERDOS_RENYI_H_
