// LFR benchmark graphs (Lancichinetti, Fortunato, Radicchi 2008) — the
// synthetic-network generator used by the paper's §6.2 experiments.
//
// Degrees follow a power law with exponent α, community sizes follow a power
// law with exponent β, and the mixing parameter μ sets the fraction of each
// vertex's edges that leave its community. Small μ ⇒ crisp community
// structure; large μ ⇒ vague structure (the x-axis of Figure 17).

#ifndef LOCS_GEN_LFR_H_
#define LOCS_GEN_LFR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace locs::gen {

/// Parameters of the LFR benchmark. Defaults match the paper's §6.2 setup
/// (α = 2, β = 3, μ = 0.1).
struct LfrParams {
  VertexId n = 0;
  double degree_exponent = 2.0;     ///< α: power-law exponent of degrees.
  double community_exponent = 3.0;  ///< β: power-law exponent of sizes.
  double mu = 0.1;                  ///< fraction of inter-community stubs.
  uint32_t min_degree = 5;
  uint32_t max_degree = 100;
  uint32_t min_community = 20;
  uint32_t max_community = 200;
  uint64_t seed = 1;
};

/// An LFR graph together with its planted ground-truth communities.
struct LfrGraph {
  Graph graph;
  /// community[v] in [0, num_communities).
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
};

/// Generates an LFR benchmark graph. Uses the erased configuration model
/// for both the intra- and inter-community wiring, so realized degrees may
/// fall slightly short of the sampled sequence (standard LFR behaviour).
LfrGraph Lfr(const LfrParams& params);

}  // namespace locs::gen

#endif  // LOCS_GEN_LFR_H_
