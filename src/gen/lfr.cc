#include "gen/lfr.h"

#include <algorithm>
#include <cmath>

#include "gen/powerlaw.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace locs::gen {

namespace {

/// Samples community sizes from the bounded power law until they cover n
/// vertices exactly (the last community absorbs the remainder).
std::vector<uint32_t> SampleCommunitySizes(const LfrParams& params,
                                           Rng& rng) {
  std::vector<uint32_t> sizes;
  uint64_t covered = 0;
  while (covered < params.n) {
    auto size = static_cast<uint32_t>(rng.PowerLaw(
        params.min_community, params.max_community,
        params.community_exponent));
    if (covered + size > params.n) {
      const auto remainder = static_cast<uint32_t>(params.n - covered);
      if (remainder >= params.min_community || sizes.empty()) {
        size = remainder;
      } else {
        // Too small to stand alone: fold into the previous community.
        sizes.back() += remainder;
        covered = params.n;
        break;
      }
    }
    sizes.push_back(size);
    covered += size;
  }
  return sizes;
}

/// Pairs up `stubs` (vertex ids, one entry per half-edge) uniformly at
/// random and adds the pairings as edges, skipping self-pairings and,
/// when `community` is given, pairings inside the same community
/// (used for the inter-community wiring). A bounded number of reshuffle
/// retries untangles rejected stubs; leftovers are dropped (erased model).
void WireStubs(std::vector<VertexId>& stubs, GraphBuilder& builder,
               const std::vector<uint32_t>* community, Rng& rng) {
  rng.Shuffle(stubs);
  std::vector<VertexId> rejected;
  for (int attempt = 0; attempt < 8; ++attempt) {
    rejected.clear();
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const VertexId u = stubs[i];
      const VertexId v = stubs[i + 1];
      const bool same_side =
          u == v ||
          (community != nullptr && (*community)[u] == (*community)[v]);
      if (same_side) {
        rejected.push_back(u);
        rejected.push_back(v);
      } else {
        builder.AddEdge(u, v);
      }
    }
    if (stubs.size() % 2 == 1) rejected.push_back(stubs.back());
    if (rejected.size() < 2) return;
    stubs = rejected;
    rng.Shuffle(stubs);
  }
}

}  // namespace

LfrGraph Lfr(const LfrParams& params) {
  LOCS_CHECK_GT(params.n, 0u);
  LOCS_CHECK(params.mu >= 0.0 && params.mu <= 1.0);
  LOCS_CHECK_LE(params.min_community, params.max_community);
  Rng rng(params.seed);

  // 1. Degree sequence and per-vertex internal degree.
  std::vector<uint32_t> degree = PowerLawDegreeSequence(
      params.n, params.degree_exponent, params.min_degree, params.max_degree,
      rng);
  std::vector<uint32_t> internal(params.n);
  for (VertexId v = 0; v < params.n; ++v) {
    internal[v] = static_cast<uint32_t>(
        std::lround((1.0 - params.mu) * static_cast<double>(degree[v])));
    internal[v] = std::min(internal[v], degree[v]);
  }

  // 2. Community sizes and assignment. A vertex fits community c only if
  // its internal degree is below the community size; vertices that fit
  // nowhere get their internal degree clamped to the largest community.
  const std::vector<uint32_t> sizes = SampleCommunitySizes(params, rng);
  const auto num_comms = static_cast<uint32_t>(sizes.size());
  const uint32_t max_size = *std::max_element(sizes.begin(), sizes.end());

  std::vector<uint32_t> community(params.n);
  std::vector<uint32_t> remaining = sizes;
  std::vector<VertexId> order(params.n);
  for (VertexId v = 0; v < params.n; ++v) order[v] = v;
  // Place high-internal-degree vertices first so the large communities are
  // still open for them.
  std::sort(order.begin(), order.end(), [&internal](VertexId a, VertexId b) {
    if (internal[a] != internal[b]) return internal[a] > internal[b];
    return a < b;
  });
  // Communities sorted by size descending for first-fit placement.
  std::vector<uint32_t> comm_by_size(num_comms);
  for (uint32_t c = 0; c < num_comms; ++c) comm_by_size[c] = c;
  std::sort(comm_by_size.begin(), comm_by_size.end(),
            [&sizes](uint32_t a, uint32_t b) {
              if (sizes[a] != sizes[b]) return sizes[a] > sizes[b];
              return a < b;
            });
  for (VertexId v : order) {
    if (internal[v] >= max_size) internal[v] = max_size - 1;
    // Try a few random communities, then fall back to first-fit over the
    // size-sorted list.
    uint32_t chosen = num_comms;
    for (int attempt = 0; attempt < 12; ++attempt) {
      const auto c = static_cast<uint32_t>(rng.Below(num_comms));
      if (remaining[c] > 0 && internal[v] < sizes[c]) {
        chosen = c;
        break;
      }
    }
    if (chosen == num_comms) {
      for (uint32_t c : comm_by_size) {
        if (remaining[c] > 0 && internal[v] < sizes[c]) {
          chosen = c;
          break;
        }
      }
    }
    if (chosen == num_comms) {
      // Everything that could host it is full; put it in any open community
      // and clamp its internal degree to that community's capacity.
      for (uint32_t c : comm_by_size) {
        if (remaining[c] > 0) {
          chosen = c;
          internal[v] = std::min(internal[v], sizes[c] - 1);
          break;
        }
      }
    }
    LOCS_CHECK_LT(chosen, num_comms);
    community[v] = chosen;
    --remaining[chosen];
  }

  // 3. Intra-community wiring: configuration model per community.
  GraphBuilder builder(params.n);
  std::vector<std::vector<VertexId>> members(num_comms);
  for (VertexId v = 0; v < params.n; ++v) members[community[v]].push_back(v);
  for (uint32_t c = 0; c < num_comms; ++c) {
    std::vector<VertexId> stubs;
    for (VertexId v : members[c]) {
      for (uint32_t i = 0; i < internal[v]; ++i) stubs.push_back(v);
    }
    if (stubs.size() % 2 == 1) stubs.pop_back();
    WireStubs(stubs, builder, nullptr, rng);
  }

  // 4. Inter-community wiring: global configuration model over external
  // stubs, rejecting same-community pairings.
  std::vector<VertexId> ext_stubs;
  for (VertexId v = 0; v < params.n; ++v) {
    for (uint32_t i = internal[v]; i < degree[v]; ++i) ext_stubs.push_back(v);
  }
  if (ext_stubs.size() % 2 == 1) ext_stubs.pop_back();
  WireStubs(ext_stubs, builder, &community, rng);

  LfrGraph result;
  result.graph = builder.Build();
  result.community = std::move(community);
  result.num_communities = num_comms;
  return result;
}

}  // namespace locs::gen
