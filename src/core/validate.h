// LOCS_VALIDATE — the debug-mode solver-postcondition oracle.
//
// The paper's correctness claims (§4–§5: every solver returns a connected
// community containing the query vertex whose reported δ(G[H]) is the
// exact induced minimum degree) are promises each solver must keep on
// *every* return path — found, not-exists, and all three interrupted
// causes. This module re-verifies those promises from scratch, by a
// direct BFS + degree recount that shares no code with the solvers, and
// aborts through LOCS_CHECK with a structured diagnostic on violation.
//
// The checking functions are always compiled (tests call them directly);
// the *hooks* inside the solvers are compiled in only under
// -DLOCS_VALIDATE=ON, which the validate ctest lane enables (see
// tools/run_tidy.sh's sibling lanes in .github/workflows/ci.yml). Cost
// per query is O(sum of member degrees) plus, once per distinct graph, a
// full CSR well-formedness pass via graph/invariants.h.

#ifndef LOCS_CORE_VALIDATE_H_
#define LOCS_CORE_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common.h"
#include "core/result.h"
#include "graph/graph.h"

namespace locs::validate {

/// Returns "" when `community` is structurally sound over `graph`:
/// members in-range and duplicate-free, every vertex of `query` a
/// member, the induced subgraph connected, and `community.min_degree`
/// exactly equal to the recomputed induced minimum degree. Otherwise a
/// description of the first violation. An empty member set is a
/// violation (callers gate on result status first).
std::string CheckCommunity(const Graph& graph, const Community& community,
                           const std::vector<VertexId>& query);

/// Returns "" when `result` honors the SearchResult contract
/// (core/result.h) for a query rooted at `query` with minimum-degree
/// threshold `k` (pass 0 for CSM-style maximization queries, which have
/// no threshold):
///   - kFound: `community` engaged and sound per CheckCommunity (all
///     query vertices members), with min_degree >= k;
///   - kNotExists: no community and an empty best_so_far;
///   - interrupted (deadline/budget/cancel): no community; best_so_far
///     sound per CheckCommunity but only required to contain
///     query.front() (a multi-seed partial answer may not reach the
///     other query vertices).
/// Also verifies, once per distinct graph, CSR well-formedness via
/// graph/invariants.h.
std::string CheckSearchResult(const Graph& graph, const SearchResult& result,
                              const std::vector<VertexId>& query, uint32_t k);

/// Aborts via LOCS_CHECK with a "[LOCS_VALIDATE] solver=... query=...
/// k=... violation=..." diagnostic when CheckSearchResult reports a
/// violation. `solver` names the call site.
void DieOnViolation(const char* solver, const Graph& graph,
                    const SearchResult& result,
                    const std::vector<VertexId>& query, uint32_t k);

/// Single-query-vertex convenience overload.
void DieOnViolation(const char* solver, const Graph& graph,
                    const SearchResult& result, VertexId v0, uint32_t k);

/// Forgets the set of graphs whose CSR has already been validated (the
/// per-graph cache behind CheckSearchResult). Tests use this to force
/// revalidation; production code never needs it.
void ResetValidatedGraphCache();

}  // namespace locs::validate

// Solver-side hooks: compiled to nothing unless the build enables the
// oracle. `query` may be a VertexId or a std::vector<VertexId>.
#if defined(LOCS_VALIDATE)
#define LOCS_VALIDATE_RESULT(solver, graph, result, query, k) \
  ::locs::validate::DieOnViolation(solver, graph, result, query, k)
#else
#define LOCS_VALIDATE_RESULT(solver, graph, result, query, k) \
  do {                                                        \
  } while (0)
#endif

#endif  // LOCS_CORE_VALIDATE_H_
