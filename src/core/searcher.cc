#include "core/searcher.h"

#include "core/global.h"
#include "util/timer.h"

namespace locs {

namespace {

std::unique_ptr<OrderedAdjacency> MaybeBuildOrdered(
    const Graph& graph, bool enabled, double* build_ms) {
  if (!enabled) {
    *build_ms = 0.0;
    return nullptr;
  }
  WallTimer timer;
  auto ordered = std::make_unique<OrderedAdjacency>(graph);
  *build_ms = timer.Millis();
  return ordered;
}

}  // namespace

namespace {

/// tail[k] = |{v : deg(v) >= k}| for k in [0, max_degree + 1].
std::vector<uint64_t> ComputeTailCounts(const Graph& graph) {
  std::vector<uint64_t> histogram(graph.MaxDegree() + 2, 0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    ++histogram[graph.Degree(v)];
  }
  // Suffix-sum in place: histogram[k] becomes the tail count.
  for (size_t k = histogram.size() - 1; k-- > 0;) {
    histogram[k] += histogram[k + 1];
  }
  return histogram;
}

}  // namespace

CommunitySearcher::CommunitySearcher(Graph graph, const Options& options)
    : graph_(std::move(graph)),
      facts_(GraphFacts::Compute(graph_)),
      adaptive_global_fraction_(options.adaptive_global_fraction),
      tail_count_(ComputeTailCounts(graph_)),
      ordered_(MaybeBuildOrdered(graph_, options.build_ordered_adjacency,
                                 &ordering_build_ms_)),
      cst_solver_(graph_, ordered_.get(), &facts_),
      csm_solver_(graph_, ordered_.get(), &facts_),
      multi_solver_(graph_, ordered_.get(), &facts_) {}

SearchResult CommunitySearcher::Cst(VertexId v0, uint32_t k,
                                    const CstOptions& options,
                                    QueryStats* stats, QueryGuard* guard) {
  return cst_solver_.Solve(v0, k, options, stats, guard);
}

SearchResult CommunitySearcher::CstGlobal(VertexId v0, uint32_t k,
                                          QueryStats* stats,
                                          QueryGuard* guard) {
  return GlobalCst(graph_, v0, k, stats, guard, recorder_);
}

void CommunitySearcher::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder != nullptr ? recorder : &obs::Recorder::Null();
  cst_solver_.set_recorder(recorder_);
  csm_solver_.set_recorder(recorder_);
  multi_solver_.set_recorder(recorder_);
}

double CommunitySearcher::DegreeTailFraction(uint32_t k) const {
  if (graph_.NumVertices() == 0) return 0.0;
  const uint64_t count =
      k < tail_count_.size() ? tail_count_[k] : 0;
  return static_cast<double>(count) /
         static_cast<double>(graph_.NumVertices());
}

SearchResult CommunitySearcher::CstAdaptive(VertexId v0, uint32_t k,
                                            const CstOptions& options,
                                            QueryStats* stats,
                                            QueryGuard* guard) {
  // k <= 2 answers are tiny (an incident edge / a short cycle), so local
  // search terminates almost immediately regardless of |V>=k| — always go
  // local there (the k=1..2 rows of Figure 9). Beyond that, when most of
  // the graph survives the Proposition-3 pruning, candidate generation
  // degenerates to a slower global pass (the small-k regime of Figures
  // 8/9); dispatch straight to the global peel in that regime.
  if (k > 2 && DegreeTailFraction(k) > adaptive_global_fraction_) {
    return GlobalCst(graph_, v0, k, stats, guard, recorder_);
  }
  return cst_solver_.Solve(v0, k, options, stats, guard);
}

SearchResult CommunitySearcher::Csm(VertexId v0, const CsmOptions& options,
                                    QueryStats* stats, QueryGuard* guard) {
  return csm_solver_.Solve(v0, options, stats, guard);
}

SearchResult CommunitySearcher::CsmGlobal(VertexId v0, QueryStats* stats,
                                          QueryGuard* guard) {
  return GlobalCsm(graph_, v0, stats, guard, recorder_);
}

SearchResult CommunitySearcher::CstMulti(const std::vector<VertexId>& query,
                                         uint32_t k, QueryStats* stats,
                                         QueryGuard* guard) {
  return multi_solver_.CstMulti(query, k, stats, guard);
}

SearchResult CommunitySearcher::CsmMulti(const std::vector<VertexId>& query,
                                         QueryStats* stats,
                                         QueryGuard* guard) {
  return multi_solver_.CsmMulti(query, stats, guard);
}

}  // namespace locs
