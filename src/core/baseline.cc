#include "core/baseline.h"

#include <algorithm>

#include "util/timer.h"

namespace locs {

namespace {

/// DFS state for Algorithm 1. Degrees within H are maintained
/// incrementally; the monotonicity test "δ(H ∪ {v}) >= δ(H)" reduces to
/// "v has at least δ(H) links into H", because adding a vertex never
/// decreases the degree of existing members.
class BaselineSearch {
 public:
  BaselineSearch(const Graph& graph, uint32_t k, uint64_t max_steps,
                 double max_millis)
      : graph_(graph),
        k_(k),
        max_steps_(max_steps),
        max_millis_(max_millis),
        in_h_(graph.NumVertices(), 0),
        deg_in_h_(graph.NumVertices(), 0) {}

  BaselineResult Run(VertexId v0) {
    BaselineResult result;
    members_.push_back(v0);
    in_h_[v0] = 1;
    const bool found = Search(result);
    if (found) {
      Community community;
      community.members = members_;
      community.min_degree = MinDegree();
      result.community = std::move(community);
    }
    return result;
  }

 private:
  uint32_t MinDegree() const {
    uint32_t min_deg = ~uint32_t{0};
    for (VertexId v : members_) min_deg = std::min(min_deg, deg_in_h_[v]);
    return min_deg;
  }

  /// Returns true when `members_` currently holds a solution.
  bool Search(BaselineResult& result) {
    if (result.steps >= max_steps_) {
      result.budget_exhausted = true;
      return false;
    }
    if (max_millis_ > 0.0 && (result.steps & 63) == 0 &&
        timer_.Millis() > max_millis_) {
      result.budget_exhausted = true;
      return false;
    }
    ++result.steps;
    const uint32_t delta = MinDegree();
    if (delta >= k_) return true;
    // Enumerate the neighbors of H (each once), keeping those that do not
    // decrease δ and are not prunable by Proposition 3.
    std::vector<VertexId> frontier;
    for (VertexId u : members_) {
      for (VertexId w : graph_.Neighbors(u)) {
        if (in_h_[w] != 0 || graph_.Degree(w) < k_) continue;
        in_h_[w] = 2;  // 2 = staged in frontier (dedup)
        frontier.push_back(w);
      }
    }
    for (VertexId w : frontier) in_h_[w] = 0;
    for (VertexId w : frontier) {
      uint32_t incidence = 0;
      for (VertexId x : graph_.Neighbors(w)) incidence += in_h_[x] == 1;
      if (incidence < delta) continue;  // would decrease δ
      Push(w, incidence);
      if (Search(result)) return true;
      Pop(w);
      if (result.budget_exhausted) return false;
    }
    return false;
  }

  void Push(VertexId w, uint32_t incidence) {
    in_h_[w] = 1;
    deg_in_h_[w] = incidence;
    members_.push_back(w);
    for (VertexId x : graph_.Neighbors(w)) {
      if (in_h_[x] == 1 && x != w) ++deg_in_h_[x];
    }
  }

  void Pop(VertexId w) {
    members_.pop_back();
    in_h_[w] = 0;
    deg_in_h_[w] = 0;
    for (VertexId x : graph_.Neighbors(w)) {
      if (in_h_[x] == 1) --deg_in_h_[x];
    }
  }

  const Graph& graph_;
  const uint32_t k_;
  const uint64_t max_steps_;
  const double max_millis_;
  WallTimer timer_;
  std::vector<uint8_t> in_h_;
  std::vector<uint32_t> deg_in_h_;
  std::vector<VertexId> members_;
};

}  // namespace

BaselineResult BaselineCst(const Graph& graph, VertexId v0, uint32_t k,
                           uint64_t max_steps, double max_millis) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  if (k > 0 && graph.Degree(v0) < k) {
    // Proposition 3: no solution can exist.
    return BaselineResult{};
  }
  BaselineSearch search(graph, k, max_steps, max_millis);
  return search.Run(v0);
}

}  // namespace locs
