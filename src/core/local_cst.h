// Local search for CST(k) — §4 of the paper.
//
// The solver implements the three-step framework of Algorithm 2:
//   1. upper-bound admission test (Theorem 3 and Proposition 3);
//   2. candidate generation from the query vertex's neighborhood
//      (Algorithm 3), with the vertex-selection strategy pluggable:
//      naive FIFO, `lg` (largest increment of goodness, Eq. 5), or `li`
//      (largest number of incidence, Eq. 6 — backed by the Figure-5 bucket
//      structure for O(1) selection);
//   3. if generation exhausts the candidates without qualifying, a global
//      peel restricted to G[C] (sound by Proposition 4, and exact because
//      the candidate set always contains the k-core component of v0).
//
// Per-query cost is proportional to the neighborhood actually explored —
// not to |V| — thanks to epoch-stamped scratch state.

#ifndef LOCS_CORE_LOCAL_CST_H_
#define LOCS_CORE_LOCAL_CST_H_

#include "core/bucket_list.h"
#include "core/common.h"
#include "core/epoch.h"
#include "core/result.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "obs/recorder.h"
#include "util/guard.h"

namespace locs {

/// Whole-graph facts gathered once and shared by all queries. The
/// Theorem-3/5 bounds require a connected graph; `connected` gates their
/// use so the solvers stay correct on disconnected inputs.
struct GraphFacts {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  bool connected = false;

  static GraphFacts Compute(const Graph& graph);
};

/// Reusable local-CST solver bound to one graph. Not thread-safe; create
/// one instance per thread.
class LocalCstSolver {
 public:
  /// `ordered` (optional) enables the §4.3.2 sorted-adjacency expansion;
  /// `facts` (optional) enables the Theorem-3 admission test.
  LocalCstSolver(const Graph& graph, const OrderedAdjacency* ordered,
                 const GraphFacts* facts);

  /// Solves CST(k) for `v0`. `status == kFound` iff a solution exists and
  /// the query ran to completion: the returned community is connected,
  /// contains v0, and has minimum induced degree >= k. `kNotExists` is an
  /// exact negative. A `guard` trip (deadline / budget / cancel) yields an
  /// interrupted status with the best connected community so far in
  /// `best_so_far`.
  SearchResult Solve(VertexId v0, uint32_t k, const CstOptions& options = {},
                     QueryStats* stats = nullptr, QueryGuard* guard = nullptr);

  /// Telemetry sink for completed queries; defaults to the no-op null
  /// sink (no clock reads, counters discarded). Not owned.
  void set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder != nullptr ? recorder : &obs::Recorder::Null();
  }

 private:
  SearchResult SolveImpl(VertexId v0, uint32_t k, const CstOptions& options,
                         QueryGuard* guard, obs::PhaseTracker& tracker);
  VertexId SelectNext(Strategy strategy, uint32_t k, bool use_ordered);
  VertexId SelectLg(uint32_t k, bool use_ordered);
  void AddToC(VertexId v, uint32_t k, Strategy strategy, bool use_ordered,
              obs::PhaseStats& ph);
  SearchResult GlobalFallback(VertexId v0, uint32_t k,
                              obs::PhaseTracker& tracker, QueryGuard& guard,
                              uint64_t& charged);
  Community HarvestExpansion() const;
  Community HarvestUnpeeled(VertexId v0);
  uint32_t InducedMinDegree(const std::vector<VertexId>& members,
                            uint32_t mark) const;

  const Graph& graph_;
  const OrderedAdjacency* ordered_;
  const GraphFacts* facts_;
  obs::Recorder* recorder_ = &obs::Recorder::Null();
  obs::QueryTelemetry telemetry_;  // reset at the top of every Solve

  // Flattened scratch: membership and induced degree share one packed cell
  // (fresh ⟺ v ∈ C), so the expansion inner loop's "is w in C, and at what
  // degree" probe is a single cache-line touch.
  EpochU32Array c_deg_;             // fresh ⟺ in C; value = deg within G[C]
  EpochFlags enqueued_;             // naive/lg: discovered (queued) once
  EpochU32Array peeled_;            // fallback: 1 = peeled, 2 = BFS-reached
  EpochU32Array cursor_;            // lg: adjacency scan position
  std::vector<VertexId> peel_worklist_;
  EpochBucketList li_queue_;        // li: frontier keyed by incidence
  EpochBucketList lg_sources_;      // lg: C members keyed by deg_in_c
  std::vector<VertexId> fifo_;      // naive order / lg fallback
  size_t fifo_head_ = 0;
  std::vector<VertexId> c_members_;
  uint64_t deficient_ = 0;          // |{v in C : deg_in_c < k}|
};

}  // namespace locs

#endif  // LOCS_CORE_LOCAL_CST_H_
