#include "core/validate.h"

#include <algorithm>
#include <cstdio>

#include "graph/invariants.h"
#include "util/check.h"
#include "util/thread_annotations.h"

namespace locs::validate {

namespace {

/// Fingerprint of an immutable Graph's backing storage. Two live graphs
/// never collide (distinct data pointers); a graph rebuilt over a
/// recycled allocation with identical shape could in principle be
/// skipped, which trades a vanishingly unlikely missed CSR re-check for
/// not paying O(|V| + |E|) on every one of millions of queries.
struct GraphKey {
  const void* offsets;
  const void* neighbors;
  size_t num_offsets;
  size_t num_neighbors;

  bool operator==(const GraphKey&) const = default;
};

GraphKey KeyOf(const Graph& graph) {
  return GraphKey{graph.offsets().data(), graph.neighbors().data(),
                  graph.offsets().size(), graph.neighbors().size()};
}

constexpr size_t kGraphCacheSize = 64;

Mutex cache_mutex;
// Ring of recently validated graphs (bounded so long-running batch
// servers over churning graphs cannot grow it without limit).
GraphKey validated_graphs[kGraphCacheSize] LOCS_GUARDED_BY(cache_mutex);
size_t validated_count LOCS_GUARDED_BY(cache_mutex) = 0;
size_t validated_next LOCS_GUARDED_BY(cache_mutex) = 0;

/// True when `graph` was already CSR-validated; otherwise records it as
/// validated and returns false (the caller performs the validation —
/// a racing second thread may validate redundantly, never skip unsafely
/// only if validation cannot fail... it can, so record-before-validate
/// is acceptable solely because a failure aborts the process).
bool CheckAndRecordValidated(const Graph& graph) {
  const GraphKey key = KeyOf(graph);
  MutexLock lock(cache_mutex);
  for (size_t i = 0; i < validated_count; ++i) {
    if (validated_graphs[i] == key) return true;
  }
  validated_graphs[validated_next] = key;
  validated_next = (validated_next + 1) % kGraphCacheSize;
  validated_count = std::min(validated_count + 1, kGraphCacheSize);
  return false;
}

/// True when `v` is a member (members_sorted ascending).
bool IsMember(const std::vector<VertexId>& members_sorted, VertexId v) {
  return std::binary_search(members_sorted.begin(), members_sorted.end(), v);
}

std::string Describe(const char* what, uint64_t a, uint64_t b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), what, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

std::string CheckCommunity(const Graph& graph, const Community& community,
                           const std::vector<VertexId>& query) {
  const std::vector<VertexId>& members = community.members;
  if (members.empty()) return "community has no members";

  std::vector<VertexId> sorted(members);
  std::sort(sorted.begin(), sorted.end());
  if (sorted.back() >= graph.NumVertices()) {
    return Describe("member id %llu out of range (|V| = %llu)", sorted.back(),
                    graph.NumVertices());
  }
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    return Describe("duplicate member id %llu (community size %llu)", *dup,
                    members.size());
  }
  for (const VertexId q : query) {
    if (q >= graph.NumVertices()) {
      return Describe("query vertex %llu out of range (|V| = %llu)", q,
                      graph.NumVertices());
    }
    if (!IsMember(sorted, q)) {
      return Describe("query vertex %llu not a member (community size %llu)",
                      q, members.size());
    }
  }

  // Exact induced minimum degree, recounted edge by edge.
  uint32_t min_degree = ~uint32_t{0};
  for (const VertexId v : sorted) {
    uint32_t deg = 0;
    for (const VertexId u : graph.Neighbors(v)) {
      if (IsMember(sorted, u)) ++deg;
    }
    min_degree = std::min(min_degree, deg);
  }
  if (min_degree != community.min_degree) {
    return Describe("reported min degree %llu but recomputed %llu",
                    community.min_degree, min_degree);
  }

  // Connectivity of G[H] by BFS from the first member.
  std::vector<VertexId> frontier{sorted.front()};
  std::vector<bool> seen(sorted.size(), false);
  seen[0] = true;
  size_t reached = 1;
  while (!frontier.empty()) {
    const VertexId v = frontier.back();
    frontier.pop_back();
    for (const VertexId u : graph.Neighbors(v)) {
      const auto it = std::lower_bound(sorted.begin(), sorted.end(), u);
      if (it == sorted.end() || *it != u) continue;
      const size_t idx = static_cast<size_t>(it - sorted.begin());
      if (seen[idx]) continue;
      seen[idx] = true;
      ++reached;
      frontier.push_back(u);
    }
  }
  if (reached != sorted.size()) {
    return Describe("induced subgraph disconnected (%llu of %llu reachable)",
                    reached, sorted.size());
  }
  return "";
}

std::string CheckSearchResult(const Graph& graph, const SearchResult& result,
                              const std::vector<VertexId>& query, uint32_t k) {
  if (!CheckAndRecordValidated(graph)) {
    const std::string csr = ValidateGraph(graph);
    if (!csr.empty()) return "CSR malformed: " + csr;
  }
  if (query.empty()) return "query vertex set is empty";

  switch (result.status) {
    case Termination::kFound: {
      if (!result.community.has_value()) {
        return "status kFound but no community engaged";
      }
      std::string err = CheckCommunity(graph, *result.community, query);
      if (!err.empty()) return err;
      if (result.community->min_degree < k) {
        return Describe("min degree %llu below requested threshold %llu",
                        result.community->min_degree, k);
      }
      return "";
    }
    case Termination::kNotExists:
      if (result.community.has_value()) {
        return "status kNotExists but a community is engaged";
      }
      if (!result.best_so_far.members.empty()) {
        return "status kNotExists with a non-empty best_so_far";
      }
      return "";
    case Termination::kDeadline:
    case Termination::kBudgetExhausted:
    case Termination::kCancelled: {
      if (result.community.has_value()) {
        return "interrupted status but a community is engaged";
      }
      // A multi-seed partial answer is only anchored at the first query
      // vertex (core/multi.h).
      return CheckCommunity(graph, result.best_so_far, {query.front()});
    }
  }
  return "unknown termination status";
}

void DieOnViolation(const char* solver, const Graph& graph,
                    const SearchResult& result,
                    const std::vector<VertexId>& query, uint32_t k) {
  const std::string err = CheckSearchResult(graph, result, query, k);
  if (err.empty()) return;
  char msg[512];
  std::snprintf(msg, sizeof(msg),
                "[LOCS_VALIDATE] solver=%s query=%llu size=%llu k=%llu "
                "status=%s violation: %s",
                solver,
                static_cast<unsigned long long>(query.empty() ? ~uint64_t{0}
                                                              : query.front()),
                static_cast<unsigned long long>(query.size()),
                static_cast<unsigned long long>(k),
                std::string(TerminationName(result.status)).c_str(),
                err.c_str());
  LOCS_CHECK_MSG(false, msg);
}

void DieOnViolation(const char* solver, const Graph& graph,
                    const SearchResult& result, VertexId v0, uint32_t k) {
  DieOnViolation(solver, graph, result, std::vector<VertexId>{v0}, k);
}

void ResetValidatedGraphCache() {
  MutexLock lock(cache_mutex);
  validated_count = 0;
  validated_next = 0;
}

}  // namespace locs::validate
