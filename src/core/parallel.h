// Parallel batch execution of community-search queries.
//
// Per-query state in the local solvers is epoch-stamped scratch, so one
// solver instance cannot be shared across threads; the batch runner owns
// one solver per worker and distributes queries over an atomic cursor.
// Results are deterministic (each query's answer is independent of
// scheduling).

#ifndef LOCS_CORE_PARALLEL_H_
#define LOCS_CORE_PARALLEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/common.h"
#include "core/local_cst.h"
#include "graph/graph.h"
#include "graph/ordering.h"

namespace locs {

/// Options for batch execution.
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned num_threads = 0;
  CstOptions cst;
};

/// Solves CST(k) for every query vertex in parallel. Result i corresponds
/// to queries[i]. `ordered`/`facts` may be null (same contract as
/// LocalCstSolver).
std::vector<std::optional<Community>> SolveCstBatch(
    const Graph& graph, const OrderedAdjacency* ordered,
    const GraphFacts* facts, const std::vector<VertexId>& queries,
    uint32_t k, const BatchOptions& options = {});

/// Solves CSM for every query vertex in parallel.
std::vector<Community> SolveCsmBatch(const Graph& graph,
                                     const OrderedAdjacency* ordered,
                                     const GraphFacts* facts,
                                     const std::vector<VertexId>& queries,
                                     const CsmOptions& csm_options = {},
                                     unsigned num_threads = 0);

}  // namespace locs

#endif  // LOCS_CORE_PARALLEL_H_
