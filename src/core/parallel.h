// Compatibility shim — the batch query layer moved to src/exec/ (persistent
// thread-pool executor + BatchRunner with per-worker solver reuse).
// SolveCstBatch / SolveCsmBatch keep their signatures; include
// "exec/batch_runner.h" directly in new code.

#ifndef LOCS_CORE_PARALLEL_H_
#define LOCS_CORE_PARALLEL_H_

#include "exec/batch_runner.h"

#endif  // LOCS_CORE_PARALLEL_H_
