// Solvers for mCST(k) — the minimum-size CST variant (Problem Definition
// 3). The paper proves mCST NP-complete (Theorem 1) and stops there; this
// module adds the natural follow-ups: a budgeted exact branch-and-bound for
// small instances and a shrink-greedy heuristic for large ones, plus the
// Lemma-1 clique shortcut both solvers exploit.

#ifndef LOCS_CORE_MCST_H_
#define LOCS_CORE_MCST_H_

#include <cstdint>
#include <optional>

#include "core/common.h"
#include "core/result.h"
#include "graph/graph.h"
#include "util/guard.h"

namespace locs {

/// Lemma 1: a clique of size k+1 containing v0 is a smallest possible
/// CST(k) solution (every solution needs >= k+1 vertices). Searches v0's
/// neighborhood for such a clique with a bounded backtracking search;
/// returns its members on success.
std::optional<std::vector<VertexId>> FindCliqueThrough(const Graph& graph,
                                                       VertexId v0,
                                                       uint32_t size,
                                                       uint64_t max_steps);

/// Result of an exact mCST run.
struct McstResult {
  std::optional<Community> community;
  /// True when the step budget (or a guard limit) expired; the answer (if
  /// any) is then the smallest found so far but not necessarily optimal.
  bool budget_exhausted = false;
  uint64_t steps = 0;
  /// kFound / kNotExists for a completed run; the guard cause (or
  /// kBudgetExhausted for the native step budget) otherwise.
  Termination termination = Termination::kNotExists;
};

/// Exact mCST(k) by branch-and-bound over connected supersets of {v0}.
/// Exponential; intended for small graphs / small answers. The search is
/// bounded by `max_steps` expansion steps; an optional `guard` is charged
/// one unit per search step and can interrupt the run the same way.
McstResult ExactMcst(const Graph& graph, VertexId v0, uint32_t k,
                     uint64_t max_steps, QueryGuard* guard = nullptr);

/// Heuristic mCST(k): start from any CST(k) solution (the k-core component
/// of v0) and greedily delete vertices while the community stays valid.
/// kNotExists exactly when CST(k) itself has no solution. The kFound
/// result is inclusion-minimal but not necessarily minimum; a guard trip
/// yields the smallest still-valid community reached so far (which is a
/// genuine CST(k) answer — shrinking only stopped early).
SearchResult GreedyMcst(const Graph& graph, VertexId v0, uint32_t k,
                        QueryGuard* guard = nullptr);

}  // namespace locs

#endif  // LOCS_CORE_MCST_H_
