// Constrained community search — the future-work direction the paper's
// conclusion names ("consider constraints in community search").
//
// The constraint model: a vertex predicate (membership mask). A community
// must consist solely of admitted vertices; everything else (minimum
// degree, connectivity, query containment) is unchanged. This covers the
// paper's emerging-social-settings examples: "only users who opted in",
// "only accounts active this month", "only senses from this domain".
//
// Implementation: queries run on the induced subgraph of admitted
// vertices, with id translation handled here. The filtered graph and its
// precomputations are built once per (graph, mask) and reused across
// queries, mirroring CommunitySearcher.

#ifndef LOCS_CORE_FILTERED_H_
#define LOCS_CORE_FILTERED_H_

#include <optional>
#include <vector>

#include "core/result.h"
#include "core/searcher.h"
#include "graph/graph.h"
#include "util/guard.h"

namespace locs {

/// Community search restricted to an admitted subset of vertices.
class FilteredCommunitySearcher {
 public:
  /// `admitted[v]` != 0 admits vertex v. The mask must cover every vertex.
  FilteredCommunitySearcher(const Graph& graph,
                            const std::vector<uint8_t>& admitted);

  /// Number of admitted vertices.
  VertexId NumAdmitted() const {
    return static_cast<VertexId>(to_original_.size());
  }

  bool IsAdmitted(VertexId v) const {
    return to_filtered_[v] != kInvalidVertex;
  }

  /// CST(k) among admitted vertices only. kNotExists when v0 is not
  /// admitted or no constrained community exists. Members are reported in
  /// original-graph ids (including an interrupted query's best_so_far).
  SearchResult Cst(VertexId v0, uint32_t k, const CstOptions& options = {},
                   QueryStats* stats = nullptr, QueryGuard* guard = nullptr);

  /// Best constrained community for v0 (original-graph ids); v0 itself
  /// must be admitted or kNotExists is returned.
  SearchResult Csm(VertexId v0, const CsmOptions& options = {},
                   QueryStats* stats = nullptr, QueryGuard* guard = nullptr);

 private:
  Community Translate(Community community) const;
  SearchResult TranslateResult(SearchResult result) const;

  std::vector<VertexId> to_filtered_;  // original -> filtered id or kInvalid
  std::vector<VertexId> to_original_;  // filtered -> original id
  std::optional<CommunitySearcher> searcher_;
};

}  // namespace locs

#endif  // LOCS_CORE_FILTERED_H_
