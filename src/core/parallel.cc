#include "core/parallel.h"

#include <atomic>
#include <thread>

#include "core/local_csm.h"

namespace locs {

namespace {

unsigned ResolveThreads(unsigned requested, size_t work_items) {
  unsigned threads =
      requested != 0 ? requested : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > work_items) threads = static_cast<unsigned>(work_items);
  return threads == 0 ? 1 : threads;
}

/// Runs `worker(thread_index)` on `threads` std::threads and joins.
template <typename Fn>
void RunWorkers(unsigned threads, Fn&& worker) {
  if (threads <= 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  for (std::thread& thread : pool) thread.join();
}

}  // namespace

std::vector<std::optional<Community>> SolveCstBatch(
    const Graph& graph, const OrderedAdjacency* ordered,
    const GraphFacts* facts, const std::vector<VertexId>& queries,
    uint32_t k, const BatchOptions& options) {
  std::vector<std::optional<Community>> results(queries.size());
  if (queries.empty()) return results;
  const unsigned threads =
      ResolveThreads(options.num_threads, queries.size());
  std::atomic<size_t> cursor{0};
  RunWorkers(threads, [&](unsigned) {
    LocalCstSolver solver(graph, ordered, facts);
    while (true) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      results[i] = solver.Solve(queries[i], k, options.cst);
    }
  });
  return results;
}

std::vector<Community> SolveCsmBatch(const Graph& graph,
                                     const OrderedAdjacency* ordered,
                                     const GraphFacts* facts,
                                     const std::vector<VertexId>& queries,
                                     const CsmOptions& csm_options,
                                     unsigned num_threads) {
  std::vector<Community> results(queries.size());
  if (queries.empty()) return results;
  const unsigned threads = ResolveThreads(num_threads, queries.size());
  std::atomic<size_t> cursor{0};
  RunWorkers(threads, [&](unsigned) {
    LocalCsmSolver solver(graph, ordered, facts);
    while (true) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      results[i] = solver.Solve(queries[i], csm_options);
    }
  });
  return results;
}

}  // namespace locs
