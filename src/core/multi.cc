#include "core/multi.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/validate.h"

namespace locs {

namespace {

/// Validates a query set: non-empty, distinct, in range.
void CheckQuery(const Graph& graph, const std::vector<VertexId>& query) {
  LOCS_CHECK(!query.empty());
  for (size_t i = 0; i < query.size(); ++i) {
    LOCS_CHECK_LT(query[i], graph.NumVertices());
    for (size_t j = i + 1; j < query.size(); ++j) {
      LOCS_CHECK_MSG(query[i] != query[j], "duplicate query vertex");
    }
  }
}

/// See GlobalCstMulti below (the public wrapper adds the LOCS_VALIDATE
/// postcondition oracle).
SearchResult GlobalCstMultiImpl(const Graph& graph,
                                const std::vector<VertexId>& query,
                                uint32_t k, obs::QueryTelemetry& telemetry,
                                obs::PhaseTracker& tracker,
                                QueryGuard* guard) {
  CheckQuery(graph, query);
  obs::PhaseStats& peel_ph = tracker.Enter(obs::Phase::kCoreDecomposition);
  peel_ph.vertices_visited += graph.NumVertices();
  peel_ph.edges_scanned += 2 * graph.NumEdges();
  if (guard != nullptr) {
    if (guard->Spend(0)) {
      return SearchResult::MakeInterrupted(guard->cause(),
                                           Community{{query[0]}, 0});
    }
    guard->Spend(graph.NumVertices() + 2 * graph.NumEdges());
  }

  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  std::vector<VertexId> worklist;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < k) {
      removed[v] = 1;
      worklist.push_back(v);
    }
  }
  for (size_t head = 0; head < worklist.size(); ++head) {
    for (VertexId w : graph.Neighbors(worklist[head])) {
      if (removed[w] == 0 && --degree[w] < k) {
        removed[w] = 1;
        worklist.push_back(w);
      }
    }
  }
  for (VertexId q : query) {
    if (removed[q] != 0) return SearchResult::MakeNotExists();
  }
  // BFS from the first query vertex over survivors; all other query
  // vertices must be reached.
  tracker.Enter(obs::Phase::kConnectivity);
  Community community;
  community.members.push_back(query[0]);
  removed[query[0]] = 2;
  uint32_t min_degree = degree[query[0]];
  for (size_t head = 0; head < community.members.size(); ++head) {
    const VertexId u = community.members[head];
    min_degree = std::min(min_degree, degree[u]);
    for (VertexId w : graph.Neighbors(u)) {
      if (removed[w] == 0) {
        removed[w] = 2;
        community.members.push_back(w);
      }
    }
  }
  for (VertexId q : query) {
    // different component
    if (removed[q] != 2) return SearchResult::MakeNotExists();
  }
  community.min_degree = min_degree;
  telemetry.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

SearchResult GlobalCsmMultiImpl(const Graph& graph,
                                const std::vector<VertexId>& query,
                                obs::QueryTelemetry& telemetry,
                                obs::PhaseTracker& tracker,
                                QueryGuard* guard) {
  CheckQuery(graph, query);
  // Feasibility is monotone decreasing in k (Proposition 1 lifts to query
  // sets verbatim), so binary search over [0, min degree of queries].
  uint32_t lo = 0;  // k = 0 always succeeds if the queries share a
                    // component; handle the disconnected case first.
  uint32_t hi = graph.Degree(query[0]);
  for (VertexId q : query) hi = std::min(hi, graph.Degree(q));
  SearchResult best =
      GlobalCstMultiImpl(graph, query, 0, telemetry, tracker, guard);
  if (best.Interrupted()) return best;
  if (!best.Found()) {
    // Queries in different components: fall back to the first query's
    // singleton (no community spans them).
    telemetry.answer_size = 1;
    return SearchResult::MakeFound(Community{{query[0]}, 0});
  }
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo + 1) / 2;
    SearchResult attempt =
        GlobalCstMultiImpl(graph, query, mid, telemetry, tracker, guard);
    if (attempt.Interrupted()) {
      // The best answer proven before the interruption is still valid.
      return SearchResult::MakeInterrupted(attempt.status,
                                           std::move(*best));
    }
    if (attempt.Found()) {
      best = std::move(attempt);
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

#if defined(LOCS_VALIDATE)
/// A multi-vertex CSM answer needs the full query set as members except
/// in the documented disconnected-queries fallback, where the solver
/// degrades to the first query vertex's singleton: relax the membership
/// requirement to query[0] exactly in that case.
void ValidateCsmMulti(const char* solver, const Graph& graph,
                      const SearchResult& result,
                      const std::vector<VertexId>& query) {
  const bool singleton_fallback = result.Found() && query.size() > 1 &&
                                  result.community->members.size() == 1;
  if (singleton_fallback) {
    validate::DieOnViolation(solver, graph, result, query[0], 0);
  } else {
    validate::DieOnViolation(solver, graph, result, query, 0);
  }
}
#endif  // LOCS_VALIDATE

/// Shared solve epilogue: close spans, attach telemetry, project the
/// legacy stats, record.
void FinishQuery(SearchResult& result, obs::QueryTelemetry& telemetry,
                 obs::PhaseTracker& tracker, QueryStats* stats,
                 obs::Recorder& recorder) {
  tracker.Finish();
  result.telemetry = telemetry;
  if (stats != nullptr) *stats = ToQueryStats(telemetry);
  recorder.Record(telemetry);
}

}  // namespace

SearchResult GlobalCstMulti(const Graph& graph,
                            const std::vector<VertexId>& query, uint32_t k,
                            QueryStats* stats, QueryGuard* guard,
                            obs::Recorder* recorder) {
  obs::Recorder& rec =
      recorder != nullptr ? *recorder : obs::Recorder::Null();
  obs::QueryTelemetry telemetry;
  obs::PhaseTracker tracker(&telemetry, rec.timing_enabled());
  SearchResult result =
      GlobalCstMultiImpl(graph, query, k, telemetry, tracker, guard);
  FinishQuery(result, telemetry, tracker, stats, rec);
  LOCS_VALIDATE_RESULT("GlobalCstMulti", graph, result, query, k);
  return result;
}

SearchResult GlobalCsmMulti(const Graph& graph,
                            const std::vector<VertexId>& query,
                            QueryStats* stats, QueryGuard* guard,
                            obs::Recorder* recorder) {
  obs::Recorder& rec =
      recorder != nullptr ? *recorder : obs::Recorder::Null();
  obs::QueryTelemetry telemetry;
  obs::PhaseTracker tracker(&telemetry, rec.timing_enabled());
  SearchResult result =
      GlobalCsmMultiImpl(graph, query, telemetry, tracker, guard);
  FinishQuery(result, telemetry, tracker, stats, rec);
#if defined(LOCS_VALIDATE)
  ValidateCsmMulti("GlobalCsmMulti", graph, result, query);
#endif
  return result;
}

LocalMultiSolver::LocalMultiSolver(const Graph& graph,
                                   const OrderedAdjacency* ordered,
                                   const GraphFacts* facts)
    : graph_(graph),
      ordered_(ordered),
      facts_(facts),
      in_c_(graph.NumVertices()),
      enqueued_(graph.NumVertices()),
      peeled_(graph.NumVertices()),
      deg_in_c_(graph.NumVertices()),
      dsu_parent_(graph.NumVertices()),
      li_queue_(graph.NumVertices(), graph.MaxDegree() + 1) {}

VertexId LocalMultiSolver::Find(VertexId v) {
  // Parent stored as id+1; 0 (stale/default) means self.
  VertexId root = v;
  while (true) {
    const uint32_t p = dsu_parent_.Get(root);
    if (p == 0 || p == root + 1) break;
    root = p - 1;
  }
  // Path compression.
  while (v != root) {
    const uint32_t p = dsu_parent_.Get(v);
    dsu_parent_.Ref(v) = root + 1;
    v = p - 1;
  }
  return root;
}

void LocalMultiSolver::Union(VertexId a, VertexId b) {
  const VertexId ra = Find(a);
  const VertexId rb = Find(b);
  if (ra != rb) dsu_parent_.Ref(ra) = rb + 1;
}

void LocalMultiSolver::AddToC(VertexId v, uint32_t k, obs::PhaseStats& ph) {
  in_c_.Ref(v) = 1;
  c_members_.push_back(v);
  ++ph.vertices_visited;
  uint32_t incidence = 0;
  auto visit = [&](VertexId w) {
    ++ph.edges_scanned;
    if (in_c_.Get(w) != 0) {
      ++incidence;
      uint32_t& deg_w = deg_in_c_.Ref(w);
      if (++deg_w == k) --deficient_;
      Union(v, w);
      return;
    }
    if (enqueued_.Get(w) == 0) {
      enqueued_.Ref(w) = 1;
      ++ph.candidates_generated;
      li_queue_.Insert(w, 1);
    } else if (li_queue_.Contains(w)) {
      li_queue_.Increment(w);
    }
  };
  if (ordered_ != nullptr) {
    for (VertexId w : ordered_->Neighbors(v)) {
      if (graph_.Degree(w) < k) break;
      visit(w);
    }
  } else {
    for (VertexId w : graph_.Neighbors(v)) {
      if (graph_.Degree(w) >= k) visit(w);
    }
  }
  deg_in_c_.Ref(v) = incidence;
  if (incidence < k) ++deficient_;
}

bool LocalMultiSolver::QueriesConnected(
    const std::vector<VertexId>& query) {
  const VertexId root = Find(query[0]);
  for (size_t i = 1; i < query.size(); ++i) {
    if (Find(query[i]) != root) return false;
  }
  return true;
}

SearchResult LocalMultiSolver::CstMulti(const std::vector<VertexId>& query,
                                        uint32_t k, QueryStats* stats,
                                        QueryGuard* guard) {
  telemetry_.Reset();
  obs::PhaseTracker tracker(&telemetry_, recorder_->timing_enabled());
  SearchResult result = CstMultiImpl(query, k, guard, tracker);
  tracker.Finish();
  result.telemetry = telemetry_;
  if (stats != nullptr) *stats = ToQueryStats(telemetry_);
  recorder_->Record(telemetry_);
  LOCS_VALIDATE_RESULT("LocalMultiSolver::CstMulti", graph_, result, query, k);
  return result;
}

SearchResult LocalMultiSolver::CstMultiImpl(const std::vector<VertexId>& query,
                                        uint32_t k, QueryGuard* guard,
                                        obs::PhaseTracker& tracker) {
  CheckQuery(graph_, query);
  QueryGuard unlimited;
  QueryGuard& g = guard != nullptr ? *guard : unlimited;

  tracker.Enter(obs::Phase::kAdmission);
  if (k == 0 && query.size() == 1) {
    telemetry_.answer_size = 1;
    return SearchResult::MakeFound(Community{{query[0]}, 0});
  }
  for (VertexId q : query) {
    if (k > 0 && graph_.Degree(q) < k) return SearchResult::MakeNotExists();
  }
  if (facts_ != nullptr && facts_->connected &&
      k > MStarUpperBound(facts_->num_edges, facts_->num_vertices)) {
    return SearchResult::MakeNotExists();
  }
  if (g.Stopped()) {
    return SearchResult::MakeInterrupted(g.cause(), Community{{query[0]}, 0});
  }

  in_c_.NewEpoch();
  enqueued_.NewEpoch();
  deg_in_c_.NewEpoch();
  dsu_parent_.NewEpoch();
  li_queue_.NewEpoch();
  c_members_.clear();
  deficient_ = 0;

  // `charged` is relative to the whole accumulated telemetry (a CSM
  // binary search reuses one QueryTelemetry across probes), so the
  // baseline is the work already charged by earlier probes.
  uint64_t charged = telemetry_.TotalWork();
  auto spend = [&]() {
    const uint64_t total = telemetry_.TotalWork();
    const bool stop = g.Spend(total - charged);
    charged = total;
    return stop;
  };

  obs::PhaseStats& expansion = tracker.Enter(obs::Phase::kExpansion);
  for (VertexId q : query) {
    enqueued_.Ref(q) = 1;
  }
  for (VertexId q : query) {
    AddToC(q, k, expansion);
  }
  if (spend()) {
    return SearchResult::MakeInterrupted(g.cause(),
                                         HarvestFragment(query[0]));
  }
  while (deficient_ > 0 || !QueriesConnected(query)) {
    if (li_queue_.Empty()) return Fallback(query, k, tracker, g, charged);
    AddToC(li_queue_.PopMax(), k, expansion);
    if (spend()) {
      return SearchResult::MakeInterrupted(g.cause(),
                                           HarvestFragment(query[0]));
    }
  }

  // Early success: return the connected component of the query vertices
  // within C (other C vertices may be in separate DSU fragments).
  const VertexId root = Find(query[0]);
  Community community;
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId v : c_members_) {
    if (Find(v) == root) {
      community.members.push_back(v);
    }
  }
  // δ over the component only: recompute via membership-restricted count
  // (the deg_in_c_ values count edges to all of C, which may exceed the
  // component's internal degrees... they cannot: C components are
  // edge-disjoint, every in-C neighbor of a component member is unioned
  // into the same component).
  for (VertexId v : community.members) {
    min_degree = std::min(min_degree, deg_in_c_.Get(v));
  }
  community.min_degree = min_degree;
  telemetry_.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

Community LocalMultiSolver::HarvestFragment(VertexId anchor) {
  // Connected DSU fragment of `anchor` within C. Within a fragment,
  // deg_in_c_ is exact: every in-C neighbor of a member was unioned into
  // the same fragment, so no cross-fragment edges are counted.
  const VertexId root = Find(anchor);
  Community partial;
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId v : c_members_) {
    if (Find(v) == root) {
      partial.members.push_back(v);
      min_degree = std::min(min_degree, deg_in_c_.Get(v));
    }
  }
  partial.min_degree = partial.members.empty() ? 0 : min_degree;
  return partial;
}

Community LocalMultiSolver::HarvestUnpeeled(VertexId anchor) {
  // Component of `anchor` over candidates the (interrupted) peel has not
  // yet removed, with induced degrees recounted against the reached marks
  // (deg_in_c_ is stale mid-peel).
  Community partial;
  partial.members.push_back(anchor);
  peeled_.Ref(anchor) = 2;
  for (size_t head = 0; head < partial.members.size(); ++head) {
    for (VertexId w : graph_.Neighbors(partial.members[head])) {
      if (in_c_.Get(w) != 0 && peeled_.Get(w) == 0) {
        peeled_.Ref(w) = 2;
        partial.members.push_back(w);
      }
    }
  }
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId u : partial.members) {
    uint32_t degree = 0;
    for (VertexId w : graph_.Neighbors(u)) {
      degree += peeled_.Get(w) == 2 ? 1u : 0u;
    }
    min_degree = std::min(min_degree, degree);
  }
  partial.min_degree = min_degree;
  return partial;
}

SearchResult LocalMultiSolver::Fallback(const std::vector<VertexId>& query,
                                        uint32_t k,
                                        obs::PhaseTracker& tracker,
                                        QueryGuard& guard,
                                        uint64_t& charged) {
  telemetry_.used_global_fallback = true;
  obs::PhaseStats& peel_ph = tracker.Enter(obs::Phase::kCoreDecomposition);
  auto spend = [&]() {
    const uint64_t total = telemetry_.TotalWork();
    const bool stop = guard.Spend(total - charged);
    charged = total;
    return stop;
  };
  peeled_.NewEpoch();
  peel_worklist_.clear();
  for (VertexId v : c_members_) {
    if (deg_in_c_.Get(v) < k) {
      peeled_.Ref(v) = 1;
      peel_worklist_.push_back(v);
    }
  }
  for (size_t head = 0; head < peel_worklist_.size(); ++head) {
    for (VertexId w : graph_.Neighbors(peel_worklist_[head])) {
      ++peel_ph.edges_scanned;
      if (in_c_.Get(w) == 0 || peeled_.Get(w) != 0) continue;
      if (--deg_in_c_.Ref(w) < k) {
        peeled_.Ref(w) = 1;
        peel_worklist_.push_back(w);
      }
    }
    if (spend()) {
      // A peeled query vertex is an exact negative even mid-peel (peel
      // removals are sound); otherwise degrade to the first query
      // vertex's component of the survivors.
      for (VertexId q : query) {
        if (peeled_.Get(q) == 1) return SearchResult::MakeNotExists();
      }
      return SearchResult::MakeInterrupted(guard.cause(),
                                           HarvestUnpeeled(query[0]));
    }
  }
  for (VertexId q : query) {
    if (peeled_.Get(q) != 0) return SearchResult::MakeNotExists();
  }
  obs::PhaseStats& bfs_ph = tracker.Enter(obs::Phase::kConnectivity);
  Community community;
  community.members.push_back(query[0]);
  peeled_.Ref(query[0]) = 2;
  uint32_t min_degree = ~uint32_t{0};
  for (size_t head = 0; head < community.members.size(); ++head) {
    const VertexId u = community.members[head];
    min_degree = std::min(min_degree, deg_in_c_.Get(u));
    for (VertexId w : graph_.Neighbors(u)) {
      ++bfs_ph.edges_scanned;
      if (in_c_.Get(w) != 0 && peeled_.Get(w) == 0) {
        peeled_.Ref(w) = 2;
        community.members.push_back(w);
      }
    }
    if (spend()) {
      // Partial BFS set: connected, contains query[0]; recount degrees
      // against the reached marks.
      uint32_t partial_min = ~uint32_t{0};
      for (VertexId x : community.members) {
        uint32_t deg = 0;
        for (VertexId w : graph_.Neighbors(x)) {
          deg += peeled_.Get(w) == 2 ? 1u : 0u;
        }
        partial_min = std::min(partial_min, deg);
      }
      community.min_degree = partial_min;
      return SearchResult::MakeInterrupted(guard.cause(),
                                           std::move(community));
    }
  }
  for (VertexId q : query) {
    if (peeled_.Get(q) != 2) return SearchResult::MakeNotExists();
  }
  community.min_degree = min_degree;
  telemetry_.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

SearchResult LocalMultiSolver::CsmMulti(const std::vector<VertexId>& query,
                                        QueryStats* stats,
                                        QueryGuard* guard) {
  telemetry_.Reset();
  obs::PhaseTracker tracker(&telemetry_, recorder_->timing_enabled());
  SearchResult result = CsmMultiImpl(query, guard, tracker);
  tracker.Finish();
  result.telemetry = telemetry_;
  if (stats != nullptr) *stats = ToQueryStats(telemetry_);
  recorder_->Record(telemetry_);
#if defined(LOCS_VALIDATE)
  ValidateCsmMulti("LocalMultiSolver::CsmMulti", graph_, result, query);
#endif
  return result;
}

SearchResult LocalMultiSolver::CsmMultiImpl(
    const std::vector<VertexId>& query, QueryGuard* guard,
    obs::PhaseTracker& tracker) {
  CheckQuery(graph_, query);
  uint32_t hi = graph_.Degree(query[0]);
  for (VertexId q : query) hi = std::min(hi, graph_.Degree(q));
  if (facts_ != nullptr && facts_->connected) {
    hi = std::min(hi,
                  MStarUpperBound(facts_->num_edges, facts_->num_vertices));
  }
  // One shared guard spans every CST probe of the binary search, exactly
  // like wall-clock time would; the probes also share this query's
  // telemetry, so effort accumulates across the whole search.
  SearchResult best = CstMultiImpl(query, 0, guard, tracker);
  LOCS_VALIDATE_RESULT("LocalMultiSolver::CsmMulti[probe]", graph_, best,
                       query, 0u);
  if (best.Interrupted()) return best;
  if (!best.Found()) {
    telemetry_.answer_size = 1;
    return SearchResult::MakeFound(Community{{query[0]}, 0});
  }
  uint32_t lo = 0;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo + 1) / 2;
    SearchResult attempt = CstMultiImpl(query, mid, guard, tracker);
    LOCS_VALIDATE_RESULT("LocalMultiSolver::CsmMulti[probe]", graph_,
                         attempt, query, mid);
    if (attempt.Interrupted()) {
      // The best answer proven before the interruption is still valid.
      return SearchResult::MakeInterrupted(attempt.status, std::move(*best));
    }
    if (attempt.Found()) {
      best = std::move(attempt);
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

}  // namespace locs
