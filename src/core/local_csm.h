// Local search for CSM — Algorithm 4 of the paper (§5).
//
// Three phases:
//   1. Expansion from the query vertex by the `li` rule, tracking the best
//      prefix H of the visited sequence by δ(G[H]); the loop stops when the
//      γ-scaled Corollary-1 budget (Eq. 8) is exceeded, when the frontier
//      empties, or immediately when δ(G[H]) hits the Eq.-7 upper bound
//      min(deg(v0), Theorem-3 bound).
//   2. Candidate generation: C ← A (Solution 1, "CSM1") or
//      C ← Cnaive(δ(G[H])) (Solution 2, "CSM2", Theorem 7).
//   3. maxcore(G[C], v0) — the final answer.
//
// CSM2 is always exact; CSM1 is exact for γ → −∞ (Theorem 6) and trades
// quality for speed as γ grows (Figure 14).

#ifndef LOCS_CORE_LOCAL_CSM_H_
#define LOCS_CORE_LOCAL_CSM_H_

#include "core/bucket_list.h"
#include "core/common.h"
#include "core/epoch.h"
#include "core/local_cst.h"
#include "core/result.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/guard.h"

namespace locs {

/// Reusable local-CSM solver bound to one graph. Not thread-safe.
class LocalCsmSolver {
 public:
  LocalCsmSolver(const Graph& graph, const OrderedAdjacency* ordered,
                 const GraphFacts* facts);

  /// Solves CSM for `v0`: a connected community containing v0 whose
  /// minimum degree is maximal (exact for CSM2 or γ → −∞; a lower bound
  /// otherwise). CSM always has an answer (the singleton at worst), so an
  /// uninterrupted query reports kFound. On a `guard` trip the best prefix
  /// H found so far — connected, containing v0, with exact δ(G[H]) — comes
  /// back in `best_so_far`.
  SearchResult Solve(VertexId v0, const CsmOptions& options = {},
                     QueryStats* stats = nullptr, QueryGuard* guard = nullptr);

  /// Telemetry sink for completed queries; defaults to the no-op null
  /// sink. Not owned.
  void set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder != nullptr ? recorder : &obs::Recorder::Null();
  }

 private:
  SearchResult SolveImpl(VertexId v0, const CsmOptions& options,
                         QueryGuard* guard, obs::PhaseTracker& tracker);
  void AddToA(VertexId v, obs::PhaseStats& ph);
  bool NaiveCandidates(VertexId v0, uint32_t k, obs::PhaseStats& ph,
                       QueryGuard& guard, uint64_t& charged,
                       std::vector<VertexId>* out);
  bool MaxCoreOfCandidates(VertexId v0,
                           const std::vector<VertexId>& candidates,
                           QueryGuard& guard, obs::PhaseTracker& tracker,
                           Community* out);
  Community HarvestPrefix(size_t h_len, uint32_t delta_h) const;

  const Graph& graph_;
  const OrderedAdjacency* ordered_;
  const GraphFacts* facts_;
  obs::Recorder* recorder_ = &obs::Recorder::Null();
  obs::QueryTelemetry telemetry_;  // reset at the top of every Solve

  // Flattened scratch: membership and induced degree share one packed
  // cell (fresh ⟺ v ∈ A), and the frontier's own epoch stamps double as
  // the "discovered at least once" bit (erased entries leave tombstones),
  // so the line-14 inner loop costs two single-cell probes per neighbor.
  EpochU32Array a_deg_;            // fresh ⟺ in A; value = deg within G[A]
  EpochFlags bfs_seen_;            // scratch for Cnaive BFS (CSM2)
  EpochU32Array local_id_;         // candidate -> compact id + 1
  EpochBucketList frontier_;       // B, keyed by incidence to A
  std::vector<VertexId> order_;    // A in insertion order
  // Compact unsorted CSR over the candidate set, rebuilt per query for
  // the maxcore phase (allocations amortize across queries).
  std::vector<uint64_t> sub_offsets_;
  std::vector<uint32_t> sub_neighbors_;
  std::vector<uint32_t> sub_degree_;
  std::vector<uint64_t> degree_count_;  // histogram of deg_in_a values
  uint32_t max_count_touched_ = 0;
  uint32_t delta_a_ = 0;           // δ(G[A]), maintained incrementally
};

}  // namespace locs

#endif  // LOCS_CORE_LOCAL_CSM_H_
