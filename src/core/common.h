// Shared types of the community-search solvers: results, per-query
// statistics, and strategy/option enums.

#ifndef LOCS_CORE_COMMON_H_
#define LOCS_CORE_COMMON_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/types.h"
#include "obs/telemetry.h"

namespace locs {

/// Candidate-selection strategy for local CST search (§4.2.2 and §4.3.1).
enum class Strategy {
  kNaive,  ///< FIFO breadth-first selection (Algorithm 3).
  kLG,     ///< largest increment of goodness (Equation 5).
  kLI,     ///< largest number of incidence (Equation 6, Figure 5).
};

/// Human-readable strategy name ("naive", "lg", "li").
std::string_view StrategyName(Strategy strategy);

/// Per-query instrumentation, reported by every solver. These counters feed
/// Figure 13 (answer size and visited vertices) and the efficiency
/// discussions of §6.1.3.
///
/// Since the obs layer landed, this is a *derived view*: solvers account
/// into an obs::QueryTelemetry (per-phase counters + spans, carried by
/// SearchResult) and the totals are projected back here via ToQueryStats
/// for callers that only want the four classic numbers.
struct QueryStats {
  /// Vertices moved into the candidate/visited set.
  uint64_t visited_vertices = 0;
  /// Adjacency entries touched during expansion.
  uint64_t scanned_edges = 0;
  /// True when candidate generation failed to find the answer directly and
  /// the global fallback on G[C] ran (line 6 of Algorithm 2).
  bool used_global_fallback = false;
  /// Size of the returned community (0 when there is none).
  uint64_t answer_size = 0;
};

/// Projects per-phase telemetry onto the legacy QueryStats totals. The
/// projection is exact: every counter increment in the solvers lands in
/// exactly one phase, so the sums equal what the pre-obs counters held.
QueryStats ToQueryStats(const obs::QueryTelemetry& telemetry);

/// A community-search answer: the member set (parent-graph vertex ids) and
/// its goodness δ(G[H]).
struct Community {
  std::vector<VertexId> members;
  uint32_t min_degree = 0;
};

/// Options controlling local CST search.
struct CstOptions {
  Strategy strategy = Strategy::kLI;
  /// Expand through a degree-descending OrderedAdjacency when one is
  /// supplied (§4.3.2). Ignored if the caller passes no ordering.
  bool use_ordered_adjacency = true;
};

/// Candidate-set rule for the third step of local CSM (§5.2).
enum class CsmCandidateRule {
  kFromVisited,  ///< Solution 1 (CSM1): C ← A, quality tunable via γ.
  kFromNaive,    ///< Solution 2 (CSM2): C ← Cnaive(δ(G[H])), always exact.
};

/// Options controlling local CSM search (Algorithm 4).
struct CsmOptions {
  /// Search-space control of Equation 8: γ → −∞ disables the budget
  /// (exhaustive first phase), γ = 0 uses the exact Corollary-1 bound,
  /// larger γ shrinks the budget exponentially.
  double gamma = 0.0;
  CsmCandidateRule candidate_rule = CsmCandidateRule::kFromNaive;
  bool use_ordered_adjacency = true;
};

}  // namespace locs

#endif  // LOCS_CORE_COMMON_H_
