#include "core/global.h"

#include <algorithm>
#include <queue>

#include "graph/subgraph.h"
#include "util/bucket_queue.h"

namespace locs {

std::optional<Community> GlobalCst(const Graph& graph, VertexId v0,
                                   uint32_t k, QueryStats* stats) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  QueryStats local_stats;
  QueryStats& st = stats != nullptr ? *stats : local_stats;
  st = QueryStats{};
  st.visited_vertices = graph.NumVertices();
  st.scanned_edges = 2 * graph.NumEdges();

  // Iteratively delete vertices of degree < k (Lemma 3), then return the
  // connected component of v0 among the survivors.
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  std::vector<VertexId> worklist;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < k) {
      removed[v] = 1;
      worklist.push_back(v);
    }
  }
  for (size_t head = 0; head < worklist.size(); ++head) {
    const VertexId v = worklist[head];
    for (VertexId w : graph.Neighbors(v)) {
      if (removed[w] == 0 && --degree[w] < k) {
        removed[w] = 1;
        worklist.push_back(w);
      }
    }
  }
  if (removed[v0] != 0) return std::nullopt;

  // BFS within the survivors.
  Community community;
  community.members.push_back(v0);
  removed[v0] = 2;  // 2 = visited
  uint32_t min_degree = degree[v0];
  for (size_t head = 0; head < community.members.size(); ++head) {
    const VertexId u = community.members[head];
    min_degree = std::min(min_degree, degree[u]);
    for (VertexId w : graph.Neighbors(u)) {
      if (removed[w] == 0) {
        removed[w] = 2;
        community.members.push_back(w);
      }
    }
  }
  community.min_degree = min_degree;
  st.answer_size = community.members.size();
  return community;
}

Community GlobalCsm(const Graph& graph, VertexId v0, QueryStats* stats) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  QueryStats local_stats;
  QueryStats& st = stats != nullptr ? *stats : local_stats;
  st = QueryStats{};
  st.visited_vertices = graph.NumVertices();
  st.scanned_edges = 2 * graph.NumEdges();

  const CoreDecomposition cores = ComputeCores(graph);
  Community community;
  community.members = MaxCoreComponentOf(graph, cores, v0);
  community.min_degree = cores.core[v0];
  st.answer_size = community.members.size();
  return community;
}

Community GreedyGlobalCsm(const Graph& graph, VertexId v0) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  const VertexId n = graph.NumVertices();
  // Literal greedy deletion with a lazy binary heap — deliberately written
  // independently from the bucket-based core decomposition so the two can
  // validate each other.
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> alive(n, 1);
  using Entry = std::pair<uint32_t, VertexId>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    heap.emplace(degree[v], v);
  }
  // removal_step[v]: index at which v was deleted; kept alive => ~0.
  std::vector<uint64_t> removal_step(n, ~uint64_t{0});
  uint64_t step = 0;
  uint32_t best_delta = 0;
  uint64_t best_step = 0;  // first step at which δ(G_i) == best_delta
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (alive[v] == 0 || d != degree[v]) continue;  // stale entry
    // δ of the current remaining graph is d (v is a minimum-degree vertex).
    if (d > best_delta || step == 0) {
      best_delta = d;
      best_step = step;
    }
    if (v == v0) break;  // v0 is next to be deleted: stop (§3.2).
    alive[v] = 0;
    removal_step[v] = step++;
    for (VertexId w : graph.Neighbors(v)) {
      if (alive[w] != 0) {
        heap.emplace(--degree[w], w);
      }
    }
  }
  // G_{best_step} contains every vertex not yet deleted before best_step.
  std::vector<uint8_t> in_gi(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (removal_step[v] >= best_step) in_gi[v] = 1;
  }
  // Component of v0 within G_{best_step}.
  Community community;
  community.members.push_back(v0);
  in_gi[v0] = 2;
  for (size_t head = 0; head < community.members.size(); ++head) {
    for (VertexId w : graph.Neighbors(community.members[head])) {
      if (in_gi[w] == 1) {
        in_gi[w] = 2;
        community.members.push_back(w);
      }
    }
  }
  community.min_degree = MinDegreeOfInduced(graph, community.members);
  return community;
}

}  // namespace locs
