#include "core/global.h"

#include <algorithm>
#include <queue>

#include "core/validate.h"
#include "graph/subgraph.h"
#include "util/bucket_queue.h"

namespace locs {

namespace {

/// BFS component of v0 over vertices with mark[v] == 0, stamping reached
/// vertices with 2; the induced minimum degree is recounted exactly
/// against the reached set, so the result is valid even when `degree` is
/// mid-peel stale.
Community HarvestComponent(const Graph& graph, VertexId v0,
                           std::vector<uint8_t>& mark) {
  Community community;
  community.members.push_back(v0);
  mark[v0] = 2;
  for (size_t head = 0; head < community.members.size(); ++head) {
    for (VertexId w : graph.Neighbors(community.members[head])) {
      if (mark[w] == 0) {
        mark[w] = 2;
        community.members.push_back(w);
      }
    }
  }
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId u : community.members) {
    uint32_t degree = 0;
    for (VertexId w : graph.Neighbors(u)) degree += mark[w] == 2 ? 1u : 0u;
    min_degree = std::min(min_degree, degree);
  }
  community.min_degree = community.members.size() == 0 ? 0 : min_degree;
  return community;
}

SearchResult GlobalCstImpl(const Graph& graph, VertexId v0, uint32_t k,
                           obs::QueryTelemetry& telemetry,
                           obs::PhaseTracker& tracker, QueryGuard* guard) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  // The global method always touches the whole graph: charge the peel
  // phase its full |V| + 2|E| cost up front (the historical accounting).
  obs::PhaseStats& peel_ph = tracker.Enter(obs::Phase::kCoreDecomposition);
  peel_ph.vertices_visited = graph.NumVertices();
  peel_ph.edges_scanned = 2 * graph.NumEdges();
  QueryGuard unlimited;
  QueryGuard& g = guard != nullptr ? *guard : unlimited;
  if (g.Stopped()) {
    return SearchResult::MakeInterrupted(g.cause(), Community{{v0}, 0});
  }

  // Iteratively delete vertices of degree < k (Lemma 3), then return the
  // connected component of v0 among the survivors.
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  std::vector<VertexId> worklist;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < k) {
      removed[v] = 1;
      worklist.push_back(v);
    }
  }
  if (g.Spend(n)) {
    if (removed[v0] != 0) return SearchResult::MakeNotExists();
    return SearchResult::MakeInterrupted(g.cause(),
                                         HarvestComponent(graph, v0, removed));
  }
  for (size_t head = 0; head < worklist.size(); ++head) {
    const VertexId v = worklist[head];
    for (VertexId w : graph.Neighbors(v)) {
      if (removed[w] == 0 && --degree[w] < k) {
        removed[w] = 1;
        worklist.push_back(w);
      }
    }
    if (g.Spend(1 + graph.Degree(v))) {
      // Removals are sound mid-peel, so a removed v0 stays an exact
      // negative; otherwise degrade to v0's component of the survivors.
      if (removed[v0] != 0) return SearchResult::MakeNotExists();
      return SearchResult::MakeInterrupted(
          g.cause(), HarvestComponent(graph, v0, removed));
    }
  }
  if (removed[v0] != 0) return SearchResult::MakeNotExists();

  // BFS within the survivors.
  tracker.Enter(obs::Phase::kConnectivity);
  Community community;
  community.members.push_back(v0);
  removed[v0] = 2;  // 2 = visited
  uint32_t min_degree = degree[v0];
  for (size_t head = 0; head < community.members.size(); ++head) {
    const VertexId u = community.members[head];
    min_degree = std::min(min_degree, degree[u]);
    for (VertexId w : graph.Neighbors(u)) {
      if (removed[w] == 0) {
        removed[w] = 2;
        community.members.push_back(w);
      }
    }
    if (g.Spend(1 + graph.Degree(u))) {
      // Partial BFS set: connected, contains v0; recount induced degrees
      // against the reached marks.
      uint32_t partial_min = ~uint32_t{0};
      for (VertexId x : community.members) {
        uint32_t deg = 0;
        for (VertexId w : graph.Neighbors(x)) {
          deg += removed[w] == 2 ? 1u : 0u;
        }
        partial_min = std::min(partial_min, deg);
      }
      community.min_degree = partial_min;
      return SearchResult::MakeInterrupted(g.cause(), std::move(community));
    }
  }
  community.min_degree = min_degree;
  telemetry.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

SearchResult GlobalCsmImpl(const Graph& graph, VertexId v0,
                           obs::QueryTelemetry& telemetry,
                           obs::PhaseTracker& tracker, QueryGuard* guard) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  obs::PhaseStats& core_ph = tracker.Enter(obs::Phase::kCoreDecomposition);
  if (guard != nullptr) {
    // Poll once before committing to the indivisible decomposition, and
    // charge its full cost so nested budgets stay honest. An interrupt
    // here still books the full |V| + 2|E| (the historical accounting —
    // the whole pass was charged, so the whole pass is reported).
    if (guard->Spend(0)) {
      core_ph.vertices_visited = graph.NumVertices();
      core_ph.edges_scanned = 2 * graph.NumEdges();
      return SearchResult::MakeInterrupted(guard->cause(),
                                           Community{{v0}, 0});
    }
    guard->Spend(graph.NumVertices() + 2 * graph.NumEdges());
  }

  // The peel itself counts exactly |V| pops and 2|E| neighbor scans, so
  // the completed-path totals match the historical up-front numbers.
  const CoreDecomposition cores = ComputeCores(graph, &core_ph);
  tracker.Enter(obs::Phase::kConnectivity);
  Community community;
  community.members = MaxCoreComponentOf(graph, cores, v0);
  community.min_degree = cores.core[v0];
  telemetry.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

/// Shared solve epilogue for the global free functions: close the spans,
/// attach telemetry to the result, project the legacy stats, record.
void FinishQuery(SearchResult& result, obs::QueryTelemetry& telemetry,
                 obs::PhaseTracker& tracker, QueryStats* stats,
                 obs::Recorder& recorder) {
  tracker.Finish();
  result.telemetry = telemetry;
  if (stats != nullptr) *stats = ToQueryStats(telemetry);
  recorder.Record(telemetry);
}

}  // namespace

SearchResult GlobalCst(const Graph& graph, VertexId v0, uint32_t k,
                       QueryStats* stats, QueryGuard* guard,
                       obs::Recorder* recorder) {
  obs::Recorder& rec =
      recorder != nullptr ? *recorder : obs::Recorder::Null();
  obs::QueryTelemetry telemetry;
  obs::PhaseTracker tracker(&telemetry, rec.timing_enabled());
  SearchResult result = GlobalCstImpl(graph, v0, k, telemetry, tracker, guard);
  FinishQuery(result, telemetry, tracker, stats, rec);
  LOCS_VALIDATE_RESULT("GlobalCst", graph, result, v0, k);
  return result;
}

SearchResult GlobalCsm(const Graph& graph, VertexId v0, QueryStats* stats,
                       QueryGuard* guard, obs::Recorder* recorder) {
  obs::Recorder& rec =
      recorder != nullptr ? *recorder : obs::Recorder::Null();
  obs::QueryTelemetry telemetry;
  obs::PhaseTracker tracker(&telemetry, rec.timing_enabled());
  SearchResult result = GlobalCsmImpl(graph, v0, telemetry, tracker, guard);
  FinishQuery(result, telemetry, tracker, stats, rec);
  LOCS_VALIDATE_RESULT("GlobalCsm", graph, result, v0, 0);
  return result;
}

Community GreedyGlobalCsm(const Graph& graph, VertexId v0) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  const VertexId n = graph.NumVertices();
  // Literal greedy deletion with a lazy binary heap — deliberately written
  // independently from the bucket-based core decomposition so the two can
  // validate each other.
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> alive(n, 1);
  using Entry = std::pair<uint32_t, VertexId>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    heap.emplace(degree[v], v);
  }
  // removal_step[v]: index at which v was deleted; kept alive => ~0.
  std::vector<uint64_t> removal_step(n, ~uint64_t{0});
  uint64_t step = 0;
  uint32_t best_delta = 0;
  uint64_t best_step = 0;  // first step at which δ(G_i) == best_delta
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (alive[v] == 0 || d != degree[v]) continue;  // stale entry
    // δ of the current remaining graph is d (v is a minimum-degree vertex).
    if (d > best_delta || step == 0) {
      best_delta = d;
      best_step = step;
    }
    if (v == v0) break;  // v0 is next to be deleted: stop (§3.2).
    alive[v] = 0;
    removal_step[v] = step++;
    for (VertexId w : graph.Neighbors(v)) {
      if (alive[w] != 0) {
        heap.emplace(--degree[w], w);
      }
    }
  }
  // G_{best_step} contains every vertex not yet deleted before best_step.
  std::vector<uint8_t> in_gi(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (removal_step[v] >= best_step) in_gi[v] = 1;
  }
  // Component of v0 within G_{best_step}.
  Community community;
  community.members.push_back(v0);
  in_gi[v0] = 2;
  for (size_t head = 0; head < community.members.size(); ++head) {
    for (VertexId w : graph.Neighbors(community.members[head])) {
      if (in_gi[w] == 1) {
        in_gi[w] = 2;
        community.members.push_back(w);
      }
    }
  }
  community.min_degree = MinDegreeOfInduced(graph, community.members);
  LOCS_VALIDATE_RESULT("GreedyGlobalCsm", graph,
                       SearchResult::MakeFound(community), v0, 0);
  return community;
}

}  // namespace locs
