#include "core/common.h"

namespace locs {

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kLG:
      return "lg";
    case Strategy::kLI:
      return "li";
  }
  return "unknown";
}

}  // namespace locs
