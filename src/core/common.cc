#include "core/common.h"

namespace locs {

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kLG:
      return "lg";
    case Strategy::kLI:
      return "li";
  }
  return "unknown";
}

QueryStats ToQueryStats(const obs::QueryTelemetry& telemetry) {
  QueryStats stats;
  stats.visited_vertices = telemetry.TotalVisited();
  stats.scanned_edges = telemetry.TotalScanned();
  stats.used_global_fallback = telemetry.used_global_fallback;
  stats.answer_size = telemetry.answer_size;
  return stats;
}

}  // namespace locs
