// CommunitySearcher — the high-level public API of the library.
//
// Owns a graph plus every precomputation the paper's solvers use (whole-
// graph facts for the Theorem-3/5 bounds, the §4.3.2 degree-ordered
// adjacency) and exposes the four solver entry points: local/global CST and
// local/global CSM.
//
// Typical use:
//   CommunitySearcher searcher(std::move(graph));
//   auto community = searcher.Cst(v, 5);            // CST(5), local search
//   auto best = searcher.Csm(v);                    // best community
//
// The searcher is stateful scratch-wise (solvers reuse epoch-stamped
// buffers) and therefore not thread-safe; create one per thread.

#ifndef LOCS_CORE_SEARCHER_H_
#define LOCS_CORE_SEARCHER_H_

#include <memory>

#include "core/common.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "core/multi.h"
#include "core/result.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/guard.h"

namespace locs {

/// High-level community search over one graph.
class CommunitySearcher {
 public:
  struct Options {
    /// Build the degree-descending adjacency at construction (§4.3.2).
    /// Costs one sort pass over the adjacency; per-query expansion then
    /// prunes low-degree tails. Disable to reproduce the "non-opt" rows of
    /// Figure 7.
    bool build_ordered_adjacency = true;
    /// CstAdaptive dispatches to global search when the estimated
    /// |V≥k| / |V| ratio (Theorem 4 machinery) exceeds this fraction —
    /// the regime where the paper observes global search competitive
    /// (small k, §6.1.3).
    double adaptive_global_fraction = 0.35;
  };

  // (Two overloads rather than a defaulted argument: a nested struct's
  // default member initializers cannot be used as a default argument
  // inside the enclosing class definition.)
  explicit CommunitySearcher(Graph graph)
      : CommunitySearcher(std::move(graph), Options()) {}
  CommunitySearcher(Graph graph, const Options& options);

  CommunitySearcher(const CommunitySearcher&) = delete;
  CommunitySearcher& operator=(const CommunitySearcher&) = delete;

  const Graph& graph() const { return graph_; }
  const GraphFacts& facts() const { return facts_; }
  bool has_ordered_adjacency() const { return ordered_ != nullptr; }
  /// Milliseconds spent building the ordered adjacency (the offline
  /// precomputation cost column of Table 2); 0 when disabled.
  double ordering_build_ms() const { return ordering_build_ms_; }

  /// Local CST(k) (§4). kNotExists iff no solution exists; an optional
  /// `guard` can interrupt the query with a graceful partial answer (see
  /// core/result.h).
  SearchResult Cst(VertexId v0, uint32_t k, const CstOptions& options = {},
                   QueryStats* stats = nullptr, QueryGuard* guard = nullptr);

  /// Global CST(k) (§3) — the baseline every figure compares against.
  SearchResult CstGlobal(VertexId v0, uint32_t k,
                         QueryStats* stats = nullptr,
                         QueryGuard* guard = nullptr);

  /// Adaptive CST(k) (extension): local search when the degree
  /// distribution predicts a small candidate universe |V≥k|, global
  /// search otherwise. Always exact; typically within a few percent of
  /// the better of the two fixed strategies at every k.
  SearchResult CstAdaptive(VertexId v0, uint32_t k,
                           const CstOptions& options = {},
                           QueryStats* stats = nullptr,
                           QueryGuard* guard = nullptr);

  /// Fraction of vertices with degree >= k (exact, from the degree
  /// histogram computed at construction) — the dispatch signal of
  /// CstAdaptive.
  double DegreeTailFraction(uint32_t k) const;

  /// Local CSM (Algorithm 4). Exact when options select CSM2 or γ → −∞.
  SearchResult Csm(VertexId v0, const CsmOptions& options = {},
                   QueryStats* stats = nullptr, QueryGuard* guard = nullptr);

  /// Global CSM (§3.2): greedy minimum-degree deletion via core
  /// decomposition.
  SearchResult CsmGlobal(VertexId v0, QueryStats* stats = nullptr,
                         QueryGuard* guard = nullptr);

  /// Multi-vertex CST(k) (extension; see core/multi.h): a connected
  /// community containing every query vertex with δ >= k.
  SearchResult CstMulti(const std::vector<VertexId>& query, uint32_t k,
                        QueryStats* stats = nullptr,
                        QueryGuard* guard = nullptr);

  /// Multi-vertex CSM (extension): maximizes δ over communities spanning
  /// the whole query set.
  SearchResult CsmMulti(const std::vector<VertexId>& query,
                        QueryStats* stats = nullptr,
                        QueryGuard* guard = nullptr);

  /// Telemetry sink shared by every solver behind this facade (local and
  /// global, single- and multi-vertex). Defaults to the no-op null sink;
  /// pass nullptr to restore it. Not owned.
  void set_recorder(obs::Recorder* recorder);

 private:
  Graph graph_;
  GraphFacts facts_;
  double adaptive_global_fraction_;
  /// tail_count_[k]: number of vertices with degree >= k.
  std::vector<uint64_t> tail_count_;
  // Declared before ordered_: MaybeBuildOrdered writes the timing through
  // a pointer during ordered_'s initialization.
  double ordering_build_ms_ = 0.0;
  std::unique_ptr<OrderedAdjacency> ordered_;
  obs::Recorder* recorder_ = &obs::Recorder::Null();
  LocalCstSolver cst_solver_;
  LocalCsmSolver csm_solver_;
  LocalMultiSolver multi_solver_;
};

}  // namespace locs

#endif  // LOCS_CORE_SEARCHER_H_
