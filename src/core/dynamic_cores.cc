#include "core/dynamic_cores.h"

#include <algorithm>

#include "core/kcore.h"
#include "graph/builder.h"

namespace locs {

DynamicCores::DynamicCores(VertexId num_vertices)
    : adjacency_(num_vertices),
      core_(num_vertices, 0),
      visit_stamp_(num_vertices, 0),
      drop_stamp_(num_vertices, 0),
      support_(num_vertices, 0) {}

DynamicCores::DynamicCores(const Graph& graph)
    : DynamicCores(graph.NumVertices()) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto nbrs = graph.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = graph.NumEdges();
  core_ = ComputeCores(graph).core;
}

uint32_t DynamicCores::Degeneracy() const {
  uint32_t best = 0;
  for (uint32_t c : core_) best = std::max(best, c);
  return best;
}

bool DynamicCores::HasEdge(VertexId u, VertexId v) const {
  LOCS_CHECK_LT(u, NumVertices());
  LOCS_CHECK_LT(v, NumVertices());
  const auto& list =
      Degree(u) <= Degree(v) ? adjacency_[u] : adjacency_[v];
  const VertexId target = Degree(u) <= Degree(v) ? v : u;
  return std::find(list.begin(), list.end(), target) != list.end();
}

void DynamicCores::BumpStamp() { ++stamp_; }

std::vector<VertexId> DynamicCores::CollectSubcore(
    const std::vector<VertexId>& roots, uint32_t k) {
  std::vector<VertexId> subcore;
  for (VertexId r : roots) {
    if (core_[r] != k || visit_stamp_[r] == stamp_) continue;
    visit_stamp_[r] = stamp_;
    subcore.push_back(r);
  }
  for (size_t head = 0; head < subcore.size(); ++head) {
    const VertexId w = subcore[head];
    for (VertexId x : adjacency_[w]) {
      if (core_[x] == k && visit_stamp_[x] != stamp_) {
        visit_stamp_[x] = stamp_;
        subcore.push_back(x);
      }
    }
  }
  return subcore;
}

bool DynamicCores::AddEdge(VertexId u, VertexId v) {
  LOCS_CHECK_LT(u, NumVertices());
  LOCS_CHECK_LT(v, NumVertices());
  if (u == v || HasEdge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;

  const uint32_t k = std::min(core_[u], core_[v]);
  BumpStamp();
  // Candidates: the K-subcore around the endpoint(s) at level K. Only
  // they can rise to K+1 (by exactly 1).
  const std::vector<VertexId> subcore = CollectSubcore({u, v}, k);
  // Support of a candidate: neighbors already above K plus fellow
  // candidates (which may rise together).
  for (VertexId w : subcore) {
    uint32_t s = 0;
    for (VertexId x : adjacency_[w]) {
      s += core_[x] > k || (core_[x] == k && visit_stamp_[x] == stamp_);
    }
    support_[w] = s;
  }
  // Peel candidates that cannot reach degree K+1 in the hypothetical
  // (K+1)-core; survivors are promoted.
  std::vector<VertexId> worklist;
  for (VertexId w : subcore) {
    if (support_[w] <= k) {
      drop_stamp_[w] = stamp_;
      worklist.push_back(w);
    }
  }
  for (size_t head = 0; head < worklist.size(); ++head) {
    const VertexId w = worklist[head];
    for (VertexId x : adjacency_[w]) {
      if (core_[x] == k && visit_stamp_[x] == stamp_ &&
          drop_stamp_[x] != stamp_) {
        if (--support_[x] <= k) {
          drop_stamp_[x] = stamp_;
          worklist.push_back(x);
        }
      }
    }
  }
  for (VertexId w : subcore) {
    if (drop_stamp_[w] != stamp_) core_[w] = k + 1;
  }
  return true;
}

bool DynamicCores::RemoveEdge(VertexId u, VertexId v) {
  LOCS_CHECK_LT(u, NumVertices());
  LOCS_CHECK_LT(v, NumVertices());
  if (u == v || !HasEdge(u, v)) return false;
  auto drop = [this](VertexId a, VertexId b) {
    auto& list = adjacency_[a];
    const auto it = std::find(list.begin(), list.end(), b);
    *it = list.back();
    list.pop_back();
  };
  drop(u, v);
  drop(v, u);
  --num_edges_;

  const uint32_t k = std::min(core_[u], core_[v]);
  if (k == 0) return true;  // level-0 vertices cannot sink lower
  BumpStamp();
  // Only K-level vertices in the endpoint subcores can sink (to K-1).
  const std::vector<VertexId> subcore = CollectSubcore({u, v}, k);
  for (VertexId w : subcore) {
    uint32_t s = 0;
    for (VertexId x : adjacency_[w]) s += core_[x] >= k;
    support_[w] = s;
  }
  std::vector<VertexId> worklist;
  for (VertexId w : subcore) {
    if (support_[w] < k) {
      drop_stamp_[w] = stamp_;
      worklist.push_back(w);
    }
  }
  for (size_t head = 0; head < worklist.size(); ++head) {
    const VertexId w = worklist[head];
    core_[w] = k - 1;
    for (VertexId x : adjacency_[w]) {
      // Same-level subcore members lose support when w sinks. (Their
      // subcore membership is implied: a K-level neighbor of a subcore
      // vertex is itself reachable, hence visited.)
      if (core_[x] == k && visit_stamp_[x] == stamp_ &&
          drop_stamp_[x] != stamp_) {
        if (--support_[x] < k) {
          drop_stamp_[x] = stamp_;
          worklist.push_back(x);
        }
      }
    }
  }
  return true;
}

Graph DynamicCores::Freeze() const {
  GraphBuilder builder(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (VertexId w : adjacency_[v]) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  return builder.Build();
}

}  // namespace locs
