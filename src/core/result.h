// SearchResult — the uniform solver answer type with a termination
// taxonomy.
//
// Every solver family (local/global CST, CSM, mCST, multi-vertex) reports
// not just "answer or no answer" but *why* the query ended, and on
// interruption carries the best connected community found so far. This is
// the graceful-degradation contract of the serving layer: a query that
// blows past its deadline or work budget still yields a well-defined
// partial answer instead of an indistinguishable std::nullopt.

#ifndef LOCS_CORE_RESULT_H_
#define LOCS_CORE_RESULT_H_

#include <optional>
#include <utility>

#include "core/common.h"
#include "obs/telemetry.h"
#include "util/guard.h"

namespace locs {

/// A solver answer plus its termination status.
///
/// Invariants:
///   - `community` is engaged iff `status == kFound`;
///   - on an interrupted query (`Interrupted()` true), `best_so_far` is a
///     valid *connected* community containing the (first) query vertex
///     with `min_degree` equal to its achieved induced minimum degree —
///     it just may not meet the requested threshold k or be optimal;
///   - `kNotExists` is exact: the solver proved no answer exists.
///
/// The optional-style accessors (`has_value`, `operator*`, `operator->`)
/// view the *qualifying* answer only, mirroring the historical
/// `std::optional<Community>` API.
struct SearchResult {
  Termination status = Termination::kNotExists;
  std::optional<Community> community;
  Community best_so_far;
  /// Per-phase effort accounting for this query (see obs/telemetry.h).
  /// Always filled by the solver wrappers; durations are nonzero only
  /// when the attached obs::Recorder enables timing.
  obs::QueryTelemetry telemetry;

  bool Found() const { return status == Termination::kFound; }
  bool Interrupted() const {
    return status == Termination::kDeadline ||
           status == Termination::kBudgetExhausted ||
           status == Termination::kCancelled;
  }

  // std::optional-compatible view of the qualifying answer.
  bool has_value() const { return community.has_value(); }
  explicit operator bool() const { return community.has_value(); }
  Community& operator*() { return *community; }
  const Community& operator*() const { return *community; }
  Community* operator->() { return &*community; }
  const Community* operator->() const { return &*community; }
  Community& value() { return community.value(); }
  const Community& value() const { return community.value(); }

  /// Best available answer: the solution when found, otherwise the
  /// partial `best_so_far` (empty for kNotExists).
  const Community& Best() const {
    return community.has_value() ? *community : best_so_far;
  }

  static SearchResult MakeFound(Community answer) {
    SearchResult result;
    result.status = Termination::kFound;
    result.community = std::move(answer);
    return result;
  }
  static SearchResult MakeNotExists() { return SearchResult{}; }
  static SearchResult MakeInterrupted(Termination cause, Community partial) {
    SearchResult result;
    result.status = cause;
    result.best_so_far = std::move(partial);
    return result;
  }
};

}  // namespace locs

#endif  // LOCS_CORE_RESULT_H_
