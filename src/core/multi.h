// Multi-vertex community search — an extension beyond the paper.
//
// The paper (§7) frames its problem as the single-vertex special case of
// Sozio & Gionis's community search, which asks for a community containing
// a *set* of query vertices. This module generalizes both solvers:
//
//   CstMulti(Q, k): connected H ⊇ Q with δ(G[H]) >= k, or nullopt;
//   CsmMulti(Q):    connected H ⊇ Q maximizing δ(G[H]).
//
// The local CST framework carries over: candidate generation seeds C with
// all of Q and expands by the li rule; early success additionally needs
// G[C] to connect the query vertices, tracked incrementally with an
// epoch-stamped union-find. CSM reduces to CST by binary search on k
// (Propositions 1-2 make feasibility monotone in k).

#ifndef LOCS_CORE_MULTI_H_
#define LOCS_CORE_MULTI_H_

#include "core/bucket_list.h"
#include "core/common.h"
#include "core/epoch.h"
#include "core/local_cst.h"
#include "core/result.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/guard.h"

namespace locs {

/// Global multi-vertex CST(k): peel vertices of degree < k, then require
/// every query vertex to survive in one common component. O(|V| + |E|).
/// The peel is one indivisible pass: the guard is consulted on entry and
/// charged the whole cost but cannot interrupt the pass itself.
SearchResult GlobalCstMulti(const Graph& graph,
                            const std::vector<VertexId>& query, uint32_t k,
                            QueryStats* stats = nullptr,
                            QueryGuard* guard = nullptr,
                            obs::Recorder* recorder = nullptr);

/// Global multi-vertex CSM: the largest k for which GlobalCstMulti
/// succeeds, found by binary search (O((|V| + |E|) log δ*)). A shared
/// guard spans all probes; an interrupted search reports the best
/// community proven so far.
SearchResult GlobalCsmMulti(const Graph& graph,
                            const std::vector<VertexId>& query,
                            QueryStats* stats = nullptr,
                            QueryGuard* guard = nullptr,
                            obs::Recorder* recorder = nullptr);

/// Reusable local multi-vertex solver. Not thread-safe.
class LocalMultiSolver {
 public:
  LocalMultiSolver(const Graph& graph, const OrderedAdjacency* ordered,
                   const GraphFacts* facts);

  /// Local CST(k) for a query set (li selection). Exact: kNotExists iff no
  /// solution exists. Query vertices must be distinct. On a guard trip the
  /// best-so-far is the connected fragment containing the *first* query
  /// vertex (a multi-seed candidate set may still be disconnected).
  SearchResult CstMulti(const std::vector<VertexId>& query, uint32_t k,
                        QueryStats* stats = nullptr,
                        QueryGuard* guard = nullptr);

  /// Local CSM for a query set via binary search over CstMulti. All probes
  /// charge one shared guard (work and wall-clock accumulate across the
  /// whole search); interruption reports the best community proven so far.
  SearchResult CsmMulti(const std::vector<VertexId>& query,
                        QueryStats* stats = nullptr,
                        QueryGuard* guard = nullptr);

  /// Telemetry sink for completed queries; defaults to the no-op null
  /// sink. Not owned. A CSM query records once (the binary-search probes
  /// accumulate into one QueryTelemetry), not once per probe.
  void set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder != nullptr ? recorder : &obs::Recorder::Null();
  }

 private:
  SearchResult CstMultiImpl(const std::vector<VertexId>& query, uint32_t k,
                            QueryGuard* guard, obs::PhaseTracker& tracker);
  SearchResult CsmMultiImpl(const std::vector<VertexId>& query,
                            QueryGuard* guard, obs::PhaseTracker& tracker);
  VertexId Find(VertexId v);
  void Union(VertexId a, VertexId b);
  void AddToC(VertexId v, uint32_t k, obs::PhaseStats& ph);
  SearchResult Fallback(const std::vector<VertexId>& query, uint32_t k,
                        obs::PhaseTracker& tracker, QueryGuard& guard,
                        uint64_t& charged);
  bool QueriesConnected(const std::vector<VertexId>& query);
  Community HarvestFragment(VertexId anchor);
  Community HarvestUnpeeled(VertexId anchor);

  const Graph& graph_;
  const OrderedAdjacency* ordered_;
  const GraphFacts* facts_;
  obs::Recorder* recorder_ = &obs::Recorder::Null();
  obs::QueryTelemetry telemetry_;  // reset per top-level query only

  EpochArray<uint8_t> in_c_;
  EpochArray<uint8_t> enqueued_;
  EpochArray<uint8_t> peeled_;
  EpochArray<uint32_t> deg_in_c_;
  EpochArray<uint32_t> dsu_parent_;  // vertex id + 1; 0 = self
  EpochBucketList li_queue_;
  std::vector<VertexId> c_members_;
  std::vector<VertexId> peel_worklist_;
  uint64_t deficient_ = 0;
};

}  // namespace locs

#endif  // LOCS_CORE_MULTI_H_
