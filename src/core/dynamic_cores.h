// Incremental k-core maintenance under edge insertions and deletions —
// an extension beyond the paper.
//
// Core numbers are exactly the CSM optima (m*(G, v) = core(v), Lemma 4),
// so maintaining them incrementally turns every "best community goodness"
// query on an evolving graph into an O(1) lookup. The implementation
// follows the classic traversal/subcore insight (Sariyüce et al., 2013;
// Li, Yu & Mao, 2014):
//
//   * inserting (u, v) can only raise cores, by at most 1, and only for
//     vertices with core == K = min(core(u), core(v)) inside the subcore
//     (the K-connected region) of the lower endpoint;
//   * deleting (u, v) can only lower cores, by at most 1, and only inside
//     the same region.
//
// Each update therefore re-peels just that subcore instead of the whole
// graph. Differentially fuzz-tested against full recomputation.

#ifndef LOCS_CORE_DYNAMIC_CORES_H_
#define LOCS_CORE_DYNAMIC_CORES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace locs {

/// An evolving simple graph together with always-current core numbers.
class DynamicCores {
 public:
  explicit DynamicCores(VertexId num_vertices);

  /// Adopts an existing graph (cores computed once at O(|V| + |E|)).
  explicit DynamicCores(const Graph& graph);

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  /// Current neighbors of v (unordered).
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[v];
  }

  /// Current core number of v — equals m*(G, v) at all times.
  uint32_t CoreNumber(VertexId v) const { return core_[v]; }

  /// Current degeneracy (max core number; 0 on an empty graph).
  uint32_t Degeneracy() const;

  bool HasEdge(VertexId u, VertexId v) const;

  /// Inserts the edge and updates affected core numbers. Returns false
  /// (no-op) for self-loops and duplicates.
  bool AddEdge(VertexId u, VertexId v);

  /// Removes the edge and updates affected core numbers. Returns false if
  /// the edge is absent.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Materializes an immutable snapshot.
  Graph Freeze() const;

 private:
  /// Collects the K-subcore reachable from `roots`: vertices with
  /// core == K connected to a root through core == K vertices. Marks
  /// visited_ with the current stamp.
  std::vector<VertexId> CollectSubcore(const std::vector<VertexId>& roots,
                                       uint32_t k);
  /// #neighbors of w that can support a core of `k`: core > k, or
  /// core == k and inside the candidate set.
  uint32_t SupportWithin(VertexId w, uint32_t k);

  void BumpStamp();

  std::vector<std::vector<VertexId>> adjacency_;
  std::vector<uint32_t> core_;
  uint64_t num_edges_ = 0;

  // Scratch (stamped to avoid O(n) clears).
  std::vector<uint64_t> visit_stamp_;
  std::vector<uint64_t> drop_stamp_;
  std::vector<uint32_t> support_;
  uint64_t stamp_ = 0;
};

}  // namespace locs

#endif  // LOCS_CORE_DYNAMIC_CORES_H_
