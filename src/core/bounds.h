// Analytic bounds from §4.2.1 and §5.1 of the paper.

#ifndef LOCS_CORE_BOUNDS_H_
#define LOCS_CORE_BOUNDS_H_

#include <cstdint>

#include "graph/graph.h"

namespace locs {

/// Theorem 3: for a connected simple graph G(V, E),
///   m*(G, v) ≤ ⌊(1 + √(9 + 8(|E| − |V|))) / 2⌋ for every v.
/// If k exceeds this bound, CST(k) has no solution anywhere in G.
uint32_t MStarUpperBound(uint64_t num_edges, uint64_t num_vertices);

/// Convenience overload over a graph.
uint32_t MStarUpperBound(const Graph& graph);

/// Theorem 5: a CST(k) solution H in a connected graph satisfies
///   |H| ≤ ⌊(|E| − |V|) / (k/2 − 1)⌋.
/// For k ≤ 2 the bound degenerates (non-positive denominator); we return
/// UINT64_MAX to mean "unbounded".
uint64_t CstSizeUpperBound(uint64_t num_edges, uint64_t num_vertices,
                           uint32_t k);

/// Corollary 1: if the current best solution H with δ(G[H]) = delta_h can
/// be improved, at most
///   ⌊(|E| − |V|) / ((delta_h + 1)/2 − 1)⌋ − |H|
/// extra vertices need to be added. Returns UINT64_MAX when the bound
/// degenerates (delta_h + 1 ≤ 2) and 0 when the bound is already exceeded.
uint64_t CsmExpansionBudget(uint64_t num_edges, uint64_t num_vertices,
                            uint32_t delta_h, uint64_t h_size);

/// Equation 8: the γ-scaled budget e^(−γ) · CsmExpansionBudget(...), the
/// knob that trades CSM1 quality for performance (γ → −∞ removes the
/// constraint, γ = 0 is the exact Corollary-1 bound). Saturates at
/// UINT64_MAX.
uint64_t GammaScaledBudget(uint64_t num_edges, uint64_t num_vertices,
                           uint32_t delta_h, uint64_t h_size, double gamma);

}  // namespace locs

#endif  // LOCS_CORE_BOUNDS_H_
