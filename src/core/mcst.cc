#include "core/mcst.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/local_cst.h"
#include "core/validate.h"
#include "graph/subgraph.h"

namespace locs {

namespace {

/// Backtracking clique search restricted to v0's closed neighborhood.
class CliqueSearch {
 public:
  CliqueSearch(const Graph& graph, uint32_t size, uint64_t max_steps)
      : graph_(graph), target_(size), max_steps_(max_steps) {}

  std::optional<std::vector<VertexId>> Run(VertexId v0) {
    clique_.push_back(v0);
    std::vector<VertexId> candidates(graph_.Neighbors(v0).begin(),
                                     graph_.Neighbors(v0).end());
    // Vertices of degree < target-1 cannot be in a clique of that size.
    std::erase_if(candidates, [this](VertexId v) {
      return graph_.Degree(v) + 1 < target_;
    });
    if (Extend(candidates)) return clique_;
    return std::nullopt;
  }

 private:
  bool Extend(const std::vector<VertexId>& candidates) {
    if (clique_.size() == target_) return true;
    if (steps_++ >= max_steps_) return false;
    if (clique_.size() + candidates.size() < target_) return false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const VertexId v = candidates[i];
      // Next-level candidates: later entries adjacent to v.
      std::vector<VertexId> next;
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (graph_.HasEdge(v, candidates[j])) next.push_back(candidates[j]);
      }
      clique_.push_back(v);
      if (Extend(next)) return true;
      clique_.pop_back();
    }
    return false;
  }

  const Graph& graph_;
  const uint32_t target_;
  const uint64_t max_steps_;
  uint64_t steps_ = 0;
  std::vector<VertexId> clique_;
};

/// Enumerates connected vertex sets containing v0 of a fixed target size,
/// each exactly once (include/exclude branching over the expansion
/// frontier), and reports the first one with δ >= k.
class ExactSearch {
 public:
  ExactSearch(const Graph& graph, uint32_t k, size_t target,
              uint64_t max_steps, QueryGuard& guard, McstResult& result)
      : graph_(graph),
        k_(k),
        target_(target),
        max_steps_(max_steps),
        guard_(guard),
        result_(result),
        state_(graph.NumVertices(), State::kOpen),
        deg_in_h_(graph.NumVertices(), 0) {}

  bool Run(VertexId v0) {
    members_.push_back(v0);
    state_[v0] = State::kInH;
    std::vector<VertexId> candidates;
    for (VertexId w : graph_.Neighbors(v0)) {
      if (graph_.Degree(w) >= k_) {
        candidates.push_back(w);
        state_[w] = State::kQueued;
      }
    }
    return Dfs(candidates);
  }

  const std::vector<VertexId>& members() const { return members_; }

 private:
  enum class State : uint8_t { kOpen, kQueued, kInH, kForbidden };

  bool Dfs(const std::vector<VertexId>& candidates) {
    if (members_.size() == target_) return MinDegree() >= k_;
    ++result_.steps;
    if (result_.steps >= max_steps_) {
      result_.budget_exhausted = true;
      result_.termination = Termination::kBudgetExhausted;
      return false;
    }
    if (guard_.Spend(1)) {
      result_.budget_exhausted = true;
      result_.termination = guard_.cause();
      return false;
    }
    // Bound: a member short of degree k can gain at most one unit per
    // added vertex, and only target - |H| additions remain.
    const size_t room = target_ - members_.size();
    for (VertexId u : members_) {
      if (deg_in_h_[u] < k_ && k_ - deg_in_h_[u] > room) return false;
    }
    if (candidates.empty()) return false;

    std::vector<VertexId> forbidden_here;
    bool found = false;
    for (size_t i = 0; i < candidates.size() && !found; ++i) {
      const VertexId v = candidates[i];
      // --- Include v. ---
      state_[v] = State::kInH;
      members_.push_back(v);
      uint32_t deg_v = 0;
      std::vector<VertexId> newly_queued;
      for (VertexId w : graph_.Neighbors(v)) {
        if (state_[w] == State::kInH) {
          ++deg_in_h_[w];
          ++deg_v;
        } else if (state_[w] == State::kOpen && graph_.Degree(w) >= k_) {
          state_[w] = State::kQueued;
          newly_queued.push_back(w);
        }
      }
      deg_in_h_[v] = deg_v;
      std::vector<VertexId> next(candidates.begin() +
                                     static_cast<ptrdiff_t>(i) + 1,
                                 candidates.end());
      next.insert(next.end(), newly_queued.begin(), newly_queued.end());
      found = Dfs(next);
      if (found) break;  // keep members_ intact for the caller
      // --- Undo inclusion. ---
      members_.pop_back();
      state_[v] = State::kQueued;
      for (VertexId w : graph_.Neighbors(v)) {
        if (state_[w] == State::kInH) --deg_in_h_[w];
      }
      deg_in_h_[v] = 0;
      for (VertexId w : newly_queued) state_[w] = State::kOpen;
      if (result_.budget_exhausted) break;
      // --- Exclude v from the rest of this subtree. ---
      state_[v] = State::kForbidden;
      forbidden_here.push_back(v);
    }
    for (VertexId v : forbidden_here) state_[v] = State::kQueued;
    return found;
  }

  uint32_t MinDegree() const {
    uint32_t min_deg = ~uint32_t{0};
    for (VertexId u : members_) min_deg = std::min(min_deg, deg_in_h_[u]);
    return min_deg;
  }

  const Graph& graph_;
  const uint32_t k_;
  const size_t target_;
  const uint64_t max_steps_;
  QueryGuard& guard_;
  McstResult& result_;
  std::vector<State> state_;
  std::vector<uint32_t> deg_in_h_;
  std::vector<VertexId> members_;
};

}  // namespace

McstResult ExactMcstImpl(const Graph& graph, VertexId v0, uint32_t k,
                         uint64_t max_steps, QueryGuard* guard);
SearchResult GreedyMcstImpl(const Graph& graph, VertexId v0, uint32_t k,
                            QueryGuard* guard);

std::optional<std::vector<VertexId>> FindCliqueThrough(const Graph& graph,
                                                       VertexId v0,
                                                       uint32_t size,
                                                       uint64_t max_steps) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  LOCS_CHECK_GE(size, 1u);
  if (graph.Degree(v0) + 1 < size) return std::nullopt;
  CliqueSearch search(graph, size, max_steps);
  std::optional<std::vector<VertexId>> clique = search.Run(v0);
#if defined(LOCS_VALIDATE)
  if (clique.has_value()) {
    // A size-s clique through v0 is a found community with exact induced
    // min degree s - 1 everywhere; CheckCommunity re-verifies precisely
    // that, plus membership and distinctness.
    LOCS_CHECK_MSG(clique->size() == size,
                   "[LOCS_VALIDATE] FindCliqueThrough: wrong clique size");
    const std::string err = validate::CheckCommunity(
        graph, Community{*clique, size - 1}, {v0});
    LOCS_CHECK_MSG(err.empty(), err.c_str());
  }
#endif
  return clique;
}

McstResult ExactMcst(const Graph& graph, VertexId v0, uint32_t k,
                     uint64_t max_steps, QueryGuard* guard) {
  McstResult result = ExactMcstImpl(graph, v0, k, max_steps, guard);
#if defined(LOCS_VALIDATE)
  // Whatever the termination, an engaged mCST community is always a
  // genuine CST(k) answer: connected, v0 a member, exact min degree >= k.
  if (result.community.has_value()) {
    validate::DieOnViolation("ExactMcst", graph,
                             SearchResult::MakeFound(*result.community), v0,
                             k);
  }
#endif
  return result;
}

McstResult ExactMcstImpl(const Graph& graph, VertexId v0, uint32_t k,
                         uint64_t max_steps, QueryGuard* guard) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  QueryGuard unlimited;
  QueryGuard& g = guard != nullptr ? *guard : unlimited;
  McstResult result;
  if (k == 0) {
    result.community = Community{{v0}, 0};
    result.termination = Termination::kFound;
    return result;
  }
  // Any solution must exist inside the k-core component of v0.
  const SearchResult upper = GreedyMcst(graph, v0, k, &g);
  if (upper.status == Termination::kNotExists) return result;
  if (upper.Interrupted()) {
    // The greedy stage already blew the budget; surface its (still valid,
    // just non-minimal) partial answer if it reached one.
    result.budget_exhausted = true;
    result.termination = upper.status;
    if (upper.best_so_far.min_degree >= k) {
      result.community = upper.best_so_far;
    }
    return result;
  }

  // Lemma 1 shortcut: a (k+1)-clique through v0 is optimal.
  const std::optional<std::vector<VertexId>> clique =
      FindCliqueThrough(graph, v0, k + 1, max_steps / 4);
  if (clique.has_value()) {
    result.community = Community{*clique, k};
    result.termination = Termination::kFound;
    return result;
  }

  // Iterative deepening on the answer size, capped by the greedy answer.
  for (size_t target = static_cast<size_t>(k) + 1;
       target <= upper->members.size(); ++target) {
    ExactSearch search(graph, k, target, max_steps, g, result);
    if (search.Run(v0)) {
      Community community;
      community.members = search.members();
      community.min_degree = MinDegreeOfInduced(graph, community.members);
      result.community = std::move(community);
      result.termination = Termination::kFound;
      return result;
    }
    if (result.budget_exhausted) break;
  }
  // Fall back to the greedy answer (optimal only if the loop completed).
  result.community = *upper;
  if (!result.budget_exhausted) result.termination = Termination::kFound;
  return result;
}

SearchResult GreedyMcst(const Graph& graph, VertexId v0, uint32_t k,
                        QueryGuard* guard) {
  SearchResult result = GreedyMcstImpl(graph, v0, k, guard);
  LOCS_VALIDATE_RESULT("GreedyMcst", graph, result, v0, k);
  return result;
}

SearchResult GreedyMcstImpl(const Graph& graph, VertexId v0, uint32_t k,
                            QueryGuard* guard) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  QueryGuard unlimited;
  QueryGuard& g = guard != nullptr ? *guard : unlimited;
  LocalCstSolver solver(graph, nullptr, nullptr);
  SearchResult start = solver.Solve(v0, k, {}, nullptr, &g);
  if (!start.Found()) return start;  // kNotExists or interrupted as-is

  // Carry the CST stage's telemetry forward; the shrink probes below book
  // their guard charges as connectivity-phase budget (they re-check that
  // the trial set stays a connected CST(k) answer) without perturbing the
  // visited/scanned totals of the underlying local search.
  obs::QueryTelemetry telemetry = start.telemetry;
  obs::PhaseStats& shrink_ph = telemetry[obs::Phase::kConnectivity];
  ++shrink_ph.entered;

  std::vector<VertexId> members = std::move(start->members);
  bool changed = true;
  while (changed && members.size() > static_cast<size_t>(k) + 1) {
    changed = false;
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] == v0) continue;
      std::vector<VertexId> trial;
      trial.reserve(members.size() - 1);
      for (size_t j = 0; j < members.size(); ++j) {
        if (j != i) trial.push_back(members[j]);
      }
      // One validity probe inspects the whole candidate set.
      shrink_ph.budget_spent += trial.size();
      if (g.Spend(trial.size())) {
        // `members` is still a valid CST(k) community — the shrink loop
        // merely stopped before reaching a minimal one.
        Community partial;
        partial.min_degree = MinDegreeOfInduced(graph, members);
        partial.members = std::move(members);
        telemetry.answer_size = partial.members.size();
        SearchResult interrupted =
            SearchResult::MakeInterrupted(g.cause(), std::move(partial));
        interrupted.telemetry = std::move(telemetry);
        return interrupted;
      }
      if (IsValidCommunity(graph, trial, v0, k)) {
        members = std::move(trial);
        changed = true;
        break;
      }
    }
  }
  Community community;
  community.min_degree = MinDegreeOfInduced(graph, members);
  community.members = std::move(members);
  telemetry.answer_size = community.members.size();
  SearchResult found = SearchResult::MakeFound(std::move(community));
  found.telemetry = std::move(telemetry);
  return found;
}

}  // namespace locs
