#include "core/bounds.h"

#include <cmath>
#include <limits>

namespace locs {

uint32_t MStarUpperBound(uint64_t num_edges, uint64_t num_vertices) {
  // A connected graph has |E| >= |V| - 1; tolerate disconnected inputs by
  // clamping the excess at 0 (bound stays valid for every component because
  // each component's excess is at most the global excess + 1).
  const double excess =
      num_edges >= num_vertices
          ? static_cast<double>(num_edges - num_vertices)
          : 0.0;
  const double bound = (1.0 + std::sqrt(9.0 + 8.0 * excess)) / 2.0;
  return static_cast<uint32_t>(std::floor(bound));
}

uint32_t MStarUpperBound(const Graph& graph) {
  return MStarUpperBound(graph.NumEdges(), graph.NumVertices());
}

uint64_t CstSizeUpperBound(uint64_t num_edges, uint64_t num_vertices,
                           uint32_t k) {
  if (k <= 2) return std::numeric_limits<uint64_t>::max();
  const uint64_t excess = num_edges >= num_vertices
                              ? num_edges - num_vertices
                              : 0;
  const double denom = static_cast<double>(k) / 2.0 - 1.0;
  return static_cast<uint64_t>(
      std::floor(static_cast<double>(excess) / denom));
}

uint64_t CsmExpansionBudget(uint64_t num_edges, uint64_t num_vertices,
                            uint32_t delta_h, uint64_t h_size) {
  const uint64_t size_bound =
      CstSizeUpperBound(num_edges, num_vertices, delta_h + 1);
  if (size_bound == std::numeric_limits<uint64_t>::max()) return size_bound;
  return size_bound > h_size ? size_bound - h_size : 0;
}

uint64_t GammaScaledBudget(uint64_t num_edges, uint64_t num_vertices,
                           uint32_t delta_h, uint64_t h_size, double gamma) {
  const uint64_t base =
      CsmExpansionBudget(num_edges, num_vertices, delta_h, h_size);
  if (base == std::numeric_limits<uint64_t>::max() ||
      (std::isinf(gamma) && gamma < 0)) {
    return std::numeric_limits<uint64_t>::max();
  }
  const double scaled = std::exp(-gamma) * static_cast<double>(base);
  if (scaled >= static_cast<double>(std::numeric_limits<uint64_t>::max())) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(std::floor(scaled));
}

}  // namespace locs
