// Core-hierarchy index for repeated community-search queries — an
// extension beyond the paper.
//
// The paper optimizes the *single query* case. Its motivating applications
// (friend recommendation, advertising) issue numerous queries against one
// slowly-changing graph; §4.3.2 already embraces offline precomputation
// for exactly that reason. This index takes the idea to its conclusion:
// one core decomposition plus a component merge tree answer
//
//   - "does CST(k) have an answer for v?"        in O(1)
//   - "the maximal CST(k) community of v"        in O(answer size)
//   - "the best community of v" (CSM)            in O(answer size)
//
// after an O((|V| + |E|) α(|V|)) build.
//
// Structure: vertices join a union-find in decreasing core-number order;
// whenever components merge while processing level k, the merge tree gains
// a node at level k whose subtree leaves are exactly the members of that
// component of the k-core. A query walks from the query vertex's leaf to
// the highest ancestor with level >= k and lists its subtree.

#ifndef LOCS_CORE_CORE_INDEX_H_
#define LOCS_CORE_CORE_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/kcore.h"
#include "graph/graph.h"
#include "util/const_array.h"

namespace locs {

/// Immutable index over one graph answering CST/CSM queries in output-
/// sensitive time. Thread-safe for concurrent queries (read-only).
/// Storage is ConstArray-backed so an index deserialized from a graph
/// image (src/store/) points straight into the mmap'd file.
class CoreIndex {
 public:
  static constexpr uint32_t kNil = ~uint32_t{0};

  explicit CoreIndex(const Graph& graph);

  /// Adopts a precomputed index (the store/ image loader). The caller is
  /// responsible for structural validity: `core` has one entry per
  /// vertex, the five node arrays share one length >= core.size(), tree
  /// links are in-range or kNil, and slots [0, core.size()) are the
  /// vertex leaves.
  static CoreIndex FromParts(ConstArray<uint32_t> core, uint32_t degeneracy,
                             ConstArray<uint32_t> node_level,
                             ConstArray<uint32_t> node_parent,
                             ConstArray<uint32_t> node_first_child,
                             ConstArray<uint32_t> node_next_sibling,
                             ConstArray<VertexId> node_vertex);

  /// Core number of `v` — equals m*(G, v) (Lemma 4).
  uint32_t CoreNumber(VertexId v) const { return core_[v]; }

  /// Degeneracy of the indexed graph.
  uint32_t Degeneracy() const { return degeneracy_; }

  /// O(1): true iff CST(k) has an answer for v (v lies in the k-core).
  bool HasCst(VertexId v, uint32_t k) const { return core_[v] >= k; }

  /// O(answer): the maximal CST(k) answer — the connected component of v
  /// in the k-core (Lemma 3) — or an empty vector.
  std::vector<VertexId> CstMembers(VertexId v, uint32_t k) const;

  /// O(answer): the CSM answer — v's component of its maxcore (Lemma 4).
  Community Csm(VertexId v) const;

  /// Number of merge-tree nodes (diagnostics).
  size_t NumTreeNodes() const { return node_level_.size(); }

  /// Raw array access for serialization (src/store/).
  const ConstArray<uint32_t>& core_numbers() const { return core_; }
  const ConstArray<uint32_t>& node_level() const { return node_level_; }
  const ConstArray<uint32_t>& node_parent() const { return node_parent_; }
  const ConstArray<uint32_t>& node_first_child() const {
    return node_first_child_;
  }
  const ConstArray<uint32_t>& node_next_sibling() const {
    return node_next_sibling_;
  }
  const ConstArray<VertexId>& node_vertex() const { return node_vertex_; }

 private:
  CoreIndex() = default;

  /// Highest ancestor of v's leaf whose level is >= k, or kNil.
  uint32_t AncestorAtLevel(VertexId v, uint32_t k) const;
  /// Collects the leaves under `node`.
  std::vector<VertexId> SubtreeLeaves(uint32_t node) const;

  /// Per-vertex core numbers (the peel order is build-time scaffolding
  /// and is not retained).
  ConstArray<uint32_t> core_;
  uint32_t degeneracy_ = 0;

  // Merge tree in first-child / next-sibling form. The first NumVertices
  // node slots are the vertex leaves.
  ConstArray<uint32_t> node_level_;
  ConstArray<uint32_t> node_parent_;
  ConstArray<uint32_t> node_first_child_;
  ConstArray<uint32_t> node_next_sibling_;
  /// Leaf payload: the vertex id (kNil for internal nodes).
  ConstArray<VertexId> node_vertex_;
};

}  // namespace locs

#endif  // LOCS_CORE_CORE_INDEX_H_
