#include "core/local_cst.h"

#include <algorithm>
#include <span>

#include "core/bounds.h"
#include "core/kcore.h"
#include "core/validate.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "util/prefetch.h"

namespace locs {

GraphFacts GraphFacts::Compute(const Graph& graph) {
  GraphFacts facts;
  facts.num_vertices = graph.NumVertices();
  facts.num_edges = graph.NumEdges();
  facts.max_degree = graph.MaxDegree();
  if (graph.NumVertices() == 0) {
    facts.connected = true;
  } else {
    facts.connected =
        BfsOrder(graph, 0).size() == graph.NumVertices();
  }
  return facts;
}

LocalCstSolver::LocalCstSolver(const Graph& graph,
                               const OrderedAdjacency* ordered,
                               const GraphFacts* facts)
    : graph_(graph),
      ordered_(ordered),
      facts_(facts),
      c_deg_(graph.NumVertices()),
      enqueued_(graph.NumVertices()),
      peeled_(graph.NumVertices()),
      cursor_(graph.NumVertices()),
      li_queue_(graph.NumVertices(), graph.MaxDegree() + 1),
      lg_sources_(graph.NumVertices(), graph.MaxDegree() + 1) {}

SearchResult LocalCstSolver::Solve(VertexId v0, uint32_t k,
                                   const CstOptions& options,
                                   QueryStats* stats, QueryGuard* guard) {
  telemetry_.Reset();
  obs::PhaseTracker tracker(&telemetry_, recorder_->timing_enabled());
  SearchResult result = SolveImpl(v0, k, options, guard, tracker);
  tracker.Finish();
  result.telemetry = telemetry_;
  if (stats != nullptr) *stats = ToQueryStats(telemetry_);
  recorder_->Record(telemetry_);
  LOCS_VALIDATE_RESULT("LocalCstSolver::Solve", graph_, result, v0, k);
  return result;
}

SearchResult LocalCstSolver::SolveImpl(VertexId v0, uint32_t k,
                                       const CstOptions& options,
                                       QueryGuard* guard,
                                       obs::PhaseTracker& tracker) {
  LOCS_CHECK_LT(v0, graph_.NumVertices());
  QueryGuard unlimited;
  QueryGuard& g = guard != nullptr ? *guard : unlimited;

  obs::PhaseStats& admission = tracker.Enter(obs::Phase::kAdmission);
  // Trivial threshold: the singleton community qualifies.
  if (k == 0) {
    admission.vertices_visited = 1;
    telemetry_.answer_size = 1;
    return SearchResult::MakeFound(Community{{v0}, 0});
  }
  // Proposition 3: v0 itself must have degree >= k.
  if (graph_.Degree(v0) < k) return SearchResult::MakeNotExists();
  // Theorem 3 admission test (valid on connected graphs only).
  if (facts_ != nullptr && facts_->connected &&
      k > MStarUpperBound(facts_->num_edges, facts_->num_vertices)) {
    return SearchResult::MakeNotExists();
  }
  // A guard that tripped before this query even started (e.g. shared batch
  // deadline already expired) degrades to the singleton partial answer.
  if (g.Stopped()) {
    return SearchResult::MakeInterrupted(g.cause(), Community{{v0}, 0});
  }

  const bool use_ordered =
      ordered_ != nullptr && options.use_ordered_adjacency;

  // Reset per-query state in O(1).
  c_deg_.NewEpoch();
  enqueued_.NewEpoch();
  cursor_.NewEpoch();
  li_queue_.NewEpoch();
  lg_sources_.NewEpoch();
  fifo_.clear();
  fifo_head_ = 0;
  c_members_.clear();
  deficient_ = 0;

  // Guard accounting: charge the work delta after every expansion step.
  // The guard amortizes the expensive checks internally, so the per-step
  // cost here is a few adds and one compare. TotalWork sums the same
  // increments the pre-obs counters held, so trip points are unchanged.
  uint64_t charged = 0;
  auto spend = [&]() {
    const uint64_t total = telemetry_.TotalWork();
    const bool stop = g.Spend(total - charged);
    charged = total;
    return stop;
  };

  obs::PhaseStats& expansion = tracker.Enter(obs::Phase::kExpansion);
  enqueued_.Set(v0);
  AddToC(v0, k, options.strategy, use_ordered, expansion);
  if (spend()) {
    return SearchResult::MakeInterrupted(g.cause(), HarvestExpansion());
  }
  while (deficient_ > 0) {
    const VertexId next = SelectNext(options.strategy, k, use_ordered);
    if (next == kInvalidVertex) {
      // Candidates exhausted: global peel on G[C] (Proposition 4). Because
      // the candidate generation never skips a vertex of degree >= k that
      // is reachable through such vertices, C contains the whole k-core
      // component of v0 and the fallback answer is exact.
      return GlobalFallback(v0, k, tracker, g, charged);
    }
    AddToC(next, k, options.strategy, use_ordered, expansion);
    if (spend()) {
      return SearchResult::MakeInterrupted(g.cause(), HarvestExpansion());
    }
  }

  // Early success: δ(G[C]) >= k. Report the exact minimum degree.
  Community community;
  community.members = c_members_;
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId v : c_members_) {
    min_degree = std::min(min_degree, c_deg_.Get(v));
  }
  community.min_degree = min_degree;
  telemetry_.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

Community LocalCstSolver::HarvestExpansion() const {
  // During expansion the candidate set C is always connected (vertices are
  // only ever discovered as neighbors of C) and contains v0, and c_deg_
  // holds the exact induced degrees — so C itself is the best connected
  // community so far.
  Community partial;
  partial.members = c_members_;
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId v : c_members_) {
    min_degree = std::min(min_degree, c_deg_.Get(v));
  }
  partial.min_degree = c_members_.empty() ? 0 : min_degree;
  return partial;
}

void LocalCstSolver::AddToC(VertexId v, uint32_t k, Strategy strategy,
                            bool use_ordered, obs::PhaseStats& ph) {
  c_deg_.Set(v, 0);  // marks v ∈ C; the exact incidence is written below
  c_members_.push_back(v);
  ++ph.vertices_visited;

  uint32_t incidence = 0;
  auto visit_neighbor = [&](VertexId w) {
    ++ph.edges_scanned;
    if (c_deg_.Fresh(w)) {
      // One packed probe answers both "w ∈ C?" and its induced degree.
      ++incidence;
      const uint32_t deg_w = c_deg_.Get(w) + 1;
      c_deg_.Set(w, deg_w);
      if (deg_w == k) --deficient_;
      if (strategy == Strategy::kLG) lg_sources_.IncrementIfPresent(w);
      return;
    }
    if (strategy == Strategy::kLI) {
      // Single-probe frontier upkeep: the queue's own stamps already
      // encode "discovered this query" (popped vertices go straight into
      // C, so tombstones are unreachable here), and the naive fifo is
      // never consulted under li — no per-candidate bookkeeping beyond
      // the one bucket cell.
      if (li_queue_.IncrementOrInsert(w, 1, [] { return true; }) ==
          EpochBucketList::Probe::kInserted) {
        ++ph.candidates_generated;
      }
      return;
    }
    if (enqueued_.TestAndSet(w)) {
      ++ph.candidates_generated;
      fifo_.push_back(w);
    }
  };

  // Three independent random-access streams per neighbor: the CSR
  // offsets (degree probe), the packed c_deg_ cells, and — under li —
  // the frontier's bucket cells. Each gets its own prefetch ahead of
  // the sequential neighbor scan.
  const uint64_t* const offsets = graph_.offsets().data();
  auto prefetch_ahead = [&](VertexId ahead, Strategy s) {
    LOCS_PREFETCH(offsets + ahead);
    c_deg_.Prefetch(ahead);
    if (s == Strategy::kLI) li_queue_.Prefetch(ahead);
  };
  if (use_ordered) {
    // Neighbors sorted by descending degree: stop at the first one below k
    // (§4.3.2) — everything after it is prunable by Proposition 3.
    const std::span<const VertexId> nbrs = ordered_->Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i + kPrefetchDistance < nbrs.size()) {
        prefetch_ahead(nbrs[i + kPrefetchDistance], strategy);
      }
      const VertexId w = nbrs[i];
      if (graph_.Degree(w) < k) {
        ++ph.candidates_rejected;
        break;
      }
      visit_neighbor(w);
    }
  } else {
    const std::span<const VertexId> nbrs = graph_.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i + kPrefetchDistance < nbrs.size()) {
        prefetch_ahead(nbrs[i + kPrefetchDistance], strategy);
      }
      const VertexId w = nbrs[i];
      if (graph_.Degree(w) < k) {
        ++ph.edges_scanned;
        ++ph.candidates_rejected;
        continue;
      }
      visit_neighbor(w);
    }
  }

  c_deg_.Set(v, incidence);
  if (incidence < k) ++deficient_;
  if (strategy == Strategy::kLG) {
    lg_sources_.Insert(v, incidence);
    cursor_.Set(v, 0);
  }
}

VertexId LocalCstSolver::SelectNext(Strategy strategy, uint32_t k,
                                    bool use_ordered) {
  switch (strategy) {
    case Strategy::kNaive:
      while (fifo_head_ < fifo_.size()) {
        const VertexId v = fifo_[fifo_head_++];
        if (!c_deg_.Fresh(v)) return v;
      }
      return kInvalidVertex;
    case Strategy::kLI:
      if (li_queue_.Empty()) return kInvalidVertex;
      return li_queue_.PopMax();
    case Strategy::kLG:
      return SelectLg(k, use_ordered);
  }
  return kInvalidVertex;
}

VertexId LocalCstSolver::SelectLg(uint32_t k, bool use_ordered) {
  // Pick a frontier vertex adjacent to a minimum-degree member of C — the
  // selection the paper shows to be equivalent to the largest-increment-of-
  // goodness priority (f(v) is always 0 or 1). Each member keeps a cursor
  // into its adjacency so the total scan over a query is O(m').
  while (!lg_sources_.Empty()) {
    const VertexId u = lg_sources_.MinElement();
    const auto nbrs =
        use_ordered ? ordered_->Neighbors(u) : graph_.Neighbors(u);
    uint32_t cur = cursor_.Get(u);
    bool exhausted = true;
    while (cur < nbrs.size()) {
      const VertexId w = nbrs[cur];
      if (graph_.Degree(w) < k) {
        if (use_ordered) {
          // Degree-sorted list: nothing eligible remains.
          cur = static_cast<uint32_t>(nbrs.size());
          break;
        }
        ++cur;
        continue;
      }
      if (c_deg_.Fresh(w)) {
        ++cur;
        continue;
      }
      // Frontier vertex adjacent to a minimum-degree member found.
      cursor_.Set(u, cur);
      exhausted = false;
      break;
    }
    if (exhausted) {
      cursor_.Set(u, cur);
      // u has no unexplored eligible neighbors left; it can no longer act
      // as a selection source (it stays a C member regardless).
      lg_sources_.Erase(u);
      continue;
    }
    return nbrs[cur];
  }
  // No minimum-degree member offers a frontier neighbor: fall back to the
  // discovery (FIFO) order.
  while (fifo_head_ < fifo_.size()) {
    const VertexId v = fifo_[fifo_head_++];
    if (!c_deg_.Fresh(v)) return v;
  }
  return kInvalidVertex;
}

SearchResult LocalCstSolver::GlobalFallback(VertexId v0, uint32_t k,
                                            obs::PhaseTracker& tracker,
                                            QueryGuard& guard,
                                            uint64_t& charged) {
  // Global peel restricted to G[C] (line 6 of Algorithm 2), done in place:
  // c_deg_ already holds the induced degrees, so the k-core of G[C] is
  // a plain worklist peel over C — no subgraph is materialized and the
  // cost stays O(|C| + edges(C)).
  telemetry_.used_global_fallback = true;
  obs::PhaseStats& peel_ph = tracker.Enter(obs::Phase::kCoreDecomposition);
  auto spend = [&]() {
    const uint64_t total = telemetry_.TotalWork();
    const bool stop = guard.Spend(total - charged);
    charged = total;
    return stop;
  };
  peeled_.NewEpoch();
  peel_worklist_.clear();
  for (VertexId v : c_members_) {
    if (c_deg_.Get(v) < k) {
      peeled_.Set(v, 1);
      peel_worklist_.push_back(v);
    }
  }
  for (size_t head = 0; head < peel_worklist_.size(); ++head) {
    const VertexId v = peel_worklist_[head];
    const std::span<const VertexId> nbrs = graph_.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i + kPrefetchDistance < nbrs.size()) {
        const VertexId ahead = nbrs[i + kPrefetchDistance];
        c_deg_.Prefetch(ahead);
        peeled_.Prefetch(ahead);
      }
      const VertexId w = nbrs[i];
      ++peel_ph.edges_scanned;
      if (!c_deg_.Fresh(w) || peeled_.Get(w) != 0) continue;
      const uint32_t deg_w = c_deg_.Get(w) - 1;
      c_deg_.Set(w, deg_w);
      if (deg_w < k) {
        peeled_.Set(w, 1);
        peel_worklist_.push_back(w);
      }
    }
    if (spend()) {
      // Peel removals are sound even mid-peel: a peeled vertex provably
      // belongs to no k-core of G[C], and C contains the whole k-core
      // component of v0 — so a peeled v0 is an exact negative despite the
      // interruption. Otherwise degrade to the component of v0 among the
      // still-unpeeled candidates.
      if (peeled_.Get(v0) == 1) return SearchResult::MakeNotExists();
      return SearchResult::MakeInterrupted(guard.cause(),
                                           HarvestUnpeeled(v0));
    }
  }
  if (peeled_.Get(v0) != 0) return SearchResult::MakeNotExists();

  // BFS from v0 over the surviving candidates. Reuse peeled_ as the
  // visited mark (2 = reached).
  obs::PhaseStats& bfs_ph = tracker.Enter(obs::Phase::kConnectivity);
  Community community;
  community.members.push_back(v0);
  peeled_.Set(v0, 2);
  uint32_t min_degree = ~uint32_t{0};
  for (size_t head = 0; head < community.members.size(); ++head) {
    const VertexId u = community.members[head];
    min_degree = std::min(min_degree, c_deg_.Get(u));
    for (VertexId w : graph_.Neighbors(u)) {
      ++bfs_ph.edges_scanned;
      if (c_deg_.Fresh(w) && peeled_.Get(w) == 0) {
        peeled_.Set(w, 2);
        community.members.push_back(w);
      }
    }
    if (spend()) {
      // The partially-collected BFS set is connected and contains v0; its
      // induced degrees must be recounted against the reached marks.
      community.min_degree = InducedMinDegree(community.members, 2);
      return SearchResult::MakeInterrupted(guard.cause(),
                                           std::move(community));
    }
  }
  community.min_degree = min_degree;
  telemetry_.answer_size = community.members.size();
  return SearchResult::MakeFound(std::move(community));
}

Community LocalCstSolver::HarvestUnpeeled(VertexId v0) {
  // Connected component of v0 over candidates the (interrupted) peel has
  // not yet removed; marks reached vertices with 2 so the induced degrees
  // can be recounted exactly. c_deg_ is NOT usable here — mid-peel it
  // still counts edges to peeled-but-unprocessed vertices.
  Community partial;
  partial.members.push_back(v0);
  peeled_.Set(v0, 2);
  for (size_t head = 0; head < partial.members.size(); ++head) {
    for (VertexId w : graph_.Neighbors(partial.members[head])) {
      if (c_deg_.Fresh(w) && peeled_.Get(w) == 0) {
        peeled_.Set(w, 2);
        partial.members.push_back(w);
      }
    }
  }
  partial.min_degree = InducedMinDegree(partial.members, 2);
  return partial;
}

uint32_t LocalCstSolver::InducedMinDegree(const std::vector<VertexId>& members,
                                          uint32_t mark) const {
  uint32_t min_degree = ~uint32_t{0};
  for (VertexId u : members) {
    uint32_t degree = 0;
    for (VertexId w : graph_.Neighbors(u)) {
      degree += peeled_.Get(w) == mark ? 1u : 0u;
    }
    min_degree = std::min(min_degree, degree);
  }
  return members.empty() ? 0 : min_degree;
}

}  // namespace locs
