// Global-search solvers for CST and CSM (§3 of the paper).
//
// Both visit every vertex and edge of the graph: CST peels all vertices of
// degree < k and returns the query vertex's component of the k-core
// (Lemma 3); CSM greedily deletes minimum-degree vertices and returns the
// best intermediate component containing the query vertex (the [5]
// algorithm, equivalent to the maxcore of Lemma 4).

#ifndef LOCS_CORE_GLOBAL_H_
#define LOCS_CORE_GLOBAL_H_

#include "core/common.h"
#include "core/kcore.h"
#include "core/result.h"
#include "graph/graph.h"
#include "obs/recorder.h"
#include "util/guard.h"

namespace locs {

/// Global CST(k): the connected component of v0 in the k-core of G
/// (kNotExists exactly when v0 is outside the k-core). O(|V| + |E|). A
/// `guard` trip mid-peel degrades to v0's component among the not-yet-
/// removed vertices (or an exact kNotExists when v0 was already peeled).
SearchResult GlobalCst(const Graph& graph, VertexId v0, uint32_t k,
                       QueryStats* stats = nullptr,
                       QueryGuard* guard = nullptr,
                       obs::Recorder* recorder = nullptr);

/// Global CSM via core decomposition — the linear implementation of the
/// greedy algorithm (m*(G, v0) equals the core number of v0; the answer is
/// v0's component of its maxcore). O(|V| + |E|). The decomposition is one
/// indivisible pass: the guard is consulted on entry and charged the whole
/// |V| + 2|E| cost, but cannot interrupt the pass itself.
SearchResult GlobalCsm(const Graph& graph, VertexId v0,
                       QueryStats* stats = nullptr,
                       QueryGuard* guard = nullptr,
                       obs::Recorder* recorder = nullptr);

/// Global CSM by literal greedy deletion as described in §3.2: repeatedly
/// delete a minimum-degree vertex, forming G0 ⊃ G1 ⊃ …, stop when v0 is
/// next to be deleted, and return the component of v0 in the Gi with the
/// largest δ(Gi). Kept as an independently-implemented oracle for the
/// decomposition-based solver. O(|V| + |E|).
Community GreedyGlobalCsm(const Graph& graph, VertexId v0);

}  // namespace locs

#endif  // LOCS_CORE_GLOBAL_H_
