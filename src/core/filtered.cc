#include "core/filtered.h"

#include "graph/subgraph.h"

namespace locs {

FilteredCommunitySearcher::FilteredCommunitySearcher(
    const Graph& graph, const std::vector<uint8_t>& admitted) {
  LOCS_CHECK_EQ(admitted.size(), graph.NumVertices());
  to_filtered_.assign(graph.NumVertices(), kInvalidVertex);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (admitted[v] != 0) {
      to_filtered_[v] = static_cast<VertexId>(to_original_.size());
      to_original_.push_back(v);
    }
  }
  MappedSubgraph sub = InducedSubgraph(graph, to_original_);
  searcher_.emplace(std::move(sub.graph));
}

Community FilteredCommunitySearcher::Translate(Community community) const {
  for (VertexId& member : community.members) {
    member = to_original_[member];
  }
  return community;
}

SearchResult FilteredCommunitySearcher::TranslateResult(
    SearchResult result) const {
  if (result.community.has_value()) {
    result.community = Translate(std::move(*result.community));
  }
  result.best_so_far = Translate(std::move(result.best_so_far));
  return result;
}

SearchResult FilteredCommunitySearcher::Cst(VertexId v0, uint32_t k,
                                            const CstOptions& options,
                                            QueryStats* stats,
                                            QueryGuard* guard) {
  LOCS_CHECK_LT(v0, to_filtered_.size());
  if (!IsAdmitted(v0)) return SearchResult::MakeNotExists();
  return TranslateResult(
      searcher_->Cst(to_filtered_[v0], k, options, stats, guard));
}

SearchResult FilteredCommunitySearcher::Csm(VertexId v0,
                                            const CsmOptions& options,
                                            QueryStats* stats,
                                            QueryGuard* guard) {
  LOCS_CHECK_LT(v0, to_filtered_.size());
  if (!IsAdmitted(v0)) return SearchResult::MakeNotExists();
  return TranslateResult(
      searcher_->Csm(to_filtered_[v0], options, stats, guard));
}

}  // namespace locs
