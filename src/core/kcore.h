// k-core decomposition and maximum cores (Definitions 2 and 3).
//
// The k-core of G is the largest subgraph whose vertices all have degree at
// least k inside it; maxcore(G, v) is the k-core containing v with maximal
// k. Both underlie the global-search solvers of §3 and the fallback step of
// the local-search framework (Proposition 4).

#ifndef LOCS_CORE_KCORE_H_
#define LOCS_CORE_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "obs/telemetry.h"

namespace locs {

/// Full core decomposition of a graph.
struct CoreDecomposition {
  /// core[v]: the largest k such that v belongs to the k-core.
  std::vector<uint32_t> core;
  /// Degeneracy of the graph: max over core[].
  uint32_t degeneracy = 0;
  /// Vertices in peeling order (non-decreasing core number) — the order in
  /// which the global greedy of §3.2 deletes vertices.
  std::vector<VertexId> peel_order;
};

/// Computes core numbers with the Batagelj–Zaversnik bucket algorithm in
/// O(|V| + |E|). When `phase` is non-null the peel's work is accumulated
/// into it: one vertices_visited per popped vertex and one edges_scanned
/// per directed neighbor inspection — exactly |V| and 2|E| on completion,
/// matching the historical up-front accounting of the global solvers.
CoreDecomposition ComputeCores(const Graph& graph,
                               obs::PhaseStats* phase = nullptr);

/// Members of the k-core of `graph` (possibly spanning several connected
/// components), derived from a precomputed decomposition.
std::vector<VertexId> KCoreMembers(const CoreDecomposition& cores,
                                   uint32_t k);

/// Connected component of `v0` within the k-core of `graph`. Empty when v0
/// is not in the k-core. By Lemma 3 this is a (maximal) CST(k) solution.
std::vector<VertexId> KCoreComponentOf(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       VertexId v0, uint32_t k);

/// Connected component of `v0` inside maxcore(G, v0) — by Lemma 4 the
/// (maximal) CSM solution. The achieved minimum degree equals core[v0].
std::vector<VertexId> MaxCoreComponentOf(const Graph& graph,
                                         const CoreDecomposition& cores,
                                         VertexId v0);

}  // namespace locs

#endif  // LOCS_CORE_KCORE_H_
