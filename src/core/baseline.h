// The exponential baseline local search — Algorithm 1 of §4.1.
//
// Theorem 2 guarantees that every CST(k) solution is reachable by a vertex
// sequence along which δ never decreases, so a depth-first enumeration of
// monotone extensions is complete. Its worst case is exponential; the
// paper's Table 2 shows it failing to answer within a minute on real
// graphs, which is exactly why the framework of §4.2 exists. A step budget
// makes the behaviour measurable without unbounded runtimes.

#ifndef LOCS_CORE_BASELINE_H_
#define LOCS_CORE_BASELINE_H_

#include <cstdint>
#include <optional>

#include "core/common.h"
#include "graph/graph.h"

namespace locs {

/// Outcome of a budgeted baseline run.
struct BaselineResult {
  /// The solution, when one was found within budget.
  std::optional<Community> community;
  /// True when a budget (steps or wall clock) expired before the search
  /// completed. When false and `community` is empty, no solution exists.
  bool budget_exhausted = false;
  /// Recursive expansion steps consumed.
  uint64_t steps = 0;
};

/// Runs Algorithm 1 for CST(k) from `v0`, spending at most `max_steps`
/// expansion steps and (when `max_millis` > 0) at most that much wall
/// time — the paper's Table 2 counts queries answered within one minute.
BaselineResult BaselineCst(const Graph& graph, VertexId v0, uint32_t k,
                           uint64_t max_steps, double max_millis = 0.0);

}  // namespace locs

#endif  // LOCS_CORE_BASELINE_H_
