#include "core/local_csm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "core/bounds.h"
#include "core/kcore.h"
#include "core/validate.h"
#include "graph/subgraph.h"
#include "util/bucket_queue.h"
#include "util/prefetch.h"

namespace locs {

LocalCsmSolver::LocalCsmSolver(const Graph& graph,
                               const OrderedAdjacency* ordered,
                               const GraphFacts* facts)
    : graph_(graph),
      ordered_(ordered),
      facts_(facts),
      a_deg_(graph.NumVertices()),
      bfs_seen_(graph.NumVertices()),
      local_id_(graph.NumVertices()),
      frontier_(graph.NumVertices(), graph.MaxDegree() + 1),
      degree_count_(static_cast<size_t>(graph.MaxDegree()) + 2, 0) {}

void LocalCsmSolver::AddToA(VertexId v, obs::PhaseStats& ph) {
  // Count v's links into A and bump the in-A degrees of its A-neighbors.
  uint32_t incidence = 0;
  // Insert v into the histogram *before* advancing δ so the histogram is
  // never transiently empty.
  const std::span<const VertexId> nbrs = graph_.Neighbors(v);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (i + kPrefetchDistance < nbrs.size()) {
      a_deg_.Prefetch(nbrs[i + kPrefetchDistance]);
    }
    const VertexId w = nbrs[i];
    ++ph.edges_scanned;
    if (a_deg_.Fresh(w)) {
      // One packed probe answers both "w ∈ A?" and its induced degree.
      ++incidence;
      const uint32_t deg_w = a_deg_.Get(w) + 1;
      a_deg_.Set(w, deg_w);
      --degree_count_[deg_w - 1];
      ++degree_count_[deg_w];
      max_count_touched_ = std::max(max_count_touched_, deg_w);
    }
  }
  a_deg_.Set(v, incidence);
  ++degree_count_[incidence];
  max_count_touched_ = std::max(max_count_touched_, incidence);
  order_.push_back(v);
  ++ph.vertices_visited;
  // Re-establish δ(G[A]): drop to the new vertex's degree if lower, then
  // advance past empty buckets (amortized O(1): δ only advances as many
  // times as degrees are incremented).
  if (order_.size() == 1 || incidence < delta_a_) delta_a_ = incidence;
  while (degree_count_[delta_a_] == 0) ++delta_a_;
}

SearchResult LocalCsmSolver::Solve(VertexId v0, const CsmOptions& options,
                                   QueryStats* stats, QueryGuard* guard) {
  telemetry_.Reset();
  obs::PhaseTracker tracker(&telemetry_, recorder_->timing_enabled());
  SearchResult result = SolveImpl(v0, options, guard, tracker);
  tracker.Finish();
  result.telemetry = telemetry_;
  if (stats != nullptr) *stats = ToQueryStats(telemetry_);
  recorder_->Record(telemetry_);
  // CSM has no minimum-degree threshold: pass k = 0.
  LOCS_VALIDATE_RESULT("LocalCsmSolver::Solve", graph_, result, v0, 0);
  return result;
}

SearchResult LocalCsmSolver::SolveImpl(VertexId v0, const CsmOptions& options,
                                       QueryGuard* guard,
                                       obs::PhaseTracker& tracker) {
  LOCS_CHECK_LT(v0, graph_.NumVertices());
  QueryGuard unlimited;
  QueryGuard& g = guard != nullptr ? *guard : unlimited;
  tracker.Enter(obs::Phase::kAdmission);
  if (g.Stopped()) {
    return SearchResult::MakeInterrupted(g.cause(), Community{{v0}, 0});
  }

  // O(1) query reset (the histogram is reset over the range touched by the
  // previous query).
  a_deg_.NewEpoch();
  frontier_.NewEpoch();
  order_.clear();
  std::fill(degree_count_.begin(),
            degree_count_.begin() + max_count_touched_ + 1, 0);
  max_count_touched_ = 0;
  delta_a_ = 0;

  // Equation 7 upper bound: m*(G, v0) <= min(deg(v0), Theorem-3 bound).
  uint32_t upper = graph_.Degree(v0);
  if (facts_ != nullptr && facts_->connected) {
    upper = std::min(
        upper, MStarUpperBound(facts_->num_edges, facts_->num_vertices));
  }
  const bool budget_enabled =
      facts_ != nullptr && facts_->connected &&
      !(std::isinf(options.gamma) && options.gamma < 0);

  // Guard accounting: charge the work delta once per expansion step (the
  // guard amortizes the expensive checks internally).
  uint64_t charged = 0;
  auto spend = [&]() {
    const uint64_t total = telemetry_.TotalWork();
    const bool stop = g.Spend(total - charged);
    charged = total;
    return stop;
  };

  // Step 1: iterative searching and filtering (lines 1-15 of Algorithm 4).
  obs::PhaseStats& expansion = tracker.Enter(obs::Phase::kExpansion);
  AddToA(v0, expansion);
  size_t h_len = 1;        // |H|: best prefix of order_
  uint32_t delta_h = 0;    // δ(G[H])
  uint64_t s = 0;          // vertices added since the last improvement

  for (VertexId w : graph_.Neighbors(v0)) {
    ++expansion.edges_scanned;
    if (graph_.Degree(w) > delta_h) {
      ++expansion.candidates_generated;
      frontier_.Insert(w, 1);
    }
  }
  if (spend()) {
    return SearchResult::MakeInterrupted(g.cause(),
                                         HarvestPrefix(h_len, delta_h));
  }

  while (delta_h < upper && !frontier_.Empty()) {
    if (budget_enabled) {
      const uint64_t budget =
          GammaScaledBudget(facts_->num_edges, facts_->num_vertices,
                            delta_h, h_len, options.gamma);
      if (s > budget) break;
    }
    const VertexId v = frontier_.PopMax();
    // Stale entry: a vertex whose global degree can no longer improve on
    // δ(G[H]) cannot be part of any strictly better solution
    // (Proposition 3 applied at threshold δ(G[H]) + 1).
    if (graph_.Degree(v) <= delta_h) {
      ++expansion.candidates_rejected;
      continue;
    }
    AddToA(v, expansion);
    ++s;
    ++expansion.budget_spent;
    if (delta_a_ > delta_h) {
      delta_h = delta_a_;
      h_len = order_.size();
      s = 0;
    }
    // Line 14: extend the frontier with v's neighbors of sufficient
    // degree. Two single-cell probes per neighbor: the packed A cell,
    // then the frontier cell, whose IncrementOrInsert folds the old
    // Contains/discovered/Insert triple into one load (tombstones left
    // by PopMax keep rejected vertices out for good).
    const std::span<const VertexId> nbrs = graph_.Neighbors(v);
    const uint64_t* const offsets = graph_.offsets().data();
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i + kPrefetchDistance < nbrs.size()) {
        const VertexId ahead = nbrs[i + kPrefetchDistance];
        LOCS_PREFETCH(offsets + ahead);  // Degree probe in the predicate
        a_deg_.Prefetch(ahead);
        frontier_.Prefetch(ahead);
      }
      const VertexId w = nbrs[i];
      ++expansion.edges_scanned;
      if (a_deg_.Fresh(w)) continue;
      const EpochBucketList::Probe probe = frontier_.IncrementOrInsert(
          w, 1, [&] { return graph_.Degree(w) > delta_h; });
      if (probe == EpochBucketList::Probe::kInserted) {
        ++expansion.candidates_generated;
      }
    }
    if (spend()) {
      return SearchResult::MakeInterrupted(g.cause(),
                                           HarvestPrefix(h_len, delta_h));
    }
  }

  // Sufficient condition met: the prefix H is provably optimal (Eq. 7).
  if (delta_h == upper) {
    Community community = HarvestPrefix(h_len, delta_h);
    telemetry_.answer_size = community.members.size();
    return SearchResult::MakeFound(std::move(community));
  }

  // Steps 2-3: candidate generation + maxcore.
  telemetry_.used_global_fallback = true;
  std::vector<VertexId> candidates;
  if (options.candidate_rule == CsmCandidateRule::kFromVisited) {
    candidates = order_;  // CSM1: C <- A (Theorem 6).
  } else {
    obs::PhaseStats& cand_ph = tracker.Enter(obs::Phase::kCandidates);
    if (!NaiveCandidates(v0, delta_h, cand_ph, g, charged,
                         &candidates)) {  // CSM2 (Theorem 7).
      return SearchResult::MakeInterrupted(g.cause(),
                                           HarvestPrefix(h_len, delta_h));
    }
  }
  Community best;
  if (!MaxCoreOfCandidates(v0, candidates, g, tracker, &best)) {
    // The maxcore phase never yields partial answers; the proven prefix H
    // (δ(G[H]) <= the true optimum) is the best community so far.
    return SearchResult::MakeInterrupted(g.cause(),
                                         HarvestPrefix(h_len, delta_h));
  }
  telemetry_.answer_size = best.members.size();
  return SearchResult::MakeFound(std::move(best));
}

Community LocalCsmSolver::HarvestPrefix(size_t h_len, uint32_t delta_h) const {
  // Every prefix of the insertion order is connected (each vertex enters
  // from the frontier, i.e. adjacent to A), and delta_h recorded the exact
  // δ(G[H]) at the moment the prefix was the whole of A.
  Community community;
  community.members.assign(order_.begin(),
                           order_.begin() + static_cast<ptrdiff_t>(h_len));
  community.min_degree = delta_h;
  return community;
}

bool LocalCsmSolver::NaiveCandidates(VertexId v0, uint32_t k,
                                     obs::PhaseStats& ph, QueryGuard& guard,
                                     uint64_t& charged,
                                     std::vector<VertexId>* out) {
  // Cnaive(k): BFS from v0 over vertices of global degree >= k
  // (Algorithm 3 run to exhaustion). Uses the ordered adjacency when
  // available to cut each neighbor scan at the first sub-threshold entry.
  // Returns false when the guard trips mid-BFS.
  bfs_seen_.NewEpoch();
  out->clear();
  if (graph_.Degree(v0) < k) {
    // H itself proves δ = k is reachable, so this only happens for k = 0
    // answers on isolated vertices; keep v0 so maxcore stays well-defined.
    out->push_back(v0);
    return true;
  }
  out->push_back(v0);
  bfs_seen_.Set(v0);
  const bool use_ordered = ordered_ != nullptr;
  for (size_t head = 0; head < out->size(); ++head) {
    const VertexId u = (*out)[head];
    ++ph.vertices_visited;
    auto consider = [&](VertexId w) {
      ++ph.edges_scanned;
      if (bfs_seen_.TestAndSet(w)) {
        ++ph.candidates_generated;
        out->push_back(w);
      }
    };
    if (use_ordered) {
      for (VertexId w : ordered_->Neighbors(u)) {
        if (graph_.Degree(w) < k) {
          ++ph.candidates_rejected;
          break;
        }
        consider(w);
      }
    } else {
      for (VertexId w : graph_.Neighbors(u)) {
        if (graph_.Degree(w) < k) {
          ++ph.edges_scanned;
          ++ph.candidates_rejected;
          continue;
        }
        consider(w);
      }
    }
    const uint64_t total = telemetry_.TotalWork();
    const bool stop = guard.Spend(total - charged);
    charged = total;
    if (stop) return false;
  }
  return true;
}

bool LocalCsmSolver::MaxCoreOfCandidates(
    VertexId v0, const std::vector<VertexId>& candidates, QueryGuard& guard,
    obs::PhaseTracker& tracker, Community* out) {
  LOCS_CHECK(!candidates.empty());
  LOCS_CHECK_EQ(candidates.front(), v0);
  // Phase accounting: the maxcore pass charges the guard directly with
  // degree-proportional deltas (it has always been excluded from the
  // visited/scanned totals), so the phase records those charges as
  // budget_spent rather than double-counting work.
  obs::PhaseStats& core_ph = tracker.Enter(obs::Phase::kCoreDecomposition);
  auto charge = [&](uint64_t delta) {
    core_ph.budget_spent += delta;
    return guard.Spend(delta);
  };
  // Build a compact (unsorted) CSR over the candidate set. Core
  // decomposition is insensitive to adjacency order, so no sorting is
  // needed, and all scratch is either epoch-stamped or sized O(|C|).
  const auto sub_n = static_cast<uint32_t>(candidates.size());
  local_id_.NewEpoch();
  for (uint32_t i = 0; i < sub_n; ++i) {
    local_id_.Set(candidates[i], i + 1);  // 0 = not a candidate
  }
  sub_degree_.assign(sub_n, 0);
  for (uint32_t i = 0; i < sub_n; ++i) {
    uint32_t deg = 0;
    for (VertexId w : graph_.Neighbors(candidates[i])) {
      deg += local_id_.Get(w) != 0;
    }
    sub_degree_[i] = deg;
    if (charge(graph_.Degree(candidates[i]))) return false;
  }
  sub_offsets_.assign(sub_n + 1, 0);
  for (uint32_t i = 0; i < sub_n; ++i) {
    sub_offsets_[i + 1] = sub_offsets_[i] + sub_degree_[i];
  }
  sub_neighbors_.resize(sub_offsets_[sub_n]);
  for (uint32_t i = 0; i < sub_n; ++i) {
    uint64_t cursor = sub_offsets_[i];
    for (VertexId w : graph_.Neighbors(candidates[i])) {
      const uint32_t id = local_id_.Get(w);
      if (id != 0) sub_neighbors_[cursor++] = id - 1;
    }
  }

  // Bucket peel (Batagelj–Zaversnik) over the compact subgraph.
  MinBucketQueue queue(sub_degree_);
  std::vector<uint32_t> core(sub_n);
  uint32_t current = 0;
  while (!queue.Empty()) {
    const uint32_t key = queue.MinKey();
    if (key > current) current = key;
    const uint32_t v = queue.PopMin();
    core[v] = current;
    for (uint64_t e = sub_offsets_[v]; e < sub_offsets_[v + 1]; ++e) {
      const uint32_t w = sub_neighbors_[e];
      if (!queue.Popped(w) && queue.Key(w) > current) {
        queue.DecrementKey(w);
      }
    }
    if (charge(1 + sub_offsets_[v + 1] - sub_offsets_[v])) return false;
  }

  // Component of v0 (local id 0) within its maxcore.
  tracker.Enter(obs::Phase::kConnectivity);
  const uint32_t k_star = core[0];
  std::vector<uint8_t> seen(sub_n, 0);
  std::vector<uint32_t> component;
  component.push_back(0);
  seen[0] = 1;
  for (size_t head = 0; head < component.size(); ++head) {
    const uint32_t u = component[head];
    for (uint64_t e = sub_offsets_[u]; e < sub_offsets_[u + 1]; ++e) {
      const uint32_t w = sub_neighbors_[e];
      if (seen[w] == 0 && core[w] >= k_star) {
        seen[w] = 1;
        component.push_back(w);
      }
    }
  }
  Community& community = *out;
  community = Community{};
  community.min_degree = k_star;
  community.members.reserve(component.size());
  for (uint32_t local : component) {
    community.members.push_back(candidates[local]);
  }
  return true;
}

}  // namespace locs
