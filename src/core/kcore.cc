#include "core/kcore.h"

#include "util/bucket_queue.h"

namespace locs {

CoreDecomposition ComputeCores(const Graph& graph, obs::PhaseStats* phase) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition result;
  result.core.resize(n);
  result.peel_order.reserve(n);
  if (n == 0) return result;

  std::vector<uint32_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);
  MinBucketQueue queue(degree);

  uint32_t current = 0;
  while (!queue.Empty()) {
    const uint32_t key = queue.MinKey();
    if (key > current) current = key;
    const VertexId v = queue.PopMin();
    result.core[v] = current;
    result.peel_order.push_back(v);
    if (phase != nullptr) {
      ++phase->vertices_visited;
      phase->edges_scanned += graph.Degree(v);
    }
    for (VertexId w : graph.Neighbors(v)) {
      if (!queue.Popped(w) && queue.Key(w) > current) {
        queue.DecrementKey(w);
      }
    }
  }
  result.degeneracy = current;
  return result;
}

std::vector<VertexId> KCoreMembers(const CoreDecomposition& cores,
                                   uint32_t k) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < cores.core.size(); ++v) {
    if (cores.core[v] >= k) members.push_back(v);
  }
  return members;
}

namespace {

/// BFS from v0 restricted to vertices with core number >= k.
std::vector<VertexId> CoreComponent(const Graph& graph,
                                    const std::vector<uint32_t>& core,
                                    VertexId v0, uint32_t k) {
  if (core[v0] < k) return {};
  std::vector<uint8_t> seen(graph.NumVertices(), 0);
  std::vector<VertexId> component;
  component.push_back(v0);
  seen[v0] = 1;
  for (size_t head = 0; head < component.size(); ++head) {
    const VertexId u = component[head];
    for (VertexId w : graph.Neighbors(u)) {
      if (seen[w] == 0 && core[w] >= k) {
        seen[w] = 1;
        component.push_back(w);
      }
    }
  }
  return component;
}

}  // namespace

std::vector<VertexId> KCoreComponentOf(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       VertexId v0, uint32_t k) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  return CoreComponent(graph, cores.core, v0, k);
}

std::vector<VertexId> MaxCoreComponentOf(const Graph& graph,
                                         const CoreDecomposition& cores,
                                         VertexId v0) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  return CoreComponent(graph, cores.core, v0, cores.core[v0]);
}

}  // namespace locs
