#include "core/core_index.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace locs {

namespace {

/// Union-find with path halving and union by size, tracking the merge-tree
/// node owned by each component root.
class MergeDsu {
 public:
  explicit MergeDsu(uint32_t capacity)
      : parent_(capacity), size_(capacity, 1), node_(capacity) {
    std::iota(parent_.begin(), parent_.end(), 0u);
    std::iota(node_.begin(), node_.end(), 0u);  // leaf node i for vertex i
  }

  uint32_t Find(uint32_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  /// Merges the components of roots ra != rb; returns the surviving root.
  uint32_t Link(uint32_t ra, uint32_t rb) {
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  uint32_t NodeOf(uint32_t root) const { return node_[root]; }
  void SetNode(uint32_t root, uint32_t node) { node_[root] = node; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  std::vector<uint32_t> node_;
};

}  // namespace

CoreIndex::CoreIndex(const Graph& graph) {
  CoreDecomposition cores = ComputeCores(graph);
  const VertexId n = graph.NumVertices();
  // The tree is grown in plain vectors and only wrapped into ConstArrays
  // once the shape is final.
  std::vector<uint32_t> level(n);
  std::vector<uint32_t> parent(n, kNil);
  std::vector<uint32_t> first_child(n, kNil);
  std::vector<uint32_t> next_sibling(n, kNil);
  std::vector<VertexId> vertex(n);
  // Leaves 0..n-1 mirror the vertices.
  for (VertexId v = 0; v < n; ++v) {
    level[v] = cores.core[v];
    vertex[v] = v;
  }

  auto new_node = [&](uint32_t node_level) {
    const auto id = static_cast<uint32_t>(level.size());
    level.push_back(node_level);
    parent.push_back(kNil);
    first_child.push_back(kNil);
    next_sibling.push_back(kNil);
    vertex.push_back(kNil);
    return id;
  };
  auto attach = [&](uint32_t p, uint32_t child) {
    parent[child] = p;
    next_sibling[child] = first_child[p];
    first_child[p] = child;
  };

  if (n > 0) {
    MergeDsu dsu(n);
    // Vertices grouped by core number; peel_order is sorted by
    // non-decreasing core number, so iterate it backwards for the
    // decreasing-level sweep.
    const std::vector<VertexId>& order = cores.peel_order;
    size_t hi = order.size();
    while (hi > 0) {
      // [lo, hi) is the block of vertices with this core number.
      const uint32_t block_level = cores.core[order[hi - 1]];
      size_t lo = hi;
      while (lo > 0 && cores.core[order[lo - 1]] == block_level) --lo;
      // All level-`block_level` vertices are now active; union each with
      // its already-active neighbors (core >= block_level).
      for (size_t i = lo; i < hi; ++i) {
        const VertexId v = order[i];
        for (VertexId w : graph.Neighbors(v)) {
          if (cores.core[w] < block_level) continue;
          uint32_t rv = dsu.Find(v);
          const uint32_t rw = dsu.Find(w);
          if (rv == rw) continue;
          const uint32_t nv = dsu.NodeOf(rv);
          const uint32_t nw = dsu.NodeOf(rw);
          // A component may be represented by an internal node already
          // created at this level — reuse it as the merge target so leaf
          // paths stay short (one node per (component, level)). Leaves
          // are never targets: they cannot adopt children.
          const bool nv_reusable =
              level[nv] == block_level && vertex[nv] == kNil;
          const bool nw_reusable =
              level[nw] == block_level && vertex[nw] == kNil;
          uint32_t target;
          if (nv_reusable && nw_reusable) {
            // Fold nw's children into nv; nw becomes an orphan no leaf
            // path traverses.
            target = nv;
            uint32_t child = first_child[nw];
            while (child != kNil) {
              const uint32_t next = next_sibling[child];
              attach(nv, child);
              child = next;
            }
            first_child[nw] = kNil;
          } else if (nv_reusable) {
            target = nv;
            attach(nv, nw);
          } else if (nw_reusable) {
            target = nw;
            attach(nw, nv);
          } else {
            target = new_node(block_level);
            attach(target, nv);
            attach(target, nw);
          }
          const uint32_t root = dsu.Link(rv, rw);
          dsu.SetNode(root, target);
        }
      }
      hi = lo;
    }
  }

  degeneracy_ = cores.degeneracy;
  core_ = ConstArray<uint32_t>(std::move(cores.core));
  node_level_ = ConstArray<uint32_t>(std::move(level));
  node_parent_ = ConstArray<uint32_t>(std::move(parent));
  node_first_child_ = ConstArray<uint32_t>(std::move(first_child));
  node_next_sibling_ = ConstArray<uint32_t>(std::move(next_sibling));
  node_vertex_ = ConstArray<VertexId>(std::move(vertex));
}

CoreIndex CoreIndex::FromParts(ConstArray<uint32_t> core, uint32_t degeneracy,
                               ConstArray<uint32_t> node_level,
                               ConstArray<uint32_t> node_parent,
                               ConstArray<uint32_t> node_first_child,
                               ConstArray<uint32_t> node_next_sibling,
                               ConstArray<VertexId> node_vertex) {
  CoreIndex index;
  index.core_ = std::move(core);
  index.degeneracy_ = degeneracy;
  index.node_level_ = std::move(node_level);
  index.node_parent_ = std::move(node_parent);
  index.node_first_child_ = std::move(node_first_child);
  index.node_next_sibling_ = std::move(node_next_sibling);
  index.node_vertex_ = std::move(node_vertex);
  return index;
}

uint32_t CoreIndex::AncestorAtLevel(VertexId v, uint32_t k) const {
  if (core_[v] < k) return kNil;
  uint32_t node = v;  // leaf
  while (node_parent_[node] != kNil &&
         node_level_[node_parent_[node]] >= k) {
    node = node_parent_[node];
  }
  return node;
}

std::vector<VertexId> CoreIndex::SubtreeLeaves(uint32_t node) const {
  std::vector<VertexId> members;
  std::vector<uint32_t> stack = {node};
  while (!stack.empty()) {
    const uint32_t cur = stack.back();
    stack.pop_back();
    if (node_vertex_[cur] != kNil) {
      members.push_back(node_vertex_[cur]);
      continue;
    }
    for (uint32_t child = node_first_child_[cur]; child != kNil;
         child = node_next_sibling_[child]) {
      stack.push_back(child);
    }
  }
  return members;
}

std::vector<VertexId> CoreIndex::CstMembers(VertexId v, uint32_t k) const {
  LOCS_CHECK_LT(v, node_vertex_.size());
  const uint32_t node = AncestorAtLevel(v, k);
  if (node == kNil) return {};
  return SubtreeLeaves(node);
}

Community CoreIndex::Csm(VertexId v) const {
  Community community;
  community.min_degree = core_[v];
  community.members = CstMembers(v, core_[v]);
  return community;
}

}  // namespace locs
