#include "core/core_index.h"

#include <algorithm>
#include <numeric>

namespace locs {

namespace {

/// Union-find with path halving and union by size, tracking the merge-tree
/// node owned by each component root.
class MergeDsu {
 public:
  explicit MergeDsu(uint32_t capacity)
      : parent_(capacity), size_(capacity, 1), node_(capacity) {
    std::iota(parent_.begin(), parent_.end(), 0u);
    std::iota(node_.begin(), node_.end(), 0u);  // leaf node i for vertex i
  }

  uint32_t Find(uint32_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  /// Merges the components of roots ra != rb; returns the surviving root.
  uint32_t Link(uint32_t ra, uint32_t rb) {
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  uint32_t NodeOf(uint32_t root) const { return node_[root]; }
  void SetNode(uint32_t root, uint32_t node) { node_[root] = node; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  std::vector<uint32_t> node_;
};

}  // namespace

CoreIndex::CoreIndex(const Graph& graph) : cores_(ComputeCores(graph)) {
  const VertexId n = graph.NumVertices();
  // Leaves 0..n-1 mirror the vertices.
  node_level_.resize(n);
  node_parent_.assign(n, kNil);
  node_first_child_.assign(n, kNil);
  node_next_sibling_.assign(n, kNil);
  node_vertex_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    node_level_[v] = cores_.core[v];
    node_vertex_[v] = v;
  }
  if (n == 0) return;

  auto new_node = [this](uint32_t level) {
    const auto id = static_cast<uint32_t>(node_level_.size());
    node_level_.push_back(level);
    node_parent_.push_back(kNil);
    node_first_child_.push_back(kNil);
    node_next_sibling_.push_back(kNil);
    node_vertex_.push_back(kNil);
    return id;
  };
  auto attach = [this](uint32_t parent, uint32_t child) {
    node_parent_[child] = parent;
    node_next_sibling_[child] = node_first_child_[parent];
    node_first_child_[parent] = child;
  };

  MergeDsu dsu(n);
  // Vertices grouped by core number; peel_order is sorted by
  // non-decreasing core number, so iterate it backwards for the
  // decreasing-level sweep.
  const std::vector<VertexId>& order = cores_.peel_order;
  size_t hi = order.size();
  while (hi > 0) {
    // [lo, hi) is the block of vertices with this core number.
    const uint32_t level = cores_.core[order[hi - 1]];
    size_t lo = hi;
    while (lo > 0 && cores_.core[order[lo - 1]] == level) --lo;
    // All level-`level` vertices are now active; union each with its
    // already-active neighbors (core >= level).
    for (size_t i = lo; i < hi; ++i) {
      const VertexId v = order[i];
      for (VertexId w : graph.Neighbors(v)) {
        if (cores_.core[w] < level) continue;
        uint32_t rv = dsu.Find(v);
        const uint32_t rw = dsu.Find(w);
        if (rv == rw) continue;
        const uint32_t nv = dsu.NodeOf(rv);
        const uint32_t nw = dsu.NodeOf(rw);
        // A component may be represented by an internal node already
        // created at this level — reuse it as the merge target so leaf
        // paths stay short (one node per (component, level)). Leaves are
        // never targets: they cannot adopt children.
        const bool nv_reusable =
            node_level_[nv] == level && node_vertex_[nv] == kNil;
        const bool nw_reusable =
            node_level_[nw] == level && node_vertex_[nw] == kNil;
        uint32_t target;
        if (nv_reusable && nw_reusable) {
          // Fold nw's children into nv; nw becomes an orphan no leaf
          // path traverses.
          target = nv;
          uint32_t child = node_first_child_[nw];
          while (child != kNil) {
            const uint32_t next = node_next_sibling_[child];
            attach(nv, child);
            child = next;
          }
          node_first_child_[nw] = kNil;
        } else if (nv_reusable) {
          target = nv;
          attach(nv, nw);
        } else if (nw_reusable) {
          target = nw;
          attach(nw, nv);
        } else {
          target = new_node(level);
          attach(target, nv);
          attach(target, nw);
        }
        const uint32_t root = dsu.Link(rv, rw);
        dsu.SetNode(root, target);
      }
    }
    hi = lo;
  }
}

uint32_t CoreIndex::AncestorAtLevel(VertexId v, uint32_t k) const {
  if (cores_.core[v] < k) return kNil;
  uint32_t node = v;  // leaf
  while (node_parent_[node] != kNil &&
         node_level_[node_parent_[node]] >= k) {
    node = node_parent_[node];
  }
  return node;
}

std::vector<VertexId> CoreIndex::SubtreeLeaves(uint32_t node) const {
  std::vector<VertexId> members;
  std::vector<uint32_t> stack = {node};
  while (!stack.empty()) {
    const uint32_t cur = stack.back();
    stack.pop_back();
    if (node_vertex_[cur] != kNil) {
      members.push_back(node_vertex_[cur]);
      continue;
    }
    for (uint32_t child = node_first_child_[cur]; child != kNil;
         child = node_next_sibling_[child]) {
      stack.push_back(child);
    }
  }
  return members;
}

std::vector<VertexId> CoreIndex::CstMembers(VertexId v, uint32_t k) const {
  LOCS_CHECK_LT(v, node_vertex_.size());
  const uint32_t node = AncestorAtLevel(v, k);
  if (node == kNil) return {};
  return SubtreeLeaves(node);
}

Community CoreIndex::Csm(VertexId v) const {
  Community community;
  community.min_degree = cores_.core[v];
  community.members = CstMembers(v, cores_.core[v]);
  return community;
}

}  // namespace locs
