// Epoch-stamped bucket structure of Figure 5.
//
// A collection of doubly-linked lists, one per key value, over dense vertex
// ids. The paper uses it for the `li` heuristic (select the frontier vertex
// with the largest number of links to C in O(1)); we reuse the same
// structure min-oriented for the `lg` heuristic's minimum-degree sources.
// All operations are O(1) amortized; a query reset is O(1) thanks to epoch
// stamping on both the vertex entries and the bucket heads.

#ifndef LOCS_CORE_BUCKET_LIST_H_
#define LOCS_CORE_BUCKET_LIST_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace locs {

/// Keyed doubly-linked bucket lists with epoch-based O(1) reset.
class EpochBucketList {
 public:
  static constexpr uint32_t kNil = ~uint32_t{0};

  /// `capacity` bounds element ids, `max_key` bounds key values.
  EpochBucketList(uint32_t capacity, uint32_t max_key)
      : head_(static_cast<size_t>(max_key) + 1, kNil),
        tail_(static_cast<size_t>(max_key) + 1, kNil),
        head_stamp_(static_cast<size_t>(max_key) + 1, 0),
        next_(capacity, kNil),
        prev_(capacity, kNil),
        key_(capacity, 0),
        entry_stamp_(capacity, 0) {}

  /// Invalidates the whole structure in O(1).
  void NewEpoch() {
    ++epoch_;
    size_ = 0;
    max_bucket_ = 0;
    min_bucket_ = 0;
  }

  bool Contains(uint32_t v) const { return entry_stamp_[v] == epoch_; }
  bool Empty() const { return size_ == 0; }
  uint32_t Size() const { return size_; }

  uint32_t Key(uint32_t v) const {
    LOCS_DCHECK(Contains(v));
    return key_[v];
  }

  /// Inserts `v` with the given key; v must not be present.
  void Insert(uint32_t v, uint32_t key) {
    LOCS_DCHECK(!Contains(v));
    LOCS_DCHECK(key < head_.size());
    entry_stamp_[v] = epoch_;
    key_[v] = key;
    Link(v, key);
    if (size_ == 0) {
      max_bucket_ = min_bucket_ = key;
    } else {
      if (key > max_bucket_) max_bucket_ = key;
      if (key < min_bucket_) min_bucket_ = key;
    }
    ++size_;
  }

  /// Increments the key of a present element by one.
  void Increment(uint32_t v) {
    LOCS_DCHECK(Contains(v));
    const uint32_t k = key_[v];
    LOCS_DCHECK(k + 1 < head_.size());
    Unlink(v, k);
    key_[v] = k + 1;
    Link(v, k + 1);
    if (k + 1 > max_bucket_) max_bucket_ = k + 1;
  }

  /// Removes a present element.
  void Erase(uint32_t v) {
    LOCS_DCHECK(Contains(v));
    Unlink(v, key_[v]);
    entry_stamp_[v] = epoch_ - 1;  // mark stale
    --size_;
  }

  /// Removes and returns an element with the maximal key.
  uint32_t PopMax() {
    LOCS_DCHECK(!Empty());
    const uint32_t v = MaxElement();
    Erase(v);
    return v;
  }

  /// An element with the maximal key (not removed).
  uint32_t MaxElement() {
    LOCS_DCHECK(!Empty());
    while (Head(max_bucket_) == kNil) {
      LOCS_DCHECK(max_bucket_ > 0);
      --max_bucket_;
    }
    return Head(max_bucket_);
  }

  /// The maximal key currently present.
  uint32_t MaxKey() { return key_[MaxElement()]; }

  /// An element with the minimal key (not removed). Keys only grow through
  /// Increment, so the lazily advancing min pointer is amortized O(1).
  uint32_t MinElement() {
    LOCS_DCHECK(!Empty());
    while (Head(min_bucket_) == kNil) {
      LOCS_DCHECK(min_bucket_ + 1 < head_.size());
      ++min_bucket_;
    }
    return Head(min_bucket_);
  }

  /// The minimal key currently present.
  uint32_t MinKey() { return key_[MinElement()]; }

  /// First element of the `key` bucket, or kNil.
  uint32_t Head(uint32_t key) const {
    return head_stamp_[key] == epoch_ ? head_[key] : kNil;
  }

  /// Successor of `v` within its bucket, or kNil.
  uint32_t Next(uint32_t v) const {
    LOCS_DCHECK(Contains(v));
    return next_[v];
  }

 private:
  // Elements append at the tail and selection reads the head, so ties
  // within a bucket resolve in FIFO (discovery) order — this reproduces
  // the paper's Figure 4(b) selection trace exactly.
  void Link(uint32_t v, uint32_t key) {
    next_[v] = kNil;
    if (head_stamp_[key] != epoch_ || head_[key] == kNil) {
      head_[key] = tail_[key] = v;
      head_stamp_[key] = epoch_;
      prev_[v] = kNil;
      return;
    }
    prev_[v] = tail_[key];
    next_[tail_[key]] = v;
    tail_[key] = v;
  }

  void Unlink(uint32_t v, uint32_t key) {
    if (prev_[v] != kNil) {
      next_[prev_[v]] = next_[v];
    } else {
      head_[key] = next_[v];
    }
    if (next_[v] != kNil) {
      prev_[next_[v]] = prev_[v];
    } else {
      tail_[key] = prev_[v];
    }
  }

  std::vector<uint32_t> head_;
  std::vector<uint32_t> tail_;
  std::vector<uint64_t> head_stamp_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  std::vector<uint32_t> key_;
  std::vector<uint64_t> entry_stamp_;
  uint64_t epoch_ = 1;
  uint32_t max_bucket_ = 0;
  uint32_t min_bucket_ = 0;
  uint32_t size_ = 0;
};

}  // namespace locs

#endif  // LOCS_CORE_BUCKET_LIST_H_
