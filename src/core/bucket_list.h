// Epoch-stamped bucket structure of Figure 5.
//
// A collection of doubly-linked lists, one per key value, over dense vertex
// ids. The paper uses it for the `li` heuristic (select the frontier vertex
// with the largest number of links to C in O(1)); we reuse the same
// structure min-oriented for the `lg` heuristic's minimum-degree sources.
// All operations are O(1) amortized; a query reset is O(1) thanks to epoch
// stamping on both the vertex entries and the bucket heads.
//
// Layout is flattened for the solvers' inner loops: each entry packs its
// epoch stamp and key into one aligned 8-byte cell (likewise each bucket
// head), so the membership test and the key read that every frontier probe
// needs cost a single cache-line touch. Erasure leaves a same-epoch
// tombstone instead of rolling the stamp back, which lets the stamp double
// as the solvers' "discovered at least once this query" bit — the
// single-probe IncrementOrInsert / IncrementIfPresent ops below are the
// specialized inner loops of the `li` and `lg` strategies.

#ifndef LOCS_CORE_BUCKET_LIST_H_
#define LOCS_CORE_BUCKET_LIST_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/prefetch.h"

namespace locs {

/// Keyed doubly-linked bucket lists with epoch-based O(1) reset.
class EpochBucketList {
 public:
  static constexpr uint32_t kNil = ~uint32_t{0};

  /// What a single-probe frontier op did.
  enum class Probe { kIncremented, kInserted, kSkipped };

  /// `capacity` bounds element ids, `max_key` bounds key values (so kNil
  /// is never a valid key and can serve as the erasure tombstone).
  EpochBucketList(uint32_t capacity, uint32_t max_key)
      : head_(static_cast<size_t>(max_key) + 1, 0),
        tail_(static_cast<size_t>(max_key) + 1, kNil),
        next_(capacity, kNil),
        prev_(capacity, kNil),
        entry_(capacity, 0) {}

  /// Invalidates the whole structure in O(1) (amortized: the 32-bit epoch
  /// wraps once per ~4G queries, paying one O(n + max_key) clear).
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(entry_.begin(), entry_.end(), uint64_t{0});
      std::fill(head_.begin(), head_.end(), uint64_t{0});
      epoch_ = 1;
    }
    size_ = 0;
    max_bucket_ = 0;
    min_bucket_ = 0;
  }

  bool Contains(uint32_t v) const {
    const uint64_t c = entry_[v];
    return (c >> 32) == epoch_ && static_cast<uint32_t>(c) != kNil;
  }

  /// True if `v` was inserted at least once this epoch, whether or not it
  /// has since been erased (tombstones keep the stamp current).
  bool Seen(uint32_t v) const { return (entry_[v] >> 32) == epoch_; }

  bool Empty() const { return size_ == 0; }
  uint32_t Size() const { return size_; }

  uint32_t Key(uint32_t v) const {
    LOCS_DCHECK(Contains(v));
    return static_cast<uint32_t>(entry_[v]);
  }

  /// Inserts `v` with the given key; v must not be present.
  void Insert(uint32_t v, uint32_t key) {
    LOCS_DCHECK(!Contains(v));
    LOCS_DCHECK(key < head_.size());
    entry_[v] = Pack(key);
    Link(v, key);
    if (size_ == 0) {
      max_bucket_ = min_bucket_ = key;
    } else {
      if (key > max_bucket_) max_bucket_ = key;
      if (key < min_bucket_) min_bucket_ = key;
    }
    ++size_;
  }

  /// Increments the key of a present element by one.
  void Increment(uint32_t v) {
    LOCS_DCHECK(Contains(v));
    Reslot(v, static_cast<uint32_t>(entry_[v]));
  }

  /// Single-probe inner loop of the `li` frontier: one cell load decides
  /// between incrementing a present element, skipping an element erased
  /// this epoch (popped entries must never be re-admitted), and inserting
  /// an unseen element with key `insert_key` — the latter only when
  /// `admit()` approves, evaluated lazily so callers pay the admission
  /// predicate only for genuinely new elements. The result tells the
  /// caller which telemetry counter to charge.
  template <typename AdmitFn>
  Probe IncrementOrInsert(uint32_t v, uint32_t insert_key, AdmitFn&& admit) {
    const uint64_t c = entry_[v];
    if ((c >> 32) == epoch_) {
      const uint32_t key = static_cast<uint32_t>(c);
      if (key == kNil) return Probe::kSkipped;  // erased: tombstone
      Reslot(v, key);
      return Probe::kIncremented;
    }
    if (!admit()) return Probe::kSkipped;
    Insert(v, insert_key);
    return Probe::kInserted;
  }

  /// Single-probe inner loop of the `lg` source list: increments `v` when
  /// present, no-ops when absent or erased.
  void IncrementIfPresent(uint32_t v) {
    const uint64_t c = entry_[v];
    if ((c >> 32) != epoch_) return;
    const uint32_t key = static_cast<uint32_t>(c);
    if (key == kNil) return;
    Reslot(v, key);
  }

  /// Removes a present element (leaving a same-epoch tombstone: Seen stays
  /// true, Contains becomes false, and re-Insert remains legal).
  void Erase(uint32_t v) {
    LOCS_DCHECK(Contains(v));
    Unlink(v, static_cast<uint32_t>(entry_[v]));
    entry_[v] = Pack(kNil);
    --size_;
  }

  /// Removes and returns an element with the maximal key.
  uint32_t PopMax() {
    LOCS_DCHECK(!Empty());
    const uint32_t v = MaxElement();
    Erase(v);
    return v;
  }

  /// An element with the maximal key (not removed).
  uint32_t MaxElement() {
    LOCS_DCHECK(!Empty());
    while (Head(max_bucket_) == kNil) {
      LOCS_DCHECK(max_bucket_ > 0);
      --max_bucket_;
    }
    return Head(max_bucket_);
  }

  /// The maximal key currently present.
  uint32_t MaxKey() { return Key(MaxElement()); }

  /// An element with the minimal key (not removed). Keys only grow through
  /// Increment, so the lazily advancing min pointer is amortized O(1).
  uint32_t MinElement() {
    LOCS_DCHECK(!Empty());
    while (Head(min_bucket_) == kNil) {
      LOCS_DCHECK(min_bucket_ + 1 < head_.size());
      ++min_bucket_;
    }
    return Head(min_bucket_);
  }

  /// The minimal key currently present.
  uint32_t MinKey() { return Key(MinElement()); }

  /// First element of the `key` bucket, or kNil.
  uint32_t Head(uint32_t key) const {
    const uint64_t h = head_[key];
    return (h >> 32) == epoch_ ? static_cast<uint32_t>(h) : kNil;
  }

  /// Successor of `v` within its bucket, or kNil.
  uint32_t Next(uint32_t v) const {
    LOCS_DCHECK(Contains(v));
    return next_[v];
  }

  /// Hints an upcoming probe of `v`'s cell to the hardware prefetcher.
  void Prefetch(uint32_t v) const { LOCS_PREFETCH(entry_.data() + v); }

 private:
  uint64_t Pack(uint32_t low) const { return (uint64_t{epoch_} << 32) | low; }

  /// Moves a present element from bucket `key` to bucket `key + 1`.
  void Reslot(uint32_t v, uint32_t key) {
    LOCS_DCHECK(key + 1 < head_.size());
    Unlink(v, key);
    entry_[v] = Pack(key + 1);
    Link(v, key + 1);
    if (key + 1 > max_bucket_) max_bucket_ = key + 1;
  }

  // Elements append at the tail and selection reads the head, so ties
  // within a bucket resolve in FIFO (discovery) order — this reproduces
  // the paper's Figure 4(b) selection trace exactly.
  void Link(uint32_t v, uint32_t key) {
    next_[v] = kNil;
    const uint64_t h = head_[key];
    if ((h >> 32) != epoch_ || static_cast<uint32_t>(h) == kNil) {
      head_[key] = Pack(v);
      tail_[key] = v;
      prev_[v] = kNil;
      return;
    }
    prev_[v] = tail_[key];
    next_[tail_[key]] = v;
    tail_[key] = v;
  }

  void Unlink(uint32_t v, uint32_t key) {
    if (prev_[v] != kNil) {
      next_[prev_[v]] = next_[v];
    } else {
      head_[key] = Pack(next_[v]);
    }
    if (next_[v] != kNil) {
      prev_[next_[v]] = prev_[v];
    } else {
      tail_[key] = prev_[v];
    }
  }

  std::vector<uint64_t> head_;   // per key: (stamp << 32) | first element
  std::vector<uint32_t> tail_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  std::vector<uint64_t> entry_;  // per element: (stamp << 32) | key
  uint32_t epoch_ = 1;
  uint32_t max_bucket_ = 0;
  uint32_t min_bucket_ = 0;
  uint32_t size_ = 0;
};

}  // namespace locs

#endif  // LOCS_CORE_BUCKET_LIST_H_
