// Epoch-stamped per-vertex scratch arrays.
//
// Local search must not pay O(|V|) per query (that would erase its whole
// advantage over global search), so per-vertex scratch state is validated
// by an epoch stamp instead of being cleared: bumping the epoch invalidates
// every entry in O(1).

#ifndef LOCS_CORE_EPOCH_H_
#define LOCS_CORE_EPOCH_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace locs {

/// Fixed-capacity array of T whose entries reset to T{} whenever the shared
/// epoch advances past their stamp.
template <typename T>
class EpochArray {
 public:
  explicit EpochArray(size_t capacity)
      : value_(capacity), stamp_(capacity, 0) {}

  /// Invalidates all entries in O(1).
  void NewEpoch() { ++epoch_; }

  /// Read: returns T{} for entries not written this epoch.
  T Get(uint32_t i) const {
    LOCS_DCHECK(i < value_.size());
    return stamp_[i] == epoch_ ? value_[i] : T{};
  }

  /// Write access: freshens the entry (resetting it to T{} first if stale).
  T& Ref(uint32_t i) {
    LOCS_DCHECK(i < value_.size());
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      value_[i] = T{};
    }
    return value_[i];
  }

  /// True if the entry was written during the current epoch.
  bool Fresh(uint32_t i) const {
    LOCS_DCHECK(i < value_.size());
    return stamp_[i] == epoch_;
  }

  size_t capacity() const { return value_.size(); }

 private:
  std::vector<T> value_;
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 1;
};

}  // namespace locs

#endif  // LOCS_CORE_EPOCH_H_
