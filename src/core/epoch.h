// Epoch-stamped per-vertex scratch arrays.
//
// Local search must not pay O(|V|) per query (that would erase its whole
// advantage over global search), so per-vertex scratch state is validated
// by an epoch stamp instead of being cleared: bumping the epoch invalidates
// every entry in O(1).

#ifndef LOCS_CORE_EPOCH_H_
#define LOCS_CORE_EPOCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/prefetch.h"

namespace locs {

/// Fixed-capacity array of T whose entries reset to T{} whenever the shared
/// epoch advances past their stamp.
template <typename T>
class EpochArray {
 public:
  explicit EpochArray(size_t capacity)
      : value_(capacity), stamp_(capacity, 0) {}

  /// Invalidates all entries in O(1).
  void NewEpoch() { ++epoch_; }

  /// Read: returns T{} for entries not written this epoch.
  T Get(uint32_t i) const {
    LOCS_DCHECK(i < value_.size());
    return stamp_[i] == epoch_ ? value_[i] : T{};
  }

  /// Write access: freshens the entry (resetting it to T{} first if stale).
  T& Ref(uint32_t i) {
    LOCS_DCHECK(i < value_.size());
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      value_[i] = T{};
    }
    return value_[i];
  }

  /// True if the entry was written during the current epoch.
  bool Fresh(uint32_t i) const {
    LOCS_DCHECK(i < value_.size());
    return stamp_[i] == epoch_;
  }

  size_t capacity() const { return value_.size(); }

 private:
  std::vector<T> value_;
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 1;
};

/// Stamp-only membership set: an index is "set" iff its stamp equals the
/// current epoch, so there is no separate value byte to touch. One aligned
/// 4-byte load per test and one store per set — half the footprint of
/// EpochArray<uint8_t> and a single cache line per 16 vertices.
class EpochFlags {
 public:
  explicit EpochFlags(size_t capacity) : stamp_(capacity, 0) {}

  /// Invalidates all entries in O(1) (amortized: the 32-bit epoch wraps
  /// once per ~4G queries, paying one O(n) clear).
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  bool Test(uint32_t i) const {
    LOCS_DCHECK(i < stamp_.size());
    return stamp_[i] == epoch_;
  }

  void Set(uint32_t i) {
    LOCS_DCHECK(i < stamp_.size());
    stamp_[i] = epoch_;
  }

  /// Sets the flag; returns true iff it was previously unset.
  bool TestAndSet(uint32_t i) {
    LOCS_DCHECK(i < stamp_.size());
    if (stamp_[i] == epoch_) return false;
    stamp_[i] = epoch_;
    return true;
  }

  /// Hints an upcoming Test/Set of entry `i` to the hardware prefetcher.
  void Prefetch(uint32_t i) const { LOCS_PREFETCH(stamp_.data() + i); }

  size_t capacity() const { return stamp_.size(); }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
};

/// Epoch-validated uint32 array with the stamp and the value packed into a
/// single aligned 8-byte cell, so validity and value cost one cache-line
/// touch (EpochArray<uint32_t> needs two: stamp vector + value vector).
/// Freshness doubles as a membership bit for the solvers: a vertex is in
/// the tracked set iff its cell was written this epoch.
class EpochU32Array {
 public:
  explicit EpochU32Array(size_t capacity) : cell_(capacity, 0) {}

  /// Invalidates all entries in O(1) (amortized across epoch wraps).
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(cell_.begin(), cell_.end(), uint64_t{0});
      epoch_ = 1;
    }
  }

  /// Read: 0 for entries not written this epoch.
  uint32_t Get(uint32_t i) const {
    LOCS_DCHECK(i < cell_.size());
    const uint64_t c = cell_[i];
    return (c >> 32) == epoch_ ? static_cast<uint32_t>(c) : 0u;
  }

  /// Writes `value` and freshens the entry.
  void Set(uint32_t i, uint32_t value) {
    LOCS_DCHECK(i < cell_.size());
    cell_[i] = (uint64_t{epoch_} << 32) | value;
  }

  /// True if the entry was written during the current epoch.
  bool Fresh(uint32_t i) const {
    LOCS_DCHECK(i < cell_.size());
    return (cell_[i] >> 32) == epoch_;
  }

  /// Hints an upcoming Get/Set of entry `i` to the hardware prefetcher.
  void Prefetch(uint32_t i) const { LOCS_PREFETCH(cell_.data() + i); }

  size_t capacity() const { return cell_.size(); }

 private:
  std::vector<uint64_t> cell_;
  uint32_t epoch_ = 1;
};

}  // namespace locs

#endif  // LOCS_CORE_EPOCH_H_
