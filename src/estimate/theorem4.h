// Theorem 4 and Lemma 5 of the paper: the asymptotic degree distribution of
// the induced subgraph G[V≥k] and the resulting estimates of its vertex and
// edge counts (§4.2.3, Figure 3's analytic series).

#ifndef LOCS_ESTIMATE_THEOREM4_H_
#define LOCS_ESTIMATE_THEOREM4_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace locs::estimate {

/// Theorem 4: for a graph with degree distribution P and stub-retention
/// probability p = ζ(k)/ζ(0), the probability that a uniform vertex of
/// G[V≥k] has degree t is
///   q_t = Σ_{i >= t} p_i · C(i, t) · p^t · (1 − p)^(i − t).
/// Returns {q_0, ..., q_ω}. (Lemma 5: the largest degree of G[V≥k] stays ω
/// asymptotically, so the vector keeps the full range.)
std::vector<double> QtDistribution(const std::vector<double>& distribution,
                                   uint32_t k);

/// Estimated |V≥k| = n · Σ_{i >= k} p_i.
double EstimateVerticesAbove(const std::vector<double>& distribution,
                             uint64_t n, uint32_t k);

/// Equation 3: estimated edge count m' of G[V≥k],
///   2m' ≈ |V≥k| · Σ_t t · q_t.
double EstimateEdgesAbove(const std::vector<double>& distribution,
                          uint64_t n, uint32_t k);

/// Convenience overloads computing the empirical distribution internally.
double EstimateVerticesAbove(const Graph& graph, uint32_t k);
double EstimateEdgesAbove(const Graph& graph, uint32_t k);

}  // namespace locs::estimate

#endif  // LOCS_ESTIMATE_THEOREM4_H_
