// Empirical degree distributions and the ζ tail sums of §4.2.3.

#ifndef LOCS_ESTIMATE_DEGREE_DIST_H_
#define LOCS_ESTIMATE_DEGREE_DIST_H_

#include <vector>

#include "graph/graph.h"

namespace locs::estimate {

/// Empirical degree distribution P = {p_0, ..., p_ω}: p_d is the fraction
/// of vertices with degree d; ω is the maximum degree.
std::vector<double> EmpiricalDegreeDistribution(const Graph& graph);

/// ζ(x) = Σ_{i >= x} i · p_i (the tail first-moment sum used to define the
/// stub-retention probability p = ζ(k)/ζ(0) in Theorem 4).
double Zeta(const std::vector<double>& distribution, uint32_t x);

/// Tail mass Σ_{i >= k} p_i — the expected fraction of vertices with
/// degree at least k, so |V≥k| ≈ n · TailMass(P, k).
double TailMass(const std::vector<double>& distribution, uint32_t k);

}  // namespace locs::estimate

#endif  // LOCS_ESTIMATE_DEGREE_DIST_H_
