#include "estimate/degree_dist.h"

namespace locs::estimate {

std::vector<double> EmpiricalDegreeDistribution(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<double> dist;
  if (n == 0) return dist;
  dist.assign(graph.MaxDegree() + 1, 0.0);
  const double unit = 1.0 / static_cast<double>(n);
  for (VertexId v = 0; v < n; ++v) dist[graph.Degree(v)] += unit;
  return dist;
}

double Zeta(const std::vector<double>& distribution, uint32_t x) {
  double sum = 0.0;
  for (size_t i = x; i < distribution.size(); ++i) {
    sum += static_cast<double>(i) * distribution[i];
  }
  return sum;
}

double TailMass(const std::vector<double>& distribution, uint32_t k) {
  double sum = 0.0;
  for (size_t i = k; i < distribution.size(); ++i) sum += distribution[i];
  return sum;
}

}  // namespace locs::estimate
