#include "estimate/theorem4.h"

#include <cmath>

#include "estimate/degree_dist.h"
#include "util/check.h"

namespace locs::estimate {

namespace {

/// log C(n, k) via lgamma, numerically stable for large n.
double LogBinomial(uint32_t n, uint32_t t) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(t) + 1.0) -
         std::lgamma(static_cast<double>(n - t) + 1.0);
}

}  // namespace

std::vector<double> QtDistribution(const std::vector<double>& distribution,
                                   uint32_t k) {
  const double zeta0 = Zeta(distribution, 0);
  std::vector<double> qt(distribution.size(), 0.0);
  if (zeta0 <= 0.0) return qt;
  const double p = Zeta(distribution, k) / zeta0;
  if (p <= 0.0) {
    if (!qt.empty()) qt[0] = 1.0;
    return qt;
  }
  const double logp = std::log(p);
  const double log1mp = p < 1.0 ? std::log1p(-p) : 0.0;
  for (uint32_t t = 0; t < qt.size(); ++t) {
    double sum = 0.0;
    for (uint32_t i = t; i < distribution.size(); ++i) {
      if (distribution[i] <= 0.0) continue;
      double log_term = LogBinomial(i, t) + static_cast<double>(t) * logp;
      if (i > t) {
        if (p >= 1.0) continue;  // (1-p)^(i-t) == 0
        log_term += static_cast<double>(i - t) * log1mp;
      }
      sum += distribution[i] * std::exp(log_term);
    }
    qt[t] = sum;
  }
  return qt;
}

double EstimateVerticesAbove(const std::vector<double>& distribution,
                             uint64_t n, uint32_t k) {
  return static_cast<double>(n) * TailMass(distribution, k);
}

double EstimateEdgesAbove(const std::vector<double>& distribution,
                          uint64_t n, uint32_t k) {
  const std::vector<double> qt = QtDistribution(distribution, k);
  double mean_degree = 0.0;
  for (uint32_t t = 0; t < qt.size(); ++t) {
    mean_degree += static_cast<double>(t) * qt[t];
  }
  return EstimateVerticesAbove(distribution, n, k) * mean_degree / 2.0;
}

double EstimateVerticesAbove(const Graph& graph, uint32_t k) {
  return EstimateVerticesAbove(EmpiricalDegreeDistribution(graph),
                               graph.NumVertices(), k);
}

double EstimateEdgesAbove(const Graph& graph, uint32_t k) {
  return EstimateEdgesAbove(EmpiricalDegreeDistribution(graph),
                            graph.NumVertices(), k);
}

}  // namespace locs::estimate
