// On-disk layout of a locs graph image (.limg) — the persistent,
// mmap-ready artifact holding one graph's CSR arrays plus every serving
// precomputation (degree-descending ordering, core numbers, the
// CoreIndex merge tree, and the GraphFacts scalars).
//
// Layout (all integers written in host byte order; the endianness tag
// in the header detects a cross-endian file at load):
//
//   ImageHeader            magic, version, endian tag, file size,
//                          whole-file checksum, section count
//   SectionEntry[count]    id + absolute byte offset + byte length
//   sections...            each starting at an 8-byte-aligned offset
//                          (zero padding between sections), so a span
//                          over the mmap is correctly aligned for its
//                          element type
//
// The checksum is FNV-1a 64 over the entire file with the checksum
// field itself read as zero. Version policy: the format version bumps
// on any layout change; readers reject unknown versions rather than
// guess (images are cheap to regenerate from the source graph).

#ifndef LOCS_STORE_FORMAT_H_
#define LOCS_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace locs::store {

/// First 8 bytes of every graph image.
inline constexpr char kImageMagic[8] = {'L', 'O', 'C', 'S',
                                        'I', 'M', 'G', '1'};

/// Current (only) format version.
inline constexpr uint32_t kImageVersion = 1;

/// Written as a native uint32; reads back byte-reversed on a machine of
/// the opposite endianness, which the reader rejects with a typed error.
inline constexpr uint32_t kEndianTag = 0x01020304u;
inline constexpr uint32_t kEndianTagSwapped = 0x04030201u;

/// Every section payload starts at a multiple of this.
inline constexpr uint64_t kSectionAlign = 8;

/// Section identifiers. A version-1 image contains each exactly once.
enum class SectionId : uint32_t {
  kMeta = 1,              ///< ImageMeta scalars
  kOffsets = 2,           ///< uint64[n+1] CSR offsets
  kNeighbors = 3,         ///< VertexId[2|E|] ascending adjacency
  kOrderedNeighbors = 4,  ///< VertexId[2|E|] degree-descending adjacency
                          ///< (shares the kOffsets array)
  kCoreNumbers = 5,       ///< uint32[n]
  kNodeLevel = 6,         ///< uint32[tree_node_count]
  kNodeParent = 7,        ///< uint32[tree_node_count]
  kNodeFirstChild = 8,    ///< uint32[tree_node_count]
  kNodeNextSibling = 9,   ///< uint32[tree_node_count]
  kNodeVertex = 10,       ///< VertexId[tree_node_count]
};
inline constexpr uint32_t kNumSections = 10;

/// Fixed file header. 8-byte aligned size so the section table that
/// follows is aligned too.
struct ImageHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t file_bytes;  ///< total file size; must match the mapping
  uint64_t checksum;    ///< FNV-1a 64 with this field read as zero
  uint32_t section_count;
  uint32_t reserved;
};
static_assert(sizeof(ImageHeader) == 40, "header layout is part of the ABI");

/// One section-table row.
struct SectionEntry {
  uint32_t id;  ///< SectionId
  uint32_t reserved;
  uint64_t offset;  ///< absolute byte offset, multiple of kSectionAlign
  uint64_t length;  ///< payload bytes
};
static_assert(sizeof(SectionEntry) == 24,
              "section entry layout is part of the ABI");

/// The kMeta payload: counts that size every other section plus the
/// GraphFacts scalars, so a cold load needs no recomputation (notably no
/// connectivity BFS).
struct ImageMeta {
  uint64_t num_vertices;
  uint64_t num_half_edges;   ///< 2|E| = neighbor-array length
  uint64_t tree_node_count;  ///< CoreIndex merge-tree nodes (>= vertices)
  uint32_t degeneracy;
  uint32_t max_degree;
  uint32_t connected;  ///< GraphFacts::connected, 0 or 1
  uint32_t reserved;
};
static_assert(sizeof(ImageMeta) == 40, "meta layout is part of the ABI");

inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Incremental FNV-1a 64: feed chunks, threading the returned state into
/// the next call's `state`.
inline uint64_t Fnv1a64(const void* data, size_t bytes,
                        uint64_t state = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

/// Rounds `offset` up to the next section boundary.
inline constexpr uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

}  // namespace locs::store

#endif  // LOCS_STORE_FORMAT_H_
