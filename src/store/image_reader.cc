// Image loading: mmap, verify, and zero-copy reconstruction.
//
// The reader trusts nothing. Header fields gate format/version/
// endianness; the declared file size must match the mapping; the
// whole-file checksum catches accidental corruption; and a final O(n+m)
// structural pass proves the arrays are internally consistent (offsets
// monotone and bounded, adjacency sorted and in-range, merge-tree links
// forming a forest) before any solver sees them — so even an
// adversarially crafted image with a valid checksum yields a typed
// IoError, never out-of-range indexing or a non-terminating tree walk.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "store/format.h"
#include "store/image.h"
#include "store/mapped_file.h"

namespace locs::store {

namespace {

void Fail(IoError* error, IoErrorKind kind, std::string message) {
  if (error == nullptr) return;
  error->kind = kind;
  error->message = std::move(message);
  error->line = 0;
}

constexpr uint32_t kNil = CoreIndex::kNil;

/// Section table resolved by id; length checked before use.
struct Sections {
  // Indexed by SectionId value (1-based); slot 0 unused.
  const char* data[kNumSections + 1] = {};
  uint64_t length[kNumSections + 1] = {};
};

const char* SectionData(const Sections& s, SectionId id) {
  return s.data[static_cast<uint32_t>(id)];
}

uint64_t SectionLength(const Sections& s, SectionId id) {
  return s.length[static_cast<uint32_t>(id)];
}

/// Typed view of a section; alignment is guaranteed by the 8-byte
/// section alignment over a page-aligned mapping.
template <typename T>
std::span<const T> SectionSpan(const Sections& s, SectionId id) {
  return {reinterpret_cast<const T*>(SectionData(s, id)),
          static_cast<size_t>(SectionLength(s, id) / sizeof(T))};
}

/// Checksum over the mapping with the header's checksum field zeroed.
uint64_t FileChecksum(const char* base, size_t size) {
  constexpr size_t kField = offsetof(ImageHeader, checksum);
  constexpr char kZeros[sizeof(uint64_t)] = {};
  uint64_t fnv = Fnv1a64(base, kField);
  fnv = Fnv1a64(kZeros, sizeof(kZeros), fnv);
  return Fnv1a64(base + kField + sizeof(uint64_t),
                 size - kField - sizeof(uint64_t), fnv);
}

/// The merge-tree links must form a forest rooted by kNil parents:
/// parents strictly above children (ids increase with creation time, so
/// a valid tree always has parent > child), levels non-increasing toward
/// the root (merges happen at or below their children's level — the
/// invariant AncestorAtLevel's upward walk relies on to stop at the
/// right node), leaves childless, and sibling chains duplicate-free and
/// consistent with the parent array. This bounds every tree walk a
/// query performs and pins the node each walk lands on.
bool ValidateTree(std::span<const uint32_t> level,
                  std::span<const uint32_t> parent,
                  std::span<const uint32_t> first_child,
                  std::span<const uint32_t> next_sibling,
                  std::span<const VertexId> vertex, uint64_t num_vertices) {
  const auto t = static_cast<uint32_t>(parent.size());
  for (uint32_t i = 0; i < t; ++i) {
    if (parent[i] != kNil && (parent[i] <= i || parent[i] >= t)) {
      return false;
    }
    if (parent[i] != kNil && level[parent[i]] > level[i]) return false;
    const bool is_leaf = i < num_vertices;
    if (is_leaf && vertex[i] != i) return false;
    if (is_leaf && first_child[i] != kNil) return false;
    if (!is_leaf && vertex[i] != kNil) return false;
  }
  std::vector<bool> seen(t, false);
  for (uint32_t p = 0; p < t; ++p) {
    for (uint32_t child = first_child[p]; child != kNil;
         child = next_sibling[child]) {
      // seen[] rejects a node reached from two parents or a cyclic
      // sibling chain (a cycle revisits within t steps).
      if (child >= t || seen[child] || parent[child] != p) return false;
      seen[child] = true;
    }
  }
  return true;
}

}  // namespace

bool SniffGraphImage(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char magic[sizeof(kImageMagic)] = {};
  const bool ok =
      std::fread(magic, 1, sizeof(magic), file) == sizeof(magic) &&
      std::memcmp(magic, kImageMagic, sizeof(magic)) == 0;
  std::fclose(file);
  return ok;
}

std::optional<LoadedImage> LoadGraphImage(const std::string& path,
                                          IoError* error) {
  if (error != nullptr) *error = IoError{};
  auto mapped = MappedFile::Open(path, error);
  if (mapped == nullptr) return std::nullopt;
  const char* base = mapped->data();
  const size_t size = mapped->size();

  // --- Header ---
  if (size < sizeof(ImageHeader)) {
    Fail(error, IoErrorKind::kTruncated,
         path + ": too small for an image header");
    return std::nullopt;
  }
  ImageHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kImageMagic, sizeof(kImageMagic)) != 0) {
    Fail(error, IoErrorKind::kParse, path + ": not a graph image");
    return std::nullopt;
  }
  if (header.endian == kEndianTagSwapped) {
    Fail(error, IoErrorKind::kParse,
         path + ": image was written on an opposite-endianness machine");
    return std::nullopt;
  }
  if (header.endian != kEndianTag) {
    Fail(error, IoErrorKind::kParse, path + ": bad endianness tag");
    return std::nullopt;
  }
  if (header.version != kImageVersion) {
    Fail(error, IoErrorKind::kParse,
         path + ": unsupported image version " +
             std::to_string(header.version) + " (reader supports " +
             std::to_string(kImageVersion) + ")");
    return std::nullopt;
  }
  if (header.file_bytes != size) {
    Fail(error, IoErrorKind::kTruncated,
         path + ": file is " + std::to_string(size) +
             " bytes but the header declares " +
             std::to_string(header.file_bytes));
    return std::nullopt;
  }
  if (FileChecksum(base, size) != header.checksum) {
    Fail(error, IoErrorKind::kParse, path + ": checksum mismatch");
    return std::nullopt;
  }
  if (header.section_count != kNumSections) {
    Fail(error, IoErrorKind::kParse,
         path + ": expected " + std::to_string(kNumSections) +
             " sections, header declares " +
             std::to_string(header.section_count));
    return std::nullopt;
  }

  // --- Section table ---
  const uint64_t table_end =
      sizeof(ImageHeader) + kNumSections * sizeof(SectionEntry);
  if (size < table_end) {
    Fail(error, IoErrorKind::kTruncated,
         path + ": truncated section table");
    return std::nullopt;
  }
  Sections sections;
  for (uint32_t i = 0; i < kNumSections; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, base + sizeof(ImageHeader) + i * sizeof(entry),
                sizeof(entry));
    if (entry.id == 0 || entry.id > kNumSections ||
        sections.data[entry.id] != nullptr) {
      Fail(error, IoErrorKind::kParse,
           path + ": bad or duplicate section id " +
               std::to_string(entry.id));
      return std::nullopt;
    }
    if (entry.offset % kSectionAlign != 0 || entry.offset > size ||
        entry.length > size - entry.offset) {
      Fail(error, IoErrorKind::kTruncated,
           path + ": section " + std::to_string(entry.id) +
               " extends past the end of the file");
      return std::nullopt;
    }
    sections.data[entry.id] = base + entry.offset;
    sections.length[entry.id] = entry.length;
  }

  // --- Meta + per-section length cross-check ---
  if (SectionLength(sections, SectionId::kMeta) != sizeof(ImageMeta)) {
    Fail(error, IoErrorKind::kParse, path + ": bad meta section size");
    return std::nullopt;
  }
  ImageMeta meta;
  std::memcpy(&meta, SectionData(sections, SectionId::kMeta), sizeof(meta));
  const uint64_t n = meta.num_vertices;
  const uint64_t half = meta.num_half_edges;
  const uint64_t tree = meta.tree_node_count;
  if (n >= kNil || tree >= kNil || tree < n || half % 2 != 0) {
    Fail(error, IoErrorKind::kParse, path + ": implausible meta counts");
    return std::nullopt;
  }
  const struct {
    SectionId id;
    uint64_t count;
    uint64_t elem_bytes;
  } expected_counts[] = {
      {SectionId::kOffsets, n + 1, sizeof(uint64_t)},
      {SectionId::kNeighbors, half, sizeof(VertexId)},
      {SectionId::kOrderedNeighbors, half, sizeof(VertexId)},
      {SectionId::kCoreNumbers, n, sizeof(uint32_t)},
      {SectionId::kNodeLevel, tree, sizeof(uint32_t)},
      {SectionId::kNodeParent, tree, sizeof(uint32_t)},
      {SectionId::kNodeFirstChild, tree, sizeof(uint32_t)},
      {SectionId::kNodeNextSibling, tree, sizeof(uint32_t)},
      {SectionId::kNodeVertex, tree, sizeof(VertexId)},
  };
  for (const auto& want : expected_counts) {
    // Compare element counts via division, never `count * elem_bytes`: a
    // crafted count near 2^64 (e.g. half = 2^62 with 4-byte elements)
    // wraps the product to match a short or empty section, which would
    // send the `i < count` validation loops far past the mapping. The
    // section length is already bounded by the file size, so the
    // division side cannot be spoofed.
    const uint64_t length = SectionLength(sections, want.id);
    if (length % want.elem_bytes != 0 ||
        length / want.elem_bytes != want.count) {
      Fail(error, IoErrorKind::kParse,
           path + ": section " +
               std::to_string(static_cast<uint32_t>(want.id)) +
               " length disagrees with the meta counts");
      return std::nullopt;
    }
  }

  const auto offsets = SectionSpan<uint64_t>(sections, SectionId::kOffsets);
  const auto neighbors =
      SectionSpan<VertexId>(sections, SectionId::kNeighbors);
  const auto ordered_neighbors =
      SectionSpan<VertexId>(sections, SectionId::kOrderedNeighbors);
  const auto core = SectionSpan<uint32_t>(sections, SectionId::kCoreNumbers);
  const auto node_level =
      SectionSpan<uint32_t>(sections, SectionId::kNodeLevel);
  const auto node_parent =
      SectionSpan<uint32_t>(sections, SectionId::kNodeParent);
  const auto node_first_child =
      SectionSpan<uint32_t>(sections, SectionId::kNodeFirstChild);
  const auto node_next_sibling =
      SectionSpan<uint32_t>(sections, SectionId::kNodeNextSibling);
  const auto node_vertex =
      SectionSpan<VertexId>(sections, SectionId::kNodeVertex);

  // --- Structural validation (the checksum already rules out accidental
  // corruption; this pass rules out a *crafted* image indexing out of
  // range or breaking solver invariants) ---
  const char* bad_structure = nullptr;
  uint32_t max_degree = 0;
  uint32_t max_core = 0;
  if (offsets[0] != 0 || offsets[n] != half) {
    bad_structure = "CSR offsets do not cover the neighbor array";
  }
  for (uint64_t v = 0; bad_structure == nullptr && v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      bad_structure = "CSR offsets are not monotone";
      break;
    }
    max_degree = std::max(
        max_degree, static_cast<uint32_t>(offsets[v + 1] - offsets[v]));
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      // Strictly ascending in-range adjacency: what Graph::FromCsr
      // asserts and HasEdge's binary search requires.
      if (neighbors[i] >= n || neighbors[i] == v ||
          (i + 1 < offsets[v + 1] && neighbors[i] >= neighbors[i + 1])) {
        bad_structure = "adjacency list is not sorted in-range";
        break;
      }
    }
  }
  for (uint64_t i = 0; bad_structure == nullptr && i < half; ++i) {
    if (ordered_neighbors[i] >= n) {
      bad_structure = "ordered adjacency references a missing vertex";
      break;
    }
  }
  for (uint64_t v = 0; bad_structure == nullptr && v < n; ++v) {
    max_core = std::max(max_core, core[v]);
    if (node_level[v] != core[v]) {
      bad_structure = "leaf levels disagree with core numbers";
      break;
    }
  }
  if (bad_structure == nullptr && n > 0 &&
      (max_degree != meta.max_degree || max_core != meta.degeneracy)) {
    bad_structure = "meta scalars disagree with the arrays";
  }
  if (bad_structure == nullptr &&
      !ValidateTree(node_level, node_parent, node_first_child,
                    node_next_sibling, node_vertex, n)) {
    bad_structure = "merge-tree links do not form a forest";
  }
  if (bad_structure != nullptr) {
    Fail(error, IoErrorKind::kParse,
         path + ": structural validation failed: " + bad_structure);
    return std::nullopt;
  }

  // --- Zero-copy construction: every ConstArray views the mapping and
  // shares the MappedFile keepalive ---
  const std::shared_ptr<const void> region = mapped;
  Graph graph =
      Graph::FromParts(ConstArray<uint64_t>(offsets, region),
                       ConstArray<VertexId>(neighbors, region));
  OrderedAdjacency ordered = OrderedAdjacency::FromParts(
      graph.offsets(), ConstArray<VertexId>(ordered_neighbors, region));
  CoreIndex index = CoreIndex::FromParts(
      ConstArray<uint32_t>(core, region), meta.degeneracy,
      ConstArray<uint32_t>(node_level, region),
      ConstArray<uint32_t>(node_parent, region),
      ConstArray<uint32_t>(node_first_child, region),
      ConstArray<uint32_t>(node_next_sibling, region),
      ConstArray<VertexId>(node_vertex, region));
  GraphFacts facts;
  facts.num_vertices = n;
  facts.num_edges = half / 2;
  facts.max_degree = meta.max_degree;
  facts.connected = meta.connected != 0;
  return LoadedImage{std::move(graph), facts, std::move(ordered),
                     std::move(index)};
}

}  // namespace locs::store
