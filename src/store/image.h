// Graph image store — versioned binary snapshots of a fully indexed
// graph, loaded back via mmap with zero copy (see format.h for the
// layout).
//
// Compile once, load in milliseconds: `locs_cli compile` (or
// WriteGraphImage) serializes the CSR arrays, the §4.3.2 degree-ordered
// adjacency, the core decomposition, and the CoreIndex merge tree;
// LoadGraphImage maps the file read-only and builds Graph /
// OrderedAdjacency / CoreIndex objects whose ConstArray storage points
// straight into the mapping. No parse, no Batagelj–Zaversnik recompute,
// no connectivity BFS — the cold-start cost the serving layer used to
// pay on every restart.

#ifndef LOCS_STORE_IMAGE_H_
#define LOCS_STORE_IMAGE_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/core_index.h"
#include "core/local_cst.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/ordering.h"

namespace locs::store {

/// Canonical extension for graph-image files.
inline constexpr std::string_view kImageExtension = ".limg";

/// Everything LoadGraphImage materializes: the graph and the three
/// serving precomputations, all backed by the shared mmap region.
struct LoadedImage {
  Graph graph;
  GraphFacts facts;
  OrderedAdjacency ordered;
  CoreIndex index;
};

/// Serializes `graph` plus its precomputations to `path`. Returns false
/// on I/O failure with `error` populated.
bool WriteGraphImage(const Graph& graph, const GraphFacts& facts,
                     const OrderedAdjacency& ordered, const CoreIndex& index,
                     const std::string& path, IoError* error = nullptr);

/// Convenience wrapper: computes facts/ordering/index from `graph`, then
/// writes the image. This is the `locs_cli compile` entry point.
bool CompileGraphImage(const Graph& graph, const std::string& path,
                       IoError* error = nullptr);

/// Maps `path` and reconstructs the graph with zero copy. Every failure
/// mode — unreadable file, bad magic, unsupported version, wrong
/// endianness, truncation, checksum mismatch, structurally invalid
/// arrays — yields std::nullopt with a typed `error`; a corrupt image
/// can never produce UB or a structurally broken graph.
std::optional<LoadedImage> LoadGraphImage(const std::string& path,
                                          IoError* error = nullptr);

/// True iff `path` exists and starts with the graph-image magic — the
/// content sniff behind LOAD's image auto-detection (works regardless of
/// the file's extension).
bool SniffGraphImage(const std::string& path);

}  // namespace locs::store

#endif  // LOCS_STORE_IMAGE_H_
