#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>

#include "store/format.h"
#include "store/image.h"

namespace locs::store {

namespace {

void Fail(IoError* error, IoErrorKind kind, std::string message) {
  if (error == nullptr) return;
  error->kind = kind;
  error->message = std::move(message);
  error->line = 0;
}

/// fwrite that also threads the running FNV-1a state, so the checksum is
/// computed in one streaming pass (the header's checksum field is
/// written as zero and patched after the last section).
class HashingWriter {
 public:
  explicit HashingWriter(std::FILE* file) : file_(file) {}

  bool Write(const void* data, size_t bytes) {
    if (bytes == 0) return true;
    fnv_ = Fnv1a64(data, bytes, fnv_);
    written_ += bytes;
    return std::fwrite(data, 1, bytes, file_) == bytes;
  }

  /// Writes zero bytes up to absolute offset `target`.
  bool PadTo(uint64_t target) {
    static constexpr char kZeros[kSectionAlign] = {};
    while (written_ < target) {
      const auto chunk =
          static_cast<size_t>(std::min<uint64_t>(target - written_,
                                                 sizeof(kZeros)));
      if (!Write(kZeros, chunk)) return false;
    }
    return true;
  }

  uint64_t checksum() const { return fnv_; }
  uint64_t written() const { return written_; }

 private:
  std::FILE* file_;
  uint64_t fnv_ = kFnvOffsetBasis;
  uint64_t written_ = 0;
};

}  // namespace

bool WriteGraphImage(const Graph& graph, const GraphFacts& facts,
                     const OrderedAdjacency& ordered, const CoreIndex& index,
                     const std::string& path, IoError* error) {
  const uint64_t n = graph.NumVertices();
  const uint64_t half_edges = graph.neighbors().size();
  const uint64_t tree_nodes = index.NumTreeNodes();

  ImageMeta meta = {};
  meta.num_vertices = n;
  meta.num_half_edges = half_edges;
  meta.tree_node_count = tree_nodes;
  meta.degeneracy = index.Degeneracy();
  meta.max_degree = facts.max_degree;
  meta.connected = facts.connected ? 1u : 0u;

  // The ten sections, in SectionId order. The payload pointer/length
  // pairs reference the live in-memory arrays; nothing is staged.
  struct Payload {
    SectionId id;
    const void* data;
    uint64_t bytes;
  };
  const Payload payloads[kNumSections] = {
      {SectionId::kMeta, &meta, sizeof(meta)},
      {SectionId::kOffsets, graph.offsets().data(),
       graph.offsets().size() * sizeof(uint64_t)},
      {SectionId::kNeighbors, graph.neighbors().data(),
       half_edges * sizeof(VertexId)},
      {SectionId::kOrderedNeighbors, ordered.neighbors().data(),
       half_edges * sizeof(VertexId)},
      {SectionId::kCoreNumbers, index.core_numbers().data(),
       n * sizeof(uint32_t)},
      {SectionId::kNodeLevel, index.node_level().data(),
       tree_nodes * sizeof(uint32_t)},
      {SectionId::kNodeParent, index.node_parent().data(),
       tree_nodes * sizeof(uint32_t)},
      {SectionId::kNodeFirstChild, index.node_first_child().data(),
       tree_nodes * sizeof(uint32_t)},
      {SectionId::kNodeNextSibling, index.node_next_sibling().data(),
       tree_nodes * sizeof(uint32_t)},
      {SectionId::kNodeVertex, index.node_vertex().data(),
       tree_nodes * sizeof(VertexId)},
  };

  // Lay out the section table before writing anything.
  SectionEntry table[kNumSections] = {};
  uint64_t cursor =
      sizeof(ImageHeader) + kNumSections * sizeof(SectionEntry);
  for (uint32_t i = 0; i < kNumSections; ++i) {
    cursor = AlignUp(cursor);
    table[i].id = static_cast<uint32_t>(payloads[i].id);
    table[i].offset = cursor;
    table[i].length = payloads[i].bytes;
    cursor += payloads[i].bytes;
  }
  const uint64_t file_bytes = cursor;

  ImageHeader header = {};
  std::memcpy(header.magic, kImageMagic, sizeof(kImageMagic));
  header.version = kImageVersion;
  header.endian = kEndianTag;
  header.file_bytes = file_bytes;
  header.checksum = 0;  // patched below
  header.section_count = kNumSections;

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    Fail(error, IoErrorKind::kOpen,
         "cannot create " + path + ": " + std::strerror(errno));
    return false;
  }

  HashingWriter writer(file);
  bool ok = writer.Write(&header, sizeof(header)) &&
            writer.Write(table, sizeof(table));
  for (uint32_t i = 0; ok && i < kNumSections; ++i) {
    ok = writer.PadTo(table[i].offset) &&
         writer.Write(payloads[i].data, payloads[i].bytes);
  }
  // Patch the checksum in place; the field was hashed as zero.
  const uint64_t checksum = writer.checksum();
  ok = ok && writer.written() == file_bytes &&
       std::fseek(file, static_cast<long>(offsetof(ImageHeader, checksum)),
                  SEEK_SET) == 0 &&
       std::fwrite(&checksum, sizeof(checksum), 1, file) == 1;
  // Capture errno before fclose: when an fwrite/fseek above failed but
  // the close itself succeeds, fclose would leave a stale or unrelated
  // value behind ("write failed: Success").
  int write_errno = ok ? 0 : errno;
  if (std::fclose(file) != 0) {
    if (ok) write_errno = errno;
    ok = false;
  }
  if (!ok) {
    Fail(error, IoErrorKind::kOpen,
         "write failed for " + path + ": " + std::strerror(write_errno));
    std::remove(path.c_str());  // never leave a half-written image
    return false;
  }
  if (error != nullptr) *error = IoError{};
  return true;
}

bool CompileGraphImage(const Graph& graph, const std::string& path,
                       IoError* error) {
  const GraphFacts facts = GraphFacts::Compute(graph);
  const OrderedAdjacency ordered(graph);
  const CoreIndex index(graph);
  return WriteGraphImage(graph, facts, ordered, index, path, error);
}

}  // namespace locs::store
