// Read-only memory-mapped file. The mapping is the keepalive region
// behind every ConstArray an image-backed graph hands out: the
// shared_ptr<MappedFile> travels inside Graph/CoreIndex storage, and the
// file unmaps only when the last snapshot reference drops (e.g. after an
// EVICT once in-flight queries drain).

#ifndef LOCS_STORE_MAPPED_FILE_H_
#define LOCS_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "graph/io.h"

namespace locs::store {

/// An open mmap(PROT_READ) of a whole file. The descriptor is closed
/// right after mapping; the mapping lives until destruction.
class MappedFile {
 public:
  /// Maps `path` read-only. Returns null on failure with `error`
  /// populated (kOpen for open/stat/mmap problems, kParse for an empty
  /// file, which can never hold a valid image header). Failpoints
  /// `serve.store.image_open_error` and `serve.store.image_mmap_error`
  /// force the respective failure for chaos testing.
  static std::shared_ptr<const MappedFile> Open(const std::string& path,
                                                IoError* error);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const char* data, size_t size) : data_(data), size_(size) {}

  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace locs::store

#endif  // LOCS_STORE_MAPPED_FILE_H_
