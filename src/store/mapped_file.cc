#include "store/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace locs::store {

namespace {

void Fail(IoError* error, IoErrorKind kind, std::string message) {
  if (error == nullptr) return;
  error->kind = kind;
  error->message = std::move(message);
  error->line = 0;
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::Open(const std::string& path,
                                                   IoError* error) {
  if (LOCS_FAILPOINT("serve.store.image_open_error")) {
    Fail(error, IoErrorKind::kOpen, "injected image open fault: " + path);
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(android-cloexec-open)
  if (fd < 0) {
    Fail(error, IoErrorKind::kOpen,
         "cannot open " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    Fail(error, IoErrorKind::kOpen,
         "cannot stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    Fail(error, IoErrorKind::kParse, path + " is empty");
    ::close(fd);
    return nullptr;
  }
  void* mapping = MAP_FAILED;
  if (LOCS_FAILPOINT("serve.store.image_mmap_error")) {
    errno = ENOMEM;
  } else {
    mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  ::close(fd);
  if (mapping == MAP_FAILED) {
    Fail(error, IoErrorKind::kOpen,
         "cannot mmap " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  return std::shared_ptr<const MappedFile>(
      new MappedFile(static_cast<const char*>(mapping), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

}  // namespace locs::store
