// Recorder — where a solver's QueryTelemetry goes when the query ends.
//
// The base class is a no-op null sink: `timing_enabled()` is false (so
// PhaseTracker never reads a clock) and `Record` discards. Solvers hold
// a `Recorder*` defaulting to `Recorder::Null()`, which makes the
// telemetry layer zero-overhead-when-disabled by construction — the
// only residual cost is the plain counter increments the old QueryStats
// already paid.
//
// AggregateRecorder is the server-side sink: relaxed-atomic per-phase
// totals, safe to share across sessions/workers, snapshotted by locsd's
// STATS verb. The JSONL trace sink lives in obs/trace_sink.h.

#ifndef LOCS_OBS_RECORDER_H_
#define LOCS_OBS_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/telemetry.h"

namespace locs::obs {

/// Telemetry sink interface; the base class IS the null sink.
class Recorder {
 public:
  virtual ~Recorder() = default;

  /// When false (the default), solvers skip all clock reads; phase
  /// durations stay zero.
  virtual bool timing_enabled() const { return false; }

  /// Called once per completed query with the full telemetry object.
  virtual void Record(const QueryTelemetry& telemetry) {
    (void)telemetry;
  }

  /// Called when a serving-layer result cache answers a query without
  /// running a solver. No QueryTelemetry exists for such a query (no
  /// phase ran), so this is a separate, counter-only event; the null
  /// sink discards it.
  virtual void RecordCacheHit() {}

  /// The process-wide no-op sink solvers default to.
  static Recorder& Null();
};

/// Thread-safe running totals across queries: each Record folds one
/// query's telemetry into per-phase relaxed-atomic counters. Relaxed
/// ordering is enough — the totals are monotone counters read for
/// monitoring, not for synchronization.
class AggregateRecorder : public Recorder {
 public:
  bool timing_enabled() const override { return true; }
  void Record(const QueryTelemetry& telemetry) override;
  void RecordCacheHit() override;

  struct Totals {
    uint64_t queries = 0;
    uint64_t fallbacks = 0;
    uint64_t cache_hits = 0;  ///< queries answered without a solver run
    QueryTelemetry sum;
  };

  /// A coherent-enough copy of the running totals (each counter is read
  /// atomically; the set is not a consistent cut, as usual for stats).
  Totals Snapshot() const;

 private:
  struct AtomicPhase {
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> entered{0};
    std::atomic<uint64_t> vertices_visited{0};
    std::atomic<uint64_t> edges_scanned{0};
    std::atomic<uint64_t> candidates_generated{0};
    std::atomic<uint64_t> candidates_rejected{0};
    std::atomic<uint64_t> budget_spent{0};
  };

  std::array<AtomicPhase, kNumPhases> phases_;
  std::atomic<uint64_t> answer_sizes_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> cache_hits_{0};
};

}  // namespace locs::obs

#endif  // LOCS_OBS_RECORDER_H_
