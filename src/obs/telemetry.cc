#include "obs/telemetry.h"

#include <chrono>

namespace locs::obs {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAdmission:
      return "admission";
    case Phase::kExpansion:
      return "expansion";
    case Phase::kCandidates:
      return "candidates";
    case Phase::kCoreDecomposition:
      return "core";
    case Phase::kConnectivity:
      return "connectivity";
  }
  return "unknown";
}

uint64_t PhaseTracker::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace locs::obs
