// QueryTelemetry — per-query, per-phase effort accounting.
//
// The paper's evaluation (Figures 8–16) is an argument about *search
// effort*: visited vertices, candidate-set growth, γ-bounded expansion.
// This header defines the object that carries that accounting out of a
// solver: a fixed set of phases (admission, expansion, candidate
// generation, core decomposition, connectivity) each with monotonic
// -clock span durations and work counters. Every solver fills one
// QueryTelemetry per query and hands it back inside SearchResult; the
// legacy QueryStats counters are now a derived view of these totals.
//
// Cost model: with the default null Recorder (see obs/recorder.h) no
// clock is ever read — PhaseTracker::Enter is a couple of plain stores —
// and the per-vertex/per-edge counter increments are the same plain
// `++field` on a local struct that QueryStats always did. Timing is
// read only when a sink that wants it (TraceSink, AggregateRecorder) is
// attached.
//
// This layer depends only on locs_util so that graph/core/exec/serve and
// the benches can all share it.

#ifndef LOCS_OBS_TELEMETRY_H_
#define LOCS_OBS_TELEMETRY_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace locs::obs {

/// The phases a community-search query moves through. Not every solver
/// visits every phase; a phase with `entered == 0` did not run.
enum class Phase : uint8_t {
  /// Query-vertex admission: degree checks, core-number lookups, and
  /// other constant-ish setup before expansion starts.
  kAdmission = 0,
  /// Candidate expansion rounds (AddToC / AddToA loops): the γ-bounded
  /// frontier growth of Algorithms 2–4.
  kExpansion,
  /// Candidate-set generation beyond the expansion frontier (the
  /// Cnaive(k) BFS of local CSM solution 2).
  kCandidates,
  /// Core decomposition / peeling (global solvers, the G[C] fallback of
  /// Algorithm 2 line 6, MaxCoreOfCandidates).
  kCoreDecomposition,
  /// Connectivity checks and component harvest (BFS over a peeled
  /// subgraph to extract the component containing the query vertex).
  kConnectivity,
};

inline constexpr size_t kNumPhases = 5;

/// Stable lowercase phase identifier ("admission", "expansion",
/// "candidates", "core", "connectivity") — used in trace output and wire
/// replies, so treat it as a format contract.
std::string_view PhaseName(Phase phase);

/// Counters and span time for one phase of one query.
struct PhaseStats {
  /// Total monotonic-clock time spent in spans of this phase. Zero when
  /// the attached Recorder does not want timing (the default).
  uint64_t duration_ns = 0;
  /// Number of spans opened (e.g. expansion entered once per solve, but
  /// core decomposition once per binary-search probe in multi-CSM).
  uint64_t entered = 0;
  /// Vertices moved into the candidate/visited set in this phase.
  uint64_t vertices_visited = 0;
  /// Adjacency entries touched in this phase.
  uint64_t edges_scanned = 0;
  /// Candidates produced (enqueued for possible expansion).
  uint64_t candidates_generated = 0;
  /// Candidates discarded without joining the answer set (e.g. degree
  /// below threshold, outside the harvested prefix).
  uint64_t candidates_rejected = 0;
  /// γ-budget units consumed (local CSM step 1; CST candidate budget).
  uint64_t budget_spent = 0;

  /// The guard-visible work total for this phase.
  uint64_t Work() const { return vertices_visited + edges_scanned; }

  void Merge(const PhaseStats& other) {
    duration_ns += other.duration_ns;
    entered += other.entered;
    vertices_visited += other.vertices_visited;
    edges_scanned += other.edges_scanned;
    candidates_generated += other.candidates_generated;
    candidates_rejected += other.candidates_rejected;
    budget_spent += other.budget_spent;
  }
};

/// Everything a solver reports about one query's effort.
struct QueryTelemetry {
  std::array<PhaseStats, kNumPhases> phases;
  /// Line 6 of Algorithm 2 ran (candidate generation alone did not find
  /// the answer and the global method on G[C] finished the query).
  bool used_global_fallback = false;
  /// Size of the returned community (0 when there is none).
  uint64_t answer_size = 0;

  PhaseStats& operator[](Phase phase) {
    return phases[static_cast<size_t>(phase)];
  }
  const PhaseStats& operator[](Phase phase) const {
    return phases[static_cast<size_t>(phase)];
  }

  uint64_t TotalVisited() const {
    uint64_t total = 0;
    for (const PhaseStats& p : phases) total += p.vertices_visited;
    return total;
  }
  uint64_t TotalScanned() const {
    uint64_t total = 0;
    for (const PhaseStats& p : phases) total += p.edges_scanned;
    return total;
  }
  /// The quantity QueryGuard budgets charge against: visited + scanned.
  uint64_t TotalWork() const { return TotalVisited() + TotalScanned(); }
  uint64_t TotalDurationNs() const {
    uint64_t total = 0;
    for (const PhaseStats& p : phases) total += p.duration_ns;
    return total;
  }

  void Merge(const QueryTelemetry& other) {
    for (size_t i = 0; i < kNumPhases; ++i) phases[i].Merge(other.phases[i]);
    used_global_fallback |= other.used_global_fallback;
    answer_size += other.answer_size;
  }

  void Reset() { *this = QueryTelemetry{}; }
};

/// Span bookkeeping for one query: tracks which phase is open and, when
/// timing is wanted, charges elapsed monotonic time to the phase being
/// left. With `timed == false` (the null-recorder default) Enter/Finish
/// never read a clock.
class PhaseTracker {
 public:
  PhaseTracker(QueryTelemetry* telemetry, bool timed)
      : telemetry_(telemetry), timed_(timed) {
    if (timed_) start_ns_ = NowNs();
  }

  /// Closes the open span (if any) and opens a span of `phase`. Returns
  /// the phase's counter block so call sites increment it directly.
  PhaseStats& Enter(Phase phase) {
    CloseSpan();
    open_ = true;
    current_ = phase;
    PhaseStats& stats = (*telemetry_)[phase];
    ++stats.entered;
    return stats;
  }

  /// Closes the open span without opening another (end of query, or a
  /// stretch of untimed glue between phases).
  void Finish() {
    CloseSpan();
    open_ = false;
  }

 private:
  static uint64_t NowNs();

  void CloseSpan() {
    if (!timed_) return;
    const uint64_t now = NowNs();
    if (open_) (*telemetry_)[current_].duration_ns += now - start_ns_;
    start_ns_ = now;
  }

  QueryTelemetry* telemetry_;
  bool timed_;
  bool open_ = false;
  Phase current_ = Phase::kAdmission;
  uint64_t start_ns_ = 0;
};

}  // namespace locs::obs

#endif  // LOCS_OBS_TELEMETRY_H_
