#include "obs/recorder.h"

namespace locs::obs {

Recorder& Recorder::Null() {
  static Recorder null_sink;
  return null_sink;
}

void AggregateRecorder::Record(const QueryTelemetry& telemetry) {
  constexpr auto relaxed = std::memory_order_relaxed;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStats& p = telemetry.phases[i];
    AtomicPhase& a = phases_[i];
    a.duration_ns.fetch_add(p.duration_ns, relaxed);
    a.entered.fetch_add(p.entered, relaxed);
    a.vertices_visited.fetch_add(p.vertices_visited, relaxed);
    a.edges_scanned.fetch_add(p.edges_scanned, relaxed);
    a.candidates_generated.fetch_add(p.candidates_generated, relaxed);
    a.candidates_rejected.fetch_add(p.candidates_rejected, relaxed);
    a.budget_spent.fetch_add(p.budget_spent, relaxed);
  }
  answer_sizes_.fetch_add(telemetry.answer_size, relaxed);
  queries_.fetch_add(1, relaxed);
  if (telemetry.used_global_fallback) fallbacks_.fetch_add(1, relaxed);
}

void AggregateRecorder::RecordCacheHit() {
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
}

AggregateRecorder::Totals AggregateRecorder::Snapshot() const {
  constexpr auto relaxed = std::memory_order_relaxed;
  Totals totals;
  totals.queries = queries_.load(relaxed);
  totals.fallbacks = fallbacks_.load(relaxed);
  totals.cache_hits = cache_hits_.load(relaxed);
  totals.sum.answer_size = answer_sizes_.load(relaxed);
  // used_global_fallback has no meaningful sum; Totals::fallbacks is the
  // count. Leave the flag at its default.
  for (size_t i = 0; i < kNumPhases; ++i) {
    const AtomicPhase& a = phases_[i];
    PhaseStats& p = totals.sum.phases[i];
    p.duration_ns = a.duration_ns.load(relaxed);
    p.entered = a.entered.load(relaxed);
    p.vertices_visited = a.vertices_visited.load(relaxed);
    p.edges_scanned = a.edges_scanned.load(relaxed);
    p.candidates_generated = a.candidates_generated.load(relaxed);
    p.candidates_rejected = a.candidates_rejected.load(relaxed);
    p.budget_spent = a.budget_spent.load(relaxed);
  }
  return totals;
}

}  // namespace locs::obs
