// TraceSink — JSONL query traces.
//
// One JSON object per completed query, one line per object: totals,
// then one nested-flat block per phase that ran (counters plus
// duration_ns). The format is append-friendly and trivially consumed by
// `jq`/pandas; benches write `TRACE_*.jsonl` next to their
// `BENCH_*.json` reports.
//
// Thread-safe: Record serializes line assembly + write under a mutex,
// so one sink can be shared by concurrent workers (lines never
// interleave).

#ifndef LOCS_OBS_TRACE_SINK_H_
#define LOCS_OBS_TRACE_SINK_H_

#include <cstdio>
#include <string>

#include "obs/recorder.h"
#include "util/thread_annotations.h"

namespace locs::obs {

/// Writes one JSONL line per recorded query to `path`.
class TraceSink : public Recorder {
 public:
  /// Truncates and opens `path`; check ok() before relying on output.
  explicit TraceSink(const std::string& path);
  ~TraceSink() override;

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// False when the file could not be opened or a write failed.
  bool ok() const LOCS_EXCLUDES(mutex_);

  bool timing_enabled() const override { return true; }

  /// Sets a label attached (as `"label"`) to subsequent lines — e.g.
  /// the query vertex or workload tag. Empty clears it.
  void Annotate(const std::string& label) LOCS_EXCLUDES(mutex_);

  void Record(const QueryTelemetry& telemetry) override
      LOCS_EXCLUDES(mutex_);

 private:
  mutable locs::Mutex mutex_;
  std::FILE* file_ LOCS_GUARDED_BY(mutex_) = nullptr;
  bool ok_ LOCS_GUARDED_BY(mutex_) = false;
  std::string label_ LOCS_GUARDED_BY(mutex_);
  uint64_t sequence_ LOCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace locs::obs

#endif  // LOCS_OBS_TRACE_SINK_H_
