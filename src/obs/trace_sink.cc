#include "obs/trace_sink.h"

#include "util/json.h"

namespace locs::obs {

TraceSink::TraceSink(const std::string& path) {
  // Pre-publication: no other thread can reach this sink until the
  // constructor returns, so the open happens outside the mutex (a slow
  // filesystem must never be charged to a lock hold).
  std::FILE* file = std::fopen(path.c_str(), "w");
  locs::MutexLock lock(mutex_);
  file_ = file;
  ok_ = file_ != nullptr;
}

TraceSink::~TraceSink() {
  // Detach the handle under the lock, close it outside: fclose flushes
  // buffered lines and may block on disk.
  std::FILE* file = nullptr;
  {
    locs::MutexLock lock(mutex_);
    file = file_;
    file_ = nullptr;
  }
  if (file != nullptr) std::fclose(file);
}

bool TraceSink::ok() const {
  locs::MutexLock lock(mutex_);
  return ok_;
}

void TraceSink::Annotate(const std::string& label) {
  locs::MutexLock lock(mutex_);
  label_ = label;
}

void TraceSink::Record(const QueryTelemetry& telemetry) {
  json::Object line;
  // Totals first so a flat reader never needs the phase blocks.
  line.Count("visited", telemetry.TotalVisited())
      .Count("scanned", telemetry.TotalScanned())
      .Count("answer_size", telemetry.answer_size)
      .Bool("fallback", telemetry.used_global_fallback)
      .Count("duration_ns", telemetry.TotalDurationNs());
  for (size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStats& p = telemetry.phases[i];
    if (p.entered == 0) continue;
    json::Object block;
    block.Count("entered", p.entered)
        .Count("visited", p.vertices_visited)
        .Count("scanned", p.edges_scanned)
        .Count("cand_gen", p.candidates_generated)
        .Count("cand_rej", p.candidates_rejected)
        .Count("budget", p.budget_spent)
        .Count("duration_ns", p.duration_ns);
    line.Field(std::string(PhaseName(static_cast<Phase>(i))),
               block.Render());
  }

  locs::MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  json::Object full;
  full.Count("seq", sequence_++);
  if (!label_.empty()) full.Str("label", label_);
  std::string text = full.Render();
  // Splice the prepared payload after the seq/label prefix:
  // {"seq": n, "label": ..., <payload fields>}
  const std::string payload = line.Render();
  text.pop_back();  // drop '}'
  if (payload.size() > 2) {
    text += ", ";
    text.append(payload, 1, payload.size() - 2);  // strip '{' and '}'
  }
  text += "}\n";
  // Audited hold-the-lock IO: JSONL lines from concurrent workers must
  // never interleave, and stdio's own locking is per-call, not per-line.
  // The alternatives (per-line O_APPEND writes, a writer thread) buy
  // nothing for a diagnostics sink that is off in production serving.
  // NOLINTNEXTLINE(locs-blocking-under-lock)
  if (std::fwrite(text.data(), 1, text.size(), file_) != text.size()) {
    ok_ = false;
  }
  std::fflush(file_);  // NOLINT(locs-blocking-under-lock)
}

}  // namespace locs::obs
