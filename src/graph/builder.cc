#include "graph/builder.h"

#include <algorithm>

namespace locs {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  LOCS_CHECK_LT(u, num_vertices_);
  LOCS_CHECK_LT(v, num_vertices_);
  if (u == v) return;
  edges_.emplace_back(u, v);
}

void GraphBuilder::AddEdges(const EdgeList& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

Graph GraphBuilder::Build() const {
  const VertexId n = num_vertices_;
  // Normalize orientation, then sort + unique the half-edges once; expand to
  // both directions with a counting pass.
  EdgeList canon;
  canon.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    canon.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (const auto& [u, v] : canon) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> neighbors(canon.size() * 2);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : canon) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  // Each adjacency list must be sorted ascending. Insertion order above is
  // sorted for the "second endpoint" direction but not for the first, so
  // sort per vertex (cheap: lists are mostly sorted already).
  for (VertexId v = 0; v < n; ++v) {
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<ptrdiff_t>(offsets[v + 1]));
  }
  return Graph::FromCsr(std::move(offsets), std::move(neighbors));
}

Graph BuildGraph(VertexId num_vertices, const EdgeList& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(edges);
  return builder.Build();
}

}  // namespace locs
