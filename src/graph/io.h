// Graph persistence: SNAP-style edge-list text files and a fast binary
// format used by the benchmark dataset cache.

#ifndef LOCS_GRAPH_IO_H_
#define LOCS_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/graph.h"

namespace locs {

/// Loads a whitespace-separated edge list ("u v" per line; lines starting
/// with '#' or '%' are comments — the format of SNAP dataset files).
/// Vertex ids are compacted to a dense [0, n) range in first-seen order.
/// Returns std::nullopt if the file cannot be opened or parsed.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes the graph as an edge list (one canonical "u v" line per edge).
/// Returns false on I/O failure.
bool SaveEdgeList(const Graph& graph, const std::string& path);

/// Loads a METIS graph file: a header line "n m [fmt]" followed by one
/// line per vertex (1-based neighbor ids; '%' comment lines allowed).
/// Only the plain unweighted format (fmt absent or "0"/"00"/"000") is
/// supported. Returns std::nullopt on open/parse failure.
std::optional<Graph> LoadMetis(const std::string& path);

/// Writes the graph in plain METIS format. Returns false on I/O failure.
bool SaveMetis(const Graph& graph, const std::string& path);

/// Loads the binary CSR format written by SaveBinary. Returns std::nullopt
/// on open failure, bad magic, or truncation.
std::optional<Graph> LoadBinary(const std::string& path);

/// Writes the graph in a compact binary CSR format (magic + version +
/// counts + raw arrays). Returns false on I/O failure.
bool SaveBinary(const Graph& graph, const std::string& path);

}  // namespace locs

#endif  // LOCS_GRAPH_IO_H_
