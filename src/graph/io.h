// Graph persistence: SNAP-style edge-list text files and a fast binary
// format used by the benchmark dataset cache.

#ifndef LOCS_GRAPH_IO_H_
#define LOCS_GRAPH_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/graph.h"

namespace locs {

/// What went wrong during a load. Callers branch on the kind (e.g. the CLI
/// maps each kind to a distinct exit code); `message` carries the
/// human-readable detail.
enum class IoErrorKind : uint8_t {
  kNone,       ///< load succeeded
  kOpen,       ///< file missing / not readable
  kParse,      ///< malformed content (text formats, bad magic)
  kTruncated,  ///< file ended before the declared data (short read)
  kAlloc,      ///< an allocation for the graph data failed
};

constexpr std::string_view IoErrorKindName(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kNone:
      return "none";
    case IoErrorKind::kOpen:
      return "open";
    case IoErrorKind::kParse:
      return "parse";
    case IoErrorKind::kTruncated:
      return "truncated";
    case IoErrorKind::kAlloc:
      return "alloc";
  }
  return "unknown";
}

/// Optional error detail for the loaders below. Reset on every call.
struct IoError {
  IoErrorKind kind = IoErrorKind::kNone;
  /// Human-readable description ("header expects 40 vertices, line 12
  /// references vertex 99").
  std::string message;
  /// 1-based line number for text parse errors; 0 when not applicable.
  uint64_t line = 0;

  bool ok() const { return kind == IoErrorKind::kNone; }
};

/// Loads a whitespace-separated edge list ("u v" per line; lines starting
/// with '#' or '%' are comments — the format of SNAP dataset files).
/// Vertex ids are compacted to a dense [0, n) range in first-seen order.
/// Returns std::nullopt if the file cannot be opened or parsed; `error`
/// (optional) receives the failure detail.
std::optional<Graph> LoadEdgeList(const std::string& path,
                                  IoError* error = nullptr);

/// Writes the graph as an edge list (one canonical "u v" line per edge).
/// Returns false on I/O failure.
bool SaveEdgeList(const Graph& graph, const std::string& path);

/// Loads a METIS graph file: a header line "n m [fmt]" followed by one
/// line per vertex (1-based neighbor ids; '%' comment lines allowed).
/// Only the plain unweighted format (fmt absent or "0"/"00"/"000") is
/// supported. Returns std::nullopt on open/parse failure, with detail in
/// `error` when provided.
std::optional<Graph> LoadMetis(const std::string& path,
                               IoError* error = nullptr);

/// Writes the graph in plain METIS format. Returns false on I/O failure.
bool SaveMetis(const Graph& graph, const std::string& path);

/// Loads the binary CSR format written by SaveBinary. Returns std::nullopt
/// on open failure, bad magic, or truncation, with detail in `error` when
/// provided.
std::optional<Graph> LoadBinary(const std::string& path,
                                IoError* error = nullptr);

/// Writes the graph in a compact binary CSR format (magic + version +
/// counts + raw arrays). Returns false on I/O failure.
bool SaveBinary(const Graph& graph, const std::string& path);

/// Loads a graph with the format chosen by file extension: `.lcsg` is the
/// binary CSR format, `.metis`/`.graph` is METIS, anything else is a
/// whitespace edge list. This is the one auto-detection rule shared by the
/// CLI, the serving layer, and the bench dataset cache.
std::optional<Graph> LoadGraphAuto(const std::string& path,
                                   IoError* error = nullptr);

}  // namespace locs

#endif  // LOCS_GRAPH_IO_H_
