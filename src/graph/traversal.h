// Traversal primitives: BFS, connected components, largest-component
// extraction. The paper restricts each dataset to its largest connected
// component (§6.1.1); ExtractLargestComponent implements that preprocessing.

#ifndef LOCS_GRAPH_TRAVERSAL_H_
#define LOCS_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace locs {

/// Vertices reachable from `source` (including it), in BFS order.
std::vector<VertexId> BfsOrder(const Graph& graph, VertexId source);

/// Result of a connected-components labeling.
struct Components {
  /// Component id per vertex, in [0, count).
  std::vector<VertexId> label;
  /// Number of components.
  VertexId count = 0;
  /// Size of each component.
  std::vector<VertexId> size;

  /// Id of a largest component (ties broken by lower id).
  VertexId LargestId() const;
};

/// Labels all connected components.
Components ConnectedComponents(const Graph& graph);

/// A subgraph re-indexed to dense ids, with the mapping back to the ids of
/// the graph it came from.
struct MappedSubgraph {
  Graph graph;
  /// original_id[new_id] — maps subgraph vertices to parent-graph vertices.
  std::vector<VertexId> original_id;
};

/// Extracts the largest connected component as a stand-alone graph.
MappedSubgraph ExtractLargestComponent(const Graph& graph);

}  // namespace locs

#endif  // LOCS_GRAPH_TRAVERSAL_H_
