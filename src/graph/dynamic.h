// Dynamically evolving graph with degree-ordered adjacency maintenance.
//
// §4.3.2 of the paper argues that the offline adjacency ordering stays
// cheap on evolving graphs: each edge update only repositions the affected
// endpoints inside their neighbors' ordered lists. DynamicGraph implements
// exactly that contract:
//
//   - AddEdge / RemoveEdge keep every adjacency list sorted by
//     (degree descending, id ascending) under the *current* degrees;
//   - an endpoint's degree change triggers a reposition of that endpoint
//     in each neighbor's list (binary search + local move);
//   - Freeze() materializes an immutable CSR Graph plus the matching
//     OrderedAdjacency for querying with the regular solvers.
//
// Lists are contiguous vectors, so a reposition costs O(log d) to locate
// plus a memmove; with balanced trees the move would be O(log d) as the
// paper notes, but vector locality wins at the degree scales of real
// networks.

#ifndef LOCS_GRAPH_DYNAMIC_H_
#define LOCS_GRAPH_DYNAMIC_H_

#include <vector>

#include "graph/graph.h"
#include "graph/ordering.h"
#include "graph/types.h"

namespace locs {

/// Mutable simple undirected graph with degree-ordered adjacency.
class DynamicGraph {
 public:
  explicit DynamicGraph(VertexId num_vertices)
      : adjacency_(num_vertices), sort_degree_(num_vertices, 0) {}

  /// Builds from an existing graph. O(|V| + |E| log |E|).
  explicit DynamicGraph(const Graph& graph);

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  /// Neighbors of v, sorted by (degree desc, id asc) under current
  /// degrees.
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[v];
  }

  /// True if the edge exists. O(log d).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Inserts the undirected edge (u, v). Returns false (no-op) for
  /// self-loops and existing edges.
  bool AddEdge(VertexId u, VertexId v);

  /// Removes the undirected edge (u, v). Returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Materializes an immutable snapshot for querying.
  Graph Freeze() const;

  /// Verifies every adjacency list is correctly ordered (test support).
  bool CheckOrderInvariant() const;

 private:
  /// Position of `target` in `list` under published keys; list.size() if
  /// absent.
  size_t Locate(const std::vector<VertexId>& list, VertexId target) const;

  /// Erases/inserts `target` using the explicit published key
  /// `key_degree` for it (other entries compare via sort_degree_).
  void EraseEntry(std::vector<VertexId>& list, VertexId target,
                  uint32_t key_degree);
  void InsertEntry(std::vector<VertexId>& list, VertexId target,
                   uint32_t key_degree);

  /// Moves v to a new published degree: repositions it inside every
  /// neighbor's list, then updates sort_degree_[v]. O(deg(v) · log d) key
  /// comparisons (§4.3.2's maintenance claim).
  void Republish(VertexId v, uint32_t new_degree);

  std::vector<std::vector<VertexId>> adjacency_;
  /// Published sort key of each vertex (== its degree at rest).
  std::vector<uint32_t> sort_degree_;
  uint64_t num_edges_ = 0;
};

}  // namespace locs

#endif  // LOCS_GRAPH_DYNAMIC_H_
