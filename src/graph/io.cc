#include "graph/io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "graph/builder.h"

namespace locs {

namespace {

constexpr char kMagic[8] = {'L', 'O', 'C', 'S', 'G', 'R', 'F', '1'};

struct BinaryHeader {
  char magic[8];
  uint64_t num_vertices;
  uint64_t num_half_edges;
};

/// RAII wrapper over std::FILE.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

std::optional<Graph> LoadEdgeList(const std::string& path) {
  File file(path, "r");
  if (!file.ok()) return std::nullopt;

  std::unordered_map<uint64_t, VertexId> remap;
  EdgeList edges;
  auto intern = [&remap](uint64_t raw) {
    return remap.emplace(raw, static_cast<VertexId>(remap.size()))
        .first->second;
  };

  char line[256];
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    uint64_t u = 0;
    uint64_t v = 0;
    if (std::sscanf(line, "%lu %lu", &u, &v) != 2) return std::nullopt;
    edges.emplace_back(intern(u), intern(v));
  }
  return BuildGraph(static_cast<VertexId>(remap.size()), edges);
}

bool SaveEdgeList(const Graph& graph, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) return false;
  std::fprintf(file.get(), "# locs edge list: %u vertices, %lu edges\n",
               graph.NumVertices(),
               static_cast<unsigned long>(graph.NumEdges()));
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(file.get(), "%u %u\n", u, v);
    }
  }
  return std::fflush(file.get()) == 0;
}

std::optional<Graph> LoadMetis(const std::string& path) {
  File file(path, "r");
  if (!file.ok()) return std::nullopt;
  char buf[1 << 16];
  // Read the header (skipping '%' comments).
  uint64_t n = 0;
  uint64_t m = 0;
  std::string fmt;
  while (std::fgets(buf, sizeof(buf), file.get()) != nullptr) {
    if (buf[0] == '%') continue;
    char fmt_buf[16] = {0};
    const int fields = std::sscanf(buf, "%lu %lu %15s", &n, &m, fmt_buf);
    if (fields < 2) return std::nullopt;
    fmt = fmt_buf;
    break;
  }
  if (!fmt.empty() && fmt.find_first_not_of('0') != std::string::npos) {
    return std::nullopt;  // weighted formats unsupported
  }
  GraphBuilder builder(static_cast<VertexId>(n));
  uint64_t vertex = 0;
  while (vertex < n &&
         std::fgets(buf, sizeof(buf), file.get()) != nullptr) {
    if (buf[0] == '%') continue;
    const char* cursor = buf;
    char* end = nullptr;
    while (true) {
      const auto neighbor = std::strtoull(cursor, &end, 10);
      if (end == cursor) break;  // no more numbers on this line
      if (neighbor == 0 || neighbor > n) return std::nullopt;
      builder.AddEdge(static_cast<VertexId>(vertex),
                      static_cast<VertexId>(neighbor - 1));
      cursor = end;
    }
    ++vertex;
  }
  if (vertex != n) return std::nullopt;
  Graph graph = builder.Build();
  if (graph.NumEdges() != m) {
    // Tolerate double-counted headers (some writers store 2m).
    if (graph.NumEdges() * 2 != m) return std::nullopt;
  }
  return graph;
}

bool SaveMetis(const Graph& graph, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) return false;
  std::fprintf(file.get(), "%u %lu\n", graph.NumVertices(),
               static_cast<unsigned long>(graph.NumEdges()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    bool first = true;
    for (VertexId w : graph.Neighbors(v)) {
      std::fprintf(file.get(), first ? "%u" : " %u", w + 1);
      first = false;
    }
    std::fputc('\n', file.get());
  }
  return std::fflush(file.get()) == 0;
}

std::optional<Graph> LoadBinary(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) return std::nullopt;
  BinaryHeader header{};
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) {
    return std::nullopt;
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::vector<uint64_t> offsets(header.num_vertices + 1);
  std::vector<VertexId> neighbors(header.num_half_edges);
  if (std::fread(offsets.data(), sizeof(uint64_t), offsets.size(),
                 file.get()) != offsets.size()) {
    return std::nullopt;
  }
  if (!neighbors.empty() &&
      std::fread(neighbors.data(), sizeof(VertexId), neighbors.size(),
                 file.get()) != neighbors.size()) {
    return std::nullopt;
  }
  return Graph::FromCsr(std::move(offsets), std::move(neighbors));
}

bool SaveBinary(const Graph& graph, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) return false;
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_vertices = graph.NumVertices();
  header.num_half_edges = graph.neighbors().size();
  if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1) return false;
  if (std::fwrite(graph.offsets().data(), sizeof(uint64_t),
                  graph.offsets().size(),
                  file.get()) != graph.offsets().size()) {
    return false;
  }
  if (!graph.neighbors().empty() &&
      std::fwrite(graph.neighbors().data(), sizeof(VertexId),
                  graph.neighbors().size(),
                  file.get()) != graph.neighbors().size()) {
    return false;
  }
  return std::fflush(file.get()) == 0;
}

}  // namespace locs
