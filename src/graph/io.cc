#include "graph/io.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "util/failpoint.h"

namespace locs {

namespace {

/// Records failure detail into `error` (when provided) and returns the
/// nullopt the loaders propagate: `return Fail(error, kind, ...);`.
std::nullopt_t Fail(IoError* error, IoErrorKind kind, std::string message,
                    uint64_t line = 0) {
  if (error != nullptr) {
    error->kind = kind;
    error->message = std::move(message);
    error->line = line;
  }
  return std::nullopt;
}

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

constexpr char kMagic[8] = {'L', 'O', 'C', 'S', 'G', 'R', 'F', '1'};

struct BinaryHeader {
  char magic[8];
  uint64_t num_vertices;
  uint64_t num_half_edges;
};

/// RAII wrapper over std::FILE.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

/// Reads one line of any length into `line`, stripping the trailing
/// newline and any carriage returns (CRLF files). Returns false only at
/// EOF with nothing read.
bool ReadLine(std::FILE* f, std::string& line) {
  line.clear();
  char buf[4096];
  bool read_any = false;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    read_any = true;
    line.append(buf);
    if (!line.empty() && line.back() == '\n') break;
  }
  if (!read_any) return false;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return true;
}

}  // namespace

std::optional<Graph> LoadEdgeList(const std::string& path, IoError* error) {
  if (error != nullptr) *error = IoError{};
  File file(path, "r");
  if (!file.ok()) {
    return Fail(error, IoErrorKind::kOpen,
                Format("cannot open '%s' for reading", path.c_str()));
  }

  std::unordered_map<uint64_t, VertexId> remap;
  EdgeList edges;
  auto intern = [&remap](uint64_t raw) {
    return remap.emplace(raw, static_cast<VertexId>(remap.size()))
        .first->second;
  };

  std::string line;
  uint64_t line_no = 0;
  while (ReadLine(file.get(), line)) {
    ++line_no;
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;  // blank / CR-only line
    if (line[start] == '#' || line[start] == '%') continue;
    const char* cursor = line.c_str() + start;
    char* end = nullptr;
    const uint64_t u = std::strtoull(cursor, &end, 10);
    // The line number rides in the message text too: consumers that only
    // surface `message` (the locsd ERR detail, logs) still point at the
    // offending line.
    if (end == cursor) {
      return Fail(error, IoErrorKind::kParse,
                  Format("line %" PRIu64
                         ": expected \"u v\" edge, got \"%.60s\"",
                         line_no, cursor),
                  line_no);
    }
    cursor = end;
    const uint64_t v = std::strtoull(cursor, &end, 10);
    if (end == cursor) {
      return Fail(error, IoErrorKind::kParse,
                  Format("line %" PRIu64 ": edge for vertex %" PRIu64
                         " is missing its endpoint",
                         line_no, u),
                  line_no);
    }
    // Extra columns (weights, timestamps) are ignored, as before.
    edges.emplace_back(intern(u), intern(v));
  }
  return BuildGraph(static_cast<VertexId>(remap.size()), edges);
}

bool SaveEdgeList(const Graph& graph, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) return false;
  std::fprintf(file.get(),
               "# locs edge list: %" PRIu32 " vertices, %" PRIu64
               " edges\n",
               graph.NumVertices(), graph.NumEdges());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(file.get(), "%u %u\n", u, v);
    }
  }
  return std::fflush(file.get()) == 0;
}

std::optional<Graph> LoadMetis(const std::string& path, IoError* error) {
  if (error != nullptr) *error = IoError{};
  File file(path, "r");
  if (!file.ok()) {
    return Fail(error, IoErrorKind::kOpen,
                Format("cannot open '%s' for reading", path.c_str()));
  }
  std::string line;
  uint64_t line_no = 0;
  // Read the header (skipping '%' comments).
  uint64_t n = 0;
  uint64_t m = 0;
  std::string fmt;
  bool have_header = false;
  while (ReadLine(file.get(), line)) {
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;
    const char* cursor = line.c_str();
    char* end = nullptr;
    n = std::strtoull(cursor, &end, 10);
    if (end == cursor) {
      return Fail(error, IoErrorKind::kParse,
                  "header must start with the vertex count", line_no);
    }
    cursor = end;
    m = std::strtoull(cursor, &end, 10);
    if (end == cursor) {
      return Fail(error, IoErrorKind::kParse,
                  "header is missing the edge count", line_no);
    }
    cursor = end;
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
    while (*cursor != '\0' && *cursor != ' ' && *cursor != '\t') {
      fmt.push_back(*cursor++);
    }
    have_header = true;
    break;
  }
  if (!have_header) {
    return Fail(error, IoErrorKind::kTruncated,
                "file ends before the METIS header");
  }
  if (!fmt.empty() && fmt.find_first_not_of('0') != std::string::npos) {
    return Fail(error, IoErrorKind::kParse,
                Format("weighted format \"%s\" is unsupported", fmt.c_str()),
                line_no);
  }
  GraphBuilder builder(static_cast<VertexId>(n));
  uint64_t vertex = 0;
  while (vertex < n && ReadLine(file.get(), line)) {
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;
    const char* cursor = line.c_str();
    char* end = nullptr;
    while (true) {
      const auto neighbor = std::strtoull(cursor, &end, 10);
      if (end == cursor) break;  // no more numbers on this line
      if (neighbor == 0 || neighbor > n) {
        return Fail(error, IoErrorKind::kParse,
                    Format("neighbor id %" PRIu64
                           " outside the 1..%" PRIu64 " range",
                           neighbor, n),
                    line_no);
      }
      builder.AddEdge(static_cast<VertexId>(vertex),
                      static_cast<VertexId>(neighbor - 1));
      cursor = end;
    }
    ++vertex;
  }
  if (vertex != n) {
    return Fail(error, IoErrorKind::kTruncated,
                Format("header declares %" PRIu64
                       " vertices but only %" PRIu64 " adjacency lines"
                       " are present",
                       n, vertex),
                line_no);
  }
  Graph graph = builder.Build();
  if (graph.NumEdges() != m) {
    // Tolerate double-counted headers (some writers store 2m).
    if (graph.NumEdges() * 2 != m) {
      return Fail(error, IoErrorKind::kParse,
                  Format("header declares %" PRIu64 " edges but the"
                         " adjacency lists hold %" PRIu64,
                         m, graph.NumEdges()));
    }
  }
  return graph;
}

bool SaveMetis(const Graph& graph, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) return false;
  std::fprintf(file.get(), "%" PRIu32 " %" PRIu64 "\n",
               graph.NumVertices(), graph.NumEdges());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    bool first = true;
    for (VertexId w : graph.Neighbors(v)) {
      std::fprintf(file.get(), first ? "%u" : " %u", w + 1);
      first = false;
    }
    std::fputc('\n', file.get());
  }
  return std::fflush(file.get()) == 0;
}

std::optional<Graph> LoadBinary(const std::string& path, IoError* error) {
  if (error != nullptr) *error = IoError{};
  File file(path, "rb");
  if (!file.ok()) {
    return Fail(error, IoErrorKind::kOpen,
                Format("cannot open '%s' for reading", path.c_str()));
  }
  BinaryHeader header{};
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) {
    return Fail(error, IoErrorKind::kTruncated,
                "file ends before the 24-byte header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, IoErrorKind::kParse,
                "bad magic (not a LOCSGRF1 binary graph)");
  }
  std::vector<uint64_t> offsets;
  std::vector<VertexId> neighbors;
  // Fault-injection site: "io.binary.alloc" simulates the CSR arrays
  // failing to allocate (they can reach multiple GB on large graphs, the
  // one place the loader's memory use is data-dependent).
  if (LOCS_FAILPOINT("io.binary.alloc")) {
    return Fail(error, IoErrorKind::kAlloc,
                Format("cannot allocate CSR arrays for %" PRIu64
                       " vertices / %" PRIu64 " half-edges",
                       header.num_vertices, header.num_half_edges));
  }
  try {
    offsets.resize(header.num_vertices + 1);
    neighbors.resize(header.num_half_edges);
  } catch (const std::bad_alloc&) {
    return Fail(error, IoErrorKind::kAlloc,
                Format("cannot allocate CSR arrays for %" PRIu64
                       " vertices / %" PRIu64 " half-edges",
                       header.num_vertices, header.num_half_edges));
  }
  // Fault-injection site: "io.binary.short_read" forces the truncation
  // path a short read of the offsets array would take.
  if (LOCS_FAILPOINT("io.binary.short_read") ||
      std::fread(offsets.data(), sizeof(uint64_t), offsets.size(),
                 file.get()) != offsets.size()) {
    return Fail(error, IoErrorKind::kTruncated,
                Format("short read: file ends inside the %" PRIu64
                       "-entry offset array",
                       header.num_vertices + 1));
  }
  if (!neighbors.empty() &&
      std::fread(neighbors.data(), sizeof(VertexId), neighbors.size(),
                 file.get()) != neighbors.size()) {
    return Fail(error, IoErrorKind::kTruncated,
                Format("short read: file ends inside the %" PRIu64
                       "-entry neighbor array",
                       header.num_half_edges));
  }
  return Graph::FromCsr(std::move(offsets), std::move(neighbors));
}

bool SaveBinary(const Graph& graph, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) return false;
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_vertices = graph.NumVertices();
  header.num_half_edges = graph.neighbors().size();
  if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1) return false;
  if (std::fwrite(graph.offsets().data(), sizeof(uint64_t),
                  graph.offsets().size(),
                  file.get()) != graph.offsets().size()) {
    return false;
  }
  if (!graph.neighbors().empty() &&
      std::fwrite(graph.neighbors().data(), sizeof(VertexId),
                  graph.neighbors().size(),
                  file.get()) != graph.neighbors().size()) {
    return false;
  }
  return std::fflush(file.get()) == 0;
}

std::optional<Graph> LoadGraphAuto(const std::string& path,
                                   IoError* error) {
  const auto ends_with = [&path](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  if (ends_with(".lcsg")) return LoadBinary(path, error);
  if (ends_with(".metis") || ends_with(".graph")) {
    return LoadMetis(path, error);
  }
  return LoadEdgeList(path, error);
}

}  // namespace locs
