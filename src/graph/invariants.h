// Structural validation of Graph instances — used by tests and by loaders
// of untrusted files.

#ifndef LOCS_GRAPH_INVARIANTS_H_
#define LOCS_GRAPH_INVARIANTS_H_

#include <string>

#include "graph/graph.h"

namespace locs {

/// Verifies the full set of simple-graph invariants: offsets monotone,
/// neighbor ids in range, adjacency sorted and duplicate-free, no
/// self-loops, and symmetry (u∈N(v) ⇔ v∈N(u)). Returns an empty string if
/// the graph is well-formed, else a description of the first violation.
std::string ValidateGraph(const Graph& graph);

}  // namespace locs

#endif  // LOCS_GRAPH_INVARIANTS_H_
