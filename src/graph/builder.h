// Mutable accumulation of edges into an immutable CSR Graph.

#ifndef LOCS_GRAPH_BUILDER_H_
#define LOCS_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace locs {

/// Accumulates undirected edges and produces a canonical simple Graph:
/// self-loops dropped, duplicate edges (in either orientation) collapsed,
/// adjacency sorted. The vertex universe is [0, num_vertices); isolated
/// vertices are allowed.
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex universe up front.
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  /// Adds undirected edge (u, v). Self-loops are silently ignored;
  /// duplicates are collapsed at Build() time.
  void AddEdge(VertexId u, VertexId v);

  /// Bulk edge insertion.
  void AddEdges(const EdgeList& edges);

  /// Number of raw (possibly duplicate) edges added so far.
  size_t PendingEdges() const { return edges_.size(); }

  /// Finalizes into a Graph. The builder may be reused afterwards (it keeps
  /// its accumulated edges).
  Graph Build() const;

 private:
  VertexId num_vertices_;
  EdgeList edges_;
};

/// One-shot convenience: builds a Graph from an edge list.
Graph BuildGraph(VertexId num_vertices, const EdgeList& edges);

}  // namespace locs

#endif  // LOCS_GRAPH_BUILDER_H_
