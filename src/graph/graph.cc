#include "graph/graph.h"

#include <algorithm>

namespace locs {

Graph Graph::FromCsr(std::vector<uint64_t> offsets,
                     std::vector<VertexId> neighbors) {
  LOCS_CHECK(!offsets.empty());
  LOCS_CHECK_EQ(offsets.front(), 0u);
  LOCS_CHECK_EQ(offsets.back(), neighbors.size());
#ifndef NDEBUG
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  for (VertexId v = 0; v < n; ++v) {
    LOCS_CHECK_LE(offsets[v], offsets[v + 1]);
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      LOCS_CHECK_LT(neighbors[i], n);
      LOCS_CHECK(neighbors[i] != v);  // no self-loop
      if (i + 1 < offsets[v + 1]) {
        LOCS_CHECK_LT(neighbors[i], neighbors[i + 1]);  // sorted, no dup
      }
    }
  }
#endif
  return Graph(ConstArray<uint64_t>(std::move(offsets)),
               ConstArray<VertexId>(std::move(neighbors)));
}

Graph Graph::FromParts(ConstArray<uint64_t> offsets,
                       ConstArray<VertexId> neighbors) {
  LOCS_CHECK(!offsets.empty());
  LOCS_CHECK_EQ(offsets.front(), 0u);
  LOCS_CHECK_EQ(offsets.back(), neighbors.size());
  return Graph(std::move(offsets), std::move(neighbors));
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

uint32_t Graph::MinDegree() const {
  if (NumVertices() == 0) return 0;
  uint32_t best = Degree(0);
  for (VertexId v = 1; v < NumVertices(); ++v) {
    best = std::min(best, Degree(v));
  }
  return best;
}

double Graph::AverageDegree() const {
  if (NumVertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(NumEdges()) /
         static_cast<double>(NumVertices());
}

}  // namespace locs
