// Fundamental graph identifier types.

#ifndef LOCS_GRAPH_TYPES_H_
#define LOCS_GRAPH_TYPES_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace locs {

/// Dense vertex identifier. 32 bits cover every graph in the paper's
/// evaluation (largest: LiveJournal with 4.0M vertices) with headroom.
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/// Undirected edge as an unordered endpoint pair.
using Edge = std::pair<VertexId, VertexId>;

/// A list of undirected edges (builder input / generator output).
using EdgeList = std::vector<Edge>;

}  // namespace locs

#endif  // LOCS_GRAPH_TYPES_H_
