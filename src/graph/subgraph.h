// Induced subgraphs and subset-local degree computations.
//
// δ(G[H]) — the community goodness measure of Definition 1 — lives here as
// MinDegreeOfInduced, together with the connectivity test used throughout
// the solvers and tests.

#ifndef LOCS_GRAPH_SUBGRAPH_H_
#define LOCS_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"
#include "graph/types.h"

namespace locs {

/// Builds G[H], the subgraph induced by `members`, re-indexed to dense ids
/// in the order given. `members` must contain distinct valid vertex ids.
MappedSubgraph InducedSubgraph(const Graph& graph,
                               const std::vector<VertexId>& members);

/// Degree of each member within G[H] (aligned with `members`).
std::vector<uint32_t> DegreesWithin(const Graph& graph,
                                    const std::vector<VertexId>& members);

/// δ(G[H]): the minimum degree of the subgraph induced by `members`
/// (Definition 1). An empty set yields 0.
uint32_t MinDegreeOfInduced(const Graph& graph,
                            const std::vector<VertexId>& members);

/// True if G[H] is connected (empty and singleton sets count as connected).
bool IsConnectedSubset(const Graph& graph,
                       const std::vector<VertexId>& members);

/// True if `members` is a valid CST(k) answer for query vertex v0:
/// v0 ∈ H, G[H] connected, δ(G[H]) ≥ k (Problem Definition 2).
bool IsValidCommunity(const Graph& graph,
                      const std::vector<VertexId>& members, VertexId v0,
                      uint32_t k);

}  // namespace locs

#endif  // LOCS_GRAPH_SUBGRAPH_H_
