#include "graph/traversal.h"

#include <algorithm>

#include "graph/subgraph.h"

namespace locs {

std::vector<VertexId> BfsOrder(const Graph& graph, VertexId source) {
  LOCS_CHECK_LT(source, graph.NumVertices());
  std::vector<uint8_t> seen(graph.NumVertices(), 0);
  std::vector<VertexId> order;
  order.reserve(64);
  order.push_back(source);
  seen[source] = 1;
  for (size_t head = 0; head < order.size(); ++head) {
    const VertexId u = order[head];
    for (VertexId w : graph.Neighbors(u)) {
      if (seen[w] == 0) {
        seen[w] = 1;
        order.push_back(w);
      }
    }
  }
  return order;
}

VertexId Components::LargestId() const {
  LOCS_CHECK_GT(count, 0u);
  VertexId best = 0;
  for (VertexId c = 1; c < count; ++c) {
    if (size[c] > size[best]) best = c;
  }
  return best;
}

Components ConnectedComponents(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  Components result;
  result.label.assign(n, kInvalidVertex);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (result.label[start] != kInvalidVertex) continue;
    const VertexId c = result.count++;
    queue.clear();
    queue.push_back(start);
    result.label[start] = c;
    VertexId members = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      ++members;
      for (VertexId w : graph.Neighbors(u)) {
        if (result.label[w] == kInvalidVertex) {
          result.label[w] = c;
          queue.push_back(w);
        }
      }
    }
    result.size.push_back(members);
  }
  return result;
}

MappedSubgraph ExtractLargestComponent(const Graph& graph) {
  if (graph.NumVertices() == 0) return {Graph(), {}};
  const Components comps = ConnectedComponents(graph);
  const VertexId keep = comps.LargestId();
  std::vector<VertexId> members;
  members.reserve(comps.size[keep]);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (comps.label[v] == keep) members.push_back(v);
  }
  return InducedSubgraph(graph, members);
}

}  // namespace locs
