// Degree-descending adjacency ordering — the paper's "intelligent expansion"
// (§4.3.2).
//
// The adjacency list of every vertex is re-sorted into descending order of
// *global* degree as an offline precomputation. During candidate generation
// the expansion over a vertex's neighbors stops at the first neighbor whose
// degree falls below k (Proposition 3: such vertices cannot belong to any
// CST(k) answer), avoiding the scan of the low-degree tail entirely.

#ifndef LOCS_GRAPH_ORDERING_H_
#define LOCS_GRAPH_ORDERING_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace locs {

/// Precomputed degree-descending adjacency. Lives alongside (not instead of)
/// the canonical Graph so both expansion styles can be benchmarked
/// (Figure 7: opt vs non-opt).
class OrderedAdjacency {
 public:
  /// Builds the ordered adjacency from `graph`. Ties (equal degree) break
  /// by ascending vertex id to keep the structure deterministic.
  explicit OrderedAdjacency(const Graph& graph);

  /// Neighbors of `v` sorted by descending degree.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<VertexId> neighbors_;
};

}  // namespace locs

#endif  // LOCS_GRAPH_ORDERING_H_
