// Degree-descending adjacency ordering — the paper's "intelligent expansion"
// (§4.3.2).
//
// The adjacency list of every vertex is re-sorted into descending order of
// *global* degree as an offline precomputation. During candidate generation
// the expansion over a vertex's neighbors stops at the first neighbor whose
// degree falls below k (Proposition 3: such vertices cannot belong to any
// CST(k) answer), avoiding the scan of the low-degree tail entirely.

#ifndef LOCS_GRAPH_ORDERING_H_
#define LOCS_GRAPH_ORDERING_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/const_array.h"

namespace locs {

/// Precomputed degree-descending adjacency. Lives alongside (not instead of)
/// the canonical Graph so both expansion styles can be benchmarked
/// (Figure 7: opt vs non-opt).
class OrderedAdjacency {
 public:
  /// Builds the ordered adjacency from `graph`. Ties (equal degree) break
  /// by ascending vertex id to keep the structure deterministic.
  explicit OrderedAdjacency(const Graph& graph);

  /// Adopts a pre-sorted ordered adjacency (the store/ image loader; the
  /// offsets are shared with the graph's own CSR offsets array). The
  /// caller is responsible for the degree-descending invariant.
  static OrderedAdjacency FromParts(ConstArray<uint64_t> offsets,
                                    ConstArray<VertexId> neighbors);

  /// Neighbors of `v` sorted by descending degree.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Raw access for serialization. offsets() is layout-identical to the
  /// graph's own offsets array (re-sorting is per-vertex, in place).
  const ConstArray<uint64_t>& offsets() const { return offsets_; }
  const ConstArray<VertexId>& neighbors() const { return neighbors_; }

 private:
  OrderedAdjacency(ConstArray<uint64_t> offsets,
                   ConstArray<VertexId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  ConstArray<uint64_t> offsets_;
  ConstArray<VertexId> neighbors_;
};

}  // namespace locs

#endif  // LOCS_GRAPH_ORDERING_H_
