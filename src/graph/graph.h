// Immutable undirected simple graph in compressed sparse row (CSR) layout.
//
// This is the substrate every algorithm in the library operates on. The
// paper's graphs are simple (no self-loops, no multi-edges), undirected, and
// unweighted (§2); Graph enforces exactly that: adjacency lists are sorted by
// vertex id, deduplicated, and symmetric.

#ifndef LOCS_GRAPH_GRAPH_H_
#define LOCS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/check.h"
#include "util/const_array.h"

namespace locs {

/// Immutable CSR graph. Construct through GraphBuilder (any edge soup) or
/// Graph::FromCsr (pre-validated arrays, used by loaders and subgraph
/// extraction).
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Adopts pre-built CSR arrays. `offsets` has n+1 entries; `neighbors[i]`
  /// for i in [offsets[v], offsets[v+1]) are v's neighbors sorted ascending.
  /// Validates structural invariants in debug builds.
  static Graph FromCsr(std::vector<uint64_t> offsets,
                       std::vector<VertexId> neighbors);

  /// Same contract as FromCsr but over any ConstArray backing — this is how
  /// the store/ subsystem builds a graph directly over an mmap'd image with
  /// zero copy. The caller (image reader) has already validated the arrays
  /// structurally, so only the cheap front/back checks run here.
  static Graph FromParts(ConstArray<uint64_t> offsets,
                         ConstArray<VertexId> neighbors);

  /// Number of vertices.
  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  uint64_t NumEdges() const { return neighbors_.size() / 2; }

  /// Degree of `v`.
  uint32_t Degree(VertexId v) const {
    LOCS_DCHECK(v < NumVertices());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of `v`, sorted ascending by vertex id.
  std::span<const VertexId> Neighbors(VertexId v) const {
    LOCS_DCHECK(v < NumVertices());
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// True if the undirected edge (u, v) exists. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Largest vertex degree (0 for an empty graph).
  uint32_t MaxDegree() const;

  /// Minimum vertex degree over all vertices — δ(G) in the paper's notation
  /// (Definition 1 applied to the whole graph). 0 for an empty graph.
  uint32_t MinDegree() const;

  /// Average degree 2|E|/|V| (0 for an empty graph).
  double AverageDegree() const;

  /// Raw CSR access for serialization.
  const ConstArray<uint64_t>& offsets() const { return offsets_; }
  const ConstArray<VertexId>& neighbors() const { return neighbors_; }

 private:
  Graph(ConstArray<uint64_t> offsets, ConstArray<VertexId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  ConstArray<uint64_t> offsets_;    // size n+1
  ConstArray<VertexId> neighbors_;  // size 2|E|
};

}  // namespace locs

#endif  // LOCS_GRAPH_GRAPH_H_
