#include "graph/subgraph.h"

#include <algorithm>

namespace locs {

MappedSubgraph InducedSubgraph(const Graph& graph,
                               const std::vector<VertexId>& members) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> new_id(n, kInvalidVertex);
  for (size_t i = 0; i < members.size(); ++i) {
    LOCS_CHECK_LT(members[i], n);
    LOCS_CHECK_MSG(new_id[members[i]] == kInvalidVertex,
                   "duplicate member in InducedSubgraph");
    new_id[members[i]] = static_cast<VertexId>(i);
  }
  const auto sub_n = static_cast<VertexId>(members.size());
  std::vector<uint64_t> offsets(static_cast<size_t>(sub_n) + 1, 0);
  for (VertexId i = 0; i < sub_n; ++i) {
    uint32_t deg = 0;
    for (VertexId w : graph.Neighbors(members[i])) {
      if (new_id[w] != kInvalidVertex) ++deg;
    }
    offsets[i + 1] = offsets[i] + deg;
  }
  std::vector<VertexId> neighbors(offsets[sub_n]);
  for (VertexId i = 0; i < sub_n; ++i) {
    uint64_t cursor = offsets[i];
    for (VertexId w : graph.Neighbors(members[i])) {
      if (new_id[w] != kInvalidVertex) neighbors[cursor++] = new_id[w];
    }
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(offsets[i]),
              neighbors.begin() + static_cast<ptrdiff_t>(cursor));
  }
  MappedSubgraph result;
  result.graph = Graph::FromCsr(std::move(offsets), std::move(neighbors));
  result.original_id = members;
  return result;
}

std::vector<uint32_t> DegreesWithin(const Graph& graph,
                                    const std::vector<VertexId>& members) {
  std::vector<uint8_t> in_set(graph.NumVertices(), 0);
  for (VertexId v : members) {
    LOCS_CHECK_LT(v, graph.NumVertices());
    in_set[v] = 1;
  }
  std::vector<uint32_t> degrees(members.size(), 0);
  for (size_t i = 0; i < members.size(); ++i) {
    uint32_t deg = 0;
    for (VertexId w : graph.Neighbors(members[i])) deg += in_set[w];
    degrees[i] = deg;
  }
  return degrees;
}

uint32_t MinDegreeOfInduced(const Graph& graph,
                            const std::vector<VertexId>& members) {
  if (members.empty()) return 0;
  const std::vector<uint32_t> degrees = DegreesWithin(graph, members);
  return *std::min_element(degrees.begin(), degrees.end());
}

bool IsConnectedSubset(const Graph& graph,
                       const std::vector<VertexId>& members) {
  if (members.size() <= 1) return true;
  std::vector<uint8_t> in_set(graph.NumVertices(), 0);
  for (VertexId v : members) in_set[v] = 1;
  std::vector<VertexId> queue;
  queue.push_back(members[0]);
  in_set[members[0]] = 2;  // 2 = visited
  size_t reached = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    ++reached;
    for (VertexId w : graph.Neighbors(u)) {
      if (in_set[w] == 1) {
        in_set[w] = 2;
        queue.push_back(w);
      }
    }
  }
  return reached == members.size();
}

bool IsValidCommunity(const Graph& graph,
                      const std::vector<VertexId>& members, VertexId v0,
                      uint32_t k) {
  if (members.empty()) return false;
  if (std::find(members.begin(), members.end(), v0) == members.end()) {
    return false;
  }
  if (!IsConnectedSubset(graph, members)) return false;
  return MinDegreeOfInduced(graph, members) >= k;
}

}  // namespace locs
