// Whole-graph statistics used to characterize datasets (and to sanity-
// check that generated stand-ins behave like the real networks they
// replace): degree summaries, clustering coefficients, and an approximate
// diameter.

#ifndef LOCS_GRAPH_STATISTICS_H_
#define LOCS_GRAPH_STATISTICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace locs {

/// Degree histogram: histogram[d] = number of vertices with degree d.
std::vector<uint64_t> DegreeHistogram(const Graph& graph);

/// Local clustering coefficient of `v`: the fraction of neighbor pairs
/// that are themselves adjacent (0 for degree < 2).
double LocalClusteringCoefficient(const Graph& graph, VertexId v);

/// Average local clustering coefficient over `samples` vertices drawn
/// deterministically from `seed` (samples >= |V| means exact).
double AverageClusteringCoefficient(const Graph& graph, size_t samples,
                                    uint64_t seed);

/// Lower bound on the diameter of v0's component via the double-sweep
/// heuristic (BFS to the farthest vertex, then BFS again). Exact on trees;
/// within a small factor on real networks.
uint32_t ApproxDiameter(const Graph& graph, VertexId v0);

/// Eccentricity of v (the largest BFS distance within its component).
uint32_t Eccentricity(const Graph& graph, VertexId v);

}  // namespace locs

#endif  // LOCS_GRAPH_STATISTICS_H_
