#include "graph/ordering.h"

#include <algorithm>
#include <utility>

namespace locs {

namespace {

// Sort each adjacency list by (degree desc, id asc). Precompute degrees
// once; comparator reads the flat array.
std::vector<VertexId> SortByDegree(const Graph& graph) {
  std::vector<VertexId> neighbors(graph.neighbors().begin(),
                                  graph.neighbors().end());
  const auto& offsets = graph.offsets();
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);
  for (VertexId v = 0; v < n; ++v) {
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<ptrdiff_t>(offsets[v + 1]),
              [&degree](VertexId a, VertexId b) {
                if (degree[a] != degree[b]) return degree[a] > degree[b];
                return a < b;
              });
  }
  return neighbors;
}

}  // namespace

OrderedAdjacency::OrderedAdjacency(const Graph& graph)
    : OrderedAdjacency(graph.offsets(),
                       ConstArray<VertexId>(SortByDegree(graph))) {}

OrderedAdjacency OrderedAdjacency::FromParts(ConstArray<uint64_t> offsets,
                                             ConstArray<VertexId> neighbors) {
  return OrderedAdjacency(std::move(offsets), std::move(neighbors));
}

}  // namespace locs
