#include "graph/ordering.h"

#include <algorithm>

namespace locs {

OrderedAdjacency::OrderedAdjacency(const Graph& graph)
    : offsets_(graph.offsets()), neighbors_(graph.neighbors()) {
  // Sort each adjacency list by (degree desc, id asc). Precompute degrees
  // once; comparator reads the flat array.
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);
  for (VertexId v = 0; v < n; ++v) {
    std::sort(neighbors_.begin() + static_cast<ptrdiff_t>(offsets_[v]),
              neighbors_.begin() + static_cast<ptrdiff_t>(offsets_[v + 1]),
              [&degree](VertexId a, VertexId b) {
                if (degree[a] != degree[b]) return degree[a] > degree[b];
                return a < b;
              });
  }
}

}  // namespace locs
