#include "graph/invariants.h"

#include <sstream>

namespace locs {

std::string ValidateGraph(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  const auto& offsets = graph.offsets();
  std::ostringstream err;
  if (offsets.empty() || offsets.front() != 0) {
    return "offsets must start at 0";
  }
  if (offsets.back() != graph.neighbors().size()) {
    return "offsets must end at the neighbor array size";
  }
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      err << "offsets not monotone at vertex " << v;
      return err.str();
    }
    const auto nbrs = graph.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) {
        err << "neighbor id out of range at vertex " << v;
        return err.str();
      }
      if (nbrs[i] == v) {
        err << "self-loop at vertex " << v;
        return err.str();
      }
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) {
        err << "adjacency of vertex " << v << " not sorted/unique";
        return err.str();
      }
      if (!graph.HasEdge(nbrs[i], v)) {
        err << "asymmetric edge (" << v << ", " << nbrs[i] << ")";
        return err.str();
      }
    }
  }
  return "";
}

}  // namespace locs
