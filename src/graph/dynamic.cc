#include "graph/dynamic.h"

#include <algorithm>

#include "graph/builder.h"

namespace locs {

// Ordering discipline: every adjacency entry e is positioned according to
// its *published* key (sort_degree_[e], e) — not its live degree, which
// fluctuates mid-update. Published keys change one vertex at a time, and
// each list mutation (erase or insert) passes the moving vertex's key
// explicitly, so binary searches always run against a consistent order.

namespace {

struct Key {
  uint32_t degree;
  VertexId id;

  bool operator<(const Key& other) const {
    if (degree != other.degree) return degree > other.degree;
    return id < other.id;
  }
};

}  // namespace

DynamicGraph::DynamicGraph(const Graph& graph)
    : adjacency_(graph.NumVertices()),
      sort_degree_(graph.NumVertices(), 0) {
  const VertexId n = graph.NumVertices();
  for (VertexId v = 0; v < n; ++v) sort_degree_[v] = graph.Degree(v);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
    std::sort(adjacency_[v].begin(), adjacency_[v].end(),
              [this](VertexId a, VertexId b) {
                return Key{sort_degree_[a], a} < Key{sort_degree_[b], b};
              });
  }
  num_edges_ = graph.NumEdges();
}

size_t DynamicGraph::Locate(const std::vector<VertexId>& list,
                            VertexId target) const {
  const Key key{sort_degree_[target], target};
  const auto it = std::lower_bound(
      list.begin(), list.end(), key, [this](VertexId e, const Key& k) {
        return Key{sort_degree_[e], e} < k;
      });
  if (it != list.end() && *it == target) {
    return static_cast<size_t>(it - list.begin());
  }
  return list.size();
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  LOCS_CHECK_LT(u, NumVertices());
  LOCS_CHECK_LT(v, NumVertices());
  // Search the shorter list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  return Locate(adjacency_[u], v) != adjacency_[u].size();
}

void DynamicGraph::EraseEntry(std::vector<VertexId>& list, VertexId target,
                              uint32_t key_degree) {
  const Key key{key_degree, target};
  const auto it = std::lower_bound(
      list.begin(), list.end(), key, [this](VertexId e, const Key& k) {
        return Key{sort_degree_[e], e} < k;
      });
  LOCS_CHECK(it != list.end() && *it == target);
  list.erase(it);
}

void DynamicGraph::InsertEntry(std::vector<VertexId>& list,
                               VertexId target, uint32_t key_degree) {
  const Key key{key_degree, target};
  const auto it = std::lower_bound(
      list.begin(), list.end(), key, [this](VertexId e, const Key& k) {
        return Key{sort_degree_[e], e} < k;
      });
  list.insert(it, target);
}

void DynamicGraph::Republish(VertexId v, uint32_t new_degree) {
  const uint32_t old_degree = sort_degree_[v];
  if (old_degree == new_degree) return;
  for (VertexId w : adjacency_[v]) {
    EraseEntry(adjacency_[w], v, old_degree);
    InsertEntry(adjacency_[w], v, new_degree);
  }
  sort_degree_[v] = new_degree;
}

bool DynamicGraph::AddEdge(VertexId u, VertexId v) {
  LOCS_CHECK_LT(u, NumVertices());
  LOCS_CHECK_LT(v, NumVertices());
  if (u == v || HasEdge(u, v)) return false;
  // Link under the currently-published keys, then republish each
  // endpoint's new degree.
  InsertEntry(adjacency_[u], v, sort_degree_[v]);
  InsertEntry(adjacency_[v], u, sort_degree_[u]);
  Republish(u, Degree(u));
  Republish(v, Degree(v));
  ++num_edges_;
  return true;
}

bool DynamicGraph::RemoveEdge(VertexId u, VertexId v) {
  LOCS_CHECK_LT(u, NumVertices());
  LOCS_CHECK_LT(v, NumVertices());
  if (u == v || !HasEdge(u, v)) return false;
  EraseEntry(adjacency_[u], v, sort_degree_[v]);
  EraseEntry(adjacency_[v], u, sort_degree_[u]);
  Republish(u, Degree(u));
  Republish(v, Degree(v));
  --num_edges_;
  return true;
}

Graph DynamicGraph::Freeze() const {
  GraphBuilder builder(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (VertexId w : adjacency_[v]) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  return builder.Build();
}

bool DynamicGraph::CheckOrderInvariant() const {
  for (VertexId v = 0; v < NumVertices(); ++v) {
    if (sort_degree_[v] != Degree(v)) return false;
    const auto& list = adjacency_[v];
    for (size_t i = 1; i < list.size(); ++i) {
      if (!(Key{sort_degree_[list[i - 1]], list[i - 1]} <
            Key{sort_degree_[list[i]], list[i]})) {
        return false;
      }
    }
    // Symmetry: v must appear in each neighbor's list.
    for (VertexId w : list) {
      if (Locate(adjacency_[w], v) == adjacency_[w].size()) return false;
    }
  }
  return true;
}

}  // namespace locs
