#include "graph/statistics.h"

#include <algorithm>

#include "util/rng.h"

namespace locs {

std::vector<uint64_t> DegreeHistogram(const Graph& graph) {
  std::vector<uint64_t> histogram(graph.MaxDegree() + 1, 0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    ++histogram[graph.Degree(v)];
  }
  return histogram;
}

double LocalClusteringCoefficient(const Graph& graph, VertexId v) {
  LOCS_CHECK_LT(v, graph.NumVertices());
  const auto nbrs = graph.Neighbors(v);
  if (nbrs.size() < 2) return 0.0;
  uint64_t closed = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      closed += graph.HasEdge(nbrs[i], nbrs[j]);
    }
  }
  const auto pairs =
      static_cast<uint64_t>(nbrs.size()) * (nbrs.size() - 1) / 2;
  return static_cast<double>(closed) / static_cast<double>(pairs);
}

double AverageClusteringCoefficient(const Graph& graph, size_t samples,
                                    uint64_t seed) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return 0.0;
  double sum = 0.0;
  if (samples >= n) {
    for (VertexId v = 0; v < n; ++v) {
      sum += LocalClusteringCoefficient(graph, v);
    }
    return sum / static_cast<double>(n);
  }
  Rng rng(seed);
  const auto picks = rng.SampleDistinct(n, samples);
  for (uint64_t v : picks) {
    sum += LocalClusteringCoefficient(graph, static_cast<VertexId>(v));
  }
  return sum / static_cast<double>(samples);
}

namespace {

/// BFS distances from `source`; returns the farthest vertex and writes
/// its distance to *max_dist.
VertexId FarthestFrom(const Graph& graph, VertexId source,
                      uint32_t* max_dist) {
  std::vector<uint32_t> dist(graph.NumVertices(), ~uint32_t{0});
  std::vector<VertexId> queue;
  queue.push_back(source);
  dist[source] = 0;
  VertexId farthest = source;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    if (dist[u] > dist[farthest]) farthest = u;
    for (VertexId w : graph.Neighbors(u)) {
      if (dist[w] == ~uint32_t{0}) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  *max_dist = dist[farthest];
  return farthest;
}

}  // namespace

uint32_t Eccentricity(const Graph& graph, VertexId v) {
  LOCS_CHECK_LT(v, graph.NumVertices());
  uint32_t ecc = 0;
  FarthestFrom(graph, v, &ecc);
  return ecc;
}

uint32_t ApproxDiameter(const Graph& graph, VertexId v0) {
  LOCS_CHECK_LT(v0, graph.NumVertices());
  uint32_t first = 0;
  const VertexId far = FarthestFrom(graph, v0, &first);
  uint32_t second = 0;
  FarthestFrom(graph, far, &second);
  return std::max(first, second);
}

}  // namespace locs
