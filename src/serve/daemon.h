// Daemon entry points shared by the locsd binary and the locs_cli
// serve/client subcommands: flag parsing into ServerOptions, the
// blocking serve main (stdio or TCP with signal-driven graceful drain),
// and the line-lockstep client used for scripted TCP sessions.

#ifndef LOCS_SERVE_DAEMON_H_
#define LOCS_SERVE_DAEMON_H_

#include <string>

#include "serve/client.h"
#include "serve/server.h"
#include "util/cli.h"

namespace locs::serve {

/// Resolved daemon configuration.
struct DaemonOptions {
  ServerOptions server;
  bool stdio = false;  ///< serve fds 0/1 instead of a TCP socket
};

/// Parses the daemon flag set (see locsd --help) from `cli`. False with
/// `*error` set on an invalid combination or malformed value.
bool ParseDaemonOptions(const CommandLine& cli, DaemonOptions* options,
                        std::string* error);

/// One line per flag, for usage text.
const char* DaemonFlagHelp();

/// Runs the server until EOF/QUIT (stdio) or SIGTERM/SIGINT (TCP).
/// Blocks; returns a process exit code. Installs signal handlers for the
/// graceful drain and flushes a final STATS line to stderr on exit.
int DaemonMain(const DaemonOptions& options);

/// Scripted TCP client: forwards stdin lines to the daemon in lockstep
/// (one reply line read and printed per request line), appends QUIT
/// when stdin ends without one. With max_attempts == 1 (the default) a
/// transport failure is fatal, the historical behavior; larger values
/// engage the RetryClient recovery discipline (reconnect, backoff,
/// BUSY pacing, circuit breaker). Returns nonzero when a request
/// ultimately failed.
int ClientMain(const RetryClientOptions& options);

}  // namespace locs::serve

#endif  // LOCS_SERVE_DAEMON_H_
