// AdmissionController — bounded concurrency with fast rejection.
//
// The serving layer promises every accepted query a bounded share of the
// machine; beyond that it must say BUSY *immediately* rather than build
// an unbounded convoy (the classic overload failure mode). The policy:
//
//   - up to `max_inflight` requests execute concurrently;
//   - up to `max_queued` more wait (FIFO via the condvar) for a slot;
//   - anything beyond is rejected without blocking;
//   - Close() flips the controller into drain mode: waiters wake up and
//     are rejected, new arrivals are rejected, in-flight work finishes.
//
// A Ticket is the RAII admission token: destroying it releases the slot
// and wakes one waiter.

#ifndef LOCS_SERVE_ADMISSION_H_
#define LOCS_SERVE_ADMISSION_H_

#include <cstdint>

#include "util/thread_annotations.h"

namespace locs::serve {

/// See the file comment. Thread-safe.
class AdmissionController {
 public:
  struct Options {
    /// Concurrently executing requests; 0 behaves as 1.
    unsigned max_inflight = 4;
    /// Requests allowed to wait for a slot; 0 = reject when saturated.
    unsigned max_queued = 16;
  };

  enum class Decision : uint8_t {
    kAdmitted,  ///< slot held; call Leave() (or let the Ticket do it)
    kRejected,  ///< saturated beyond the queue bound, or draining
  };

  struct Counts {
    unsigned inflight = 0;
    unsigned queued = 0;
    uint64_t admitted_total = 0;
    uint64_t rejected_total = 0;
  };

  explicit AdmissionController(const Options& options)
      : max_inflight_(options.max_inflight == 0 ? 1 : options.max_inflight),
        max_queued_(options.max_queued) {}
  AdmissionController() : AdmissionController(Options()) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Requests admission; blocks only while a queue slot is held.
  Decision Enter() LOCS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || queued_ >= max_queued_) {
      if (!closed_ && inflight_ < max_inflight_) {
        // Saturation is checked on the queue, so an idle controller with
        // max_queued == 0 must still admit directly.
        ++inflight_;
        ++admitted_total_;
        return Decision::kAdmitted;
      }
      ++rejected_total_;
      return Decision::kRejected;
    }
    ++queued_;
    while (!closed_ && inflight_ >= max_inflight_) cv_.Wait(lock);
    --queued_;
    if (closed_) {
      ++rejected_total_;
      cv_.NotifyAll();  // propagate the drain wake-up to other waiters
      return Decision::kRejected;
    }
    ++inflight_;
    ++admitted_total_;
    return Decision::kAdmitted;
  }

  /// Releases an admitted slot.
  void Leave() LOCS_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      --inflight_;
    }
    cv_.NotifyOne();
  }

  /// Drain mode: reject all current waiters and future arrivals.
  void Close() LOCS_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  Counts Snapshot() const LOCS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    Counts counts;
    counts.inflight = inflight_;
    counts.queued = queued_;
    counts.admitted_total = admitted_total_;
    counts.rejected_total = rejected_total_;
    return counts;
  }

  unsigned max_inflight() const { return max_inflight_; }
  unsigned max_queued() const { return max_queued_; }

 private:
  const unsigned max_inflight_;
  const unsigned max_queued_;
  mutable Mutex mutex_;
  CondVar cv_;
  unsigned inflight_ LOCS_GUARDED_BY(mutex_) = 0;
  unsigned queued_ LOCS_GUARDED_BY(mutex_) = 0;
  bool closed_ LOCS_GUARDED_BY(mutex_) = false;
  uint64_t admitted_total_ LOCS_GUARDED_BY(mutex_) = 0;
  uint64_t rejected_total_ LOCS_GUARDED_BY(mutex_) = 0;
};

/// RAII admission token.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController& controller)
      : controller_(controller),
        admitted_(controller.Enter() ==
                  AdmissionController::Decision::kAdmitted) {}
  ~AdmissionTicket() {
    if (admitted_) controller_.Leave();
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const { return admitted_; }

 private:
  AdmissionController& controller_;
  const bool admitted_;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_ADMISSION_H_
