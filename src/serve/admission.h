// AdmissionController — bounded concurrency with fast rejection and
// tiered load shedding.
//
// The serving layer promises every accepted query a bounded share of the
// machine; beyond that it must say BUSY *immediately* rather than build
// an unbounded convoy (the classic overload failure mode). The policy:
//
//   - up to `max_inflight` requests execute concurrently;
//   - up to `max_queued` more wait (FIFO via the condvar) for a slot;
//   - anything beyond is rejected without blocking;
//   - Close() flips the controller into drain mode: waiters wake up and
//     are rejected, new arrivals are rejected, in-flight work finishes.
//
// Under sustained overload the controller sheds lower-value work before
// the queue fills, keeping headroom for the requests that matter most.
// Callers classify each request (WorkClass) and the queue thresholds
// ladder accordingly:
//
//   kBulk      (LOAD)                sheds once the queue is half full —
//                                    registry loads are heavyweight and
//                                    never latency-critical;
//   kRetryable (cache-eligible query) sheds at 3/4 — a retry is likely a
//                                    cheap cache hit, so dropping it now
//                                    costs the client little;
//   kCritical  (everything else)     only rejected when the queue is
//                                    truly full.
//
// Shedding engages only when queueing is enabled (max_queued > 0): a
// controller configured for pure admit-or-reject keeps its historical
// two-outcome behavior.
//
// Every non-admission carries a retry_after_ms hint proportional to the
// queue depth, which the wire layer folds into BUSY replies so clients
// back off instead of stampeding.
//
// A Ticket is the RAII admission token: destroying it releases the slot
// and wakes one waiter.

#ifndef LOCS_SERVE_ADMISSION_H_
#define LOCS_SERVE_ADMISSION_H_

#include <algorithm>
#include <cstdint>

#include "util/thread_annotations.h"

namespace locs::serve {

/// See the file comment. Thread-safe.
class AdmissionController {
 public:
  struct Options {
    /// Concurrently executing requests; 0 behaves as 1.
    unsigned max_inflight = 4;
    /// Requests allowed to wait for a slot; 0 = reject when saturated.
    unsigned max_queued = 16;
  };

  enum class Decision : uint8_t {
    kAdmitted,  ///< slot held; call Leave() (or let the Ticket do it)
    kRejected,  ///< saturated beyond the queue bound, or draining
    kShed,      ///< dropped early by the overload ladder (see WorkClass)
  };

  /// Caller-declared value class of a request; see the file comment.
  enum class WorkClass : uint8_t {
    kBulk,       ///< heavyweight, never latency-critical (LOAD)
    kRetryable,  ///< a retry would likely be a cache hit
    kCritical,   ///< shed only at hard saturation
  };

  struct Counts {
    unsigned inflight = 0;
    unsigned queued = 0;
    uint64_t admitted_total = 0;
    uint64_t rejected_total = 0;
    uint64_t shed_total = 0;
  };

  explicit AdmissionController(const Options& options)
      : max_inflight_(options.max_inflight == 0 ? 1 : options.max_inflight),
        max_queued_(options.max_queued) {}
  AdmissionController() : AdmissionController(Options()) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Requests admission; blocks only while a queue slot is held. On a
  /// non-admitted outcome `*retry_after_ms` (when non-null) receives the
  /// load-derived backoff hint for the BUSY reply.
  Decision Enter(WorkClass work = WorkClass::kCritical,
                 uint64_t* retry_after_ms = nullptr)
      LOCS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || queued_ >= max_queued_) {
      if (!closed_ && inflight_ < max_inflight_) {
        // Saturation is checked on the queue, so an idle controller with
        // max_queued == 0 must still admit directly.
        ++inflight_;
        ++admitted_total_;
        return Decision::kAdmitted;
      }
      ++rejected_total_;
      if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMsLocked();
      return Decision::kRejected;
    }
    // Tiered shedding: lower-value classes give up their queue slot
    // before the queue fills. Only reachable when max_queued_ > 0 and
    // the per-class bound keeps at least one slot of pressure, so an
    // idle controller never sheds.
    if (work != WorkClass::kCritical && queued_ >= ShedBound(work)) {
      ++shed_total_;
      if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMsLocked();
      return Decision::kShed;
    }
    ++queued_;
    while (!closed_ && inflight_ >= max_inflight_) cv_.Wait(lock);
    --queued_;
    if (closed_) {
      ++rejected_total_;
      if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMsLocked();
      cv_.NotifyAll();  // propagate the drain wake-up to other waiters
      return Decision::kRejected;
    }
    ++inflight_;
    ++admitted_total_;
    return Decision::kAdmitted;
  }

  /// Releases an admitted slot.
  void Leave() LOCS_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      --inflight_;
    }
    cv_.NotifyOne();
  }

  /// Drain mode: reject all current waiters and future arrivals.
  void Close() LOCS_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  /// Current backoff hint (what a BUSY reply issued now would carry).
  uint64_t RetryAfterMs() const LOCS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return RetryAfterMsLocked();
  }

  Counts Snapshot() const LOCS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    Counts counts;
    counts.inflight = inflight_;
    counts.queued = queued_;
    counts.admitted_total = admitted_total_;
    counts.rejected_total = rejected_total_;
    counts.shed_total = shed_total_;
    return counts;
  }

  unsigned max_inflight() const { return max_inflight_; }
  unsigned max_queued() const { return max_queued_; }

 private:
  /// Queue occupancy at which `work` is shed; >= 1 so the ladder never
  /// fires on an idle queue, and kCritical's bound is the hard cap.
  unsigned ShedBound(WorkClass work) const LOCS_REQUIRES(mutex_) {
    switch (work) {
      case WorkClass::kBulk:
        return std::max(1u, max_queued_ / 2);
      case WorkClass::kRetryable:
        return std::max(1u, (max_queued_ * 3) / 4);
      case WorkClass::kCritical:
        break;
    }
    return max_queued_;
  }

  /// Backoff hint scaled by queue depth: an empty queue asks for one
  /// base interval, a deep queue for proportionally longer, capped so a
  /// hint can never park a client for more than two seconds.
  uint64_t RetryAfterMsLocked() const LOCS_REQUIRES(mutex_) {
    constexpr uint64_t kBaseMs = 25;
    constexpr uint64_t kCapMs = 2000;
    return std::min(kCapMs, kBaseMs * (1 + uint64_t{queued_}));
  }

  const unsigned max_inflight_;
  const unsigned max_queued_;
  mutable Mutex mutex_;
  CondVar cv_;
  unsigned inflight_ LOCS_GUARDED_BY(mutex_) = 0;
  unsigned queued_ LOCS_GUARDED_BY(mutex_) = 0;
  bool closed_ LOCS_GUARDED_BY(mutex_) = false;
  uint64_t admitted_total_ LOCS_GUARDED_BY(mutex_) = 0;
  uint64_t rejected_total_ LOCS_GUARDED_BY(mutex_) = 0;
  uint64_t shed_total_ LOCS_GUARDED_BY(mutex_) = 0;
};

/// RAII admission token.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(
      AdmissionController& controller,
      AdmissionController::WorkClass work =
          AdmissionController::WorkClass::kCritical)
      : controller_(controller),
        decision_(controller.Enter(work, &retry_after_ms_)) {}
  ~AdmissionTicket() {
    if (admitted()) controller_.Leave();
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const {
    return decision_ == AdmissionController::Decision::kAdmitted;
  }
  bool shed() const {
    return decision_ == AdmissionController::Decision::kShed;
  }
  /// Backoff hint for the BUSY reply; 0 when admitted.
  uint64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  AdmissionController& controller_;
  uint64_t retry_after_ms_ = 0;
  const AdmissionController::Decision decision_;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_ADMISSION_H_
