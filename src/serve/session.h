// Session — one connected client's request loop.
//
// A session reads wire-protocol lines from its transport, executes them
// against the shared GraphRegistry under the shared AdmissionController,
// and writes one reply line per request. Solver state is per-session:
// the epoch-stamped LocalCst/Csm/Multi solvers bound to the most
// recently queried graph persist across requests, so a session issuing
// many queries against one graph pays the O(|V|) solver construction
// once, and scratch resets in O(1) per query (the BatchRunner economics,
// applied to interactive traffic).
//
// The session never terminates on malformed input — every parse or
// execution failure is a typed `ERR` reply and the loop continues. It
// ends on EOF, QUIT, an unrecoverable transport error, or when the
// server's stop flag is raised between requests (graceful drain).

#ifndef LOCS_SERVE_SESSION_H_
#define LOCS_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/local_csm.h"
#include "core/local_cst.h"
#include "core/multi.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/registry.h"
#include "serve/result_cache.h"
#include "serve/transport.h"
#include "serve/wire.h"

namespace locs::serve {

/// Server-imposed per-query policy, applied on top of request options.
struct SessionOptions {
  /// Applied when a query carries no deadline_ms= / budget= option.
  double default_deadline_ms = 0.0;
  uint64_t default_work_budget = 0;
  /// Hard caps: client-supplied limits are clamped to these (0 = no cap).
  double max_deadline_ms = 0.0;
  uint64_t max_work_budget = 0;
  /// Member ids echoed per reply when the query has no limit= (0 = all).
  uint64_t default_member_limit = 0;
  /// Hard cap on one rendered LOAD/query reply line; an oversized reply
  /// is replaced by `ERR too-large` instead of buffering without bound
  /// (0 = uncapped). Clients wanting big communities page with limit=.
  uint64_t max_reply_bytes = 0;
  /// Raised by the server during drain: new queries get ERR
  /// shutting-down, the session exits after the current request.
  const std::atomic<bool>* stop = nullptr;
  /// Server-wide result cache shared by every session (null disables
  /// caching). Hits are answered before admission — a cached reply costs
  /// no solver run, so it should not compete for a query slot.
  ResultCache* cache = nullptr;
};

/// See the file comment. One session per transport; not thread-safe
/// (sessions are the unit of concurrency, not shared between threads).
class Session {
 public:
  Session(Transport& transport, GraphRegistry& registry,
          AdmissionController& admission, ServerMetrics& metrics,
          const SessionOptions& options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs the request loop until EOF/QUIT/transport error/drain.
  void Run();

  /// Requests handled (including errored ones); for tests/diagnostics.
  uint64_t requests_handled() const { return requests_handled_; }

 private:
  /// Solvers bound to one registry entry. Holding the shared_ptr keeps
  /// the graph alive even if it is evicted or replaced mid-session. The
  /// recorder (the server-wide aggregate living in ServerMetrics) feeds
  /// the per-phase totals of the STATS line.
  struct BoundSolvers {
    std::shared_ptr<const ServedGraph> entry;
    LocalCstSolver cst;
    LocalCsmSolver csm;
    LocalMultiSolver multi;

    BoundSolvers(std::shared_ptr<const ServedGraph> bound,
                 obs::Recorder* recorder)
        : entry(std::move(bound)),
          cst(entry->graph, &entry->ordered, &entry->facts),
          csm(entry->graph, &entry->ordered, &entry->facts),
          multi(entry->graph, &entry->ordered, &entry->facts) {
      cst.set_recorder(recorder);
      csm.set_recorder(recorder);
      multi.set_recorder(recorder);
    }
  };

  /// Dispatches one parsed request; returns the reply line. Sets
  /// `*quit` for QUIT.
  std::string Dispatch(const Request& request, bool* quit);

  std::string ExecLoad(const Request& request);
  std::string ExecEvict(const Request& request);
  std::string ExecList();
  std::string ExecQuery(const Request& request);
  std::string ExecStats();

  /// Binds solvers to the named graph (cache-aware); null + ERR reply in
  /// `*error_reply` when the graph is unknown.
  BoundSolvers* Bind(const std::string& name, std::string* error_reply);

  /// Result-cache key for `request` against graph generation `epoch`:
  /// epoch + verb + query vertices + k/max + γ + the *effective* limits
  /// and member limit + trace flag — every input the rendered reply is a
  /// deterministic function of. Lookup keys use the registry's current
  /// epoch; insert keys use the epoch of the entry that actually
  /// answered, so a racing re-LOAD can waste an insert but never alias
  /// one epoch's reply under another's key.
  std::string MakeCacheKey(uint64_t epoch, const Request& request) const;

  /// Merges request limits with the session's defaults and caps.
  QueryLimits EffectiveLimits(const QueryLimits& requested) const;

  bool Stopping() const {
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  }

  Transport& transport_;
  GraphRegistry& registry_;
  AdmissionController& admission_;
  ServerMetrics& metrics_;
  const SessionOptions options_;
  std::unique_ptr<BoundSolvers> bound_;
  uint64_t requests_handled_ = 0;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_SESSION_H_
