#include "serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "serve/transport.h"

namespace locs::serve {

namespace {

// Signal-handler rendezvous. std::atomic pointer stores/loads are
// lock-free for pointers on every supported platform, and the handler
// body is one load plus either a self-pipe write (TCP) or a relaxed
// flag store (stdio) — all async-signal-safe.
std::atomic<TcpServer*> g_signal_tcp{nullptr};
std::atomic<CommunityServer*> g_signal_stdio{nullptr};

void OnTerminate(int) {
  if (TcpServer* tcp = g_signal_tcp.load(std::memory_order_relaxed)) {
    tcp->StopFromSignal();
  }
  if (CommunityServer* server =
          g_signal_stdio.load(std::memory_order_relaxed)) {
    server->RequestStop();
  }
}

void InstallDrainHandlers() {
  std::signal(SIGTERM, OnTerminate);
  std::signal(SIGINT, OnTerminate);
}

/// Splits "name=path[,name=path...]" preload specs.
bool ParsePreload(const std::string& spec, ServerOptions* options,
                  std::string* error) {
  size_t begin = 0;
  while (begin < spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      *error = "--preload items must be name=path, got '" + item + "'";
      return false;
    }
    options->preload.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    begin = end + 1;
  }
  return true;
}

}  // namespace

bool ParseDaemonOptions(const CommandLine& cli, DaemonOptions* options,
                        std::string* error) {
  options->stdio = cli.GetBool("stdio", false);
  const int64_t port = cli.GetInt("port", -1);
  if (!options->stdio && port < 0) {
    *error = "pass --stdio or --port=P (0 = ephemeral)";
    return false;
  }
  if (options->stdio && port >= 0) {
    *error = "--stdio and --port are mutually exclusive";
    return false;
  }
  if (port > 65535) {
    *error = "--port must be in [0, 65535]";
    return false;
  }
  ServerOptions& server = options->server;
  if (port >= 0) server.port = static_cast<uint16_t>(port);
  server.port_file = cli.GetString("port-file", "");
  server.max_graphs =
      static_cast<size_t>(cli.GetInt("max-graphs", 16));
  server.max_sessions =
      static_cast<unsigned>(cli.GetInt("max-sessions", 8));
  server.admission.max_inflight =
      static_cast<unsigned>(cli.GetInt("max-inflight", 4));
  server.admission.max_queued =
      static_cast<unsigned>(cli.GetInt("max-queue", 16));
  server.session.default_deadline_ms =
      cli.GetDouble("default-deadline-ms", 0.0);
  server.session.max_deadline_ms = cli.GetDouble("max-deadline-ms", 0.0);
  server.session.default_work_budget =
      static_cast<uint64_t>(cli.GetInt("default-budget", 0));
  server.session.max_work_budget =
      static_cast<uint64_t>(cli.GetInt("max-budget", 0));
  server.session.default_member_limit =
      static_cast<uint64_t>(cli.GetInt("member-limit", 0));
  server.session.max_reply_bytes =
      static_cast<uint64_t>(cli.GetInt("max-reply-bytes", 0));
  server.cache_entries =
      static_cast<size_t>(cli.GetInt("cache-entries", 1024));
  server.io_timeout_ms =
      static_cast<uint64_t>(cli.GetInt("io-timeout-ms", 0));
  server.idle_timeout_ms =
      static_cast<uint64_t>(cli.GetInt("idle-timeout-ms", 0));
  server.max_sessions_per_peer = static_cast<unsigned>(
      cli.GetInt("max-sessions-per-peer", 0));
  const std::string preload = cli.GetString("preload", "");
  if (!preload.empty() && !ParsePreload(preload, &server, error)) {
    return false;
  }
  return true;
}

const char* DaemonFlagHelp() {
  return
      "  --stdio | --port=P        serve stdin/stdout, or TCP loopback\n"
      "                            (port 0 = kernel-chosen ephemeral)\n"
      "  --port-file=F             write the bound port to F\n"
      "  --preload=name=path,...   register graphs before serving\n"
      "  --max-graphs=N            registry capacity (default 16)\n"
      "  --max-sessions=N          concurrent TCP sessions (default 8)\n"
      "  --max-inflight=N          concurrent queries (default 4)\n"
      "  --max-queue=N             waiting queries before BUSY (default 16)\n"
      "  --default-deadline-ms=D --max-deadline-ms=D\n"
      "  --default-budget=W --max-budget=W\n"
      "                            per-query guard policy (0 = none)\n"
      "  --member-limit=N          member ids echoed per reply (0 = all)\n"
      "  --max-reply-bytes=N       cap one reply line; beyond it the\n"
      "                            reply becomes ERR too-large (0 = none)\n"
      "  --cache-entries=N         result-cache capacity in replies\n"
      "                            (default 1024, 0 disables)\n"
      "  --io-timeout-ms=D         close a session whose peer stalls\n"
      "                            mid-request/mid-reply (0 = never)\n"
      "  --idle-timeout-ms=D       reap a session idle between requests\n"
      "                            (0 = never)\n"
      "  --max-sessions-per-peer=N per-address session cap (0 = none)\n";
}

int DaemonMain(const DaemonOptions& options) {
  CommunityServer shared(options.server);
  std::string error;
  if (!shared.Preload(&error)) {
    std::fprintf(stderr, "locsd: %s\n", error.c_str());
    return 1;
  }

  if (options.stdio) {
    g_signal_stdio.store(&shared, std::memory_order_relaxed);
    InstallDrainHandlers();
    shared.RunStdioSession();
    g_signal_stdio.store(nullptr, std::memory_order_relaxed);
    std::fprintf(stderr, "locsd: session ended; final %s\n",
                 shared.FinalStatsLine().c_str());
    return 0;
  }

  // One detached executor task per session plus the accept thread's
  // worker slot; sessions execute queries inline, so this is the whole
  // thread budget of the daemon.
  Executor executor(options.server.max_sessions + 1);
  TcpServer tcp(shared, executor, options.server);
  if (!tcp.Start(&error)) {
    std::fprintf(stderr, "locsd: %s\n", error.c_str());
    return 1;
  }
  g_signal_tcp.store(&tcp, std::memory_order_relaxed);
  InstallDrainHandlers();
  std::fprintf(stderr, "locsd: listening on 127.0.0.1:%u\n",
               unsigned{tcp.port()});
  tcp.Run();
  g_signal_tcp.store(nullptr, std::memory_order_relaxed);
  std::fprintf(stderr, "locsd: drained; final %s\n",
               shared.FinalStatsLine().c_str());
  return 0;
}

int ClientMain(const RetryClientOptions& options) {
  RetryClient client(options);
  std::string line;
  std::string reply;
  bool quit_sent = false;
  // Lockstep: every request line gets exactly one reply line (blank
  // input lines get none and are skipped), so a pipe never deadlocks.
  // Recovery (reconnect/backoff/BUSY pacing) happens inside Request();
  // with max_attempts == 1 a failure here is the historical hard exit.
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (!client.Request(line, &reply)) {
      std::fprintf(stderr, "locs client: %s\n", reply.c_str());
      return 1;
    }
    std::printf("%s\n", reply.c_str());
    if (line.compare(0, 4, "QUIT") == 0) {
      quit_sent = true;
      break;
    }
  }
  if (!quit_sent && client.connected()) {
    if (client.Request("QUIT", &reply)) std::printf("%s\n", reply.c_str());
  }
  return 0;
}

}  // namespace locs::serve
