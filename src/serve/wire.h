// Wire protocol of the locsd serving layer — a strict, line-oriented,
// human-debuggable request grammar.
//
// One request per line, space-separated tokens, uppercase verbs:
//
//   LOAD <name> <path>                 register a graph under a name
//                                      (graph images auto-detected by
//                                      content; see src/store/)
//   LOADIMG <name> <path>              register a graph image, rejecting
//                                      anything that is not one
//   EVICT <name>                       drop a graph from the registry
//   LIST                               enumerate registered graphs
//   CST <graph> <v> <k> [opt...]       CST(k) community of vertex v
//   CSM <graph> <v> [opt...]           best community of vertex v
//   MULTI <graph> <k|max> <v...> [opt...]   multi-vertex CST(k) / CSM
//   STATS                              one-line server counters
//   PING                               liveness probe
//   QUIT                               end the session
//
// Trailing `opt` tokens are lowercase key=value pairs mapped onto the
// QueryGuard limits: `deadline_ms=<double>`, `budget=<uint64>`, plus
// `limit=<n>` capping the member ids echoed in the reply (0 = all),
// `trace=<0|1>` appending a per-phase telemetry breakdown to the reply
// (deterministic: counters only, no durations), and `gamma=<double>`
// tuning the CSM Equation-8 search budget (signed: negative γ widens
// the budget, `-inf` disables it; ignored by CST/MULTI).
//
// Every reply is also one line: `OK ...`, `ERR <kind> <detail>` or
// `BUSY <detail>` (admission fast-reject). The parser is total: any byte
// sequence — overlong lines, embedded NUL, non-numeric ids, missing or
// surplus arguments — yields a typed WireError, never undefined behavior
// and never an abort. Blank lines are ignored (no reply), so piped
// heredocs with cosmetic spacing stay in lockstep.

#ifndef LOCS_SERVE_WIRE_H_
#define LOCS_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.h"
#include "util/guard.h"

namespace locs::serve {

/// Request verbs. kNone marks an ignorable blank line.
enum class Verb : uint8_t {
  kNone,
  kLoad,
  kLoadImg,
  kEvict,
  kList,
  kCst,
  kCsm,
  kMulti,
  kStats,
  kPing,
  kQuit,
};

inline constexpr int kNumVerbs = 11;

/// Wire name of a verb ("LOAD", "CST", ...; kNone reports "-").
std::string_view VerbName(Verb verb);

/// Typed parse/execution failures carried in `ERR <kind> ...` replies.
enum class WireError : uint8_t {
  kNone,
  kLineTooLong,     ///< request exceeded kMaxLineBytes
  kUnknownVerb,     ///< first token is not a known verb
  kMissingArg,      ///< fewer arguments than the grammar requires
  kExtraArg,        ///< surplus positional arguments
  kBadNumber,       ///< a numeric token failed strict parsing
  kBadOption,       ///< malformed or unknown key=value option
  kUnknownGraph,    ///< query names a graph the registry does not hold
  kVertexRange,     ///< vertex id out of the graph's [0, n) range
  kDuplicateVertex, ///< MULTI query vertices must be distinct
  kRegistryFull,    ///< LOAD rejected: registry at capacity
  kIo,              ///< LOAD failed; detail carries the IoErrorKind
  kShuttingDown,    ///< server is draining; no new work admitted
  kReplyTooLarge,   ///< rendered reply exceeded the per-session cap
  kIoTimeout,       ///< peer stalled mid-request past --io-timeout-ms
  kInternal,        ///< server-side execution fault (incl. injected)
};

inline constexpr int kNumWireErrors = 16;

/// Wire name of an error kind ("line-too-long", "bad-number", ...).
std::string_view WireErrorName(WireError error);

/// Hard cap on request-line length. Long enough for a MULTI query with
/// thousands of seed vertices; short enough that a malicious peer cannot
/// buffer unbounded memory through one session.
inline constexpr size_t kMaxLineBytes = 64 * 1024;

/// A parsed request. Fields beyond `verb` are meaningful per the grammar
/// above; `limits` holds the per-request guard budgets (zeros = none).
struct Request {
  Verb verb = Verb::kNone;
  std::string graph;              ///< LOAD/EVICT name or query graph
  std::string path;               ///< LOAD source file
  uint32_t k = 0;                 ///< CST/MULTI threshold
  bool multi_max = false;         ///< MULTI ... max ... selects CsmMulti
  std::vector<VertexId> vertices; ///< query vertices (MULTI: >= 1)
  QueryLimits limits;             ///< deadline_ms= / budget= options
  uint64_t member_limit = 0;      ///< limit= option; 0 = all members
  bool trace = false;             ///< trace= option; phase breakdown
  double gamma = 0.0;             ///< gamma= option; CSM Eq.-8 budget γ
};

/// ParseRequest outcome: either a request or a typed error with detail.
struct ParseResult {
  WireError error = WireError::kNone;
  std::string detail;
  Request request;

  bool ok() const { return error == WireError::kNone; }
};

/// Parses one request line (no trailing newline). Total: never throws,
/// never aborts, returns a typed error for every malformed input.
ParseResult ParseRequest(std::string_view line);

/// Formats an `ERR <kind> <detail>` reply line (no newline).
std::string FormatError(WireError error, std::string_view detail);

/// Formats the admission fast-reject reply. `retry_after_ms` is the
/// server's load-derived backoff hint; clients honoring it (see
/// serve/client.h) retry no sooner, which converts an overload spike
/// into a spread-out retry wave instead of a stampede.
std::string FormatBusy(unsigned inflight, unsigned queued,
                       uint64_t retry_after_ms);

/// True when `reply` is a BUSY line. `*retry_after_ms` receives the
/// parsed hint (0 when the field is absent or malformed — old servers
/// and the session-cap reject both omit context a client could misread,
/// so absence degrades to "retry at your own pace").
bool ParseBusyReply(std::string_view reply, uint64_t* retry_after_ms);

}  // namespace locs::serve

#endif  // LOCS_SERVE_WIRE_H_
