// RetryClient — a self-healing wire-protocol client.
//
// The raw FdTransport client (one connect, lockstep, die on the first
// failure) is the right tool for scripted tests, but a production
// caller talking to a restartable daemon needs a recovery discipline:
//
//   - transparent reconnect: a dead connection is re-dialed on the next
//     request, so a daemon restart mid-run costs retries, not the run;
//   - exponential backoff with decorrelated jitter between attempts
//     (sleep ~ uniform(base, 3 * previous), capped), so a fleet of
//     clients re-dialing a restarting daemon spreads out instead of
//     stampeding in lockstep;
//   - BUSY discipline: a BUSY reply is the server shedding load on
//     purpose; the client honors its retry_after_ms hint (never
//     retrying sooner) and burns an attempt, keeping overload recovery
//     server-paced;
//   - per-request deadline: one Request() call never exceeds
//     request_deadline_ms wall time across all its attempts, and the
//     same bound caps each blocked read (a hung-but-connected server
//     cannot park the caller);
//   - circuit breaker: after `breaker_threshold` consecutive transport
//     failures the client stops dialing for breaker_cooldown_ms, then
//     half-opens with a PING probe; only a pong closes the breaker and
//     lets real traffic flow. A crashed daemon costs each client one
//     cheap probe per cooldown, not a connect storm.
//
// Sessions are stateful on the server (bound solvers, loaded graphs are
// shared; admission is per-request), but the wire protocol itself is
// request/response — a reconnected session serves any request — so
// retrying across connections is safe for every verb. Not thread-safe:
// one RetryClient per client thread, like one Transport per session.

#ifndef LOCS_SERVE_CLIENT_H_
#define LOCS_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace locs::serve {

struct RetryClientOptions {
  uint16_t port = 0;  ///< loopback TCP port of the daemon
  /// Wall-time cap on one Request() incl. every retry and backoff
  /// sleep; also the per-read transport deadline. 0 = unbounded.
  uint64_t request_deadline_ms = 0;
  /// Total attempts per request (1 = fail on the first error; the
  /// legacy lockstep behavior).
  unsigned max_attempts = 1;
  uint64_t backoff_base_ms = 10;  ///< first retry sleeps >= this
  uint64_t backoff_cap_ms = 2000;
  /// Consecutive transport failures that open the breaker; 0 disables
  /// the breaker entirely.
  unsigned breaker_threshold = 5;
  uint64_t breaker_cooldown_ms = 500;  ///< open time before a probe
  uint64_t jitter_seed = 0x5eed;       ///< deterministic jitter stream
};

/// See the file comment.
class RetryClient {
 public:
  /// Counters for tests and the bench's recovery report.
  struct Stats {
    uint64_t connects = 0;       ///< successful dials (incl. the first)
    uint64_t retries = 0;        ///< attempts after the first, any cause
    uint64_t busy_honored = 0;   ///< BUSY replies waited out
    uint64_t breaker_opens = 0;  ///< closed/half-open -> open transitions
    uint64_t probes = 0;         ///< half-open PING probes sent
  };

  explicit RetryClient(const RetryClientOptions& options);
  ~RetryClient();

  RetryClient(const RetryClient&) = delete;
  RetryClient& operator=(const RetryClient&) = delete;

  /// Sends one request line and delivers its reply line, reconnecting
  /// and retrying per the options. False when every attempt failed (or
  /// the deadline expired); `*reply` then holds a diagnostic. A BUSY
  /// reply on the final attempt is returned as the reply (true).
  bool Request(std::string_view request, std::string* reply);

  /// Drops the current connection (next Request re-dials).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }
  const Stats& stats() const { return stats_; }

 private:
  enum class Breaker : uint8_t { kClosed, kOpen, kHalfOpen };

  /// One write+read on the live connection. False = transport failure
  /// (connection dropped on exit).
  bool Exchange(std::string_view request, std::string* reply);

  /// Ensures a live connection, probing through the breaker state
  /// machine. False when dialing failed or the breaker is open with
  /// cooldown remaining (sets *wait_ms to the remaining cooldown).
  bool EnsureConnected(uint64_t* wait_ms);

  void NoteTransportFailure();

  /// Decorrelated-jitter step: advances prev_backoff_ms_ and returns it.
  uint64_t NextBackoffMs();

  const RetryClientOptions options_;
  Rng rng_;
  int fd_ = -1;
  Stats stats_;
  unsigned consecutive_failures_ = 0;
  Breaker breaker_ = Breaker::kClosed;
  uint64_t breaker_opened_at_ms_ = 0;
  uint64_t prev_backoff_ms_ = 0;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_CLIENT_H_
