#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace locs::serve {

namespace {

/// Bucket index for a latency: bucket b >= 1 counts latencies in
/// [2^(b-1), 2^b - 1] us, bucket 0 exactly 0 us (sub-microsecond), and
/// the last bucket is open-ended.
int BucketOf(uint64_t us) {
  const int bucket = us == 0 ? 0 : static_cast<int>(std::bit_width(us));
  return bucket < MetricsSnapshot::kLatencyBuckets
             ? bucket
             : MetricsSnapshot::kLatencyBuckets - 1;
}

/// Largest latency bucket `b` can hold (the value percentile queries
/// report): the inclusive bound 2^b - 1, or 0 for the zero bucket — the
/// open-ended last bucket saturates at its nominal bound.
uint64_t BucketUpperBoundUs(int b) {
  return b == 0 ? 0 : (uint64_t{1} << b) - 1;
}

void Append(std::string* out, const char* key, uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s=%" PRIu64, key, value);
  *out += buffer;
}

}  // namespace

void ServerMetrics::RecordLatencyUs(uint64_t us) {
  latency_hist_[static_cast<size_t>(BucketOf(us))].fetch_add(
      1, std::memory_order_relaxed);
}

MetricsSnapshot ServerMetrics::Snapshot() const {
  MetricsSnapshot snap;
  for (int v = 0; v < kNumVerbs; ++v) {
    snap.requests_by_verb[v] =
        requests_by_verb_[static_cast<size_t>(v)].load(
            std::memory_order_relaxed);
  }
  for (int e = 0; e < kNumWireErrors; ++e) {
    snap.errors_by_kind[e] = errors_by_kind_[static_cast<size_t>(e)].load(
        std::memory_order_relaxed);
  }
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.interrupted = interrupted_.load(std::memory_order_relaxed);
  snap.io_timeouts = io_timeouts_.load(std::memory_order_relaxed);
  snap.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  snap.retry_hints = retry_hints_.load(std::memory_order_relaxed);
  snap.q_attempted = q_attempted_.load(std::memory_order_relaxed);
  snap.q_completed = q_completed_.load(std::memory_order_relaxed);
  snap.q_failed = q_failed_.load(std::memory_order_relaxed);
  snap.q_shed = q_shed_.load(std::memory_order_relaxed);
  snap.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  snap.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.cache_inserts = cache_inserts_.load(std::memory_order_relaxed);
  snap.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  snap.image_loads = image_loads_.load(std::memory_order_relaxed);
  snap.image_load_errors =
      image_load_errors_.load(std::memory_order_relaxed);
  for (int b = 0; b < MetricsSnapshot::kLatencyBuckets; ++b) {
    snap.latency_hist[b] =
        latency_hist_[static_cast<size_t>(b)].load(
            std::memory_order_relaxed);
  }
  snap.uptime_ms = uptime_.Millis();
  snap.telemetry = recorder_.Snapshot();
  return snap;
}

uint64_t MetricsSnapshot::TotalRequests() const {
  uint64_t total = 0;
  for (const uint64_t count : requests_by_verb) total += count;
  return total;
}

uint64_t MetricsSnapshot::TotalErrors() const {
  uint64_t total = 0;
  for (const uint64_t count : errors_by_kind) total += count;
  // kNone is never counted as an error, but guard against misuse.
  return total - errors_by_kind[static_cast<size_t>(WireError::kNone)];
}

uint64_t MetricsSnapshot::TotalQueries() const {
  uint64_t total = 0;
  for (const uint64_t count : latency_hist) total += count;
  return total;
}

uint64_t MetricsSnapshot::LatencyPercentileUs(double p) const {
  const uint64_t total = TotalQueries();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile sample, 1-based: exact ceil(p * total) clamped
  // to [1, total], so p = 1.0 selects the last sample and a single-sample
  // histogram always selects that sample (no additive fudge that could
  // push the rank past the population).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  rank = std::min(std::max<uint64_t>(rank, 1), total);
  uint64_t cumulative = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    cumulative += latency_hist[b];
    if (cumulative >= rank) return BucketUpperBoundUs(b);
  }
  return BucketUpperBoundUs(kLatencyBuckets - 1);
}

std::string MetricsSnapshot::RenderStatsLine(unsigned inflight,
                                             unsigned queued,
                                             size_t graphs) const {
  std::string line = "OK";
  Append(&line, "uptime_ms", static_cast<uint64_t>(uptime_ms));
  Append(&line, "graphs", graphs);
  Append(&line, "sessions_open", sessions_opened - sessions_closed);
  Append(&line, "sessions_total", sessions_opened);
  Append(&line, "inflight", inflight);
  Append(&line, "queued", queued);
  Append(&line, "requests", TotalRequests());
  for (int v = 0; v < kNumVerbs; ++v) {
    const auto verb = static_cast<Verb>(v);
    if (verb == Verb::kNone || requests_by_verb[v] == 0) continue;
    std::string key = "verb_";
    for (const char c : VerbName(verb)) {
      key += static_cast<char>(c - 'A' + 'a');
    }
    Append(&line, key.c_str(), requests_by_verb[v]);
  }
  Append(&line, "errors", TotalErrors());
  for (int e = 0; e < kNumWireErrors; ++e) {
    const auto kind = static_cast<WireError>(e);
    if (kind == WireError::kNone || errors_by_kind[e] == 0) continue;
    std::string key = "err_";
    key += WireErrorName(kind);
    Append(&line, key.c_str(), errors_by_kind[e]);
  }
  Append(&line, "rejected", rejected);
  Append(&line, "interrupted", interrupted);
  Append(&line, "io_timeouts", io_timeouts);
  Append(&line, "idle_reaped", idle_reaped);
  Append(&line, "retry_hints", retry_hints);
  Append(&line, "q_attempted", q_attempted);
  Append(&line, "q_completed", q_completed);
  Append(&line, "q_failed", q_failed);
  Append(&line, "q_shed", q_shed);
  Append(&line, "cache_hits", cache_hits);
  Append(&line, "cache_misses", cache_misses);
  Append(&line, "cache_inserts", cache_inserts);
  Append(&line, "cache_evictions", cache_evictions);
  Append(&line, "image_loads", image_loads);
  Append(&line, "image_load_errors", image_load_errors);
  Append(&line, "queries", TotalQueries());
  Append(&line, "p50_us", LatencyPercentileUs(0.50));
  Append(&line, "p95_us", LatencyPercentileUs(0.95));
  // Aggregated per-phase solver telemetry. Phases no query entered are
  // omitted, so the key set is deterministic for a scripted session; the
  // only wall-clock-dependent values end in _ns (maskable, like _us).
  Append(&line, "solver_queries", telemetry.queries);
  Append(&line, "solver_fallbacks", telemetry.fallbacks);
  for (size_t i = 0; i < obs::kNumPhases; ++i) {
    const obs::PhaseStats& ph =
        telemetry.sum.phases[i];
    if (ph.entered == 0) continue;
    std::string prefix = "ph_";
    prefix += obs::PhaseName(static_cast<obs::Phase>(i));
    Append(&line, (prefix + "_entered").c_str(), ph.entered);
    Append(&line, (prefix + "_visited").c_str(), ph.vertices_visited);
    Append(&line, (prefix + "_scanned").c_str(), ph.edges_scanned);
    Append(&line, (prefix + "_cand_gen").c_str(), ph.candidates_generated);
    Append(&line, (prefix + "_cand_rej").c_str(), ph.candidates_rejected);
    Append(&line, (prefix + "_budget").c_str(), ph.budget_spent);
    Append(&line, (prefix + "_ns").c_str(), ph.duration_ns);
  }
  return line;
}

}  // namespace locs::serve
