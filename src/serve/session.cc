#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <unordered_set>

#include "core/result.h"
#include "util/failpoint.h"
#include "util/guard.h"
#include "util/timer.h"

namespace locs::serve {

namespace {

void AppendKv(std::string* out, const char* key, uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s=%" PRIu64, key, value);
  *out += buffer;
}

/// Renders a query reply. Replies are deterministic for a given (graph,
/// request): timing lives in the STATS histogram, not here, so scripted
/// sessions can be compared byte-for-byte. The trace=1 breakdown keeps
/// that property — it renders phase *counters* only, never durations.
std::string FormatQueryReply(const SearchResult& result,
                             uint64_t member_limit, bool trace) {
  const obs::QueryTelemetry& telemetry = result.telemetry;
  const Community& community = result.Best();
  std::string reply = "OK status=";
  reply += TerminationName(result.status);
  AppendKv(&reply, "n", community.members.size());
  AppendKv(&reply, "delta", community.min_degree);
  AppendKv(&reply, "visited", telemetry.TotalVisited());
  reply += " members=";
  const size_t shown =
      member_limit == 0
          ? community.members.size()
          : std::min<size_t>(member_limit, community.members.size());
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) reply += ',';
    reply += std::to_string(community.members[i]);
  }
  if (shown < community.members.size()) {
    AppendKv(&reply, "truncated", community.members.size() - shown);
  }
  if (trace) {
    AppendKv(&reply, "scanned", telemetry.TotalScanned());
    AppendKv(&reply, "fallback", telemetry.used_global_fallback ? 1 : 0);
    // One block per entered phase:
    //   <name>:<entered>:<visited>:<scanned>:<cand_gen>:<cand_rej>:<budget>
    reply += " phases=";
    bool first = true;
    for (size_t i = 0; i < obs::kNumPhases; ++i) {
      const obs::PhaseStats& ph = telemetry.phases[i];
      if (ph.entered == 0) continue;
      if (!first) reply += ',';
      first = false;
      reply += obs::PhaseName(static_cast<obs::Phase>(i));
      for (const uint64_t value :
           {ph.entered, ph.vertices_visited, ph.edges_scanned,
            ph.candidates_generated, ph.candidates_rejected,
            ph.budget_spent}) {
        reply += ':';
        reply += std::to_string(value);
      }
    }
    if (first) reply += '-';  // no phase ran (e.g. core-index negative)
  }
  return reply;
}

}  // namespace

Session::Session(Transport& transport, GraphRegistry& registry,
                 AdmissionController& admission, ServerMetrics& metrics,
                 const SessionOptions& options)
    : transport_(transport),
      registry_(registry),
      admission_(admission),
      metrics_(metrics),
      options_(options) {
  metrics_.CountSessionOpened();
}

Session::~Session() { metrics_.CountSessionClosed(); }

void Session::Run() {
  std::string line;
  while (true) {
    const Transport::ReadStatus status = transport_.ReadLine(&line);
    if (status == Transport::ReadStatus::kEof ||
        status == Transport::ReadStatus::kError) {
      return;
    }
    if (status == Transport::ReadStatus::kTimeout) {
      // Peer started a request and stalled past the io deadline; the
      // parting ERR is best-effort (the peer may already be gone).
      metrics_.CountIoTimeout();
      metrics_.CountError(WireError::kIoTimeout);
      transport_.WriteLine(
          FormatError(WireError::kIoTimeout, "request stalled; closing"));
      return;
    }
    if (status == Transport::ReadStatus::kIdleTimeout) {
      // Idle reaper: a quiet-but-open connection gives its thread back.
      metrics_.CountIdleReaped();
      transport_.WriteLine(
          FormatError(WireError::kIoTimeout, "idle; closing"));
      return;
    }
    if (status == Transport::ReadStatus::kTooLong) {
      ++requests_handled_;
      metrics_.CountError(WireError::kLineTooLong);
      if (!transport_.WriteLine(FormatError(WireError::kLineTooLong,
                                            "request line discarded"))) {
        return;
      }
      continue;
    }
    ParseResult parsed = ParseRequest(line);
    if (parsed.ok() && parsed.request.verb == Verb::kNone) continue;
    ++requests_handled_;
    if (!parsed.ok()) {
      metrics_.CountError(parsed.error);
      if (!transport_.WriteLine(FormatError(parsed.error, parsed.detail))) {
        return;
      }
      continue;
    }
    metrics_.CountRequest(parsed.request.verb);
    bool quit = false;
    const std::string reply = Dispatch(parsed.request, &quit);
    if (!transport_.WriteLine(reply)) {
      if (transport_.WriteTimedOut()) metrics_.CountIoTimeout();
      return;
    }
    if (quit || Stopping()) return;
  }
}

std::string Session::Dispatch(const Request& request, bool* quit) {
  switch (request.verb) {
    case Verb::kPing:
      return "OK pong";
    case Verb::kQuit:
      *quit = true;
      return "OK bye";
    case Verb::kStats:
      return ExecStats();
    case Verb::kList:
      return ExecList();
    case Verb::kEvict:
      return ExecEvict(request);
    case Verb::kLoad:
    case Verb::kLoadImg:
    case Verb::kCst:
    case Verb::kCsm:
    case Verb::kMulti: {
      // Conservation ledger: every attempted query reaches exactly one
      // of {completed, failed, shed}. All ledger updates live in this
      // single-threaded dispatch path, so the identity is exact.
      const bool is_query =
          request.verb != Verb::kLoad && request.verb != Verb::kLoadImg;
      if (is_query) metrics_.CountQueryAttempted();
      if (Stopping()) {
        if (is_query) metrics_.CountQueryFailed();
        metrics_.CountError(WireError::kShuttingDown);
        return FormatError(WireError::kShuttingDown, "server draining");
      }
      // Result-cache lookup, before admission: a hit is answered from
      // memory without a solver run, so it neither takes a ticket nor
      // competes with real queries for a slot. The key pins the
      // registry's *current* epoch for the graph — a reply cached
      // against an evicted or replaced generation can never match.
      if (is_query && options_.cache != nullptr) {
        if (const auto entry = registry_.Get(request.graph)) {
          WallTimer timer;
          std::string reply;
          if (options_.cache->Lookup(MakeCacheKey(entry->epoch, request),
                                     &reply)) {
            metrics_.CountCacheHit();
            metrics_.recorder().RecordCacheHit();
            metrics_.RecordLatencyUs(static_cast<uint64_t>(timer.Micros()));
            metrics_.CountQueryCompleted();
            return reply;
          }
          metrics_.CountCacheMiss();
        }
      }
      // Admission gates the expensive verbs: graph loads and queries.
      // Cheap control verbs above bypass it so STATS stays responsive
      // under overload — exactly when it is most needed. The work class
      // drives the overload ladder: LOADs shed first, cache-eligible
      // queries next (their retry is likely a cheap hit), everything
      // else only at hard saturation.
      const AdmissionController::WorkClass work =
          !is_query ? AdmissionController::WorkClass::kBulk
          : options_.cache != nullptr
              ? AdmissionController::WorkClass::kRetryable
              : AdmissionController::WorkClass::kCritical;
      AdmissionTicket ticket(admission_, work);
      if (!ticket.admitted()) {
        metrics_.CountRejected();
        if (is_query) metrics_.CountQueryShed();
        metrics_.CountRetryHint();
        const AdmissionController::Counts counts = admission_.Snapshot();
        return FormatBusy(counts.inflight, counts.queued,
                          ticket.retry_after_ms());
      }
      // Test hook: makes "the server is saturated" a deterministic state
      // (see serve_session_test's BUSY coverage).
      if (LOCS_FAILPOINT("serve.slow_query")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      std::string reply = is_query ? ExecQuery(request) : ExecLoad(request);
      if (options_.max_reply_bytes != 0 &&
          reply.size() > options_.max_reply_bytes) {
        metrics_.CountError(WireError::kReplyTooLarge);
        reply = FormatError(
            WireError::kReplyTooLarge,
            "reply of " + std::to_string(reply.size()) +
                " bytes exceeds cap " +
                std::to_string(options_.max_reply_bytes) +
                "; page with limit=");
      }
      if (is_query) {
        if (reply.compare(0, 2, "OK") == 0) {
          metrics_.CountQueryCompleted();
        } else {
          metrics_.CountQueryFailed();
        }
      }
      return reply;
    }
    case Verb::kNone:
      break;
  }
  metrics_.CountError(WireError::kUnknownVerb);
  return FormatError(WireError::kUnknownVerb, "unhandled verb");
}

std::string Session::ExecLoad(const Request& request) {
  IoError io_error;
  bool full = false;
  bool image_attempted = false;
  const auto source = request.verb == Verb::kLoadImg
                          ? GraphRegistry::LoadSource::kImage
                          : GraphRegistry::LoadSource::kAuto;
  const auto entry = registry_.Load(request.graph, request.path, &io_error,
                                    &full, source, &image_attempted);
  if (entry == nullptr) {
    if (full) {
      metrics_.CountError(WireError::kRegistryFull);
      return FormatError(WireError::kRegistryFull,
                         "registry holds " +
                             std::to_string(registry_.max_graphs()) +
                             " graphs; EVICT one first");
    }
    if (image_attempted) metrics_.CountImageLoadError();
    metrics_.CountError(WireError::kIo);
    return FormatError(
        WireError::kIo,
        std::string(IoErrorKindName(io_error.kind)) + ": " +
            io_error.message);
  }
  if (entry->from_image) metrics_.CountImageLoad();
  std::string reply = "OK graph=" + entry->name;
  AppendKv(&reply, "vertices", entry->graph.NumVertices());
  AppendKv(&reply, "edges", entry->graph.NumEdges());
  AppendKv(&reply, "degeneracy", entry->index.Degeneracy());
  reply += entry->from_image ? " source=image" : " source=text";
  AppendKv(&reply, "load_ms", static_cast<uint64_t>(entry->load_ms));
  AppendKv(&reply, "build_ms", static_cast<uint64_t>(entry->build_ms));
  return reply;
}

std::string Session::ExecEvict(const Request& request) {
  if (!registry_.Evict(request.graph)) {
    metrics_.CountError(WireError::kUnknownGraph);
    return FormatError(WireError::kUnknownGraph,
                       "no graph named '" + request.graph + "'");
  }
  if (bound_ != nullptr && bound_->entry->name == request.graph) {
    bound_.reset();  // do not serve stale data under an evicted name
  }
  return "OK evicted=" + request.graph;
}

std::string Session::ExecList() {
  const auto infos = registry_.List();
  std::string reply = "OK";
  AppendKv(&reply, "graphs", infos.size());
  for (const auto& info : infos) {
    reply += ' ';
    reply += info.name;
    reply += ':';
    reply += std::to_string(info.vertices);
    reply += ':';
    reply += std::to_string(info.edges);
  }
  return reply;
}

std::string Session::ExecStats() {
  const AdmissionController::Counts counts = admission_.Snapshot();
  return metrics_.Snapshot().RenderStatsLine(counts.inflight,
                                             counts.queued,
                                             registry_.size());
}

Session::BoundSolvers* Session::Bind(const std::string& name,
                                     std::string* error_reply) {
  auto entry = registry_.Get(name);
  if (entry == nullptr) {
    metrics_.CountError(WireError::kUnknownGraph);
    *error_reply = FormatError(WireError::kUnknownGraph,
                               "no graph named '" + name + "'");
    return nullptr;
  }
  if (bound_ == nullptr || bound_->entry != entry) {
    bound_ = std::make_unique<BoundSolvers>(std::move(entry),
                                            &metrics_.recorder());
  }
  return bound_.get();
}

QueryLimits Session::EffectiveLimits(const QueryLimits& requested) const {
  QueryLimits limits = requested;
  if (limits.deadline_ms <= 0.0) {
    limits.deadline_ms = options_.default_deadline_ms;
  }
  if (options_.max_deadline_ms > 0.0 &&
      (limits.deadline_ms <= 0.0 ||
       limits.deadline_ms > options_.max_deadline_ms)) {
    limits.deadline_ms = options_.max_deadline_ms;
  }
  if (limits.work_budget == 0) {
    limits.work_budget = options_.default_work_budget;
  }
  if (options_.max_work_budget != 0 &&
      (limits.work_budget == 0 ||
       limits.work_budget > options_.max_work_budget)) {
    limits.work_budget = options_.max_work_budget;
  }
  return limits;
}

std::string Session::ExecQuery(const Request& request) {
  std::string error_reply;
  BoundSolvers* solvers = Bind(request.graph, &error_reply);
  if (solvers == nullptr) return error_reply;
  const Graph& graph = solvers->entry->graph;
  for (const VertexId v : request.vertices) {
    if (v >= graph.NumVertices()) {
      metrics_.CountError(WireError::kVertexRange);
      return FormatError(WireError::kVertexRange,
                         "vertex " + std::to_string(v) +
                             " out of range [0, " +
                             std::to_string(graph.NumVertices()) + ")");
    }
  }
  if (request.verb == Verb::kMulti && request.vertices.size() > 1) {
    std::unordered_set<VertexId> seen(request.vertices.begin(),
                                      request.vertices.end());
    if (seen.size() != request.vertices.size()) {
      metrics_.CountError(WireError::kDuplicateVertex);
      return FormatError(WireError::kDuplicateVertex,
                         "MULTI query vertices must be distinct");
    }
  }

  // Chaos hook: a solver-dispatch fault degrades to a typed ERR on this
  // one request; the session (and every other session) keeps serving.
  if (LOCS_FAILPOINT("serve.solver.error")) {
    metrics_.CountError(WireError::kInternal);
    return FormatError(WireError::kInternal, "injected solver fault");
  }

  const uint64_t member_limit = request.member_limit != 0
                                    ? request.member_limit
                                    : options_.default_member_limit;
  WallTimer timer;
  QueryGuard guard(EffectiveLimits(request.limits));
  SearchResult result;
  const CoreIndex& index = solvers->entry->index;
  switch (request.verb) {
    case Verb::kCst:
      // Exact O(1) non-existence from the precomputed core index: CST(k)
      // has an answer iff the vertex lies in the k-core (Lemma 3/4), so
      // a miss skips the whole local search + global fallback.
      if (!index.HasCst(request.vertices[0], request.k)) {
        result = SearchResult::MakeNotExists();
      } else {
        result = solvers->cst.Solve(request.vertices[0], request.k, {},
                                    nullptr, &guard);
      }
      break;
    case Verb::kCsm: {
      CsmOptions csm_options;
      csm_options.gamma = request.gamma;
      result = solvers->csm.Solve(request.vertices[0], csm_options,
                                  nullptr, &guard);
      break;
    }
    case Verb::kMulti:
      if (request.multi_max) {
        result = solvers->multi.CsmMulti(request.vertices, nullptr, &guard);
      } else {
        // Same index shortcut, per seed vertex: every member of a δ>=k
        // community lies in the k-core, so one seed outside it is an
        // exact negative.
        bool possible = true;
        for (const VertexId v : request.vertices) {
          if (!index.HasCst(v, request.k)) {
            possible = false;
            break;
          }
        }
        result = possible ? solvers->multi.CstMulti(request.vertices,
                                                    request.k, nullptr,
                                                    &guard)
                          : SearchResult::MakeNotExists();
      }
      break;
    default:
      return FormatError(WireError::kUnknownVerb, "not a query verb");
  }
  metrics_.RecordLatencyUs(static_cast<uint64_t>(timer.Micros()));
  if (result.Interrupted()) metrics_.CountInterrupted();
  std::string reply = FormatQueryReply(result, member_limit, request.trace);
  // Admit only settled results: an interrupted reply reflects where the
  // guard happened to trip, not a deterministic function of the key.
  // The insert key uses the epoch of the entry that answered (not the
  // registry's current one), keeping key and value consistent even if a
  // re-LOAD raced this query.
  if (options_.cache != nullptr && !result.Interrupted()) {
    const size_t evicted = options_.cache->Insert(
        MakeCacheKey(solvers->entry->epoch, request), reply);
    metrics_.CountCacheInsert();
    metrics_.CountCacheEvictions(evicted);
  }
  return reply;
}

std::string Session::MakeCacheKey(uint64_t epoch,
                                  const Request& request) const {
  const QueryLimits limits = EffectiveLimits(request.limits);
  const uint64_t member_limit = request.member_limit != 0
                                    ? request.member_limit
                                    : options_.default_member_limit;
  std::string key = std::to_string(epoch);
  key += '|';
  key += VerbName(request.verb);
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer),
                "|%" PRIu32 "|%d|%.17g|%.17g|%" PRIu64 "|%" PRIu64 "|%d",
                request.k, request.multi_max ? 1 : 0, request.gamma,
                limits.deadline_ms, limits.work_budget, member_limit,
                request.trace ? 1 : 0);
  key += buffer;
  for (const VertexId v : request.vertices) {
    key += '|';
    key += std::to_string(v);
  }
  return key;
}

}  // namespace locs::serve
