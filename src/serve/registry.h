// GraphRegistry — named, shared, immutable graphs for the serving layer.
//
// A resident server answers many queries against few graphs, so the
// registry loads each graph once, precomputes everything the solvers can
// reuse (GraphFacts for the Theorem-3/5 bounds, the §4.3.2 degree-ordered
// adjacency, and the CoreIndex whose O(1) core-number lookup gives exact
// CST-existence answers), and hands sessions a
// shared_ptr<const ServedGraph>. Sessions never copy graph data; an
// EVICT or replacing LOAD only drops the registry's reference, so
// queries already holding the entry finish safely on the old snapshot
// and the memory is reclaimed when the last session lets go — the same
// read-copy-update shape later snapshot/refresh PRs will extend.
//
// Load parses and builds entirely outside the registry lock: concurrent
// LOADs of different graphs overlap, and lookups never wait on a load.

#ifndef LOCS_SERVE_REGISTRY_H_
#define LOCS_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/core_index.h"
#include "core/local_cst.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/ordering.h"
#include "store/image.h"
#include "util/thread_annotations.h"

namespace locs::serve {

/// One registered graph plus every shared precomputation. Immutable after
/// construction; safe for concurrent queries from any number of sessions.
struct ServedGraph {
  std::string name;
  std::string source_path;
  Graph graph;
  GraphFacts facts;
  OrderedAdjacency ordered;
  CoreIndex index;
  double load_ms = 0.0;   ///< file parse (or image map+verify) time
  double build_ms = 0.0;  ///< facts + ordering + core-index build time
                          ///< (0 for image loads: all precomputed)
  /// True when this snapshot is mmap-backed by a graph image; its arrays
  /// view the mapping, kept alive by the ConstArray keepalives.
  bool from_image = false;
  /// Registry-unique load generation: every successful Load — including
  /// a replacing re-LOAD under the same name — mints a fresh epoch.
  /// Cache keys lead with it, so replies can never outlive the graph
  /// contents they were computed from (see serve/result_cache.h).
  uint64_t epoch = 0;

  ServedGraph(std::string name_in, std::string path_in, Graph graph_in)
      : name(std::move(name_in)),
        source_path(std::move(path_in)),
        graph(std::move(graph_in)),
        facts(GraphFacts::Compute(graph)),
        ordered(graph),
        index(graph) {}

  /// Image-backed snapshot: everything was deserialized, nothing is
  /// rebuilt.
  ServedGraph(std::string name_in, std::string path_in,
              store::LoadedImage image)
      : name(std::move(name_in)),
        source_path(std::move(path_in)),
        graph(std::move(image.graph)),
        facts(image.facts),
        ordered(std::move(image.ordered)),
        index(std::move(image.index)),
        from_image(true) {}
};

/// Thread-safe name -> ServedGraph map with a capacity cap.
class GraphRegistry {
 public:
  /// Summary row for LIST and diagnostics.
  struct GraphInfo {
    std::string name;
    uint64_t vertices = 0;
    uint64_t edges = 0;
  };

  /// `max_graphs` caps resident graphs (a LOAD of a *new* name beyond it
  /// is rejected; replacing an existing name always succeeds).
  explicit GraphRegistry(size_t max_graphs = 16)
      : max_graphs_(max_graphs) {}

  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// How Load interprets the file at `path`.
  enum class LoadSource : uint8_t {
    kAuto,   ///< graph image when the content sniff says so (any
             ///< extension), else by extension via LoadGraphAuto
    kImage,  ///< must be a graph image (the LOADIMG verb)
  };

  /// Loads `path` and registers it under `name`, replacing any previous
  /// graph of that name. Returns the entry, or null with `error`
  /// populated on a load failure or `*full` set when the registry is at
  /// capacity. `*image_attempted` (optional) reports whether the image
  /// path was taken — set even on failure, so callers can attribute the
  /// error to the image store.
  std::shared_ptr<const ServedGraph> Load(
      const std::string& name, const std::string& path, IoError* error,
      bool* full, LoadSource source = LoadSource::kAuto,
      bool* image_attempted = nullptr) LOCS_EXCLUDES(mutex_);

  /// The named entry, or null. O(log graphs).
  std::shared_ptr<const ServedGraph> Get(const std::string& name) const
      LOCS_EXCLUDES(mutex_);

  /// Drops the named entry (in-flight queries holding it finish safely).
  /// False when no such graph exists.
  bool Evict(const std::string& name) LOCS_EXCLUDES(mutex_);

  std::vector<GraphInfo> List() const LOCS_EXCLUDES(mutex_);

  size_t size() const LOCS_EXCLUDES(mutex_);
  size_t max_graphs() const { return max_graphs_; }

 private:
  const size_t max_graphs_;
  std::atomic<uint64_t> next_epoch_{1};
  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<const ServedGraph>> graphs_
      LOCS_GUARDED_BY(mutex_);
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_REGISTRY_H_
