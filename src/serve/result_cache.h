// ResultCache — a bounded LRU over rendered query replies.
//
// locsd query replies are deterministic functions of (graph contents,
// verb, query vertices, k/max, γ, effective limits, member limit, trace
// flag): FormatQueryReply renders counters, never durations. That makes
// the full reply line safely cacheable — a hit returns the exact bytes a
// fresh solve would produce — provided the key pins the *graph contents*
// and not just the graph's name. The key therefore leads with the
// registry epoch of the entry that answered (every LOAD, including a
// replacing re-LOAD under the same name, mints a fresh epoch), so an
// EVICT + re-LOAD of a different graph under the same name can never
// serve a stale reply: the old epoch's entries simply become
// unreachable and age out of the LRU.
//
// Interrupted results (deadline/budget trips) are never inserted — they
// depend on wall-clock and admission timing, not on the key.
//
// Thread-safe: one cache is shared by every session of a server; Lookup
// and Insert take one mutex. Hit/miss/insert/evict accounting lives in
// ServerMetrics (the sessions count), keeping this class a pure
// mapping.

#ifndef LOCS_SERVE_RESULT_CACHE_H_
#define LOCS_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/thread_annotations.h"

namespace locs::serve {

/// See the file comment. `max_entries == 0` is a valid always-miss cache.
class ResultCache {
 public:
  explicit ResultCache(size_t max_entries) : max_entries_(max_entries) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True on a hit; copies the cached reply into `*reply` and promotes
  /// the entry to most-recently-used.
  bool Lookup(const std::string& key, std::string* reply)
      LOCS_EXCLUDES(mutex_);

  /// Inserts (or refreshes) `key -> reply`, evicting least-recently-used
  /// entries beyond capacity. Returns the number of entries evicted.
  size_t Insert(const std::string& key, const std::string& reply)
      LOCS_EXCLUDES(mutex_);

  size_t size() const LOCS_EXCLUDES(mutex_);
  size_t max_entries() const { return max_entries_; }

 private:
  /// Front of `lru_` is most recent; the map points into the list.
  using Entry = std::pair<std::string, std::string>;  // key, reply

  const size_t max_entries_;
  mutable Mutex mutex_;
  std::list<Entry> lru_ LOCS_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      LOCS_GUARDED_BY(mutex_);
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_RESULT_CACHE_H_
