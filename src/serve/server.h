// locsd server core — shared state, stdio mode, and the TCP front end.
//
// CommunityServer bundles the state every session shares (GraphRegistry,
// AdmissionController, ServerMetrics, drain flag) and runs the stdio
// deployment mode: one session over fds 0/1, the mode tests and piped
// scripts use. TcpServer adds the loopback socket front end: an accept
// loop on the caller's thread, one Session per connection dispatched as
// a detached task on an exec::Executor, a session-count cap with
// immediate `BUSY` + close beyond it, and graceful drain — Stop() (or
// the async-signal-safe StopFromSignal) wakes the accept loop through a
// self-pipe, new work is refused, blocked session reads are unblocked
// via shutdown(2), and Run() returns once the last session has finished
// its current request.
//
// The TCP listener binds 127.0.0.1 only: locsd is a backend component;
// exposure beyond the host belongs to a fronting proxy, not this layer.

#ifndef LOCS_SERVE_SERVER_H_
#define LOCS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "serve/transport.h"
#include "util/thread_annotations.h"

namespace locs::serve {

/// Everything configurable about a server instance.
struct ServerOptions {
  SessionOptions session;
  AdmissionController::Options admission;
  size_t max_graphs = 16;
  /// Result-cache capacity in replies (see serve/result_cache.h);
  /// 0 disables caching entirely (sessions get a null cache pointer).
  size_t cache_entries = 1024;
  /// Concurrent TCP sessions; connections beyond get `BUSY` and close.
  unsigned max_sessions = 8;
  /// Concurrent TCP sessions per peer address (0 = unlimited). On the
  /// loopback-only listener every peer shares 127.0.0.1, so this is a
  /// second, tighter global ring; on a future non-loopback front end it
  /// becomes true per-client isolation.
  unsigned max_sessions_per_peer = 0;
  /// Transport deadlines applied to every session (stdio and TCP);
  /// 0 = unbounded, the historical blocking behavior. See
  /// FdTransportOptions for exact semantics.
  uint64_t io_timeout_ms = 0;
  uint64_t idle_timeout_ms = 0;
  /// TCP port; 0 picks an ephemeral port (see TcpServer::port()).
  uint16_t port = 0;
  /// When set, the chosen port is written here after listen() — the
  /// rendezvous used by scripted TCP smoke tests.
  std::string port_file;
  /// Graphs to register before serving: (name, path) pairs.
  std::vector<std::pair<std::string, std::string>> preload;
};

/// Shared server state plus the stdio deployment mode.
class CommunityServer {
 public:
  explicit CommunityServer(const ServerOptions& options);

  CommunityServer(const CommunityServer&) = delete;
  CommunityServer& operator=(const CommunityServer&) = delete;

  GraphRegistry& registry() { return registry_; }
  AdmissionController& admission() { return admission_; }
  ServerMetrics& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }

  /// Loads every options.preload graph; false (with `*error` set) on the
  /// first failure.
  bool Preload(std::string* error);

  /// Runs one session over stdin/stdout until EOF or QUIT. Returns 0.
  int RunStdioSession();

  /// Raises the drain flag: sessions exit after their current request
  /// and new queries get `ERR shutting-down`.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Session policy with the drain flag and result cache threaded in.
  SessionOptions MakeSessionOptions();

  /// Transport deadlines with the drain flag threaded in: every blocked
  /// read/write observes the stop flag, so drain reclaims sessions
  /// parked on silent peers promptly.
  FdTransportOptions MakeTransportOptions();

  /// The final STATS line for the shutdown flush.
  std::string FinalStatsLine();

 private:
  const ServerOptions options_;
  GraphRegistry registry_;
  AdmissionController admission_;
  ServerMetrics metrics_;
  ResultCache cache_;
  std::atomic<bool> stop_{false};
};

/// TCP loopback front end; see the file comment.
class TcpServer {
 public:
  /// Sessions are dispatched onto `executor` (one detached task each);
  /// size it >= max_sessions + the parallelism queries should keep.
  TcpServer(CommunityServer& shared, Executor& executor,
            const ServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1. False with `*error` set on failure.
  bool Start(std::string* error);

  /// The bound port (after Start; resolves port 0 to the kernel choice).
  uint16_t port() const { return port_; }

  /// Accept loop; returns after Stop() once every session has drained.
  void Run();

  /// Graceful shutdown from any thread.
  void Stop();

  /// Async-signal-safe shutdown trigger (one write(2) on the self-pipe);
  /// safe to call from a SIGTERM/SIGINT handler.
  void StopFromSignal();

  unsigned active_sessions() const LOCS_EXCLUDES(mutex_);

 private:
  /// One live TCP session's fd plus its peer IPv4 address (network
  /// order) for the per-peer session cap.
  struct SessionFd {
    int fd;
    uint32_t peer;
  };

  void HandleConnection(int fd);
  void EraseSessionFd(int fd) LOCS_REQUIRES(mutex_);

  CommunityServer& shared_;
  Executor& executor_;
  const ServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;

  mutable Mutex mutex_;
  CondVar drained_cv_;
  std::vector<SessionFd> session_fds_ LOCS_GUARDED_BY(mutex_);
  unsigned active_sessions_ LOCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_SERVER_H_
