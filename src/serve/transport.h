// Transport — byte streams under the wire protocol.
//
// The session layer speaks lines; the transport turns POSIX file
// descriptors into lines. One implementation covers both deployment
// modes: FdTransport(0, 1) is the stdio transport (tests, pipes, inetd-
// style supervision), FdTransport(fd, fd) wraps an accepted TCP socket.
//
// Overlong lines are a protocol error, not a buffering hazard: once a
// line passes kMaxLineBytes the reader discards bytes until the next
// newline and reports kTooLong, so a hostile peer cannot make the
// server buffer unbounded input, and the session stays usable for the
// next request.

#ifndef LOCS_SERVE_TRANSPORT_H_
#define LOCS_SERVE_TRANSPORT_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace locs::serve {

/// Line-oriented bidirectional byte stream.
class Transport {
 public:
  enum class ReadStatus : uint8_t {
    kLine,     ///< *line holds the next request (newline stripped)
    kEof,      ///< orderly end of stream
    kTooLong,  ///< line exceeded kMaxLineBytes; discarded to its newline
    kError,    ///< unrecoverable read failure (errno-level)
  };

  virtual ~Transport() = default;

  /// Blocks for the next line. A trailing '\r' (CRLF peers) is stripped;
  /// embedded NULs are preserved for the parser to reject.
  virtual ReadStatus ReadLine(std::string* line) = 0;

  /// Writes `reply` plus a newline. False on a write failure (peer gone).
  virtual bool WriteLine(std::string_view reply) = 0;
};

/// Transport over a POSIX read/write fd pair. Does not own the fds
/// unless `owns_fds` is set (then both are closed on destruction; pass
/// the same fd twice for a socket and it is closed once).
class FdTransport final : public Transport {
 public:
  FdTransport(int read_fd, int write_fd, bool owns_fds = false)
      : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  ReadStatus ReadLine(std::string* line) override;
  bool WriteLine(std::string_view reply) override;

 private:
  /// Refills buffer_; returns bytes read (0 = EOF, -1 = error).
  long Refill();

  const int read_fd_;
  const int write_fd_;
  const bool owns_fds_;
  std::string buffer_;     ///< bytes read but not yet consumed
  size_t buffer_pos_ = 0;  ///< consumption cursor into buffer_
  /// A read failure was deferred so the buffered partial line it
  /// interrupted could be surfaced first; reported by the next ReadLine.
  bool pending_error_ = false;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_TRANSPORT_H_
