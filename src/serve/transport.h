// Transport — byte streams under the wire protocol.
//
// The session layer speaks lines; the transport turns POSIX file
// descriptors into lines. One implementation covers both deployment
// modes: FdTransport(0, 1) is the stdio transport (tests, pipes, inetd-
// style supervision), FdTransport(fd, fd) wraps an accepted TCP socket.
//
// Overlong lines are a protocol error, not a buffering hazard: once a
// line passes kMaxLineBytes the reader discards bytes until the next
// newline and reports kTooLong, so a hostile peer cannot make the
// server buffer unbounded input, and the session stays usable for the
// next request.
//
// Lifecycle guards (all opt-in via FdTransportOptions; with none set the
// transport is a plain blocking reader/writer, byte-for-byte the
// historical behavior):
//
//   - io_timeout_ms bounds the wall time a peer may take to finish a
//     request it has started (first byte seen -> newline) and the time a
//     reply write may stall on a full socket buffer. This is the
//     slowloris defense: drip-feeding one byte at a time buys the peer
//     nothing, because the clock starts at the first byte and never
//     resets.
//   - idle_timeout_ms bounds the quiet gap between requests, so an
//     abandoned-but-open connection cannot pin a session slot forever.
//   - stop, when non-null, is observed during every wait (poll wakes on
//     EINTR and ticks at a bounded interval as a signal-race backstop),
//     so a daemon draining on SIGTERM reclaims sessions blocked on
//     silent peers promptly instead of waiting for them to speak.

#ifndef LOCS_SERVE_TRANSPORT_H_
#define LOCS_SERVE_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace locs::serve {

/// Line-oriented bidirectional byte stream.
class Transport {
 public:
  enum class ReadStatus : uint8_t {
    kLine,         ///< *line holds the next request (newline stripped)
    kEof,          ///< orderly end of stream (or stop observed mid-wait)
    kTooLong,      ///< line exceeded kMaxLineBytes; discarded to newline
    kError,        ///< unrecoverable read failure (errno-level)
    kTimeout,      ///< peer stalled mid-request past io_timeout_ms
    kIdleTimeout,  ///< no request started within idle_timeout_ms
  };

  virtual ~Transport() = default;

  /// Blocks for the next line. A trailing '\r' (CRLF peers) is stripped;
  /// embedded NULs are preserved for the parser to reject.
  virtual ReadStatus ReadLine(std::string* line) = 0;

  /// Writes `reply` plus a newline. False on a write failure (peer gone).
  virtual bool WriteLine(std::string_view reply) = 0;

  /// True when the most recent WriteLine failure was a deadline expiry
  /// rather than a peer-gone error (metrics attribute them differently).
  virtual bool WriteTimedOut() const { return false; }
};

/// Deadline policy for FdTransport. Zeros + null stop = fully blocking.
struct FdTransportOptions {
  uint64_t io_timeout_ms = 0;    ///< mid-request / write stall cap; 0 = none
  uint64_t idle_timeout_ms = 0;  ///< between-requests cap; 0 = none
  const std::atomic<bool>* stop = nullptr;  ///< drain flag observed in waits
};

/// Transport over a POSIX read/write fd pair. Does not own the fds
/// unless `owns_fds` is set (then both are closed on destruction; pass
/// the same fd twice for a socket and it is closed once).
class FdTransport final : public Transport {
 public:
  FdTransport(int read_fd, int write_fd, bool owns_fds = false,
              FdTransportOptions options = {})
      : read_fd_(read_fd),
        write_fd_(write_fd),
        owns_fds_(owns_fds),
        options_(options) {}
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  ReadStatus ReadLine(std::string* line) override;
  bool WriteLine(std::string_view reply) override;
  bool WriteTimedOut() const override { return write_timed_out_; }

 private:
  enum class WaitResult : uint8_t { kReady, kTimeout, kStop, kError };

  /// Polls `fd` for `events` until ready, `deadline_ms` (absolute
  /// monotonic; 0 = unbounded) expires, stop is raised, or a hard error.
  WaitResult Wait(int fd, short events, uint64_t deadline_ms) const;

  /// True when any guard is configured and waits must go through poll.
  bool Guarded() const {
    return options_.io_timeout_ms != 0 || options_.idle_timeout_ms != 0 ||
           options_.stop != nullptr;
  }

  /// Refills buffer_; returns bytes read (0 = EOF, -1 = error).
  long Refill();

  const int read_fd_;
  const int write_fd_;
  const bool owns_fds_;
  const FdTransportOptions options_;
  std::string buffer_;     ///< bytes read but not yet consumed
  size_t buffer_pos_ = 0;  ///< consumption cursor into buffer_
  /// A read failure was deferred so the buffered partial line it
  /// interrupted could be surfaced first; reported by the next ReadLine.
  bool pending_error_ = false;
  bool write_timed_out_ = false;  ///< last WriteLine failure was a timeout
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_TRANSPORT_H_
