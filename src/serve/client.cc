#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "serve/transport.h"
#include "serve/wire.h"

namespace locs::serve {

namespace {

uint64_t NowMs() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000u +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000u;
}

void SleepMs(uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// Dials 127.0.0.1:port; -1 on failure.
int Dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

RetryClient::RetryClient(const RetryClientOptions& options)
    : options_(options), rng_(options.jitter_seed) {
  // A reply write against a vanished daemon must fail as a bool, not a
  // SIGPIPE kill — same contract as the server side.
  std::signal(SIGPIPE, SIG_IGN);
}

RetryClient::~RetryClient() { Disconnect(); }

void RetryClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t RetryClient::NextBackoffMs() {
  // Decorrelated jitter (AWS architecture blog variant): sleep is drawn
  // uniformly from [base, 3 * previous], so consecutive retries both
  // grow and decorrelate across clients sharing a restart moment.
  const uint64_t base = std::max<uint64_t>(1, options_.backoff_base_ms);
  const uint64_t high =
      std::max(base, std::min(options_.backoff_cap_ms,
                              3 * std::max(prev_backoff_ms_, base)));
  const uint64_t span = high - base + 1;
  prev_backoff_ms_ = base + rng_.Next() % span;
  return prev_backoff_ms_;
}

void RetryClient::NoteTransportFailure() {
  Disconnect();
  if (options_.breaker_threshold == 0) return;
  ++consecutive_failures_;
  if (breaker_ == Breaker::kHalfOpen ||
      (breaker_ == Breaker::kClosed &&
       consecutive_failures_ >= options_.breaker_threshold)) {
    // A failed probe re-opens; enough consecutive failures open.
    breaker_ = Breaker::kOpen;
    breaker_opened_at_ms_ = NowMs();
    ++stats_.breaker_opens;
  }
}

bool RetryClient::EnsureConnected(uint64_t* wait_ms) {
  *wait_ms = 0;
  if (breaker_ == Breaker::kOpen) {
    const uint64_t now = NowMs();
    const uint64_t since = now - breaker_opened_at_ms_;
    if (since < options_.breaker_cooldown_ms) {
      *wait_ms = options_.breaker_cooldown_ms - since;
      return false;
    }
    breaker_ = Breaker::kHalfOpen;
  }
  if (fd_ < 0) {
    fd_ = Dial(options_.port);
    if (fd_ < 0) {
      NoteTransportFailure();
      return false;
    }
    ++stats_.connects;
  }
  if (breaker_ == Breaker::kHalfOpen) {
    // Half-open: one PING must round-trip before real traffic flows.
    ++stats_.probes;
    std::string pong;
    if (!Exchange("PING", &pong) || pong.compare(0, 2, "OK") != 0) {
      NoteTransportFailure();
      return false;
    }
    breaker_ = Breaker::kClosed;
    consecutive_failures_ = 0;
  }
  return true;
}

bool RetryClient::Exchange(std::string_view request, std::string* reply) {
  // The transport deadline doubles as the per-read bound: a connected
  // but hung daemon surfaces as kTimeout instead of parking the caller.
  FdTransportOptions transport_options;
  transport_options.io_timeout_ms = options_.request_deadline_ms;
  transport_options.idle_timeout_ms = options_.request_deadline_ms;
  FdTransport transport(fd_, fd_, /*owns_fds=*/false, transport_options);
  if (!transport.WriteLine(request) ||
      transport.ReadLine(reply) != Transport::ReadStatus::kLine) {
    Disconnect();
    return false;
  }
  return true;
}

bool RetryClient::Request(std::string_view request, std::string* reply) {
  const uint64_t deadline =
      options_.request_deadline_ms == 0
          ? 0
          : NowMs() + options_.request_deadline_ms;
  const unsigned max_attempts = std::max(1u, options_.max_attempts);
  // Backoff sleeps never overshoot the request deadline: the point of
  // the deadline is that Request() returns by then, not shortly after.
  const auto sleep_bounded = [deadline](uint64_t ms) {
    if (deadline != 0) {
      const uint64_t now = NowMs();
      ms = std::min(ms, deadline > now ? deadline - now : 0);
    }
    if (ms != 0) SleepMs(ms);
  };
  std::string last_error = "no attempt made";
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) ++stats_.retries;
    if (deadline != 0 && NowMs() >= deadline) {
      *reply = "deadline exceeded after " + std::to_string(attempt - 1) +
               " attempts: " + last_error;
      return false;
    }
    uint64_t breaker_wait_ms = 0;
    if (!EnsureConnected(&breaker_wait_ms)) {
      last_error = breaker_wait_ms != 0 ? "circuit breaker open"
                                        : "connect/probe failed";
    } else if (!Exchange(request, reply)) {
      NoteTransportFailure();
      last_error = "connection lost mid-request";
    } else {
      uint64_t retry_after_ms = 0;
      if (!ParseBusyReply(*reply, &retry_after_ms)) {
        // A real reply (OK or typed ERR): the server is healthy.
        consecutive_failures_ = 0;
        prev_backoff_ms_ = 0;
        return true;
      }
      // BUSY is deliberate shedding, not a failure: never opens the
      // breaker, and the retry honors the server's pacing hint. On the
      // final attempt the BUSY line itself is the answer.
      consecutive_failures_ = 0;
      if (attempt == max_attempts) return true;
      ++stats_.busy_honored;
      sleep_bounded(std::max(retry_after_ms, NextBackoffMs()));
      last_error = "server busy";
      continue;
    }
    if (attempt == max_attempts) break;
    sleep_bounded(std::max(breaker_wait_ms, NextBackoffMs()));
  }
  *reply = "request failed after " + std::to_string(max_attempts) +
           " attempts: " + last_error;
  return false;
}

}  // namespace locs::serve
