#include "serve/result_cache.h"

#include "util/failpoint.h"

namespace locs::serve {

bool ResultCache::Lookup(const std::string& key, std::string* reply) {
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote, iterator stays
  *reply = it->second->second;
  return true;
}

size_t ResultCache::Insert(const std::string& key,
                           const std::string& reply) {
  if (max_entries_ == 0) return 0;
  // Chaos hook: dropping an insert is always correct (the cache is a
  // pure performance layer), so an injected fault here must only cost a
  // future miss, never an error the client can see.
  if (LOCS_FAILPOINT("serve.cache.insert_drop")) return 0;
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: same key, same deterministic reply (or a racing re-LOAD
    // minted a new epoch and this key is already unreachable) — just
    // promote and overwrite.
    it->second->second = reply;
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.emplace_front(key, reply);
  index_.emplace(key, lru_.begin());
  size_t evicted = 0;
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace locs::serve
