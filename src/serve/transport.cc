#include "serve/transport.h"

#include <unistd.h>

#include <cerrno>

#include "serve/wire.h"

namespace locs::serve {

namespace {
constexpr size_t kReadChunk = 4096;
}  // namespace

FdTransport::~FdTransport() {
  if (!owns_fds_) return;
  ::close(read_fd_);
  if (write_fd_ != read_fd_) ::close(write_fd_);
}

long FdTransport::Refill() {
  // Compact instead of growing without bound: drop consumed bytes once
  // the cursor passes the chunk size.
  if (buffer_pos_ >= kReadChunk) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n >= 0) {
      if (n > 0) buffer_.append(chunk, static_cast<size_t>(n));
      return static_cast<long>(n);
    }
    if (errno != EINTR) return -1;
  }
}

Transport::ReadStatus FdTransport::ReadLine(std::string* line) {
  line->clear();
  if (pending_error_) {
    // The previous call surfaced a buffered partial line ahead of a read
    // failure; deliver the deferred error now.
    pending_error_ = false;
    return ReadStatus::kError;
  }
  bool overflow = false;
  while (true) {
    const size_t newline = buffer_.find('\n', buffer_pos_);
    if (newline != std::string::npos) {
      if (!overflow) {
        line->assign(buffer_, buffer_pos_, newline - buffer_pos_);
        if (!line->empty() && line->back() == '\r') line->pop_back();
      }
      buffer_pos_ = newline + 1;
      return overflow ? ReadStatus::kTooLong : ReadStatus::kLine;
    }
    // No newline buffered yet. Enforce the line cap before reading more
    // so a peer streaming an endless line cannot grow the buffer.
    if (!overflow && buffer_.size() - buffer_pos_ > kMaxLineBytes) {
      overflow = true;
    }
    if (overflow) {
      // Discard everything pending; keep scanning for the newline.
      buffer_.clear();
      buffer_pos_ = 0;
    }
    const long n = Refill();
    if (n <= 0) {
      // Stream over (orderly EOF or errno-level failure). Either way a
      // buffered unterminated line is a complete request the peer already
      // sent — surface it first (common with printf-piped scripts lacking
      // the last newline, and with peers torn down mid-session); a read
      // error is then re-reported by the next call.
      if (!overflow && buffer_pos_ < buffer_.size()) {
        line->assign(buffer_, buffer_pos_, buffer_.size() - buffer_pos_);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_pos_ = buffer_.size();
        pending_error_ = n < 0;
        return ReadStatus::kLine;
      }
      if (n < 0) return ReadStatus::kError;
      return overflow ? ReadStatus::kTooLong : ReadStatus::kEof;
    }
  }
}

bool FdTransport::WriteLine(std::string_view reply) {
  std::string framed;
  framed.reserve(reply.size() + 1);
  framed.append(reply);
  framed.push_back('\n');
  size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(write_fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace locs::serve
