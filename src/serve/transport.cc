#include "serve/transport.h"

#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>

#include "serve/wire.h"
#include "util/failpoint.h"

namespace locs::serve {

namespace {

constexpr size_t kReadChunk = 4096;

/// Upper bound on one poll() when a stop flag is set: a signal landing
/// between the stop check and the poll syscall is only delayed by one
/// tick, not forever (poll is also EINTR-exempt from SA_RESTART, so in
/// practice the wakeup is immediate and the tick is just the backstop).
constexpr int kStopTickMs = 200;

/// Injected read-side stall length for serve.transport.read_delay —
/// long enough to straddle the small io-timeouts chaos runs configure,
/// short enough not to dominate a soak.
constexpr uint64_t kInjectedReadDelayMs = 50;

uint64_t NowMs() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000u +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000u;
}

void SleepMs(uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

FdTransport::~FdTransport() {
  if (!owns_fds_) return;
  ::close(read_fd_);
  if (write_fd_ != read_fd_) ::close(write_fd_);
}

FdTransport::WaitResult FdTransport::Wait(int fd, short events,
                                          uint64_t deadline_ms) const {
  while (true) {
    if (options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed)) {
      return WaitResult::kStop;
    }
    int timeout = -1;
    if (deadline_ms != 0) {
      const uint64_t now = NowMs();
      if (now >= deadline_ms) return WaitResult::kTimeout;
      timeout = static_cast<int>(
          std::min<uint64_t>(deadline_ms - now, INT_MAX));
    }
    if (options_.stop != nullptr) {
      timeout = timeout < 0 ? kStopTickMs : std::min(timeout, kStopTickMs);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout);
    // Readiness includes POLLHUP/POLLERR: the subsequent read()/write()
    // surfaces the actual EOF or errno, which the caller already handles.
    if (rc > 0) return WaitResult::kReady;
    if (rc < 0 && errno != EINTR) return WaitResult::kError;
    // rc == 0 (tick expired) or EINTR: loop re-checks stop and deadline.
  }
}

long FdTransport::Refill() {
  // Compact instead of growing without bound: drop consumed bytes once
  // the cursor passes the chunk size.
  if (buffer_pos_ >= kReadChunk) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n >= 0) {
      if (n > 0) buffer_.append(chunk, static_cast<size_t>(n));
      return static_cast<long>(n);
    }
    if (errno != EINTR) return -1;
  }
}

Transport::ReadStatus FdTransport::ReadLine(std::string* line) {
  line->clear();
  if (pending_error_) {
    // The previous call surfaced a buffered partial line ahead of a read
    // failure; deliver the deferred error now.
    pending_error_ = false;
    return ReadStatus::kError;
  }
  if (LOCS_FAILPOINT("serve.transport.read_error")) {
    return ReadStatus::kError;
  }
  if (LOCS_FAILPOINT("serve.transport.read_delay")) {
    SleepMs(kInjectedReadDelayMs);
  }
  const bool guarded = Guarded();
  uint64_t idle_deadline = 0;
  uint64_t io_deadline = 0;
  if (guarded) {
    const uint64_t now = NowMs();
    if (options_.idle_timeout_ms != 0) {
      idle_deadline = now + options_.idle_timeout_ms;
    }
    // Bytes of the next line already buffered mean the request is in
    // flight: the io clock starts now, not at the next read syscall.
    if (options_.io_timeout_ms != 0 && buffer_pos_ < buffer_.size()) {
      io_deadline = now + options_.io_timeout_ms;
    }
  }
  bool overflow = false;
  while (true) {
    const size_t newline = buffer_.find('\n', buffer_pos_);
    if (newline != std::string::npos) {
      if (!overflow) {
        line->assign(buffer_, buffer_pos_, newline - buffer_pos_);
        if (!line->empty() && line->back() == '\r') line->pop_back();
      }
      buffer_pos_ = newline + 1;
      return overflow ? ReadStatus::kTooLong : ReadStatus::kLine;
    }
    // No newline buffered yet. Enforce the line cap before reading more
    // so a peer streaming an endless line cannot grow the buffer.
    if (!overflow && buffer_.size() - buffer_pos_ > kMaxLineBytes) {
      overflow = true;
    }
    if (overflow) {
      // Discard everything pending; keep scanning for the newline.
      buffer_.clear();
      buffer_pos_ = 0;
    }
    if (guarded) {
      // Mid-request once the io clock is running (or an overflow discard
      // is in progress); idle otherwise. The io deadline is absolute —
      // it never resets on partial progress, so a drip-feeding peer is
      // bounded by io_timeout_ms total, not per byte.
      const bool mid_request = io_deadline != 0 || overflow;
      const uint64_t deadline = mid_request ? io_deadline : idle_deadline;
      switch (Wait(read_fd_, POLLIN, deadline)) {
        case WaitResult::kReady:
          break;
        case WaitResult::kTimeout:
          return mid_request ? ReadStatus::kTimeout
                             : ReadStatus::kIdleTimeout;
        case WaitResult::kStop:
          return ReadStatus::kEof;
        case WaitResult::kError:
          return ReadStatus::kError;
      }
    }
    const long n = Refill();
    if (n <= 0) {
      // Stream over (orderly EOF or errno-level failure). Either way a
      // buffered unterminated line is a complete request the peer already
      // sent — surface it first (common with printf-piped scripts lacking
      // the last newline, and with peers torn down mid-session); a read
      // error is then re-reported by the next call.
      if (!overflow && buffer_pos_ < buffer_.size()) {
        line->assign(buffer_, buffer_pos_, buffer_.size() - buffer_pos_);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_pos_ = buffer_.size();
        pending_error_ = n < 0;
        return ReadStatus::kLine;
      }
      if (n < 0) return ReadStatus::kError;
      return overflow ? ReadStatus::kTooLong : ReadStatus::kEof;
    }
    // First bytes of this request: start the io clock.
    if (guarded && io_deadline == 0 && options_.io_timeout_ms != 0) {
      io_deadline = NowMs() + options_.io_timeout_ms;
    }
  }
}

bool FdTransport::WriteLine(std::string_view reply) {
  write_timed_out_ = false;
  if (LOCS_FAILPOINT("serve.transport.write_error")) {
    return false;
  }
  std::string framed;
  framed.reserve(reply.size() + 1);
  framed.append(reply);
  framed.push_back('\n');
  if (LOCS_FAILPOINT("serve.transport.partial_write")) {
    // Tear the reply: emit a prefix so the peer sees a malformed line,
    // then report failure as if the connection dropped mid-write.
    const ssize_t ignored =
        ::write(write_fd_, framed.data(), framed.size() / 2);
    (void)ignored;
    return false;
  }
  const bool guarded = Guarded();
  uint64_t deadline = 0;
  if (guarded && options_.io_timeout_ms != 0) {
    deadline = NowMs() + options_.io_timeout_ms;
  }
  size_t written = 0;
  while (written < framed.size()) {
    if (guarded) {
      switch (Wait(write_fd_, POLLOUT, deadline)) {
        case WaitResult::kReady:
          break;
        case WaitResult::kTimeout:
          write_timed_out_ = true;
          return false;
        case WaitResult::kStop:
        case WaitResult::kError:
          return false;
      }
    }
    const ssize_t n =
        ::write(write_fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace locs::serve
