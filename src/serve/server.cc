#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "serve/transport.h"

namespace locs::serve {

namespace {

/// locsd replies over pipes and sockets whose peer may vanish at any
/// moment; a failed write must surface as a bool, not a SIGPIPE kill.
void IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

bool WritePortFile(const std::string& path, uint16_t port) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fprintf(file, "%u\n", unsigned{port}) > 0;
  return (std::fclose(file) == 0) && ok;
}

}  // namespace

CommunityServer::CommunityServer(const ServerOptions& options)
    : options_(options),
      registry_(options.max_graphs),
      admission_(options.admission),
      cache_(options.cache_entries) {}

bool CommunityServer::Preload(std::string* error) {
  for (const auto& [name, path] : options_.preload) {
    IoError io_error;
    bool full = false;
    if (registry_.Load(name, path, &io_error, &full) == nullptr) {
      if (error != nullptr) {
        *error = full ? "registry full while preloading '" + name + "'"
                      : "preload '" + name + "' from '" + path + "': " +
                            io_error.message;
      }
      return false;
    }
  }
  return true;
}

SessionOptions CommunityServer::MakeSessionOptions() {
  SessionOptions session = options_.session;
  session.stop = &stop_;
  session.cache = options_.cache_entries != 0 ? &cache_ : nullptr;
  return session;
}

FdTransportOptions CommunityServer::MakeTransportOptions() {
  FdTransportOptions transport;
  transport.io_timeout_ms = options_.io_timeout_ms;
  transport.idle_timeout_ms = options_.idle_timeout_ms;
  transport.stop = &stop_;
  return transport;
}

int CommunityServer::RunStdioSession() {
  IgnoreSigpipe();
  // The stop-observing transport makes SIGTERM prompt even while the
  // session is parked in a blocked read on a silent peer.
  FdTransport transport(STDIN_FILENO, STDOUT_FILENO, /*owns_fds=*/false,
                        MakeTransportOptions());
  Session session(transport, registry_, admission_, metrics_,
                  MakeSessionOptions());
  session.Run();
  return 0;
}

std::string CommunityServer::FinalStatsLine() {
  const AdmissionController::Counts counts = admission_.Snapshot();
  return metrics_.Snapshot().RenderStatsLine(counts.inflight,
                                             counts.queued,
                                             registry_.size());
}

TcpServer::TcpServer(CommunityServer& shared, Executor& executor,
                     const ServerOptions& options)
    : shared_(shared), executor_(executor), options_(options) {}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

bool TcpServer::Start(std::string* error) {
  IgnoreSigpipe();
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    return false;
  };
  if (::pipe(stop_pipe_) != 0) return fail("pipe");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (!options_.port_file.empty() &&
      !WritePortFile(options_.port_file, port_)) {
    return fail("port-file write");
  }
  return true;
}

void TcpServer::Run() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // Stop() requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
    if (fd < 0) continue;  // transient (EINTR, peer reset in backlog)
    const uint32_t peer = peer_addr.sin_addr.s_addr;

    bool admitted = false;
    bool peer_capped = false;
    {
      MutexLock lock(mutex_);
      if (options_.max_sessions_per_peer != 0) {
        unsigned from_peer = 0;
        for (const SessionFd& s : session_fds_) {
          if (s.peer == peer) ++from_peer;
        }
        peer_capped = from_peer >= options_.max_sessions_per_peer;
      }
      if (!peer_capped && active_sessions_ < options_.max_sessions) {
        ++active_sessions_;
        session_fds_.push_back(SessionFd{fd, peer});
        admitted = true;
      }
    }
    // Session-level fast-reject, the outer ring of admission control:
    // request-level BUSY (AdmissionController) assumes a session exists
    // to reply on; past the session cap we answer once and hang up.
    if (admitted) {
      admitted = executor_.Submit([this, fd] { HandleConnection(fd); });
      if (!admitted) {
        MutexLock lock(mutex_);
        EraseSessionFd(fd);
        --active_sessions_;
      }
    }
    if (!admitted) {
      shared_.metrics().CountRejected();
      FdTransport transport(fd, fd);
      transport.WriteLine(
          peer_capped
              ? "BUSY peer_sessions=" +
                    std::to_string(options_.max_sessions_per_peer)
              : "BUSY sessions=" + std::to_string(options_.max_sessions));
      ::close(fd);
    }
  }

  // Drain: refuse new queries, unblock parked session reads, and wait
  // for every session to finish the request it is executing.
  shared_.RequestStop();
  {
    MutexLock lock(mutex_);
    for (const SessionFd& s : session_fds_) ::shutdown(s.fd, SHUT_RD);
    while (active_sessions_ != 0) drained_cv_.Wait(lock);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TcpServer::Stop() { StopFromSignal(); }

void TcpServer::StopFromSignal() {
  // One byte on the self-pipe; write(2) is async-signal-safe and the
  // accept loop treats any readable byte as the stop order.
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

unsigned TcpServer::active_sessions() const {
  MutexLock lock(mutex_);
  return active_sessions_;
}

void TcpServer::EraseSessionFd(int fd) {
  session_fds_.erase(
      std::find_if(session_fds_.begin(), session_fds_.end(),
                   [fd](const SessionFd& s) { return s.fd == fd; }));
}

void TcpServer::HandleConnection(int fd) {
  {
    FdTransport transport(fd, fd, /*owns_fds=*/false,
                          shared_.MakeTransportOptions());
    Session session(transport, shared_.registry(), shared_.admission(),
                    shared_.metrics(), shared_.MakeSessionOptions());
    session.Run();
  }
  {
    MutexLock lock(mutex_);
    EraseSessionFd(fd);
    --active_sessions_;
    // Notify while still holding the lock: once the drain loop in Run()
    // can observe active_sessions_ == 0 the server (and this condvar) may
    // be destroyed, so the notify must complete before the unlock makes
    // that observation possible.
    drained_cv_.NotifyAll();
  }
  ::close(fd);
}

}  // namespace locs::serve
