#include "serve/registry.h"

#include <utility>

#include "util/failpoint.h"
#include "util/timer.h"

namespace locs::serve {

std::shared_ptr<const ServedGraph> GraphRegistry::Load(
    const std::string& name, const std::string& path, IoError* error,
    bool* full, LoadSource source, bool* image_attempted) {
  if (full != nullptr) *full = false;
  if (image_attempted != nullptr) *image_attempted = false;
  // Chaos hook: a registry-load fault surfaces as an ordinary IO error
  // on this LOAD; graphs already registered keep serving untouched.
  if (LOCS_FAILPOINT("serve.registry.load_error")) {
    if (error != nullptr) {
      error->kind = IoErrorKind::kOpen;
      error->message = "injected registry load fault";
    }
    return nullptr;
  }
  {
    // Capacity pre-check: refuse before paying the parse when the name is
    // new and the registry is full. Rechecked at insert (another session
    // may fill the last slot while we parse); the pre-check only makes
    // the common rejection cheap.
    MutexLock lock(mutex_);
    if (graphs_.size() >= max_graphs_ && graphs_.count(name) == 0) {
      if (full != nullptr) *full = true;
      return nullptr;
    }
  }
  // File IO and index building run outside the registry lock: concurrent
  // LOADs of different graphs overlap, and lookups never wait on a load.
  // The content sniff (not the extension) routes to the image path, so a
  // compiled image is picked up under any file name; LOADIMG skips the
  // sniff and lets the image reader reject non-images with a typed
  // error.
  WallTimer timer;
  std::shared_ptr<ServedGraph> entry;
  if (source == LoadSource::kImage || store::SniffGraphImage(path)) {
    if (image_attempted != nullptr) *image_attempted = true;
    auto image = store::LoadGraphImage(path, error);
    if (!image.has_value()) return nullptr;
    const double load_ms = timer.Millis();
    entry = std::make_shared<ServedGraph>(name, path, std::move(*image));
    entry->load_ms = load_ms;
    entry->build_ms = 0.0;  // nothing to build: the image holds it all
  } else {
    auto graph = LoadGraphAuto(path, error);
    if (!graph.has_value()) return nullptr;
    const double load_ms = timer.Millis();
    timer.Restart();
    entry = std::make_shared<ServedGraph>(name, path, std::move(*graph));
    entry->load_ms = load_ms;
    entry->build_ms = timer.Millis();
  }
  entry->epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  auto [it, inserted] = graphs_.try_emplace(name, entry);
  if (!inserted) {
    it->second = entry;  // replacing LOAD: last writer wins
  } else if (graphs_.size() > max_graphs_) {
    graphs_.erase(it);  // lost the race for the final slot
    if (full != nullptr) *full = true;
    return nullptr;
  }
  return entry;
}

std::shared_ptr<const ServedGraph> GraphRegistry::Get(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

bool GraphRegistry::Evict(const std::string& name) {
  std::shared_ptr<const ServedGraph> doomed;
  MutexLock lock(mutex_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return false;
  // Move the reference out so the (potentially large) graph destruction
  // runs after the map update; if sessions still hold the entry it simply
  // outlives the registry reference.
  doomed = std::move(it->second);
  graphs_.erase(it);
  return true;
}

std::vector<GraphRegistry::GraphInfo> GraphRegistry::List() const {
  std::vector<GraphInfo> infos;
  MutexLock lock(mutex_);
  infos.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    GraphInfo info;
    info.name = name;
    info.vertices = entry->graph.NumVertices();
    info.edges = entry->graph.NumEdges();
    infos.push_back(std::move(info));
  }
  return infos;
}

size_t GraphRegistry::size() const {
  MutexLock lock(mutex_);
  return graphs_.size();
}

}  // namespace locs::serve
