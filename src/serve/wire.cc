#include "serve/wire.h"

#include <charconv>
#include <cstdio>

namespace locs::serve {

namespace {

/// Splits on runs of spaces/tabs. An embedded NUL is an ordinary token
/// byte: it survives into the token, fails strict numeric parsing, and
/// never matches a verb — malformed, not undefined.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Strict unsigned parse: the whole token must be decimal digits and fit
/// in T. Rejects empty tokens, signs, hex, trailing bytes, NULs.
template <typename T>
bool ParseUnsigned(std::string_view token, T* out) {
  if (token.empty()) return false;
  T value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view token, double* out) {
  if (token.empty()) return false;
  double value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) return false;
  if (!(value >= 0.0)) return false;  // rejects negatives and NaN
  *out = value;
  return true;
}

/// Like ParseDouble but signed: gamma is meaningfully negative (γ → −∞
/// disables the Eq.-8 budget). Still rejects NaN — a NaN γ would poison
/// every budget comparison downstream.
bool ParseSignedDouble(std::string_view token, double* out) {
  if (token.empty()) return false;
  double value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) return false;
  if (value != value) return false;  // NaN
  *out = value;
  return true;
}

ParseResult Fail(WireError error, std::string detail) {
  ParseResult result;
  result.error = error;
  result.detail = std::move(detail);
  return result;
}

/// Consumes trailing key=value options from tokens[i..). Any token with
/// an '=' is an option; the first '='-free token past the positional
/// arguments is a surplus positional (kExtraArg at the call site).
bool ConsumeOptions(const std::vector<std::string_view>& tokens, size_t i,
                    Request* request, ParseResult* error) {
  for (; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      *error = Fail(WireError::kExtraArg,
                    "unexpected argument '" + std::string(token) + "'");
      return false;
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    bool ok = false;
    if (key == "deadline_ms") {
      ok = ParseDouble(value, &request->limits.deadline_ms);
    } else if (key == "budget") {
      ok = ParseUnsigned(value, &request->limits.work_budget);
    } else if (key == "limit") {
      ok = ParseUnsigned(value, &request->member_limit);
    } else if (key == "trace") {
      uint64_t flag = 0;
      ok = ParseUnsigned(value, &flag) && flag <= 1;
      request->trace = flag != 0;
    } else if (key == "gamma") {
      ok = ParseSignedDouble(value, &request->gamma);
    } else {
      *error = Fail(WireError::kBadOption,
                    "unknown option '" + std::string(key) + "'");
      return false;
    }
    if (!ok) {
      *error = Fail(WireError::kBadOption,
                    "bad value for option '" + std::string(key) + "'");
      return false;
    }
  }
  return true;
}

/// Positional vertex-id parse with a per-token error message.
bool ParseVertex(std::string_view token, VertexId* out,
                 ParseResult* error) {
  if (!ParseUnsigned(token, out)) {
    *error = Fail(WireError::kBadNumber,
                  "bad vertex id '" + std::string(token) + "'");
    return false;
  }
  return true;
}

}  // namespace

std::string_view VerbName(Verb verb) {
  switch (verb) {
    case Verb::kNone:
      return "-";
    case Verb::kLoad:
      return "LOAD";
    case Verb::kLoadImg:
      return "LOADIMG";
    case Verb::kEvict:
      return "EVICT";
    case Verb::kList:
      return "LIST";
    case Verb::kCst:
      return "CST";
    case Verb::kCsm:
      return "CSM";
    case Verb::kMulti:
      return "MULTI";
    case Verb::kStats:
      return "STATS";
    case Verb::kPing:
      return "PING";
    case Verb::kQuit:
      return "QUIT";
  }
  return "?";
}

std::string_view WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "none";
    case WireError::kLineTooLong:
      return "line-too-long";
    case WireError::kUnknownVerb:
      return "unknown-verb";
    case WireError::kMissingArg:
      return "missing-arg";
    case WireError::kExtraArg:
      return "extra-arg";
    case WireError::kBadNumber:
      return "bad-number";
    case WireError::kBadOption:
      return "bad-option";
    case WireError::kUnknownGraph:
      return "unknown-graph";
    case WireError::kVertexRange:
      return "vertex-range";
    case WireError::kDuplicateVertex:
      return "duplicate-vertex";
    case WireError::kRegistryFull:
      return "registry-full";
    case WireError::kIo:
      return "io";
    case WireError::kShuttingDown:
      return "shutting-down";
    case WireError::kReplyTooLarge:
      return "too-large";
    case WireError::kIoTimeout:
      return "io-timeout";
    case WireError::kInternal:
      return "internal";
  }
  return "unknown";
}

ParseResult ParseRequest(std::string_view line) {
  ParseResult result;
  if (line.size() > kMaxLineBytes) {
    return Fail(WireError::kLineTooLong,
                "request exceeds " + std::to_string(kMaxLineBytes) +
                    " bytes");
  }
  const std::vector<std::string_view> tokens = Tokenize(line);
  Request& request = result.request;
  if (tokens.empty()) return result;  // blank line: Verb::kNone, no reply

  const std::string_view verb = tokens[0];
  const auto require = [&](size_t count) {
    if (tokens.size() > count) return true;
    result = Fail(WireError::kMissingArg,
                  std::string(verb) + " expects " +
                      std::to_string(count) + " argument(s)");
    return false;
  };
  const auto exactly = [&](size_t count) {
    if (!require(count)) return false;
    if (tokens.size() == count + 1) return true;
    result = Fail(WireError::kExtraArg,
                  std::string(verb) + " takes exactly " +
                      std::to_string(count) + " argument(s)");
    return false;
  };

  if (verb == "LOAD") {
    request.verb = Verb::kLoad;
    if (!exactly(2)) return result;
    request.graph = tokens[1];
    request.path = tokens[2];
    return result;
  }
  if (verb == "LOADIMG") {
    request.verb = Verb::kLoadImg;
    if (!exactly(2)) return result;
    request.graph = tokens[1];
    request.path = tokens[2];
    return result;
  }
  if (verb == "EVICT") {
    request.verb = Verb::kEvict;
    if (!exactly(1)) return result;
    request.graph = tokens[1];
    return result;
  }
  if (verb == "LIST") {
    request.verb = Verb::kList;
    if (!exactly(0)) return result;
    return result;
  }
  if (verb == "CST") {
    request.verb = Verb::kCst;
    if (!require(3)) return result;
    request.graph = tokens[1];
    VertexId v = 0;
    if (!ParseVertex(tokens[2], &v, &result)) return result;
    request.vertices.push_back(v);
    if (!ParseUnsigned(tokens[3], &request.k)) {
      return Fail(WireError::kBadNumber,
                  "bad k '" + std::string(tokens[3]) + "'");
    }
    if (!ConsumeOptions(tokens, 4, &request, &result)) return result;
    return result;
  }
  if (verb == "CSM") {
    request.verb = Verb::kCsm;
    if (!require(2)) return result;
    request.graph = tokens[1];
    VertexId v = 0;
    if (!ParseVertex(tokens[2], &v, &result)) return result;
    request.vertices.push_back(v);
    if (!ConsumeOptions(tokens, 3, &request, &result)) return result;
    return result;
  }
  if (verb == "MULTI") {
    request.verb = Verb::kMulti;
    if (!require(3)) return result;
    request.graph = tokens[1];
    if (tokens[2] == "max") {
      request.multi_max = true;
    } else if (!ParseUnsigned(tokens[2], &request.k)) {
      return Fail(WireError::kBadNumber,
                  "bad k '" + std::string(tokens[2]) +
                      "' (number or 'max')");
    }
    size_t i = 3;
    for (; i < tokens.size(); ++i) {
      if (tokens[i].find('=') != std::string_view::npos) break;
      VertexId v = 0;
      if (!ParseVertex(tokens[i], &v, &result)) return result;
      request.vertices.push_back(v);
    }
    if (request.vertices.empty()) {
      return Fail(WireError::kMissingArg,
                  "MULTI expects at least one query vertex");
    }
    if (!ConsumeOptions(tokens, i, &request, &result)) return result;
    return result;
  }
  if (verb == "STATS") {
    request.verb = Verb::kStats;
    if (!exactly(0)) return result;
    return result;
  }
  if (verb == "PING") {
    request.verb = Verb::kPing;
    if (!exactly(0)) return result;
    return result;
  }
  if (verb == "QUIT") {
    request.verb = Verb::kQuit;
    if (!exactly(0)) return result;
    return result;
  }
  // The verb token may carry arbitrary bytes (NUL, control characters);
  // echo at most a short printable prefix so the reply stays one line.
  std::string shown;
  for (const char c : verb.substr(0, 32)) {
    shown += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return Fail(WireError::kUnknownVerb, "unknown verb '" + shown + "'");
}

std::string FormatError(WireError error, std::string_view detail) {
  std::string reply = "ERR ";
  reply += WireErrorName(error);
  if (!detail.empty()) {
    reply += ' ';
    reply += detail;
  }
  return reply;
}

std::string FormatBusy(unsigned inflight, unsigned queued,
                       uint64_t retry_after_ms) {
  std::string reply = "BUSY inflight=" + std::to_string(inflight) +
                      " queued=" + std::to_string(queued);
  // The hint rides last so pre-existing prefix matchers keep working.
  reply += " retry_after_ms=" + std::to_string(retry_after_ms);
  return reply;
}

bool ParseBusyReply(std::string_view reply, uint64_t* retry_after_ms) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0;
  if (reply.substr(0, 4) != "BUSY") return false;
  if (reply.size() > 4 && reply[4] != ' ') return false;
  if (retry_after_ms == nullptr) return true;
  constexpr std::string_view kField = "retry_after_ms=";
  size_t pos = reply.find(kField);
  // Require a token boundary so a graph named "xretry_after_ms=…" in
  // some future detail field cannot masquerade as the hint.
  while (pos != std::string_view::npos && pos > 0 &&
         reply[pos - 1] != ' ') {
    pos = reply.find(kField, pos + 1);
  }
  if (pos == std::string_view::npos) return true;
  uint64_t value = 0;
  bool any = false;
  for (size_t i = pos + kField.size(); i < reply.size(); ++i) {
    const char c = reply[i];
    if (c == ' ') break;
    if (c < '0' || c > '9') return true;  // malformed: keep hint at 0
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
      return true;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    any = true;
  }
  if (any) *retry_after_ms = value;
  return true;
}

}  // namespace locs::serve
