// ServerMetrics — lock-free counters for the serving layer.
//
// Every counter is a relaxed std::atomic: sessions on different threads
// record concurrently without contending on a lock, and the STATS verb
// reads a Snapshot that is per-counter consistent (monotone, never
// torn) though not a cross-counter atomic cut — the standard contract
// of serving metrics.
//
// Query latency uses a fixed power-of-two histogram over microseconds
// (bucket b >= 1 counts latencies in [2^(b-1), 2^b - 1] us, bucket 0
// exactly 0 us, last bucket open-ended), so percentile estimation is a
// cumulative scan over 32 integers with at most 2x resolution error —
// no allocation, no sampling, no lock.

#ifndef LOCS_SERVE_METRICS_H_
#define LOCS_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/recorder.h"
#include "serve/wire.h"
#include "util/timer.h"

namespace locs::serve {

/// Point-in-time copy of every counter; see ServerMetrics::Snapshot.
struct MetricsSnapshot {
  static constexpr int kLatencyBuckets = 32;

  uint64_t requests_by_verb[kNumVerbs] = {};
  uint64_t errors_by_kind[kNumWireErrors] = {};
  uint64_t rejected = 0;     ///< BUSY fast-rejects (admission)
  uint64_t interrupted = 0;  ///< queries tripped by their guard
  uint64_t io_timeouts = 0;  ///< transport deadline expiries (read/write)
  uint64_t idle_reaped = 0;  ///< sessions ended by the idle timeout
  uint64_t retry_hints = 0;  ///< BUSY replies sent with retry_after_ms
  /// Query conservation ledger (CST/CSM/MULTI only). Every attempted
  /// query reaches exactly one terminal: attempted = completed + failed
  /// + shed. Counted entirely inside the session dispatch path so the
  /// identity is exact, not eventually-consistent — the chaos soak
  /// asserts it after every run.
  uint64_t q_attempted = 0;
  uint64_t q_completed = 0;  ///< OK reply delivered (incl. cache hits)
  uint64_t q_failed = 0;     ///< ERR reply (or reply write failed)
  uint64_t q_shed = 0;       ///< BUSY: admission rejected or shed
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t cache_hits = 0;       ///< result-cache hits (no solver run)
  uint64_t cache_misses = 0;     ///< cacheable queries that missed
  uint64_t cache_inserts = 0;    ///< replies admitted into the cache
  uint64_t cache_evictions = 0;  ///< LRU entries displaced by inserts
  uint64_t image_loads = 0;      ///< mmap-backed graph-image LOADs served
  uint64_t image_load_errors = 0;  ///< image LOAD attempts that failed
  uint64_t latency_hist[kLatencyBuckets] = {};
  double uptime_ms = 0.0;
  /// Aggregated per-phase solver telemetry (obs::AggregateRecorder
  /// totals across every query served by every session).
  obs::AggregateRecorder::Totals telemetry;

  uint64_t TotalRequests() const;
  uint64_t TotalErrors() const;
  uint64_t TotalQueries() const;  ///< CST + CSM + MULTI recorded latencies

  /// Latency percentile estimate in microseconds: the inclusive upper
  /// bound of the histogram bucket holding the nearest-rank sample
  /// (rank = ceil(p * total), clamped to [1, total]). Exact for counts
  /// that land a bucket boundary: p = 1.0 selects the slowest sample's
  /// bucket, a single sample selects its own bucket, and sub-microsecond
  /// samples report 0. 0 when no query has been recorded.
  uint64_t LatencyPercentileUs(double p) const;

  /// Renders the one-line `OK ...` STATS reply. `inflight`/`queued` come
  /// from the admission controller and `graphs` from the registry, so the
  /// caller threads them in.
  std::string RenderStatsLine(unsigned inflight, unsigned queued,
                              size_t graphs) const;
};

/// See the file comment. All methods are thread-safe and wait-free.
class ServerMetrics {
 public:
  ServerMetrics() = default;
  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  void CountRequest(Verb verb) {
    requests_by_verb_[static_cast<size_t>(verb)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void CountError(WireError error) {
    errors_by_kind_[static_cast<size_t>(error)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void CountRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void CountInterrupted() {
    interrupted_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountIoTimeout() {
    io_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountIdleReaped() {
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountRetryHint() {
    retry_hints_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountQueryAttempted() {
    q_attempted_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountQueryCompleted() {
    q_completed_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountQueryFailed() {
    q_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountQueryShed() {
    q_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountSessionOpened() {
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountSessionClosed() {
    sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheHit() {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheInsert() {
    cache_inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheEvictions(uint64_t n) {
    if (n != 0) cache_evictions_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountImageLoad() {
    image_loads_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountImageLoadError() {
    image_load_errors_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one query's latency into the histogram.
  void RecordLatencyUs(uint64_t us);

  /// The telemetry sink sessions attach to their solvers; its per-phase
  /// totals ride along in Snapshot() and the STATS line.
  obs::AggregateRecorder& recorder() { return recorder_; }

  MetricsSnapshot Snapshot() const;

 private:
  obs::AggregateRecorder recorder_;
  std::array<std::atomic<uint64_t>, kNumVerbs> requests_by_verb_ = {};
  std::array<std::atomic<uint64_t>, kNumWireErrors> errors_by_kind_ = {};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> interrupted_{0};
  std::atomic<uint64_t> io_timeouts_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> retry_hints_{0};
  std::atomic<uint64_t> q_attempted_{0};
  std::atomic<uint64_t> q_completed_{0};
  std::atomic<uint64_t> q_failed_{0};
  std::atomic<uint64_t> q_shed_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> cache_inserts_{0};
  std::atomic<uint64_t> cache_evictions_{0};
  std::atomic<uint64_t> image_loads_{0};
  std::atomic<uint64_t> image_load_errors_{0};
  std::array<std::atomic<uint64_t>, MetricsSnapshot::kLatencyBuckets>
      latency_hist_ = {};
  WallTimer uptime_;
};

}  // namespace locs::serve

#endif  // LOCS_SERVE_METRICS_H_
