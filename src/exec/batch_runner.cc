#include "exec/batch_runner.h"

#include <utility>

#include "util/timer.h"

// No locks in this translation unit (see the synchronization-design note
// in batch_runner.h): workers partition state disjointly and the Executor
// supplies the only mutex, already annotated at its definition.

namespace locs {

namespace {

Executor::RunOptions ToRunOptions(const BatchLimits& limits) {
  Executor::RunOptions options;
  options.max_workers = limits.num_threads;
  // Queries are coarse units (µs to ms each): chunking by single queries
  // keeps the dynamic distribution balanced under power-law query costs
  // and makes deadline checks per-query precise, at one relaxed
  // fetch_add per query.
  options.chunk_size = 1;
  options.deadline_ms = limits.deadline_ms;
  options.cancel = limits.cancel;
  return options;
}

/// Builds the guard for one query: per-query deadline/budget/cancel from
/// the limits, tightened to the batch-wide absolute deadline so a batch
/// expiry interrupts the query mid-search instead of waiting it out.
QueryGuard MakeQueryGuard(const BatchLimits& limits,
                          bool has_batch_deadline,
                          QueryGuard::Clock::time_point batch_deadline) {
  QueryLimits query_limits;
  query_limits.deadline_ms = limits.query_deadline_ms;
  query_limits.work_budget = limits.query_work_budget;
  query_limits.cancel = limits.cancel;
  QueryGuard guard(query_limits);
  if (has_batch_deadline) guard.LimitDeadline(batch_deadline);
  return guard;
}

/// Slots past the executed prefix were never started; report them under
/// the batch stop cause with the singleton community as the (trivially
/// valid) partial answer.
void FillNeverStarted(const std::vector<VertexId>& queries, size_t completed,
                      const Executor::RunResult& run,
                      std::vector<SearchResult>* results,
                      BatchStats* stats) {
  const Termination cause = run.cause == Executor::StopCause::kCancelled
                                ? Termination::kCancelled
                                : Termination::kDeadline;
  for (size_t i = completed; i < queries.size(); ++i) {
    (*results)[i] =
        SearchResult::MakeInterrupted(cause, Community{{queries[i]}, 0});
    ++stats->status_counts[static_cast<size_t>(cause)];
  }
}

}  // namespace

void BatchRunner::WorkerTotals::Add(const QueryStats& stats,
                                    Termination status) {
  if (stats.answer_size > 0) ++answered;
  visited_vertices += stats.visited_vertices;
  scanned_edges += stats.scanned_edges;
  global_fallbacks += stats.used_global_fallback ? 1 : 0;
  total_answer_size += stats.answer_size;
  ++status_counts[static_cast<size_t>(status)];
}

BatchRunner::BatchRunner(const Graph& graph, const OrderedAdjacency* ordered,
                         const GraphFacts* facts, Executor* executor)
    : graph_(graph),
      ordered_(ordered),
      facts_(facts),
      executor_(executor != nullptr ? executor : &Executor::Shared()),
      cst_solvers_(executor_->num_workers()),
      csm_solvers_(executor_->num_workers()) {}

LocalCstSolver& BatchRunner::CstSolver(unsigned worker) {
  auto& slot = cst_solvers_[worker];
  if (slot == nullptr) {
    slot = std::make_unique<LocalCstSolver>(graph_, ordered_, facts_);
    slot->set_recorder(recorder_);
  }
  return *slot;
}

LocalCsmSolver& BatchRunner::CsmSolver(unsigned worker) {
  auto& slot = csm_solvers_[worker];
  if (slot == nullptr) {
    slot = std::make_unique<LocalCsmSolver>(graph_, ordered_, facts_);
    slot->set_recorder(recorder_);
  }
  return *slot;
}

void BatchRunner::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder != nullptr ? recorder : &obs::Recorder::Null();
  for (auto& slot : cst_solvers_) {
    if (slot != nullptr) slot->set_recorder(recorder_);
  }
  for (auto& slot : csm_solvers_) {
    if (slot != nullptr) slot->set_recorder(recorder_);
  }
}

BatchStats BatchRunner::Merge(const std::vector<WorkerTotals>& totals,
                              const Executor::RunResult& run,
                              double wall_ms) {
  BatchStats stats;
  stats.completed = run.items_run;
  stats.deadline_hit = run.cause == Executor::StopCause::kDeadline;
  stats.cancelled = run.cause == Executor::StopCause::kCancelled;
  stats.wall_ms = wall_ms;
  for (const WorkerTotals& t : totals) {
    stats.answered += t.answered;
    stats.visited_vertices += t.visited_vertices;
    stats.scanned_edges += t.scanned_edges;
    stats.global_fallbacks += t.global_fallbacks;
    stats.total_answer_size += t.total_answer_size;
    for (int s = 0; s < kNumTerminations; ++s) {
      stats.status_counts[s] += t.status_counts[s];
    }
  }
  return stats;
}

CstBatchResult BatchRunner::RunCst(const std::vector<VertexId>& queries,
                                   uint32_t k, const CstOptions& options,
                                   const BatchLimits& limits) {
  CstBatchResult out;
  out.results.resize(queries.size());
  if (queries.empty()) return out;
  WallTimer timer;
  const bool has_batch_deadline = limits.deadline_ms > 0.0;
  const QueryGuard::Clock::time_point batch_deadline =
      QueryGuard::Clock::now() +
      std::chrono::duration_cast<QueryGuard::Clock::duration>(
          std::chrono::duration<double, std::milli>(limits.deadline_ms));
  std::vector<WorkerTotals> totals(executor_->num_workers());
  const Executor::RunResult run = executor_->ParallelFor(
      queries.size(),
      [&](unsigned worker, size_t begin, size_t end) {
        LocalCstSolver& solver = CstSolver(worker);
        WorkerTotals& mine = totals[worker];
        for (size_t i = begin; i < end; ++i) {
          QueryGuard guard =
              MakeQueryGuard(limits, has_batch_deadline, batch_deadline);
          QueryStats stats;
          out.results[i] =
              solver.Solve(queries[i], k, options, &stats, &guard);
          mine.Add(stats, out.results[i].status);
        }
      },
      ToRunOptions(limits));
  out.stats = Merge(totals, run, timer.Millis());
  FillNeverStarted(queries, run.items_run, run, &out.results, &out.stats);
  return out;
}

CsmBatchResult BatchRunner::RunCsm(const std::vector<VertexId>& queries,
                                   const CsmOptions& options,
                                   const BatchLimits& limits) {
  CsmBatchResult out;
  out.results.resize(queries.size());
  if (queries.empty()) return out;
  WallTimer timer;
  const bool has_batch_deadline = limits.deadline_ms > 0.0;
  const QueryGuard::Clock::time_point batch_deadline =
      QueryGuard::Clock::now() +
      std::chrono::duration_cast<QueryGuard::Clock::duration>(
          std::chrono::duration<double, std::milli>(limits.deadline_ms));
  std::vector<WorkerTotals> totals(executor_->num_workers());
  const Executor::RunResult run = executor_->ParallelFor(
      queries.size(),
      [&](unsigned worker, size_t begin, size_t end) {
        LocalCsmSolver& solver = CsmSolver(worker);
        WorkerTotals& mine = totals[worker];
        for (size_t i = begin; i < end; ++i) {
          QueryGuard guard =
              MakeQueryGuard(limits, has_batch_deadline, batch_deadline);
          QueryStats stats;
          out.results[i] = solver.Solve(queries[i], options, &stats, &guard);
          mine.Add(stats, out.results[i].status);
        }
      },
      ToRunOptions(limits));
  out.stats = Merge(totals, run, timer.Millis());
  FillNeverStarted(queries, run.items_run, run, &out.results, &out.stats);
  return out;
}

std::vector<std::optional<Community>> SolveCstBatch(
    const Graph& graph, const OrderedAdjacency* ordered,
    const GraphFacts* facts, const std::vector<VertexId>& queries,
    uint32_t k, const BatchOptions& options) {
  BatchRunner runner(graph, ordered, facts);
  BatchLimits limits;
  limits.num_threads = options.num_threads;
  CstBatchResult batch = runner.RunCst(queries, k, options.cst, limits);
  std::vector<std::optional<Community>> out(batch.results.size());
  for (size_t i = 0; i < batch.results.size(); ++i) {
    out[i] = std::move(batch.results[i].community);
  }
  return out;
}

std::vector<Community> SolveCsmBatch(const Graph& graph,
                                     const OrderedAdjacency* ordered,
                                     const GraphFacts* facts,
                                     const std::vector<VertexId>& queries,
                                     const CsmOptions& csm_options,
                                     unsigned num_threads) {
  BatchRunner runner(graph, ordered, facts);
  BatchLimits limits;
  limits.num_threads = num_threads;
  CsmBatchResult batch = runner.RunCsm(queries, csm_options, limits);
  std::vector<Community> out(batch.results.size());
  for (size_t i = 0; i < batch.results.size(); ++i) {
    SearchResult& result = batch.results[i];
    out[i] = result.community.has_value() ? std::move(*result.community)
                                          : std::move(result.best_so_far);
  }
  return out;
}

}  // namespace locs
