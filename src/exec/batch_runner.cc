#include "exec/batch_runner.h"

#include <utility>

#include "util/timer.h"

namespace locs {

namespace {

Executor::RunOptions ToRunOptions(const BatchLimits& limits) {
  Executor::RunOptions options;
  options.max_workers = limits.num_threads;
  // Queries are coarse units (µs to ms each): chunking by single queries
  // keeps the dynamic distribution balanced under power-law query costs
  // and makes deadline checks per-query precise, at one relaxed
  // fetch_add per query.
  options.chunk_size = 1;
  options.deadline_ms = limits.deadline_ms;
  options.cancel = limits.cancel;
  return options;
}

}  // namespace

void BatchRunner::WorkerTotals::Add(const QueryStats& stats) {
  if (stats.answer_size > 0) ++answered;
  visited_vertices += stats.visited_vertices;
  scanned_edges += stats.scanned_edges;
  global_fallbacks += stats.used_global_fallback ? 1 : 0;
  total_answer_size += stats.answer_size;
}

BatchRunner::BatchRunner(const Graph& graph, const OrderedAdjacency* ordered,
                         const GraphFacts* facts, Executor* executor)
    : graph_(graph),
      ordered_(ordered),
      facts_(facts),
      executor_(executor != nullptr ? executor : &Executor::Shared()),
      cst_solvers_(executor_->num_workers()),
      csm_solvers_(executor_->num_workers()) {}

LocalCstSolver& BatchRunner::CstSolver(unsigned worker) {
  auto& slot = cst_solvers_[worker];
  if (slot == nullptr) {
    slot = std::make_unique<LocalCstSolver>(graph_, ordered_, facts_);
  }
  return *slot;
}

LocalCsmSolver& BatchRunner::CsmSolver(unsigned worker) {
  auto& slot = csm_solvers_[worker];
  if (slot == nullptr) {
    slot = std::make_unique<LocalCsmSolver>(graph_, ordered_, facts_);
  }
  return *slot;
}

BatchStats BatchRunner::Merge(const std::vector<WorkerTotals>& totals,
                              const Executor::RunResult& run,
                              double wall_ms) {
  BatchStats stats;
  stats.completed = run.items_run;
  stats.deadline_hit = run.cause == Executor::StopCause::kDeadline;
  stats.cancelled = run.cause == Executor::StopCause::kCancelled;
  stats.wall_ms = wall_ms;
  for (const WorkerTotals& t : totals) {
    stats.answered += t.answered;
    stats.visited_vertices += t.visited_vertices;
    stats.scanned_edges += t.scanned_edges;
    stats.global_fallbacks += t.global_fallbacks;
    stats.total_answer_size += t.total_answer_size;
  }
  return stats;
}

CstBatchResult BatchRunner::RunCst(const std::vector<VertexId>& queries,
                                   uint32_t k, const CstOptions& options,
                                   const BatchLimits& limits) {
  CstBatchResult out;
  out.communities.resize(queries.size());
  if (queries.empty()) return out;
  WallTimer timer;
  std::vector<WorkerTotals> totals(executor_->num_workers());
  const Executor::RunResult run = executor_->ParallelFor(
      queries.size(),
      [&](unsigned worker, size_t begin, size_t end) {
        LocalCstSolver& solver = CstSolver(worker);
        WorkerTotals& mine = totals[worker];
        for (size_t i = begin; i < end; ++i) {
          QueryStats stats;
          out.communities[i] = solver.Solve(queries[i], k, options, &stats);
          mine.Add(stats);
        }
      },
      ToRunOptions(limits));
  out.stats = Merge(totals, run, timer.Millis());
  return out;
}

CsmBatchResult BatchRunner::RunCsm(const std::vector<VertexId>& queries,
                                   const CsmOptions& options,
                                   const BatchLimits& limits) {
  CsmBatchResult out;
  out.communities.resize(queries.size());
  if (queries.empty()) return out;
  WallTimer timer;
  std::vector<WorkerTotals> totals(executor_->num_workers());
  const Executor::RunResult run = executor_->ParallelFor(
      queries.size(),
      [&](unsigned worker, size_t begin, size_t end) {
        LocalCsmSolver& solver = CsmSolver(worker);
        WorkerTotals& mine = totals[worker];
        for (size_t i = begin; i < end; ++i) {
          QueryStats stats;
          out.communities[i] = solver.Solve(queries[i], options, &stats);
          mine.Add(stats);
        }
      },
      ToRunOptions(limits));
  out.stats = Merge(totals, run, timer.Millis());
  return out;
}

std::vector<std::optional<Community>> SolveCstBatch(
    const Graph& graph, const OrderedAdjacency* ordered,
    const GraphFacts* facts, const std::vector<VertexId>& queries,
    uint32_t k, const BatchOptions& options) {
  BatchRunner runner(graph, ordered, facts);
  BatchLimits limits;
  limits.num_threads = options.num_threads;
  return std::move(runner.RunCst(queries, k, options.cst, limits)
                       .communities);
}

std::vector<Community> SolveCsmBatch(const Graph& graph,
                                     const OrderedAdjacency* ordered,
                                     const GraphFacts* facts,
                                     const std::vector<VertexId>& queries,
                                     const CsmOptions& csm_options,
                                     unsigned num_threads) {
  BatchRunner runner(graph, ordered, facts);
  BatchLimits limits;
  limits.num_threads = num_threads;
  return std::move(runner.RunCsm(queries, csm_options, limits).communities);
}

}  // namespace locs
