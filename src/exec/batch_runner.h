// Batch query engine on top of the persistent Executor.
//
// BatchRunner binds one graph (plus optional ordering/facts, same contract
// as the local solvers) to an Executor and keeps one LocalCstSolver /
// LocalCsmSolver per worker slot alive across batches. The solvers'
// epoch-stamped scratch therefore resets in O(1) between queries *and*
// between batches — a batch pays neither the per-call thread spawn nor the
// per-call O(|V|) solver construction of the old core/parallel.cc layer.
//
// Results are deterministic and thread-count invariant: result i depends
// only on (graph, queries[i], options), never on scheduling.
//
// A BatchRunner is not thread-safe; run one batch at a time per instance.
//
// Synchronization design: BatchRunner itself holds no mutex — and so
// carries no LOCS_GUARDED_BY annotations (util/thread_annotations.h).
// Workers touch strictly disjoint state: slot s owns solver_slots_[s]
// exclusively, result i is written by the one worker that claimed query
// i, and cross-thread coordination (chunk claiming, deadline flags)
// happens through the std::atomic fields below plus the Executor's own
// annotated mutex. The Clang thread-safety analysis therefore has
// nothing to prove here; the TSan lane (tools/run_sanitizers.sh) is the
// check that this lock-free partitioning claim actually holds.

#ifndef LOCS_EXEC_BATCH_RUNNER_H_
#define LOCS_EXEC_BATCH_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/common.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "core/result.h"
#include "exec/executor.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/guard.h"

namespace locs {

/// Per-batch execution limits.
struct BatchLimits {
  /// Cap on worker threads for this batch; 0 = the whole executor pool.
  unsigned num_threads = 0;
  /// Batch-wide wall-clock budget in milliseconds; 0 = none. The deadline
  /// is converted into every query's guard, so on expiry in-flight queries
  /// are interrupted mid-search (status kDeadline with a partial answer)
  /// and queries not yet started are reported interrupted untouched; the
  /// queries actually executed still form the prefix [0, stats.completed).
  double deadline_ms = 0.0;
  /// Per-query wall-clock budget in milliseconds; 0 = none. Each query's
  /// guard gets its own deadline counted from the moment it starts.
  double query_deadline_ms = 0.0;
  /// Per-query work budget (visited vertices + scanned edges); 0 = none.
  /// Budget trips are deterministic and thread-count invariant.
  uint64_t query_work_budget = 0;
  /// External cancellation flag, polled by every in-flight query's guard.
  const std::atomic<bool>* cancel = nullptr;
};

/// Per-query QueryStats aggregated over one batch.
struct BatchStats {
  uint64_t completed = 0;  ///< queries executed (always a batch prefix)
  uint64_t answered = 0;   ///< queries that produced a non-empty community
  uint64_t visited_vertices = 0;
  uint64_t scanned_edges = 0;
  uint64_t global_fallbacks = 0;
  uint64_t total_answer_size = 0;
  /// Per-termination-status query counts, indexed by Termination. Counts
  /// every result slot, including never-started queries (reported under
  /// the batch stop cause).
  uint64_t status_counts[kNumTerminations] = {};
  double wall_ms = 0.0;
  bool deadline_hit = false;
  bool cancelled = false;

  uint64_t CountOf(Termination status) const {
    return status_counts[static_cast<size_t>(status)];
  }
};

struct CstBatchResult {
  /// results[i] answers queries[i]; slots past stats.completed were never
  /// started and carry the batch stop cause with a singleton best_so_far.
  std::vector<SearchResult> results;
  BatchStats stats;
};

struct CsmBatchResult {
  /// results[i] answers queries[i]; same never-started contract as CST.
  std::vector<SearchResult> results;
  BatchStats stats;
};

/// Persistent batch runner; see the file comment.
class BatchRunner {
 public:
  /// `ordered`/`facts` may be null (same contract as the solvers);
  /// `executor` null means Executor::Shared().
  explicit BatchRunner(const Graph& graph,
                       const OrderedAdjacency* ordered = nullptr,
                       const GraphFacts* facts = nullptr,
                       Executor* executor = nullptr);

  /// Solves CST(k) for every query vertex.
  CstBatchResult RunCst(const std::vector<VertexId>& queries, uint32_t k,
                        const CstOptions& options = {},
                        const BatchLimits& limits = {});

  /// Solves CSM for every query vertex.
  CsmBatchResult RunCsm(const std::vector<VertexId>& queries,
                        const CsmOptions& options = {},
                        const BatchLimits& limits = {});

  /// Telemetry sink shared by every per-worker solver (existing slots and
  /// slots created later). The recorder must be safe for concurrent
  /// Record() calls (obs::AggregateRecorder and obs::TraceSink are);
  /// nullptr restores the no-op null sink. Not owned. Call between
  /// batches only — BatchRunner is not thread-safe.
  void set_recorder(obs::Recorder* recorder);

  Executor& executor() const { return *executor_; }

 private:
  /// Per-worker stat accumulator, cache-line padded against false sharing.
  struct alignas(64) WorkerTotals {
    uint64_t answered = 0;
    uint64_t visited_vertices = 0;
    uint64_t scanned_edges = 0;
    uint64_t global_fallbacks = 0;
    uint64_t total_answer_size = 0;
    uint64_t status_counts[kNumTerminations] = {};

    void Add(const QueryStats& stats, Termination status);
  };

  LocalCstSolver& CstSolver(unsigned worker);
  LocalCsmSolver& CsmSolver(unsigned worker);
  static BatchStats Merge(const std::vector<WorkerTotals>& totals,
                          const Executor::RunResult& run, double wall_ms);

  const Graph& graph_;
  const OrderedAdjacency* ordered_;
  const GraphFacts* facts_;
  Executor* executor_;
  obs::Recorder* recorder_ = &obs::Recorder::Null();
  // One solver per worker slot, created on first use; a slot that never
  // participates never pays the O(|V|) construction.
  std::vector<std::unique_ptr<LocalCstSolver>> cst_solvers_;
  std::vector<std::unique_ptr<LocalCsmSolver>> csm_solvers_;
};

/// Options for the free-function batch entry points below.
struct BatchOptions {
  /// Worker threads; 0 means the shared executor's full pool.
  unsigned num_threads = 0;
  CstOptions cst;
};

/// Solves CST(k) for every query vertex in parallel on the shared
/// executor. Result i corresponds to queries[i]. Prefer a long-lived
/// BatchRunner when issuing many batches against the same graph.
std::vector<std::optional<Community>> SolveCstBatch(
    const Graph& graph, const OrderedAdjacency* ordered,
    const GraphFacts* facts, const std::vector<VertexId>& queries,
    uint32_t k, const BatchOptions& options = {});

/// Solves CSM for every query vertex in parallel on the shared executor.
std::vector<Community> SolveCsmBatch(const Graph& graph,
                                     const OrderedAdjacency* ordered,
                                     const GraphFacts* facts,
                                     const std::vector<VertexId>& queries,
                                     const CsmOptions& csm_options = {},
                                     unsigned num_threads = 0);

}  // namespace locs

#endif  // LOCS_EXEC_BATCH_RUNNER_H_
