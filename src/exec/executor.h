// Persistent thread-pool executor for batch query serving.
//
// The original batch layer (src/core/parallel.cc) spawned and joined fresh
// std::threads on every batch call, and a throw from a worker (or from the
// spawn loop itself) left joinable threads behind and ended in
// std::terminate. This executor fixes both: a lazily-started pool of
// workers stays alive across batches, work is distributed by dynamic
// chunking over an atomic cursor, the first exception a task throws is
// captured and rethrown on the calling thread after every worker has
// drained (the pool stays usable), and each call can carry a wall-clock
// deadline or an external cancellation flag.
//
// The calling thread participates as worker 0, so an Executor with
// num_workers() == N owns N-1 pool threads; Executor(1) never spawns a
// thread and runs everything inline. The library itself is exception-free
// (see docs/ARCHITECTURE.md); the executor is the one boundary that must
// tolerate throwing tasks (std::bad_alloc, test stubs) without
// terminating.

#ifndef LOCS_EXEC_EXECUTOR_H_
#define LOCS_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace locs {

/// A reusable pool of worker threads executing index-range jobs.
/// ParallelFor calls from different threads are serialized internally;
/// a nested ParallelFor issued from inside a task runs inline on the
/// worker that issued it (no deadlock, no extra parallelism).
class Executor {
 public:
  /// A task: process items [begin, end) as `worker` (a stable id in
  /// [0, num_workers()); the same worker id is never active twice
  /// concurrently, so per-worker state needs no locking).
  using Body =
      std::function<void(unsigned worker, size_t begin, size_t end)>;

  /// Per-call execution controls.
  struct RunOptions {
    /// Cap on participating workers for this call; 0 = the whole pool.
    unsigned max_workers = 0;
    /// Items claimed per cursor grab; 0 picks a size that balances claim
    /// overhead against load balance.
    size_t chunk_size = 0;
    /// Wall-clock budget in milliseconds; 0 = none. Checked before each
    /// chunk claim, so a claimed chunk always completes — the items that
    /// ran always form the prefix [0, items_run).
    double deadline_ms = 0.0;
    /// External cancellation flag, polled before each chunk claim.
    const std::atomic<bool>* cancel = nullptr;
  };

  /// Why ParallelFor returned.
  enum class StopCause { kCompleted, kDeadline, kCancelled };

  struct RunResult {
    /// Items processed; exactly the prefix [0, items_run) of the index
    /// space (claims are monotone and claimed chunks always finish).
    size_t items_run = 0;
    StopCause cause = StopCause::kCompleted;
  };

  /// `num_threads` counts total parallelism including the calling thread;
  /// 0 resolves to std::thread::hardware_concurrency(). No thread is
  /// spawned until the first parallel call (lazy start).
  explicit Executor(unsigned num_threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  unsigned num_workers() const { return num_workers_; }

  /// True once the pool threads have been spawned.
  bool started() const LOCS_EXCLUDES(mutex_);

  /// Runs `body` over [0, num_items) with dynamic chunking and blocks
  /// until every claimed chunk has finished. The first exception thrown
  /// by `body` is rethrown here after all workers have drained; the pool
  /// remains usable afterwards.
  RunResult ParallelFor(size_t num_items, const Body& body,
                        const RunOptions& options)
      LOCS_EXCLUDES(run_mutex_, mutex_);
  RunResult ParallelFor(size_t num_items, const Body& body) {
    return ParallelFor(num_items, body, RunOptions());
  }

  /// Schedules `task` to run detached on a pool thread — the serving
  /// layer runs one client session per submitted task. Interaction with
  /// ParallelFor: a worker running a task cannot adopt batch chunks, but
  /// ParallelFor stays correct and non-blocking regardless (the calling
  /// thread always participates, so a batch completes even with every
  /// pool thread parked in long-lived tasks — it just loses parallelism).
  ///
  /// Returns false (task not scheduled) when the executor owns no pool
  /// threads (num_workers() == 1) or is shutting down. A throwing task is
  /// swallowed after the fact (nowhere to rethrow a detached error); the
  /// worker survives. The destructor discards queued-but-unstarted tasks
  /// and joins running ones, so a task that blocks indefinitely must be
  /// unblocked by its owner (e.g. the server shutting down its sockets)
  /// before the Executor dies.
  bool Submit(std::function<void()> task) LOCS_EXCLUDES(mutex_);

  /// Pool threads currently parked inside submitted tasks. An admission
  /// signal for callers that must not queue behind long-lived tasks.
  unsigned active_tasks() const LOCS_EXCLUDES(mutex_);

  /// Process-wide executor shared by the batch entry points. Sized
  /// max(hardware_concurrency, 8) so thread-count invariance is exercised
  /// even on small machines.
  static Executor& Shared();

 private:
  struct Job;

  void WorkerLoop(unsigned pool_index) LOCS_EXCLUDES(mutex_);
  void EnsureStarted() LOCS_EXCLUDES(mutex_);
  static void RunChunks(Job& job, unsigned worker);

  const unsigned num_workers_;
  Mutex run_mutex_;  // serializes concurrent ParallelFor calls

  mutable Mutex mutex_;  // guards the fields annotated below
  CondVar job_cv_;       // workers: a new job was published
  CondVar done_cv_;      // caller: a worker left the job
  // Lazily spawned pool threads, num_workers_ - 1 of them. Writes are
  // guarded by mutex_; the destructor's join runs after every worker has
  // observed shutdown_ and is the usual destructor exemption.
  std::vector<std::thread> threads_ LOCS_GUARDED_BY(mutex_);
  Job* job_ LOCS_GUARDED_BY(mutex_) = nullptr;  // null = none adoptable
  uint64_t generation_ LOCS_GUARDED_BY(mutex_) = 0;  // bumped per job
  // Detached tasks (Submit); drained FIFO by idle workers. Batch jobs
  // take priority: a woken worker adopts an adoptable job first.
  std::deque<std::function<void()>> tasks_ LOCS_GUARDED_BY(mutex_);
  unsigned active_tasks_ LOCS_GUARDED_BY(mutex_) = 0;
  bool started_ LOCS_GUARDED_BY(mutex_) = false;
  bool shutdown_ LOCS_GUARDED_BY(mutex_) = false;
};

}  // namespace locs

#endif  // LOCS_EXEC_EXECUTOR_H_
