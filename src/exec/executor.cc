#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace locs {

namespace {

using Clock = std::chrono::steady_clock;

// Executor whose RunChunks is live on this thread. Lets a nested
// ParallelFor on the same executor degrade to inline execution instead of
// deadlocking on run_mutex_.
thread_local const Executor* tls_running_on = nullptr;

}  // namespace

/// One ParallelFor invocation. Lives on the caller's stack; workers only
/// touch it between adoption (active incremented under the pool mutex) and
/// release (decremented under the pool mutex), and the caller does not
/// return before active == 0.
struct Executor::Job {
  const Body* body = nullptr;
  size_t num_items = 0;
  size_t chunk = 1;
  unsigned max_workers = 1;  // participants cap, caller included
  bool has_deadline = false;
  Clock::time_point deadline{};
  const std::atomic<bool>* cancel = nullptr;

  std::atomic<size_t> cursor{0};     // next unclaimed index
  std::atomic<size_t> items_run{0};  // finished items
  std::atomic<bool> stop{false};     // an exception was captured
  std::atomic<bool> hit_deadline{false};
  std::atomic<bool> hit_cancel{false};
  Mutex error_mutex;
  std::exception_ptr error LOCS_GUARDED_BY(error_mutex);
  unsigned active = 0;  // pool workers inside RunChunks; guarded by the
                        // executor's mutex_ (not expressible as an
                        // annotation: Job holds no Executor reference)
};

Executor::Executor(unsigned num_threads)
    : num_workers_(num_threads != 0
                       ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency())) {}

Executor::~Executor() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.NotifyAll();
  // Destructor exemption: after shutdown_ is published no worker touches
  // threads_, and no other thread may hold a reference to a dying
  // Executor (joining under mutex_ would deadlock with WorkerLoop).
  for (std::thread& thread : threads_) thread.join();
}

bool Executor::started() const {
  MutexLock lock(mutex_);
  return started_;
}

void Executor::EnsureStarted() {
  MutexLock lock(mutex_);
  if (started_ || num_workers_ <= 1) return;
  started_ = true;
  // reserve() up front: if a thread fails to spawn, the ones already
  // running are registered in threads_ and the destructor joins them —
  // unlike the old per-batch spawn loop, a throw here cannot leak a
  // joinable thread.
  threads_.reserve(num_workers_ - 1);
  for (unsigned i = 0; i + 1 < num_workers_; ++i) {
    threads_.emplace_back(&Executor::WorkerLoop, this, i);
  }
}

void Executor::RunChunks(Job& job, unsigned worker) {
  try {
    while (!job.stop.load(std::memory_order_relaxed)) {
      if (job.cancel != nullptr &&
          job.cancel->load(std::memory_order_relaxed)) {
        job.hit_cancel.store(true, std::memory_order_relaxed);
        break;
      }
      if (job.has_deadline && Clock::now() >= job.deadline) {
        job.hit_deadline.store(true, std::memory_order_relaxed);
        break;
      }
      const size_t begin =
          job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= job.num_items) break;
      const size_t end = std::min(begin + job.chunk, job.num_items);
      (*job.body)(worker, begin, end);
      job.items_run.fetch_add(end - begin, std::memory_order_relaxed);
    }
  } catch (...) {
    {
      MutexLock lock(job.error_mutex);
      if (job.error == nullptr) job.error = std::current_exception();
    }
    job.stop.store(true, std::memory_order_relaxed);
  }
}

void Executor::WorkerLoop(unsigned pool_index) {
  const unsigned worker = pool_index + 1;  // worker 0 is the caller
  uint64_t seen = 0;
  MutexLock lock(mutex_);
  while (true) {
    // Manual wait loop: the analysis sees the guarded reads with mutex_
    // held directly (a predicate lambda would need its own annotations).
    while (!shutdown_ && generation_ == seen && tasks_.empty()) {
      job_cv_.Wait(lock);
    }
    if (shutdown_) return;
    if (generation_ != seen) {
      seen = generation_;
      Job* job = job_;
      if (job != nullptr && worker < job->max_workers) {
        ++job->active;
        lock.Unlock();
        tls_running_on = this;
        RunChunks(*job, worker);
        tls_running_on = nullptr;
        lock.Lock();
        if (--job->active == 0) done_cv_.NotifyAll();
        continue;
      }
    }
    if (tasks_.empty()) continue;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++active_tasks_;
    lock.Unlock();
    // Detached execution: no caller waits, so a throw has nowhere to
    // surface — swallow it and keep the worker alive.
    try {
      task();
    } catch (...) {
    }
    task = nullptr;  // release captures before reacquiring the lock
    lock.Lock();
    --active_tasks_;
  }
}

bool Executor::Submit(std::function<void()> task) {
  if (num_workers_ <= 1) return false;
  EnsureStarted();
  {
    MutexLock lock(mutex_);
    if (shutdown_) return false;
    tasks_.push_back(std::move(task));
  }
  job_cv_.NotifyAll();
  return true;
}

unsigned Executor::active_tasks() const {
  MutexLock lock(mutex_);
  return active_tasks_;
}

Executor::RunResult Executor::ParallelFor(size_t num_items, const Body& body,
                                          const RunOptions& options) {
  RunResult result;
  if (num_items == 0) return result;

  Job job;
  job.body = &body;
  job.num_items = num_items;
  job.cancel = options.cancel;
  job.has_deadline = options.deadline_ms > 0.0;
  if (job.has_deadline) {
    job.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options.deadline_ms));
  }

  unsigned workers = num_workers_;
  if (options.max_workers != 0) {
    workers = std::min(workers, options.max_workers);
  }
  job.chunk = options.chunk_size != 0
                  ? options.chunk_size
                  : std::max<size_t>(
                        1, num_items / (size_t{workers} * 8));
  // No point waking workers that could never claim a chunk.
  const size_t claims = (num_items + job.chunk - 1) / job.chunk;
  if (size_t{workers} > claims) workers = static_cast<unsigned>(claims);
  job.max_workers = std::max(1u, workers);

  // A nested call from inside a task runs inline: the outer call holds
  // run_mutex_ and the pool is already saturated.
  const bool parallel = job.max_workers > 1 && tls_running_on != this;

  if (!parallel) {
    const Executor* outer = tls_running_on;
    tls_running_on = this;
    RunChunks(job, 0);
    tls_running_on = outer;
  } else {
    MutexLock run_lock(run_mutex_);
    EnsureStarted();
    {
      MutexLock lock(mutex_);
      job_ = &job;
      ++generation_;
    }
    job_cv_.NotifyAll();
    tls_running_on = this;
    RunChunks(job, 0);
    tls_running_on = nullptr;
    {
      MutexLock lock(mutex_);
      job_ = nullptr;  // no further adoption; drain the workers inside
      while (job.active != 0) done_cv_.Wait(lock);
    }
  }

  // Uncontended by now (all workers drained), but the lock keeps the
  // guarded access visible to the analysis instead of special-cased.
  std::exception_ptr error;
  {
    MutexLock lock(job.error_mutex);
    error = job.error;
  }
  if (error != nullptr) std::rethrow_exception(error);
  result.items_run =
      std::min(job.items_run.load(std::memory_order_relaxed), num_items);
  if (result.items_run < num_items) {
    result.cause = job.hit_cancel.load(std::memory_order_relaxed)
                       ? StopCause::kCancelled
                       : StopCause::kDeadline;
  }
  return result;
}

Executor& Executor::Shared() {
  static Executor executor(
      std::max(std::thread::hardware_concurrency(), 8u));
  return executor;
}

}  // namespace locs
