// LOCS_FAILPOINT — compile-time-gated fault injection.
//
// A failpoint is a named site in library code that a test (or the
// LOCS_FAILPOINT environment variable) can arm to force a rare failure
// path: an IO short-read, an allocation failure, a mid-search deadline.
// Sites look like
//
//   if (LOCS_FAILPOINT("io.binary.short_read")) return ...error...;
//
// and cost nothing when the facility is compiled out
// (-DLOCS_FAILPOINTS=0): the macro folds to `false` and the branch is
// dead code. When compiled in (the default for development and CI
// builds), an unarmed site costs one relaxed atomic load and a
// predictable branch; sites live on coarse paths (per file-read, per
// guard poll, per query), never in per-edge loops.
//
// Arming:
//   - in-process: locs::failpoint::Arm("name"), optionally with a number
//     of hits to skip first and a period (fire every Nth evaluation
//     instead of every one — the chaos-soak mode, where a fault should
//     recur throughout a run without killing every request); Disarm /
//     DisarmAll to clean up (tests use the ScopedFailpoint RAII helper);
//   - cross-process: LOCS_FAILPOINT="name[=skip][%every][,name...]" in
//     the environment, parsed on first use — this is how the CLI
//     integration tests force failures inside locs_cli and how
//     tools/chaos_serve.sh arms a whole daemon.
//
// Fire(name) returns true when the site should fail; it also counts
// every evaluation of an armed name so tests can assert a site was
// actually reached.
//
// Thread-safety: the hot path (Fire on an unarmed site) is a single
// relaxed atomic load. The slow path — the name→state registry behind
// Arm/Disarm — is serialized by an annotated locs::Mutex in
// failpoint.cc, with LOCS_REQUIRES discipline on the *Locked helpers so
// the Clang thread-safety analysis proves no unlocked registry access
// can compile.

#ifndef LOCS_UTIL_FAILPOINT_H_
#define LOCS_UTIL_FAILPOINT_H_

#ifndef LOCS_FAILPOINTS
#define LOCS_FAILPOINTS 1
#endif

#if LOCS_FAILPOINTS

#include <atomic>
#include <cstdint>

namespace locs::failpoint {

namespace internal {
/// Number of currently armed failpoints (fast-path gate).
extern std::atomic<uint64_t> armed_count;

/// Slow path: registry lookup; only called while something is armed.
bool FireSlow(const char* name);
}  // namespace internal

/// True when the named site should fail now.
inline bool Fire(const char* name) {
  if (internal::armed_count.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return internal::FireSlow(name);
}

/// Arms `name`: Fire skips the first `skip` hits, then returns true on
/// every `every`-th subsequent hit until Disarm (every <= 1 fires on all
/// of them — the deterministic always-fail mode tests use; larger values
/// are the periodic chaos mode, firing on the 1st, every+1-th, ... hit
/// past the skip).
void Arm(const char* name, uint64_t skip = 0, uint64_t every = 1);
void Disarm(const char* name);
void DisarmAll();

/// Evaluations of Fire(name) since it was armed (armed names only; an
/// unarmed name reports 0). Counts both skipped and firing hits.
uint64_t HitCount(const char* name);

/// RAII arming for tests.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(const char* name, uint64_t skip = 0,
                           uint64_t every = 1)
      : name_(name) {
    Arm(name, skip, every);
  }
  ~ScopedFailpoint() { Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  const char* name_;
};

}  // namespace locs::failpoint

#define LOCS_FAILPOINT(name) (::locs::failpoint::Fire(name))

#else  // !LOCS_FAILPOINTS

#define LOCS_FAILPOINT(name) (false)

#endif  // LOCS_FAILPOINTS

#endif  // LOCS_UTIL_FAILPOINT_H_
