// Aligned ASCII table and CSV emission for benchmark reports.
//
// Every bench driver prints the rows/series of the paper table or figure it
// regenerates. TableWriter renders an aligned, human-readable table and can
// also emit the same rows as CSV lines (prefixed so they are easy to grep
// out of combined logs for plotting).

#ifndef LOCS_UTIL_TABLE_H_
#define LOCS_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace locs {

/// Collects rows of string cells and renders them aligned.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Starts a new row; follow with Cell()/Num() calls.
  TableWriter& Row();

  TableWriter& Cell(const std::string& value);
  TableWriter& Num(int64_t value);
  TableWriter& Num(uint64_t value);
  TableWriter& Num(int value) { return Num(static_cast<int64_t>(value)); }
  TableWriter& Num(uint32_t value) { return Num(static_cast<uint64_t>(value)); }
  /// Fixed-point double with `digits` decimals.
  TableWriter& Num(double value, int digits = 3);

  /// Renders the aligned table to a string (with a rule under the header).
  std::string Render() const;

  /// Renders all rows as CSV, each line prefixed with "CSV,<tag>,".
  std::string RenderCsv(const std::string& tag) const;

  /// Convenience: prints Render() (and the CSV block when `csv_tag` is
  /// non-empty) to stdout.
  void Print(const std::string& csv_tag = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string FormatDouble(double value, int digits);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string FormatCount(uint64_t value);

}  // namespace locs

#endif  // LOCS_UTIL_TABLE_H_
