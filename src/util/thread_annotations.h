// Clang thread-safety-analysis annotations and an annotated mutex.
//
// The macros wrap Clang's `-Wthread-safety` attributes so locking
// discipline is documented in a form the compiler can *check*: a field
// declared `LOCS_GUARDED_BY(mutex_)` can only be touched while `mutex_`
// is held, a function declared `LOCS_REQUIRES(mutex_)` can only be
// called with it held, and violations are compile errors under
// `-DLOCS_WERROR=ON` with Clang. On compilers without the attributes
// (GCC, MSVC) every macro folds to nothing, so annotated code stays
// portable.
//
// `locs::Mutex` / `locs::MutexLock` / `locs::CondVar` are the annotated
// counterparts of std::mutex / std::unique_lock /
// std::condition_variable — the analysis only tracks capabilities
// through annotated types, so library code that wants checking must use
// these wrappers rather than the std types directly. They add no state
// and no overhead beyond the std primitives they hold.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (the macro set mirrors the one in the Clang docs and in Abseil's
// absl/base/thread_annotations.h).

#ifndef LOCS_UTIL_THREAD_ANNOTATIONS_H_
#define LOCS_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define LOCS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LOCS_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex").
#define LOCS_CAPABILITY(x) LOCS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define LOCS_SCOPED_CAPABILITY LOCS_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be accessed while `x` is held.
#define LOCS_GUARDED_BY(x) LOCS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while `x` is held.
#define LOCS_PT_GUARDED_BY(x) LOCS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// leaves them held).
#define LOCS_REQUIRES(...) \
  LOCS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit).
#define LOCS_ACQUIRE(...) \
  LOCS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held on entry).
#define LOCS_RELEASE(...) \
  LOCS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock prevention for non-reentrant locks).
#define LOCS_EXCLUDES(...) \
  LOCS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a capability-protected object.
#define LOCS_RETURN_CAPABILITY(x) LOCS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the
/// analysis cannot see (e.g. single-threaded construction phases). Use
/// sparingly and leave a comment at each use site.
#define LOCS_NO_THREAD_SAFETY_ANALYSIS \
  LOCS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace locs {

class CondVar;

/// std::mutex with capability annotations. Prefer MutexLock for
/// scoped acquisition; Lock/Unlock exist for the rare hand-over-hand
/// patterns.
class LOCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LOCS_ACQUIRE() { mu_.lock(); }
  void Unlock() LOCS_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a Mutex (std::unique_lock underneath so CondVar can
/// wait on it). Supports explicit Unlock/Lock for wait loops that drop
/// the lock around work.
class LOCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LOCS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() LOCS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() LOCS_RELEASE() { lock_.unlock(); }
  void Lock() LOCS_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Annotated condition variable. Wait atomically releases and reacquires
/// the lock; from the analysis's point of view the capability is held
/// across the call (the correct caller-side contract), so Wait itself
/// needs no annotation.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace locs

#endif  // LOCS_UTIL_THREAD_ANNOTATIONS_H_
