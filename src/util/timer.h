// Wall-clock timing helpers for benchmarks and query statistics.

#ifndef LOCS_UTIL_TIMER_H_
#define LOCS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace locs {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed time in microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace locs

#endif  // LOCS_UTIL_TIMER_H_
