// Monotone bucket priority queues used by the peeling and selection
// algorithms. Both structures give O(1) amortized operations because keys
// change by ±1 at a time.
//
// MinBucketQueue  — used by k-core peeling (Batagelj–Zaversnik): pop the
//                   vertex with the minimum key; keys only decrease.
// MaxBucketList   — the paper's Figure-5 structure for the `li` heuristic:
//                   an array of doubly-linked lists keyed by incidence count
//                   with a pointer to the maximum non-empty bucket. Keys only
//                   increase (by one per update).

#ifndef LOCS_UTIL_BUCKET_QUEUE_H_
#define LOCS_UTIL_BUCKET_QUEUE_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace locs {

/// Min-oriented bucket queue over dense uint32 element ids with uint32 keys.
/// Built once from an initial key assignment; supports DecreaseKey and
/// PopMin. Standard structure behind O(n+m) core decomposition.
class MinBucketQueue {
 public:
  /// Builds the queue over elements 0..keys.size()-1 with the given keys.
  explicit MinBucketQueue(const std::vector<uint32_t>& keys) { Reset(keys); }

  void Reset(const std::vector<uint32_t>& keys) {
    const auto n = static_cast<uint32_t>(keys.size());
    uint32_t max_key = 0;
    for (uint32_t k : keys) max_key = k > max_key ? k : max_key;
    key_ = keys;
    // Counting sort into position arrays.
    bucket_start_.assign(max_key + 2, 0);
    for (uint32_t k : keys) ++bucket_start_[k + 1];
    for (size_t i = 1; i < bucket_start_.size(); ++i) {
      bucket_start_[i] += bucket_start_[i - 1];
    }
    order_.resize(n);
    position_.resize(n);
    std::vector<uint32_t> cursor(bucket_start_.begin(),
                                 bucket_start_.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t pos = cursor[key_[v]]++;
      order_[pos] = v;
      position_[v] = pos;
    }
    head_ = 0;
    n_ = n;
  }

  bool Empty() const { return head_ >= n_; }

  /// Current key of `v` (valid while v is still queued).
  uint32_t Key(uint32_t v) const { return key_[v]; }

  /// True if `v` has already been popped.
  bool Popped(uint32_t v) const { return position_[v] < head_; }

  /// Pops an element with the globally minimal key.
  uint32_t PopMin() {
    LOCS_DCHECK(!Empty());
    const uint32_t v = order_[head_];
    ++head_;
    return v;
  }

  /// Key of the next element PopMin would return.
  uint32_t MinKey() const {
    LOCS_DCHECK(!Empty());
    return key_[order_[head_]];
  }

  /// Decrements the key of a still-queued element by one (no-op guard: key
  /// must be positive). Swaps `v` to the front of its bucket, then shifts the
  /// bucket boundary — the classic O(1) trick.
  void DecrementKey(uint32_t v) {
    LOCS_DCHECK(!Popped(v));
    const uint32_t k = key_[v];
    LOCS_DCHECK(k > 0);
    const uint32_t bucket_first =
        bucket_start_[k] > head_ ? bucket_start_[k] : head_;
    const uint32_t pos = position_[v];
    const uint32_t other = order_[bucket_first];
    // Swap v with the first element of its bucket.
    order_[bucket_first] = v;
    order_[pos] = other;
    position_[v] = bucket_first;
    position_[other] = pos;
    // Grow bucket k-1 by one slot.
    bucket_start_[k] = bucket_first + 1;
    key_[v] = k - 1;
  }

 private:
  std::vector<uint32_t> key_;
  std::vector<uint32_t> order_;        // elements sorted by current key
  std::vector<uint32_t> position_;     // inverse of order_
  std::vector<uint32_t> bucket_start_; // first position of each key's bucket
  uint32_t head_ = 0;
  uint32_t n_ = 0;
};

/// Max-oriented bucket structure with intrusive doubly-linked lists — the
/// data structure of Figure 5 in the paper. Elements are dense uint32 ids;
/// keys only grow, one unit at a time, so PopMax plus all updates over a
/// whole query cost O(inserted + updates).
class MaxBucketList {
 public:
  /// `capacity` bounds element ids; `max_key` bounds keys.
  MaxBucketList(uint32_t capacity, uint32_t max_key)
      : head_(max_key + 1, kNil),
        next_(capacity, kNil),
        prev_(capacity, kNil),
        key_(capacity, 0),
        present_(capacity, 0) {}

  bool Contains(uint32_t v) const { return present_[v] != 0; }
  bool Empty() const { return size_ == 0; }
  uint32_t Size() const { return size_; }
  uint32_t Key(uint32_t v) const { return key_[v]; }

  /// Inserts `v` with the given key. `v` must not be present.
  void Insert(uint32_t v, uint32_t key) {
    LOCS_DCHECK(!Contains(v));
    LOCS_DCHECK(key < head_.size());
    present_[v] = 1;
    key_[v] = key;
    Link(v, key);
    if (key > max_bucket_) max_bucket_ = key;
    ++size_;
  }

  /// Increments the key of a present element by one.
  void Increment(uint32_t v) {
    LOCS_DCHECK(Contains(v));
    const uint32_t k = key_[v];
    LOCS_DCHECK(k + 1 < head_.size());
    Unlink(v, k);
    key_[v] = k + 1;
    Link(v, k + 1);
    if (k + 1 > max_bucket_) max_bucket_ = k + 1;
  }

  /// Removes and returns an element with the maximal key.
  uint32_t PopMax() {
    LOCS_DCHECK(!Empty());
    while (head_[max_bucket_] == kNil) {
      LOCS_DCHECK(max_bucket_ > 0);
      --max_bucket_;
    }
    const uint32_t v = head_[max_bucket_];
    Unlink(v, max_bucket_);
    present_[v] = 0;
    --size_;
    return v;
  }

  /// Key that PopMax would remove next.
  uint32_t MaxKey() {
    LOCS_DCHECK(!Empty());
    while (head_[max_bucket_] == kNil) {
      LOCS_DCHECK(max_bucket_ > 0);
      --max_bucket_;
    }
    return max_bucket_;
  }

  /// Removes an arbitrary present element.
  void Erase(uint32_t v) {
    LOCS_DCHECK(Contains(v));
    Unlink(v, key_[v]);
    present_[v] = 0;
    --size_;
  }

 private:
  static constexpr uint32_t kNil = ~uint32_t{0};

  void Link(uint32_t v, uint32_t key) {
    next_[v] = head_[key];
    prev_[v] = kNil;
    if (head_[key] != kNil) prev_[head_[key]] = v;
    head_[key] = v;
  }

  void Unlink(uint32_t v, uint32_t key) {
    if (prev_[v] != kNil) {
      next_[prev_[v]] = next_[v];
    } else {
      head_[key] = next_[v];
    }
    if (next_[v] != kNil) prev_[next_[v]] = prev_[v];
  }

  std::vector<uint32_t> head_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  std::vector<uint32_t> key_;
  std::vector<uint8_t> present_;
  uint32_t max_bucket_ = 0;
  uint32_t size_ = 0;
};

}  // namespace locs

#endif  // LOCS_UTIL_BUCKET_QUEUE_H_
