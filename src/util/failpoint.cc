#include "util/failpoint.h"

#if LOCS_FAILPOINTS

#include <cstdlib>
#include <map>
#include <string>

#include "util/thread_annotations.h"

namespace locs::failpoint {

namespace {

struct State {
  uint64_t skip = 0;       // hits to let pass before firing
  uint64_t every = 1;      // fire on every Nth post-skip hit (<=1: all)
  uint64_t hits = 0;       // total evaluations since armed
  uint64_t past_skip = 0;  // evaluations past the skip window
  bool armed = false;      // disarmed entries are kept for HitCount
};

Mutex registry_mutex;

/// The registry map; every access requires registry_mutex (the accessor
/// annotation lets the analysis enforce that at each call site).
std::map<std::string, State>& Registry() LOCS_REQUIRES(registry_mutex) {
  static auto* registry = new std::map<std::string, State>();
  return *registry;
}

/// Writes an armed entry into the registry (no armed_count update —
/// callers account for that themselves).
void ArmLocked(const std::string& name, uint64_t skip, uint64_t every)
    LOCS_REQUIRES(registry_mutex) {
  State& state = Registry()[name];
  state.armed = true;
  state.skip = skip;
  state.every = every == 0 ? 1 : every;
  state.hits = 0;
  state.past_skip = 0;
}

/// Parses LOCS_FAILPOINT="name[=skip][%every][,name...]" into the
/// registry and returns the number of entries armed.
uint64_t ArmFromEnvironmentLocked() LOCS_REQUIRES(registry_mutex) {
  const char* spec = std::getenv("LOCS_FAILPOINT");
  if (spec == nullptr) return 0;
  uint64_t armed = 0;
  std::string entry;
  for (const char* p = spec;; ++p) {
    if (*p != '\0' && *p != ',') {
      entry.push_back(*p);
      continue;
    }
    if (!entry.empty()) {
      uint64_t every = 1;
      const size_t pct = entry.find('%');
      if (pct != std::string::npos) {
        every = std::strtoull(entry.c_str() + pct + 1, nullptr, 10);
        entry.erase(pct);
      }
      const size_t eq = entry.find('=');
      if (eq == std::string::npos) {
        ArmLocked(entry, 0, every);
      } else {
        ArmLocked(entry.substr(0, eq),
                  std::strtoull(entry.c_str() + eq + 1, nullptr, 10),
                  every);
      }
      ++armed;
      entry.clear();
    }
    if (*p == '\0') break;
  }
  return armed;
}

}  // namespace

namespace internal {

// Environment arming runs inside the count's dynamic initializer, before
// main() and therefore before any test or CLI code can evaluate a site.
// (A site evaluated even earlier — from another TU's global constructor —
// sees the zero-initialized count and reports "not armed", which is the
// safe answer.)
std::atomic<uint64_t> armed_count{[] {
  MutexLock lock(registry_mutex);
  return ArmFromEnvironmentLocked();
}()};

bool FireSlow(const char* name) {
  MutexLock lock(registry_mutex);
  const auto it = Registry().find(name);
  if (it == Registry().end() || !it->second.armed) return false;
  State& state = it->second;
  ++state.hits;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  // Periodic mode fires on the 1st, every+1-th, ... post-skip hit, so
  // every=1 reproduces the historical fire-on-all behavior exactly.
  return state.past_skip++ % state.every == 0;
}

}  // namespace internal

void Arm(const char* name, uint64_t skip, uint64_t every) {
  MutexLock lock(registry_mutex);
  const auto it = Registry().find(name);
  if (it == Registry().end() || !it->second.armed) {
    internal::armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  ArmLocked(name, skip, every);
}

void Disarm(const char* name) {
  MutexLock lock(registry_mutex);
  const auto it = Registry().find(name);
  if (it == Registry().end() || !it->second.armed) return;
  it->second.armed = false;
  internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  MutexLock lock(registry_mutex);
  for (auto& [name, state] : Registry()) {
    if (state.armed) {
      state.armed = false;
      internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t HitCount(const char* name) {
  MutexLock lock(registry_mutex);
  const auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

}  // namespace locs::failpoint

#endif  // LOCS_FAILPOINTS
