// Minimal JSON rendering primitives shared by the benchmark reports
// (bench/common/reporting) and the telemetry trace sink (src/obs).
//
// This is a *writer*, not a document model: callers assemble objects as
// ordered (key, rendered-value) pairs and the helpers here guarantee the
// two things JSON gets wrong by hand — string escaping and number
// round-tripping. Keeping it in locs_util lets src/obs emit JSONL
// without depending on the bench tree.

#ifndef LOCS_UTIL_JSON_H_
#define LOCS_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace locs::json {

/// JSON string literal: `text` with the escapes the grammar requires
/// (quotes, backslash, \n/\t/\r, \u00xx for remaining control bytes),
/// wrapped in double quotes.
std::string Quote(const std::string& text);

/// Shortest representation of `value` that parses back to the same
/// double. Integral values render undecorated ("3", not "3.0"); JSON has
/// no NaN/Inf, so non-finite values degrade to "null".
std::string Number(double value);

/// Exact decimal rendering of an unsigned counter. uint64_t values above
/// 2^53 would lose precision through the double path.
std::string Number(uint64_t value);

/// One flat JSON object rendered onto a single line — the JSONL row
/// format. Values must already be rendered JSON (via Quote/Number or a
/// nested Object); keys are escaped here.
class Object {
 public:
  Object& Field(const std::string& key, std::string rendered_value) {
    fields_.emplace_back(key, std::move(rendered_value));
    return *this;
  }
  Object& Str(const std::string& key, const std::string& value) {
    return Field(key, Quote(value));
  }
  Object& Num(const std::string& key, double value) {
    return Field(key, Number(value));
  }
  Object& Count(const std::string& key, uint64_t value) {
    return Field(key, Number(value));
  }
  Object& Bool(const std::string& key, bool value) {
    return Field(key, value ? "true" : "false");
  }

  /// `{"k1": v1, "k2": v2}` — single line, insertion order.
  std::string Render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace locs::json

#endif  // LOCS_UTIL_JSON_H_
