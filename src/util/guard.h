// QueryGuard — per-query resource governance.
//
// The paper's own CSM design controls runaway local searches with a
// γ-scaled search-space budget (Eq. 8); QueryGuard generalizes that idea
// to every solver family: one small object carries a wall-clock deadline,
// a work cap counted in visited vertices + scanned edges, and an external
// cancel flag, and the solver inner loops poll it cooperatively.
//
// Polling is amortized to stay off the per-edge hot path: Spend(units)
// accumulates work and only performs the expensive checks (clock read,
// cancel-flag load, budget compare) once per ~kPollInterval accumulated
// units. An unlimited guard (default construction, or limits that are all
// zero) never reaches the slow path — Spend is one add, one compare, one
// never-taken branch — so solvers can unconditionally poll a guard
// instead of branching on "is there a guard?" per edge.
//
// Work accounting is internal to the guard (callers pass deltas), so one
// guard can span nested sub-queries — the multi-vertex CSM binary search
// charges all of its CST probes against a single budget, exactly like
// wall-clock time.
//
// Determinism: trip points for budget exhaustion depend only on the
// sequence of Spend deltas, which for every solver is a pure function of
// (graph, query, options) — so a budget-tripped query returns the same
// partial answer on any thread count. Deadline trips are time-dependent,
// but only occur at poll points, which are themselves deterministic.
//
// Thread-safety: a QueryGuard belongs to exactly one query on one
// thread and takes no lock, so nothing here needs the
// LOCS_GUARDED_BY annotations of util/thread_annotations.h. The only
// cross-thread state is the caller-owned cancel flag, which is read
// through std::atomic with relaxed ordering (a trip needs no
// happens-before edge beyond the poll itself); guard_test's concurrency
// label puts that protocol under the TSan lane.

#ifndef LOCS_UTIL_GUARD_H_
#define LOCS_UTIL_GUARD_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "util/failpoint.h"

namespace locs {

/// Why a query ended. Defined here (not core/) because the guard reports
/// the interruption causes; the solver layer adds kFound/kNotExists.
enum class Termination : uint8_t {
  kFound,            ///< ran to completion and produced the answer
  kNotExists,        ///< ran to completion; provably no answer exists
  kDeadline,         ///< interrupted: wall-clock deadline expired
  kBudgetExhausted,  ///< interrupted: work budget (or mCST step cap) spent
  kCancelled,        ///< interrupted: external cancel flag was set
};

inline constexpr int kNumTerminations = 5;

/// Human-readable status name ("found", "not-exists", "deadline",
/// "budget-exhausted", "cancelled").
constexpr std::string_view TerminationName(Termination status) {
  switch (status) {
    case Termination::kFound:
      return "found";
    case Termination::kNotExists:
      return "not-exists";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kBudgetExhausted:
      return "budget-exhausted";
    case Termination::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// User-facing per-query limits; zero / null members mean "no limit".
struct QueryLimits {
  /// Wall-clock budget in milliseconds from guard construction.
  double deadline_ms = 0.0;
  /// Cap on visited vertices + scanned edges (mCST: search steps).
  uint64_t work_budget = 0;
  /// External cancellation flag, polled at guard poll points.
  const std::atomic<bool>* cancel = nullptr;

  bool Unlimited() const {
    return deadline_ms <= 0.0 && work_budget == 0 && cancel == nullptr;
  }
};

/// See the file comment. Not thread-safe (one guard per in-flight query);
/// the cancel flag it watches may be set from any thread.
class QueryGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// Expensive checks run at most once per this many work units.
  static constexpr uint64_t kPollInterval = 1024;

  /// Unlimited guard: never trips, never reaches the slow path.
  QueryGuard() = default;

  explicit QueryGuard(const QueryLimits& limits)
      : cancel_(limits.cancel), work_budget_(limits.work_budget) {
    if (limits.deadline_ms > 0.0) {
      has_deadline_ = true;
      deadline_ = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          limits.deadline_ms));
    }
    if (!limits.Unlimited()) next_poll_ = 0;  // poll on the first Spend
  }

  /// Tightens the deadline to an absolute time point (never loosens).
  /// The batch layer uses this to convert one batch deadline into
  /// per-query guards that share the same expiry instant.
  void LimitDeadline(Clock::time_point deadline) {
    if (!has_deadline_ || deadline < deadline_) {
      has_deadline_ = true;
      deadline_ = deadline;
    }
    next_poll_ = 0;
  }

  /// Charges `units` of work (vertex visits + edge scans since the last
  /// call) and returns true when the query must stop. Once tripped it
  /// stays tripped.
  bool Spend(uint64_t units) {
    spent_ += units;
    if (spent_ < next_poll_) return false;
    return PollSlow();
  }

  /// True once a limit has tripped.
  bool Stopped() const { return stopped_; }

  /// The interruption cause; only meaningful when Stopped().
  Termination cause() const { return cause_; }

  /// Work charged so far.
  uint64_t spent() const { return spent_; }

 private:
  bool PollSlow() {
    if (stopped_) return true;
    // Forces a mid-search interruption regardless of the real limits so
    // tests can exercise the degradation path deterministically.
    if (LOCS_FAILPOINT("guard.force_deadline")) return Trip(Termination::kDeadline);
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return Trip(Termination::kCancelled);
    }
    if (work_budget_ != 0 && spent_ > work_budget_) {
      return Trip(Termination::kBudgetExhausted);
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Trip(Termination::kDeadline);
    }
    next_poll_ = spent_ + kPollInterval;
    if (work_budget_ != 0) {
      // Never coast past the (deterministic) budget boundary by a full
      // poll interval.
      next_poll_ = std::min(next_poll_, work_budget_ + 1);
    }
    return false;
  }

  bool Trip(Termination cause) {
    stopped_ = true;
    cause_ = cause;
    next_poll_ = 0;  // every subsequent Spend reports the trip
    return true;
  }

  const std::atomic<bool>* cancel_ = nullptr;
  uint64_t work_budget_ = 0;
  bool has_deadline_ = false;
  bool stopped_ = false;
  Termination cause_ = Termination::kFound;
  Clock::time_point deadline_{};
  uint64_t spent_ = 0;
  // ~uint64_t{0} = unlimited guard: Spend never reaches PollSlow.
  uint64_t next_poll_ = ~uint64_t{0};
};

}  // namespace locs

#endif  // LOCS_UTIL_GUARD_H_
