// ConstArray<T> — the storage layer behind every immutable graph-shaped
// array (CSR offsets/neighbors, core numbers, merge-tree arrays).
//
// The solvers only ever *read* these arrays, so the substrate they sit
// on is a policy choice, not a type choice: a freshly built graph owns a
// heap vector, while a graph loaded from an on-disk image (src/store/)
// points straight into a read-only mmap region with zero copying. Both
// hide behind one const view: a std::span plus a shared keepalive that
// pins whatever backs the bytes (the adopted vector, or the mapped
// file). Copies are shallow and O(1) — the data is immutable, so
// sharing is always safe — which also makes Graph/CoreIndex handles
// cheap to pass around.

#ifndef LOCS_UTIL_CONST_ARRAY_H_
#define LOCS_UTIL_CONST_ARRAY_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace locs {

/// Immutable shared array: a const span over storage kept alive by a
/// shared_ptr. See the file comment for the two backing variants.
template <typename T>
class ConstArray {
 public:
  /// Empty array (no storage).
  ConstArray() = default;

  /// Owned-vector variant: adopts `values`. Implicit on purpose — every
  /// build path creates a vector and hands it over.
  ConstArray(std::vector<T> values)  // NOLINT(google-explicit-constructor)
      : ConstArray(std::make_shared<const std::vector<T>>(
            std::move(values))) {}

  /// External-region variant: `view` must stay valid for as long as
  /// `region` is alive (e.g. a span into an mmap held by the region).
  ConstArray(std::span<const T> view, std::shared_ptr<const void> region)
      : view_(view), region_(std::move(region)) {}

  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }
  std::span<const T> span() const { return view_; }

  /// Element-wise equality (the tests' round-trip comparisons).
  friend bool operator==(const ConstArray& a, const ConstArray& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  explicit ConstArray(std::shared_ptr<const std::vector<T>> owned)
      : view_(owned->data(), owned->size()), region_(std::move(owned)) {}

  std::span<const T> view_;
  std::shared_ptr<const void> region_;
};

}  // namespace locs

#endif  // LOCS_UTIL_CONST_ARRAY_H_
