// Portable read-prefetch hint for hot solver loops.
//
// CSR neighbor runs index per-vertex scratch cells in effectively random
// order, so those loads dominate the expansion phase's stall time; hinting
// a few iterations ahead overlaps them with the loop's arithmetic.
// `__builtin_prefetch` is supported by both GCC and Clang (a no-op
// elsewhere), keeping the tree free of vendor intrinsics.

#ifndef LOCS_UTIL_PREFETCH_H_
#define LOCS_UTIL_PREFETCH_H_

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define LOCS_PREFETCH(addr) __builtin_prefetch((addr))
#else
#define LOCS_PREFETCH(addr) ((void)sizeof(addr))
#endif

namespace locs {

/// Lookahead distance, in neighbors, used when prefetching per-vertex
/// cells while scanning a CSR adjacency run. Far enough to cover a cache
/// miss at typical loop cost, near enough not to thrash small runs.
inline constexpr size_t kPrefetchDistance = 8;

}  // namespace locs

#endif  // LOCS_UTIL_PREFETCH_H_
