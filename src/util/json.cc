#include "util/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace locs::json {

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  // Integral values (counts, sizes) read better undecorated.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == value) {
      return shorter;
    }
  }
  return buffer;
}

std::string Number(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

std::string Object::Render() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += Quote(fields_[i].first);
    out += ": ";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

}  // namespace locs::json
