#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace locs {

namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = Percentile(sorted, 0.5);
  s.p95 = Percentile(sorted, 0.95);
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double sq = 0.0;
    for (double x : sorted) {
      const double d = x - s.mean;
      sq += d * d;
    }
    s.stddev = std::sqrt(sq / static_cast<double>(s.count - 1));
  }
  return s;
}

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

}  // namespace locs
