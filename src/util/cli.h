// Minimal command-line flag parsing for benches and examples.
//
// Flags use the form --name=value or --name (boolean true). Unrecognized
// flags abort with the available flag list, so typos surface immediately.

#ifndef LOCS_UTIL_CLI_H_
#define LOCS_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>

namespace locs {

/// Parses `--key=value` style arguments and serves typed lookups.
class CommandLine {
 public:
  CommandLine(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Reads a positive scale factor from the LOCS_BENCH_SCALE environment
/// variable (default 1.0). Bench dataset sizes multiply by this, so larger
/// machines can run paper-scale experiments without code changes.
double BenchScaleFromEnv();

}  // namespace locs

#endif  // LOCS_UTIL_CLI_H_
