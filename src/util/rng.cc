#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <unordered_set>

namespace locs {

std::vector<uint64_t> Rng::SampleDistinct(uint64_t population, size_t count) {
  LOCS_CHECK_LE(count, population);
  std::vector<uint64_t> out;
  out.reserve(count);
  if (count * 3 >= population) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<uint64_t> all(population);
    for (uint64_t i = 0; i < population; ++i) all[i] = i;
    Shuffle(all);
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(count));
    std::sort(out.begin(), out.end());
    return out;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    uint64_t v = Below(population);
    if (seen.insert(v).second) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t Rng::PowerLaw(int64_t lo, int64_t hi, double exponent) {
  LOCS_CHECK(lo >= 1);
  LOCS_CHECK(lo <= hi);
  if (lo == hi) return lo;
  const double u = NextDouble();
  double x;
  if (std::abs(exponent - 1.0) < 1e-12) {
    // CDF ∝ ln(x); invert directly.
    x = static_cast<double>(lo) *
        std::pow(static_cast<double>(hi) / static_cast<double>(lo), u);
  } else {
    const double e1 = 1.0 - exponent;
    const double a = std::pow(static_cast<double>(lo), e1);
    const double b = std::pow(static_cast<double>(hi) + 1.0, e1);
    x = std::pow(a + u * (b - a), 1.0 / e1);
  }
  auto v = static_cast<int64_t>(x);
  return std::clamp(v, lo, hi);
}

}  // namespace locs
