// Summary statistics over measurement samples (runtimes, sizes, ratios).

#ifndef LOCS_UTIL_STATS_H_
#define LOCS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace locs {

/// Summary of a sample set: count, mean, (sample) standard deviation,
/// extremes, and selected percentiles.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double sum = 0.0;
};

/// Computes a Summary of `samples`. An empty sample set yields all zeros.
Summary Summarize(const std::vector<double>& samples);

/// Streaming mean/variance accumulator (Welford). Useful when samples are
/// too numerous to retain.
class OnlineStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace locs

#endif  // LOCS_UTIL_STATS_H_
