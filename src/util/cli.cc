#include "util/cli.h"

#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace locs {

CommandLine::CommandLine(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    LOCS_CHECK_MSG(std::strncmp(arg, "--", 2) == 0,
                   "flags must start with --");
    std::string body(arg + 2);
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool CommandLine::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                       nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

double BenchScaleFromEnv() {
  const char* env = std::getenv("LOCS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::strtod(env, nullptr);
  return v > 0.0 ? v : 1.0;
}

}  // namespace locs
