// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (generators, workload samplers,
// tie-breaking) is seeded explicitly so that datasets, tests, and benchmarks
// are reproducible bit-for-bit across runs. The engine is xoshiro256**,
// seeded through splitmix64 per its authors' recommendation.

#ifndef LOCS_UTIL_RNG_H_
#define LOCS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace locs {

/// splitmix64 step; useful on its own for hashing/seeding.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one (for deriving sub-seeds).
inline uint64_t MixSeeds(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> adapters.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method.
  uint64_t Below(uint64_t bound) {
    LOCS_DCHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    LOCS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct values from [0, population) (count <<
  /// population expected; uses rejection against a local set).
  std::vector<uint64_t> SampleDistinct(uint64_t population, size_t count);

  /// Samples an integer from the discrete bounded power-law distribution
  /// P(x) ∝ x^(-exponent) over x in [lo, hi] via inverse-CDF on the continuous
  /// relaxation (the standard approach used by LFR-style generators).
  int64_t PowerLaw(int64_t lo, int64_t hi, double exponent);

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace locs

#endif  // LOCS_UTIL_RNG_H_
