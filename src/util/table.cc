#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace locs {

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i >= lead && (i - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

TableWriter& TableWriter::Row() {
  rows_.emplace_back();
  return *this;
}

TableWriter& TableWriter::Cell(const std::string& value) {
  LOCS_CHECK(!rows_.empty());
  rows_.back().push_back(value);
  return *this;
}

TableWriter& TableWriter::Num(int64_t value) {
  return Cell(std::to_string(value));
}

TableWriter& TableWriter::Num(uint64_t value) {
  return Cell(std::to_string(value));
}

TableWriter& TableWriter::Num(double value, int digits) {
  return Cell(FormatDouble(value, digits));
}

std::string TableWriter::Render() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TableWriter::RenderCsv(const std::string& tag) const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "CSV," << tag;
    for (const auto& cell : row) os << ',' << cell;
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TableWriter::Print(const std::string& csv_tag) const {
  std::fputs(Render().c_str(), stdout);
  if (!csv_tag.empty()) std::fputs(RenderCsv(csv_tag).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace locs
