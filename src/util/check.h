// Lightweight runtime invariant checks.
//
// The library is exception-free (Google style); API misuse and broken internal
// invariants abort with a readable message instead. LOCS_CHECK is always on,
// LOCS_DCHECK compiles away in release builds so it may guard O(n) validation.

#ifndef LOCS_UTIL_CHECK_H_
#define LOCS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace locs::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "LOCS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void CheckFailedMsg(const char* file, int line,
                                        const char* expr, const char* msg) {
  std::fprintf(stderr, "LOCS_CHECK failed at %s:%d: %s (%s)\n", file, line,
               expr, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace locs::internal

#define LOCS_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::locs::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (0)

#define LOCS_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::locs::internal::CheckFailedMsg(__FILE__, __LINE__, #expr, msg);  \
    }                                                                    \
  } while (0)

#define LOCS_CHECK_LT(a, b) LOCS_CHECK((a) < (b))
#define LOCS_CHECK_LE(a, b) LOCS_CHECK((a) <= (b))
#define LOCS_CHECK_GT(a, b) LOCS_CHECK((a) > (b))
#define LOCS_CHECK_GE(a, b) LOCS_CHECK((a) >= (b))
#define LOCS_CHECK_EQ(a, b) LOCS_CHECK((a) == (b))
#define LOCS_CHECK_NE(a, b) LOCS_CHECK((a) != (b))

#ifdef NDEBUG
#define LOCS_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define LOCS_DCHECK(expr) LOCS_CHECK(expr)
#endif

#endif  // LOCS_UTIL_CHECK_H_
