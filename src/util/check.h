// Lightweight runtime invariant checks.
//
// The library is exception-free (Google style); API misuse and broken internal
// invariants abort with a readable message instead. LOCS_CHECK is always on,
// LOCS_DCHECK compiles away in release builds so it may guard O(n) validation.
//
// The comparison forms (LOCS_CHECK_LT and friends) print both operand
// values in the failure message ("a < b (5 vs 3)"), formatted into stack
// buffers — no allocation happens on the failure path, so the checks stay
// usable under allocation failure and inside signal-unsafe contexts.

#ifndef LOCS_UTIL_CHECK_H_
#define LOCS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace locs::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "LOCS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void CheckFailedMsg(const char* file, int line,
                                        const char* expr, const char* msg) {
  std::fprintf(stderr, "LOCS_CHECK failed at %s:%d: %s (%s)\n", file, line,
               expr, msg);
  std::fflush(stderr);
  std::abort();
}

/// Formats a comparison operand into a fixed stack buffer. Handles the
/// types the checks actually compare (integers, enums, floats, pointers,
/// bool); anything else prints as "?".
template <typename T>
void FormatCheckOperand(char (&buf)[32], const T& value) {
  using Decayed = std::remove_cv_t<std::remove_reference_t<T>>;
  if constexpr (std::is_same_v<Decayed, bool>) {
    std::snprintf(buf, sizeof(buf), "%s", value ? "true" : "false");
  } else if constexpr (std::is_floating_point_v<Decayed>) {
    std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(value));
  } else if constexpr (std::is_enum_v<Decayed>) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(
                      static_cast<std::underlying_type_t<Decayed>>(value)));
  } else if constexpr (std::is_integral_v<Decayed> &&
                       std::is_signed_v<Decayed>) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else if constexpr (std::is_integral_v<Decayed>) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
  } else if constexpr (std::is_pointer_v<Decayed>) {
    std::snprintf(buf, sizeof(buf), "%p",
                  static_cast<const void*>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "?");
  }
}

template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* file, int line, const char* expr,
                                const A& lhs, const B& rhs) {
  char lhs_buf[32];
  char rhs_buf[32];
  FormatCheckOperand(lhs_buf, lhs);
  FormatCheckOperand(rhs_buf, rhs);
  std::fprintf(stderr, "LOCS_CHECK failed at %s:%d: %s (%s vs %s)\n", file,
               line, expr, lhs_buf, rhs_buf);
  std::fflush(stderr);
  std::abort();
}

}  // namespace locs::internal

#define LOCS_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::locs::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (0)

#define LOCS_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::locs::internal::CheckFailedMsg(__FILE__, __LINE__, #expr, msg);  \
    }                                                                    \
  } while (0)

// Comparison checks: on failure, the message carries both operand values
// in addition to the stringified expression. Operands are evaluated once.
#define LOCS_CHECK_OP_IMPL(a, b, op)                                       \
  do {                                                                     \
    const auto& locs_check_lhs = (a);                                      \
    const auto& locs_check_rhs = (b);                                      \
    if (!(locs_check_lhs op locs_check_rhs)) {                             \
      ::locs::internal::CheckOpFailed(__FILE__, __LINE__, #a " " #op " " #b, \
                                      locs_check_lhs, locs_check_rhs);     \
    }                                                                      \
  } while (0)

#define LOCS_CHECK_LT(a, b) LOCS_CHECK_OP_IMPL(a, b, <)
#define LOCS_CHECK_LE(a, b) LOCS_CHECK_OP_IMPL(a, b, <=)
#define LOCS_CHECK_GT(a, b) LOCS_CHECK_OP_IMPL(a, b, >)
#define LOCS_CHECK_GE(a, b) LOCS_CHECK_OP_IMPL(a, b, >=)
#define LOCS_CHECK_EQ(a, b) LOCS_CHECK_OP_IMPL(a, b, ==)
#define LOCS_CHECK_NE(a, b) LOCS_CHECK_OP_IMPL(a, b, !=)

#ifdef NDEBUG
#define LOCS_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define LOCS_DCHECK(expr) LOCS_CHECK(expr)
#endif

#endif  // LOCS_UTIL_CHECK_H_
