file(REMOVE_RECURSE
  "../bench/bench_micro_exec"
  "../bench/bench_micro_exec.pdb"
  "CMakeFiles/bench_micro_exec.dir/bench_micro_exec.cc.o"
  "CMakeFiles/bench_micro_exec.dir/bench_micro_exec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
