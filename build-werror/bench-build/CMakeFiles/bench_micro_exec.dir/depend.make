# Empty dependencies file for bench_micro_exec.
# This may be replaced when dependencies are built.
