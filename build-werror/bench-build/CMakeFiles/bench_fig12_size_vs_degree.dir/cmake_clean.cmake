file(REMOVE_RECURSE
  "../bench/bench_fig12_size_vs_degree"
  "../bench/bench_fig12_size_vs_degree.pdb"
  "CMakeFiles/bench_fig12_size_vs_degree.dir/bench_fig12_size_vs_degree.cc.o"
  "CMakeFiles/bench_fig12_size_vs_degree.dir/bench_fig12_size_vs_degree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_size_vs_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
