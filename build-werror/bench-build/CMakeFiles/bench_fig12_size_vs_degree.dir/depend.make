# Empty dependencies file for bench_fig12_size_vs_degree.
# This may be replaced when dependencies are built.
