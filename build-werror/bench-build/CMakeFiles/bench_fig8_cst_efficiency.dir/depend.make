# Empty dependencies file for bench_fig8_cst_efficiency.
# This may be replaced when dependencies are built.
