file(REMOVE_RECURSE
  "../bench/bench_fig8_cst_efficiency"
  "../bench/bench_fig8_cst_efficiency.pdb"
  "CMakeFiles/bench_fig8_cst_efficiency.dir/bench_fig8_cst_efficiency.cc.o"
  "CMakeFiles/bench_fig8_cst_efficiency.dir/bench_fig8_cst_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cst_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
