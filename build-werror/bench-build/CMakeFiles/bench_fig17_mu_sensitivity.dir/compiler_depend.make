# Empty compiler generated dependencies file for bench_fig17_mu_sensitivity.
# This may be replaced when dependencies are built.
