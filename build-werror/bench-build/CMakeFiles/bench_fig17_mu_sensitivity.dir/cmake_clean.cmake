file(REMOVE_RECURSE
  "../bench/bench_fig17_mu_sensitivity"
  "../bench/bench_fig17_mu_sensitivity.pdb"
  "CMakeFiles/bench_fig17_mu_sensitivity.dir/bench_fig17_mu_sensitivity.cc.o"
  "CMakeFiles/bench_fig17_mu_sensitivity.dir/bench_fig17_mu_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mu_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
