file(REMOVE_RECURSE
  "CMakeFiles/locs_bench_common.dir/common/datasets.cc.o"
  "CMakeFiles/locs_bench_common.dir/common/datasets.cc.o.d"
  "CMakeFiles/locs_bench_common.dir/common/reporting.cc.o"
  "CMakeFiles/locs_bench_common.dir/common/reporting.cc.o.d"
  "CMakeFiles/locs_bench_common.dir/common/workload.cc.o"
  "CMakeFiles/locs_bench_common.dir/common/workload.cc.o.d"
  "liblocs_bench_common.a"
  "liblocs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
