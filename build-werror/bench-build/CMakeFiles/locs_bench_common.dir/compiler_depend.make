# Empty compiler generated dependencies file for locs_bench_common.
# This may be replaced when dependencies are built.
