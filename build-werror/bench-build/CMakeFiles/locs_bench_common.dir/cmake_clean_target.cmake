file(REMOVE_RECURSE
  "liblocs_bench_common.a"
)
