file(REMOVE_RECURSE
  "../bench/bench_fig16_scalability"
  "../bench/bench_fig16_scalability.pdb"
  "CMakeFiles/bench_fig16_scalability.dir/bench_fig16_scalability.cc.o"
  "CMakeFiles/bench_fig16_scalability.dir/bench_fig16_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
