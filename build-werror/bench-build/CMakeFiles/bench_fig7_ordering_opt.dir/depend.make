# Empty dependencies file for bench_fig7_ordering_opt.
# This may be replaced when dependencies are built.
