file(REMOVE_RECURSE
  "../bench/bench_fig7_ordering_opt"
  "../bench/bench_fig7_ordering_opt.pdb"
  "CMakeFiles/bench_fig7_ordering_opt.dir/bench_fig7_ordering_opt.cc.o"
  "CMakeFiles/bench_fig7_ordering_opt.dir/bench_fig7_ordering_opt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ordering_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
