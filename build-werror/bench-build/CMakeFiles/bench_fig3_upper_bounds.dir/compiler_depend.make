# Empty compiler generated dependencies file for bench_fig3_upper_bounds.
# This may be replaced when dependencies are built.
