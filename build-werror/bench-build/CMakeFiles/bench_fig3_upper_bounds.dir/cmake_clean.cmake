file(REMOVE_RECURSE
  "../bench/bench_fig3_upper_bounds"
  "../bench/bench_fig3_upper_bounds.pdb"
  "CMakeFiles/bench_fig3_upper_bounds.dir/bench_fig3_upper_bounds.cc.o"
  "CMakeFiles/bench_fig3_upper_bounds.dir/bench_fig3_upper_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_upper_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
