# Empty dependencies file for bench_fig9_small_k.
# This may be replaced when dependencies are built.
