file(REMOVE_RECURSE
  "../bench/bench_fig9_small_k"
  "../bench/bench_fig9_small_k.pdb"
  "CMakeFiles/bench_fig9_small_k.dir/bench_fig9_small_k.cc.o"
  "CMakeFiles/bench_fig9_small_k.dir/bench_fig9_small_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_small_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
