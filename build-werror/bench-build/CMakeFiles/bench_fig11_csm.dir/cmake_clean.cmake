file(REMOVE_RECURSE
  "../bench/bench_fig11_csm"
  "../bench/bench_fig11_csm.pdb"
  "CMakeFiles/bench_fig11_csm.dir/bench_fig11_csm.cc.o"
  "CMakeFiles/bench_fig11_csm.dir/bench_fig11_csm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_csm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
