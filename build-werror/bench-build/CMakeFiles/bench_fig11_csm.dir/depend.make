# Empty dependencies file for bench_fig11_csm.
# This may be replaced when dependencies are built.
