file(REMOVE_RECURSE
  "../bench/bench_fig10_arbitrary_vertices"
  "../bench/bench_fig10_arbitrary_vertices.pdb"
  "CMakeFiles/bench_fig10_arbitrary_vertices.dir/bench_fig10_arbitrary_vertices.cc.o"
  "CMakeFiles/bench_fig10_arbitrary_vertices.dir/bench_fig10_arbitrary_vertices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_arbitrary_vertices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
