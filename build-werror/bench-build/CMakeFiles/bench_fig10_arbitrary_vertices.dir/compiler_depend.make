# Empty compiler generated dependencies file for bench_fig10_arbitrary_vertices.
# This may be replaced when dependencies are built.
