# Empty dependencies file for bench_fig14_gamma_csm1.
# This may be replaced when dependencies are built.
