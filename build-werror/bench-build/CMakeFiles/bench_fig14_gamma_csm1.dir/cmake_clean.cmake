file(REMOVE_RECURSE
  "../bench/bench_fig14_gamma_csm1"
  "../bench/bench_fig14_gamma_csm1.pdb"
  "CMakeFiles/bench_fig14_gamma_csm1.dir/bench_fig14_gamma_csm1.cc.o"
  "CMakeFiles/bench_fig14_gamma_csm1.dir/bench_fig14_gamma_csm1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gamma_csm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
