file(REMOVE_RECURSE
  "../bench/bench_fig13_visited"
  "../bench/bench_fig13_visited.pdb"
  "CMakeFiles/bench_fig13_visited.dir/bench_fig13_visited.cc.o"
  "CMakeFiles/bench_fig13_visited.dir/bench_fig13_visited.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_visited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
