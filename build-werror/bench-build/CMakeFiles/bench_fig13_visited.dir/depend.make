# Empty dependencies file for bench_fig13_visited.
# This may be replaced when dependencies are built.
