# Empty compiler generated dependencies file for bench_fig15_gamma_csm2.
# This may be replaced when dependencies are built.
