# Empty compiler generated dependencies file for locs_util.
# This may be replaced when dependencies are built.
