
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/locs_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/core/CMakeFiles/locs_core.dir/bounds.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/bounds.cc.o.d"
  "/root/repo/src/core/common.cc" "src/core/CMakeFiles/locs_core.dir/common.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/common.cc.o.d"
  "/root/repo/src/core/core_index.cc" "src/core/CMakeFiles/locs_core.dir/core_index.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/core_index.cc.o.d"
  "/root/repo/src/core/dynamic_cores.cc" "src/core/CMakeFiles/locs_core.dir/dynamic_cores.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/dynamic_cores.cc.o.d"
  "/root/repo/src/core/filtered.cc" "src/core/CMakeFiles/locs_core.dir/filtered.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/filtered.cc.o.d"
  "/root/repo/src/core/global.cc" "src/core/CMakeFiles/locs_core.dir/global.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/global.cc.o.d"
  "/root/repo/src/core/kcore.cc" "src/core/CMakeFiles/locs_core.dir/kcore.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/kcore.cc.o.d"
  "/root/repo/src/core/local_csm.cc" "src/core/CMakeFiles/locs_core.dir/local_csm.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/local_csm.cc.o.d"
  "/root/repo/src/core/local_cst.cc" "src/core/CMakeFiles/locs_core.dir/local_cst.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/local_cst.cc.o.d"
  "/root/repo/src/core/mcst.cc" "src/core/CMakeFiles/locs_core.dir/mcst.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/mcst.cc.o.d"
  "/root/repo/src/core/multi.cc" "src/core/CMakeFiles/locs_core.dir/multi.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/multi.cc.o.d"
  "/root/repo/src/core/searcher.cc" "src/core/CMakeFiles/locs_core.dir/searcher.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/searcher.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/core/CMakeFiles/locs_core.dir/validate.cc.o" "gcc" "src/core/CMakeFiles/locs_core.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/graph/CMakeFiles/locs_graph.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/util/CMakeFiles/locs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
