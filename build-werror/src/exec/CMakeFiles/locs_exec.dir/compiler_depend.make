# Empty compiler generated dependencies file for locs_exec.
# This may be replaced when dependencies are built.
