
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/batch_runner.cc" "src/exec/CMakeFiles/locs_exec.dir/batch_runner.cc.o" "gcc" "src/exec/CMakeFiles/locs_exec.dir/batch_runner.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/locs_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/locs_exec.dir/executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/core/CMakeFiles/locs_core.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/graph/CMakeFiles/locs_graph.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/util/CMakeFiles/locs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
