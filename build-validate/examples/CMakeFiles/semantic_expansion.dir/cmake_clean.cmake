file(REMOVE_RECURSE
  "CMakeFiles/semantic_expansion.dir/semantic_expansion.cpp.o"
  "CMakeFiles/semantic_expansion.dir/semantic_expansion.cpp.o.d"
  "semantic_expansion"
  "semantic_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
