# Empty compiler generated dependencies file for semantic_expansion.
# This may be replaced when dependencies are built.
