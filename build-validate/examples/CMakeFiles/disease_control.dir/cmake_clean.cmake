file(REMOVE_RECURSE
  "CMakeFiles/disease_control.dir/disease_control.cpp.o"
  "CMakeFiles/disease_control.dir/disease_control.cpp.o.d"
  "disease_control"
  "disease_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disease_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
