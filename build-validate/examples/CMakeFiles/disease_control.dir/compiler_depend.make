# Empty compiler generated dependencies file for disease_control.
# This may be replaced when dependencies are built.
