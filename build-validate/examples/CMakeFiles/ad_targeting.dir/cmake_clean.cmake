file(REMOVE_RECURSE
  "CMakeFiles/ad_targeting.dir/ad_targeting.cpp.o"
  "CMakeFiles/ad_targeting.dir/ad_targeting.cpp.o.d"
  "ad_targeting"
  "ad_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
