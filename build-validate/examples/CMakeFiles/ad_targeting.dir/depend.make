# Empty dependencies file for ad_targeting.
# This may be replaced when dependencies are built.
