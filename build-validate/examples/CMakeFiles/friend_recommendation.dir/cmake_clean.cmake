file(REMOVE_RECURSE
  "CMakeFiles/friend_recommendation.dir/friend_recommendation.cpp.o"
  "CMakeFiles/friend_recommendation.dir/friend_recommendation.cpp.o.d"
  "friend_recommendation"
  "friend_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
