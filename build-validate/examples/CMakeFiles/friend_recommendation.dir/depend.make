# Empty dependencies file for friend_recommendation.
# This may be replaced when dependencies are built.
