file(REMOVE_RECURSE
  "liblocs_estimate.a"
)
