file(REMOVE_RECURSE
  "CMakeFiles/locs_estimate.dir/degree_dist.cc.o"
  "CMakeFiles/locs_estimate.dir/degree_dist.cc.o.d"
  "CMakeFiles/locs_estimate.dir/theorem4.cc.o"
  "CMakeFiles/locs_estimate.dir/theorem4.cc.o.d"
  "liblocs_estimate.a"
  "liblocs_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
