# Empty dependencies file for locs_estimate.
# This may be replaced when dependencies are built.
