
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/barabasi.cc" "src/gen/CMakeFiles/locs_gen.dir/barabasi.cc.o" "gcc" "src/gen/CMakeFiles/locs_gen.dir/barabasi.cc.o.d"
  "/root/repo/src/gen/classic.cc" "src/gen/CMakeFiles/locs_gen.dir/classic.cc.o" "gcc" "src/gen/CMakeFiles/locs_gen.dir/classic.cc.o.d"
  "/root/repo/src/gen/erdos_renyi.cc" "src/gen/CMakeFiles/locs_gen.dir/erdos_renyi.cc.o" "gcc" "src/gen/CMakeFiles/locs_gen.dir/erdos_renyi.cc.o.d"
  "/root/repo/src/gen/lfr.cc" "src/gen/CMakeFiles/locs_gen.dir/lfr.cc.o" "gcc" "src/gen/CMakeFiles/locs_gen.dir/lfr.cc.o.d"
  "/root/repo/src/gen/planted.cc" "src/gen/CMakeFiles/locs_gen.dir/planted.cc.o" "gcc" "src/gen/CMakeFiles/locs_gen.dir/planted.cc.o.d"
  "/root/repo/src/gen/powerlaw.cc" "src/gen/CMakeFiles/locs_gen.dir/powerlaw.cc.o" "gcc" "src/gen/CMakeFiles/locs_gen.dir/powerlaw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-validate/src/graph/CMakeFiles/locs_graph.dir/DependInfo.cmake"
  "/root/repo/build-validate/src/util/CMakeFiles/locs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
