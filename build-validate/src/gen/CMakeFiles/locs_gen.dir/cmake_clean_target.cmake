file(REMOVE_RECURSE
  "liblocs_gen.a"
)
