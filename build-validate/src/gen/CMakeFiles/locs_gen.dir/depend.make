# Empty dependencies file for locs_gen.
# This may be replaced when dependencies are built.
