file(REMOVE_RECURSE
  "CMakeFiles/locs_gen.dir/barabasi.cc.o"
  "CMakeFiles/locs_gen.dir/barabasi.cc.o.d"
  "CMakeFiles/locs_gen.dir/classic.cc.o"
  "CMakeFiles/locs_gen.dir/classic.cc.o.d"
  "CMakeFiles/locs_gen.dir/erdos_renyi.cc.o"
  "CMakeFiles/locs_gen.dir/erdos_renyi.cc.o.d"
  "CMakeFiles/locs_gen.dir/lfr.cc.o"
  "CMakeFiles/locs_gen.dir/lfr.cc.o.d"
  "CMakeFiles/locs_gen.dir/planted.cc.o"
  "CMakeFiles/locs_gen.dir/planted.cc.o.d"
  "CMakeFiles/locs_gen.dir/powerlaw.cc.o"
  "CMakeFiles/locs_gen.dir/powerlaw.cc.o.d"
  "liblocs_gen.a"
  "liblocs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
