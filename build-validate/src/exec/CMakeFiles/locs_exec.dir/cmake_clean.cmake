file(REMOVE_RECURSE
  "CMakeFiles/locs_exec.dir/batch_runner.cc.o"
  "CMakeFiles/locs_exec.dir/batch_runner.cc.o.d"
  "CMakeFiles/locs_exec.dir/executor.cc.o"
  "CMakeFiles/locs_exec.dir/executor.cc.o.d"
  "liblocs_exec.a"
  "liblocs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
