file(REMOVE_RECURSE
  "liblocs_exec.a"
)
