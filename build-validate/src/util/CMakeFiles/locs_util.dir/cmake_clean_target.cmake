file(REMOVE_RECURSE
  "liblocs_util.a"
)
