file(REMOVE_RECURSE
  "CMakeFiles/locs_util.dir/cli.cc.o"
  "CMakeFiles/locs_util.dir/cli.cc.o.d"
  "CMakeFiles/locs_util.dir/failpoint.cc.o"
  "CMakeFiles/locs_util.dir/failpoint.cc.o.d"
  "CMakeFiles/locs_util.dir/rng.cc.o"
  "CMakeFiles/locs_util.dir/rng.cc.o.d"
  "CMakeFiles/locs_util.dir/stats.cc.o"
  "CMakeFiles/locs_util.dir/stats.cc.o.d"
  "CMakeFiles/locs_util.dir/table.cc.o"
  "CMakeFiles/locs_util.dir/table.cc.o.d"
  "liblocs_util.a"
  "liblocs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
