# Empty dependencies file for locs_graph.
# This may be replaced when dependencies are built.
