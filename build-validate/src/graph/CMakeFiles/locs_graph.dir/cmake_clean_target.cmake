file(REMOVE_RECURSE
  "liblocs_graph.a"
)
