file(REMOVE_RECURSE
  "CMakeFiles/locs_graph.dir/builder.cc.o"
  "CMakeFiles/locs_graph.dir/builder.cc.o.d"
  "CMakeFiles/locs_graph.dir/dynamic.cc.o"
  "CMakeFiles/locs_graph.dir/dynamic.cc.o.d"
  "CMakeFiles/locs_graph.dir/graph.cc.o"
  "CMakeFiles/locs_graph.dir/graph.cc.o.d"
  "CMakeFiles/locs_graph.dir/invariants.cc.o"
  "CMakeFiles/locs_graph.dir/invariants.cc.o.d"
  "CMakeFiles/locs_graph.dir/io.cc.o"
  "CMakeFiles/locs_graph.dir/io.cc.o.d"
  "CMakeFiles/locs_graph.dir/ordering.cc.o"
  "CMakeFiles/locs_graph.dir/ordering.cc.o.d"
  "CMakeFiles/locs_graph.dir/statistics.cc.o"
  "CMakeFiles/locs_graph.dir/statistics.cc.o.d"
  "CMakeFiles/locs_graph.dir/subgraph.cc.o"
  "CMakeFiles/locs_graph.dir/subgraph.cc.o.d"
  "CMakeFiles/locs_graph.dir/traversal.cc.o"
  "CMakeFiles/locs_graph.dir/traversal.cc.o.d"
  "liblocs_graph.a"
  "liblocs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
