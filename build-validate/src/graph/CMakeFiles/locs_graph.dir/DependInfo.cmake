
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/locs_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/dynamic.cc" "src/graph/CMakeFiles/locs_graph.dir/dynamic.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/dynamic.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/locs_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/invariants.cc" "src/graph/CMakeFiles/locs_graph.dir/invariants.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/invariants.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/locs_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/ordering.cc" "src/graph/CMakeFiles/locs_graph.dir/ordering.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/ordering.cc.o.d"
  "/root/repo/src/graph/statistics.cc" "src/graph/CMakeFiles/locs_graph.dir/statistics.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/statistics.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/locs_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/subgraph.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/graph/CMakeFiles/locs_graph.dir/traversal.cc.o" "gcc" "src/graph/CMakeFiles/locs_graph.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-validate/src/util/CMakeFiles/locs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
