# Empty dependencies file for locs_core.
# This may be replaced when dependencies are built.
