file(REMOVE_RECURSE
  "liblocs_core.a"
)
