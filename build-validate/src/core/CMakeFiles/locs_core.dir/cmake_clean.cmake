file(REMOVE_RECURSE
  "CMakeFiles/locs_core.dir/baseline.cc.o"
  "CMakeFiles/locs_core.dir/baseline.cc.o.d"
  "CMakeFiles/locs_core.dir/bounds.cc.o"
  "CMakeFiles/locs_core.dir/bounds.cc.o.d"
  "CMakeFiles/locs_core.dir/common.cc.o"
  "CMakeFiles/locs_core.dir/common.cc.o.d"
  "CMakeFiles/locs_core.dir/core_index.cc.o"
  "CMakeFiles/locs_core.dir/core_index.cc.o.d"
  "CMakeFiles/locs_core.dir/dynamic_cores.cc.o"
  "CMakeFiles/locs_core.dir/dynamic_cores.cc.o.d"
  "CMakeFiles/locs_core.dir/filtered.cc.o"
  "CMakeFiles/locs_core.dir/filtered.cc.o.d"
  "CMakeFiles/locs_core.dir/global.cc.o"
  "CMakeFiles/locs_core.dir/global.cc.o.d"
  "CMakeFiles/locs_core.dir/kcore.cc.o"
  "CMakeFiles/locs_core.dir/kcore.cc.o.d"
  "CMakeFiles/locs_core.dir/local_csm.cc.o"
  "CMakeFiles/locs_core.dir/local_csm.cc.o.d"
  "CMakeFiles/locs_core.dir/local_cst.cc.o"
  "CMakeFiles/locs_core.dir/local_cst.cc.o.d"
  "CMakeFiles/locs_core.dir/mcst.cc.o"
  "CMakeFiles/locs_core.dir/mcst.cc.o.d"
  "CMakeFiles/locs_core.dir/multi.cc.o"
  "CMakeFiles/locs_core.dir/multi.cc.o.d"
  "CMakeFiles/locs_core.dir/searcher.cc.o"
  "CMakeFiles/locs_core.dir/searcher.cc.o.d"
  "CMakeFiles/locs_core.dir/validate.cc.o"
  "CMakeFiles/locs_core.dir/validate.cc.o.d"
  "liblocs_core.a"
  "liblocs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
