# Empty compiler generated dependencies file for locs_cli.
# This may be replaced when dependencies are built.
