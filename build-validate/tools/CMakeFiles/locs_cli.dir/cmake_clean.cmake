file(REMOVE_RECURSE
  "CMakeFiles/locs_cli.dir/locs_cli.cc.o"
  "CMakeFiles/locs_cli.dir/locs_cli.cc.o.d"
  "locs_cli"
  "locs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
