# Empty compiler generated dependencies file for check_death_test.
# This may be replaced when dependencies are built.
