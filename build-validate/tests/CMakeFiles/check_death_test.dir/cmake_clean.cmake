file(REMOVE_RECURSE
  "CMakeFiles/check_death_test.dir/check_death_test.cc.o"
  "CMakeFiles/check_death_test.dir/check_death_test.cc.o.d"
  "check_death_test"
  "check_death_test.pdb"
  "check_death_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
