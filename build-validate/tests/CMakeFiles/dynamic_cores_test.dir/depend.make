# Empty dependencies file for dynamic_cores_test.
# This may be replaced when dependencies are built.
