file(REMOVE_RECURSE
  "CMakeFiles/dynamic_cores_test.dir/dynamic_cores_test.cc.o"
  "CMakeFiles/dynamic_cores_test.dir/dynamic_cores_test.cc.o.d"
  "dynamic_cores_test"
  "dynamic_cores_test.pdb"
  "dynamic_cores_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_cores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
