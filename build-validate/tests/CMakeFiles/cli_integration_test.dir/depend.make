# Empty dependencies file for cli_integration_test.
# This may be replaced when dependencies are built.
