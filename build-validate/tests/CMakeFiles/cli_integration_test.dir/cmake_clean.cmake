file(REMOVE_RECURSE
  "CMakeFiles/cli_integration_test.dir/cli_integration_test.cc.o"
  "CMakeFiles/cli_integration_test.dir/cli_integration_test.cc.o.d"
  "cli_integration_test"
  "cli_integration_test.pdb"
  "cli_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
