# Empty compiler generated dependencies file for cross_solver_test.
# This may be replaced when dependencies are built.
