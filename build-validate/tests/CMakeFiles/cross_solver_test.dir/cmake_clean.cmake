file(REMOVE_RECURSE
  "CMakeFiles/cross_solver_test.dir/cross_solver_test.cc.o"
  "CMakeFiles/cross_solver_test.dir/cross_solver_test.cc.o.d"
  "cross_solver_test"
  "cross_solver_test.pdb"
  "cross_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
