file(REMOVE_RECURSE
  "CMakeFiles/local_csm_test.dir/local_csm_test.cc.o"
  "CMakeFiles/local_csm_test.dir/local_csm_test.cc.o.d"
  "local_csm_test"
  "local_csm_test.pdb"
  "local_csm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_csm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
