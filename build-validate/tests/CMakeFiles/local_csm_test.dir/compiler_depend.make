# Empty compiler generated dependencies file for local_csm_test.
# This may be replaced when dependencies are built.
