# Empty dependencies file for core_index_test.
# This may be replaced when dependencies are built.
