file(REMOVE_RECURSE
  "CMakeFiles/core_index_test.dir/core_index_test.cc.o"
  "CMakeFiles/core_index_test.dir/core_index_test.cc.o.d"
  "core_index_test"
  "core_index_test.pdb"
  "core_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
