file(REMOVE_RECURSE
  "CMakeFiles/filtered_test.dir/filtered_test.cc.o"
  "CMakeFiles/filtered_test.dir/filtered_test.cc.o.d"
  "filtered_test"
  "filtered_test.pdb"
  "filtered_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
