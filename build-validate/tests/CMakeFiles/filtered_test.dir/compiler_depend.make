# Empty compiler generated dependencies file for filtered_test.
# This may be replaced when dependencies are built.
