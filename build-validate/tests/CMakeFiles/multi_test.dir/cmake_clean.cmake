file(REMOVE_RECURSE
  "CMakeFiles/multi_test.dir/multi_test.cc.o"
  "CMakeFiles/multi_test.dir/multi_test.cc.o.d"
  "multi_test"
  "multi_test.pdb"
  "multi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
