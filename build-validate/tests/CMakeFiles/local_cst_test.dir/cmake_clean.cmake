file(REMOVE_RECURSE
  "CMakeFiles/local_cst_test.dir/local_cst_test.cc.o"
  "CMakeFiles/local_cst_test.dir/local_cst_test.cc.o.d"
  "local_cst_test"
  "local_cst_test.pdb"
  "local_cst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_cst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
