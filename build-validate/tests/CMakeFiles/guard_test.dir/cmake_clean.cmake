file(REMOVE_RECURSE
  "CMakeFiles/guard_test.dir/guard_test.cc.o"
  "CMakeFiles/guard_test.dir/guard_test.cc.o.d"
  "guard_test"
  "guard_test.pdb"
  "guard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
