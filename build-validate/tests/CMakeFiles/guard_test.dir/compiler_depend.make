# Empty compiler generated dependencies file for guard_test.
# This may be replaced when dependencies are built.
