# Empty dependencies file for mcst_test.
# This may be replaced when dependencies are built.
