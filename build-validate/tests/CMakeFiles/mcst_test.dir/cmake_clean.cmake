file(REMOVE_RECURSE
  "CMakeFiles/mcst_test.dir/mcst_test.cc.o"
  "CMakeFiles/mcst_test.dir/mcst_test.cc.o.d"
  "mcst_test"
  "mcst_test.pdb"
  "mcst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
