file(REMOVE_RECURSE
  "CMakeFiles/kcore_test.dir/kcore_test.cc.o"
  "CMakeFiles/kcore_test.dir/kcore_test.cc.o.d"
  "kcore_test"
  "kcore_test.pdb"
  "kcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
