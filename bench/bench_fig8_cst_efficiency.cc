// Figure 8: efficiency of the CST solutions — mean query time (and std)
// of global, ls-naive, ls-li, and ls-lg across k = s, 2s, ..., 8s where
// s = δ*(G)/10, on all four datasets, with query vertices drawn from the
// k-core (a solution always exists).
//
// Paper's shape: local search beats global search almost everywhere; the
// gap widens as k grows (up to two orders of magnitude); ls-li is the best
// local strategy and its runtime decreases with k; global is flat in k.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "exec/batch_runner.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));

  PrintBanner(
      "Figure 8 — CST efficiency: global vs ls-naive vs ls-li vs ls-lg",
      "local search up to 2 orders of magnitude faster than global; "
      "advantage grows with k; ls-li best and near-monotone decreasing",
      "ls-li mean time far below global for medium/large k on every "
      "dataset; ls-naive between the two; global flat in k");

  for (const std::string& name : StandInNames()) {
    Dataset dataset = LoadStandIn(name);
    const Graph& g = dataset.graph;
    const CoreDecomposition cores = ComputeCores(g);
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCstSolver solver(g, &ordered, &facts);
    // One persistent runner per dataset: the whole k-sweep goes through
    // the same pool + per-worker solvers the serving path uses.
    BatchRunner runner(g, &ordered, &facts);

    const uint32_t s = std::max(1u, cores.degeneracy / 10);
    std::printf("dataset %s: delta*=%u, s=%u\n", name.c_str(),
                cores.degeneracy, s);
    TableWriter table({"k", "global ms", "ls-naive ms", "ls-li ms",
                       "ls-lg ms", "batch ls-li ms/q", "queries"});
    for (uint32_t mult = 1; mult <= 8; ++mult) {
      const uint32_t k = s * mult;
      const auto sample = SampleFromKCore(cores, k, queries, 7000 + k);
      if (sample.empty()) continue;
      std::vector<double> t_global;
      std::vector<double> t_naive;
      std::vector<double> t_li;
      std::vector<double> t_lg;
      for (VertexId v0 : sample) {
        t_global.push_back(TimeMs([&] { GlobalCst(g, v0, k); }));
        CstOptions options;
        options.strategy = Strategy::kNaive;
        t_naive.push_back(TimeMs([&] { solver.Solve(v0, k, options); }));
        options.strategy = Strategy::kLI;
        t_li.push_back(TimeMs([&] { solver.Solve(v0, k, options); }));
        options.strategy = Strategy::kLG;
        t_lg.push_back(TimeMs([&] { solver.Solve(v0, k, options); }));
      }
      CstOptions batch_options;
      batch_options.strategy = Strategy::kLI;
      const BatchTiming batch = TimeCstBatch(runner, sample, k,
                                             batch_options);
      table.Row()
          .Num(uint64_t{k})
          .Cell(MeanStd(Summarize(t_global)))
          .Cell(MeanStd(Summarize(t_naive)))
          .Cell(MeanStd(Summarize(t_li)))
          .Cell(MeanStd(Summarize(t_lg)))
          .Num(batch.per_query_ms, 3)
          .Num(uint64_t{sample.size()});
    }
    table.Print("fig8_" + name);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
