// Closed-loop micro-benchmark of the serving layer's stdio transport:
// in-process sessions over pipe pairs, exactly the locsd --stdio data
// path (FdTransport -> wire parse -> registry -> bound solvers), minus
// process startup. Each client thread issues CST queries in lockstep
// (write one request, block for the reply) against a cached LFR dataset,
// so the measured quantity is serving throughput and round-trip latency,
// not load time.
//
// The sweep runs 1 vs N concurrent sessions (sessions are the serving
// layer's unit of concurrency; the shared registry is read-only, so
// throughput should scale until the machine runs out of cores). Results
// go to stdout as a table and to BENCH_serve.json via the standard
// reporting schema.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "exec/executor.h"
#include "graph/io.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/metrics.h"
#include "serve/registry.h"
#include "serve/result_cache.h"
#include "serve/session.h"
#include "serve/transport.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs::bench {
namespace {

constexpr uint32_t kQueryK = 6;

/// Queries per session; LOCS_BENCH_SCALE multiplies it.
size_t QueriesPerSession() {
  size_t queries = 2000;
  if (const char* scale = std::getenv("LOCS_BENCH_SCALE")) {
    const double factor = std::atof(scale);
    if (factor > 0) {
      queries = static_cast<size_t>(static_cast<double>(queries) * factor);
    }
  }
  return queries;
}

struct SweepPoint {
  unsigned sessions = 0;
  size_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Server-side per-query latency p50 from the metrics histogram: on
  /// the cache-hit path this is the lookup cost alone (no solver run),
  /// which the histogram reports as 0 (sub-microsecond bucket).
  uint64_t server_p50_us = 0;
};

/// One closed-loop client driving one session; returns per-query
/// round-trip latencies in microseconds. `pool` < n restricts queries
/// to the first `pool` vertex ids — the repeat-heavy workload whose
/// working set a result cache absorbs (0 = sample the whole graph).
std::vector<double> RunClient(serve::Transport& transport, uint32_t n,
                              size_t queries, uint64_t seed,
                              uint32_t pool) {
  const uint32_t range = pool == 0 ? n : std::min(pool, n);
  std::vector<double> latencies;
  latencies.reserve(queries);
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  std::string reply;
  for (size_t q = 0; q < queries; ++q) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint32_t vertex = static_cast<uint32_t>((state >> 33) % range);
    const std::string request =
        "CST g " + std::to_string(vertex) + " " + std::to_string(kQueryK) +
        " limit=1";
    WallTimer timer;
    if (!transport.WriteLine(request) ||
        transport.ReadLine(&reply) != serve::Transport::ReadStatus::kLine) {
      std::fprintf(stderr, "client: session died mid-loop\n");
      std::exit(1);
    }
    latencies.push_back(timer.Micros());
  }
  transport.WriteLine("QUIT");
  transport.ReadLine(&reply);
  return latencies;
}

SweepPoint RunSweepPoint(serve::GraphRegistry& registry, Executor& executor,
                         unsigned sessions, uint32_t n, size_t queries,
                         serve::ResultCache* cache = nullptr,
                         uint32_t pool = 0) {
  serve::AdmissionController::Options admit;
  admit.max_inflight = sessions;  // admission off the critical path
  serve::AdmissionController admission(admit);
  serve::ServerMetrics metrics;
  serve::SessionOptions options;
  options.cache = cache;

  struct Wiring {
    int to_server[2];
    int to_client[2];
  };
  std::vector<Wiring> wires(sessions);
  for (Wiring& w : wires) {
    if (::pipe(w.to_server) != 0 || ::pipe(w.to_client) != 0) {
      std::perror("pipe");
      std::exit(1);
    }
  }
  // Server half: one detached session task per pipe pair, the locsd
  // shape. The transports own their fds and close them on session end.
  for (unsigned s = 0; s < sessions; ++s) {
    const int read_fd = wires[s].to_server[0];
    const int write_fd = wires[s].to_client[1];
    const bool submitted = executor.Submit([&, read_fd, write_fd] {
      serve::FdTransport transport(read_fd, write_fd, /*owns_fds=*/true);
      serve::Session session(transport, registry, admission, metrics,
                             options);
      session.Run();
    });
    if (!submitted) {
      std::fprintf(stderr, "executor rejected session task\n");
      std::exit(1);
    }
  }

  // Client half: closed loops, one thread per session.
  std::vector<std::vector<double>> latencies(sessions);
  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      serve::FdTransport transport(wires[s].to_client[0],
                                   wires[s].to_server[1],
                                   /*owns_fds=*/true);
      latencies[s] = RunClient(transport, n, queries, s + 1, pool);
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_ms = wall.Millis();
  while (executor.active_tasks() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<double> all;
  all.reserve(sessions * queries);
  for (const auto& per_session : latencies) {
    all.insert(all.end(), per_session.begin(), per_session.end());
  }
  std::sort(all.begin(), all.end());
  double sum = 0.0;
  for (const double us : all) sum += us;

  SweepPoint point;
  point.sessions = sessions;
  point.queries = all.size();
  point.wall_ms = wall_ms;
  point.qps = static_cast<double>(all.size()) / (wall_ms / 1000.0);
  point.mean_us = sum / static_cast<double>(all.size());
  point.p50_us = all[all.size() / 2];
  point.p95_us = all[(all.size() * 95) / 100];
  const serve::MetricsSnapshot snap = metrics.Snapshot();
  point.cache_hits = snap.cache_hits;
  point.cache_misses = snap.cache_misses;
  point.server_p50_us = snap.LatencyPercentileUs(0.50);
  return point;
}

/// --port mode: the same closed loops, but against an external locsd
/// over TCP through the self-healing RetryClient. Each client thread
/// owns one RetryClient with a generous retry budget, so the run
/// survives a daemon kill+restart mid-loop — the recovery stats in the
/// output show what it cost. Exit is nonzero only when a request
/// ultimately failed after exhausting its attempts.
int TcpMain(uint16_t port, unsigned sessions, size_t queries) {
  const Graph graph = [] {
    gen::LfrParams params;
    params.n = 20000;
    params.min_degree = 5;
    params.max_degree = 80;
    params.min_community = 20;
    params.max_community = 150;
    params.mu = 0.1;
    params.seed = 808;
    return CachedLfrComponent(params, "micro_serve_20k");
  }();
  const uint32_t n = graph.NumVertices();
  const std::string path = CacheDir() + "/micro_serve_20k.lcsg";
  if (!SaveBinary(graph, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  const auto make_options = [port](uint64_t seed) {
    serve::RetryClientOptions options;
    options.port = port;
    options.max_attempts = 64;
    options.request_deadline_ms = 30000;
    options.backoff_base_ms = 10;
    options.backoff_cap_ms = 1000;
    options.breaker_threshold = 4;
    options.breaker_cooldown_ms = 200;
    options.jitter_seed = seed;
    return options;
  };
  // Register the dataset over the wire (idempotent across runs and
  // across a daemon restart mid-run: any thread's retry re-LOADs only
  // if its own request path needs the connection re-established, and a
  // LOAD of an already-registered name refreshes it).
  {
    serve::RetryClient loader(make_options(0));
    std::string reply;
    if (!loader.Request("LOAD g " + path, &reply) ||
        reply.compare(0, 2, "OK") != 0) {
      std::fprintf(stderr, "LOAD failed: %s\n", reply.c_str());
      return 1;
    }
  }

  struct ThreadOutcome {
    size_t ok = 0;
    size_t failed = 0;
    serve::RetryClient::Stats stats;
  };
  std::vector<ThreadOutcome> outcomes(sessions);
  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      serve::RetryClient client(make_options(s + 1));
      uint64_t state = (s + 1) * 0x9e3779b97f4a7c15ULL + 1;
      std::string reply;
      for (size_t q = 0; q < queries; ++q) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint32_t vertex = static_cast<uint32_t>((state >> 33) % n);
        const std::string request = "CST g " + std::to_string(vertex) +
                                    " " + std::to_string(kQueryK) +
                                    " limit=1";
        if (client.Request(request, &reply) &&
            reply.compare(0, 2, "OK") == 0) {
          ++outcomes[s].ok;
        } else {
          ++outcomes[s].failed;
        }
      }
      outcomes[s].stats = client.stats();
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_ms = wall.Millis();

  ThreadOutcome total;
  for (const ThreadOutcome& o : outcomes) {
    total.ok += o.ok;
    total.failed += o.failed;
    total.stats.connects += o.stats.connects;
    total.stats.retries += o.stats.retries;
    total.stats.busy_honored += o.stats.busy_honored;
    total.stats.breaker_opens += o.stats.breaker_opens;
    total.stats.probes += o.stats.probes;
  }
  TableWriter table({"sessions", "ok", "failed", "wall ms", "qps",
                     "connects", "retries", "busy", "breaker", "probes"});
  table.Row()
      .Num(uint64_t{sessions})
      .Num(uint64_t{total.ok})
      .Num(uint64_t{total.failed})
      .Num(wall_ms, 1)
      .Num(static_cast<double>(total.ok + total.failed) /
               (wall_ms / 1000.0),
           0)
      .Num(total.stats.connects)
      .Num(total.stats.retries)
      .Num(total.stats.busy_honored)
      .Num(total.stats.breaker_opens)
      .Num(total.stats.probes);
  table.Print();
  if (total.failed != 0) {
    std::fprintf(stderr, "%zu requests failed after retries\n",
                 total.failed);
    return 1;
  }
  return 0;
}

int Main() {
  PrintBanner(
      "micro_serve: closed-loop stdio-transport serving throughput",
      "not in the paper — service-layer economics of PR 4 (locsd)",
      "qps grows with sessions until cores saturate; p95 stays bounded");

  const Graph graph = [] {
    gen::LfrParams params;
    params.n = 20000;
    params.min_degree = 5;
    params.max_degree = 80;
    params.min_community = 20;
    params.max_community = 150;
    params.mu = 0.1;
    params.seed = 808;
    return CachedLfrComponent(params, "micro_serve_20k");
  }();
  const uint32_t n = graph.NumVertices();
  const std::string path = CacheDir() + "/micro_serve_20k.lcsg";
  if (!SaveBinary(graph, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  serve::GraphRegistry registry;
  IoError io_error;
  bool full = false;
  if (registry.Load("g", path, &io_error, &full) == nullptr) {
    std::fprintf(stderr, "registry load failed: %s\n",
                 io_error.message.c_str());
    return 1;
  }

  const size_t queries = QueriesPerSession();
  const std::vector<unsigned> session_counts = {1, 2, 4};
  const unsigned max_sessions =
      *std::max_element(session_counts.begin(), session_counts.end());
  Executor executor(max_sessions + 1);

  JsonReport report("serve_stdio_closed_loop");
  report.Meta("graph", "lfr_micro_serve_20k");
  report.Meta("vertices", std::to_string(n));
  report.Meta("k", std::to_string(kQueryK));
  report.Meta("queries_per_session", std::to_string(queries));

  TableWriter table({"sessions", "queries", "wall ms", "qps", "mean us",
                     "p50 us", "p95 us"});
  for (const unsigned sessions : session_counts) {
    const SweepPoint p =
        RunSweepPoint(registry, executor, sessions, n, queries);
    table.Row()
        .Num(uint64_t{p.sessions})
        .Num(uint64_t{p.queries})
        .Num(p.wall_ms, 1)
        .Num(p.qps, 0)
        .Num(p.mean_us, 1)
        .Num(p.p50_us, 1)
        .Num(p.p95_us, 1);
    report.AddRow()
        .Num("sessions", p.sessions)
        .Num("queries", static_cast<double>(p.queries))
        .Num("wall_ms", p.wall_ms)
        .Num("qps", p.qps)
        .Num("mean_us", p.mean_us)
        .Num("p50_us", p.p50_us)
        .Num("p95_us", p.p95_us);
  }
  table.Print();

  // Cache-hit path: the same closed loops over a 64-vertex hot set with
  // the server-wide result cache enabled. After the first lap over the
  // pool every query is a hit — no solver run, no admission ticket —
  // so round-trip collapses to pipe transit + LRU lookup and the
  // server-side per-query latency p50 drops into the sub-microsecond
  // histogram bucket (reported as 0).
  constexpr uint32_t kHotPool = 64;
  std::printf("\nrepeat-heavy hot set (%u vertices), result cache on\n",
              kHotPool);
  report.Meta("hot_pool", std::to_string(kHotPool));
  TableWriter cached_table({"sessions", "queries", "qps", "mean us",
                            "p50 us", "hit rate", "server p50 us"});
  for (const unsigned sessions : session_counts) {
    serve::ResultCache cache(1024);
    const SweepPoint p = RunSweepPoint(registry, executor, sessions, n,
                                       queries, &cache, kHotPool);
    const double hit_rate =
        static_cast<double>(p.cache_hits) /
        static_cast<double>(std::max<uint64_t>(
            p.cache_hits + p.cache_misses, 1));
    cached_table.Row()
        .Num(uint64_t{p.sessions})
        .Num(uint64_t{p.queries})
        .Num(p.qps, 0)
        .Num(p.mean_us, 1)
        .Num(p.p50_us, 1)
        .Num(hit_rate, 3)
        .Num(p.server_p50_us);
    report.AddRow()
        .Str("row", "cached")
        .Num("sessions", p.sessions)
        .Num("queries", static_cast<double>(p.queries))
        .Num("wall_ms", p.wall_ms)
        .Num("qps", p.qps)
        .Num("mean_us", p.mean_us)
        .Num("p50_us", p.p50_us)
        .Num("p95_us", p.p95_us)
        .Num("cache_hits", static_cast<double>(p.cache_hits))
        .Num("cache_misses", static_cast<double>(p.cache_misses))
        .Num("cache_hit_rate", hit_rate)
        .Num("server_p50_us", static_cast<double>(p.server_p50_us));
  }
  cached_table.Print();

  const std::string out = "BENCH_serve.json";
  if (!report.Write(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) {
  const locs::CommandLine cli(argc, argv);
  const int64_t port = cli.GetInt("port", -1);
  if (port > 0 && port <= 65535) {
    // External-daemon mode: closed loops over TCP via the RetryClient,
    // built to ride through a daemon kill+restart mid-run.
    return locs::bench::TcpMain(
        static_cast<uint16_t>(port),
        static_cast<unsigned>(cli.GetInt("sessions", 4)),
        static_cast<size_t>(cli.GetInt("queries", 2000)));
  }
  return locs::bench::Main();
}
