// Figure 11: CSM performance — global vs CSM1 (γ → −∞, unconstrained
// first phase) vs CSM2.
//
// Paper's shape: CSM2 performs best; CSM1 with the size constraint
// removed is the slowest (it exhaustively expands before the maxcore
// step); global sits in between. Figure 14/15 then show how γ speeds
// CSM1 up dramatically.

#include <cstdio>
#include <limits>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/local_csm.h"
#include "exec/batch_runner.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 30));

  PrintBanner(
      "Figure 11 — CSM performance: global vs CSM1(γ→−∞) vs CSM2(γ=8)",
      "CSM2 fastest; CSM1 without budget slowest (search space "
      "exhaustively explored); both exact",
      "all three exact (quality 1.0). Against the literal greedy-deletion "
      "global baseline (the paper's §3.2 description) the local solvers "
      "compare as in the paper; our optimized bucket-peel global is a "
      "stronger baseline that the candidate-restricted passes do not beat "
      "per query (see EXPERIMENTS.md)");

  TableWriter table({"network", "global(peel) ms", "global(greedy) ms",
                     "CSM1 ms", "CSM2 ms", "CSM2 batch ms/q",
                     "quality CSM1", "quality CSM2"});
  for (const std::string& name : StandInNames()) {
    Dataset dataset = LoadStandIn(name);
    const Graph& g = dataset.graph;
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCsmSolver solver(g, &ordered, &facts);
    BatchRunner runner(g, &ordered, &facts);

    // Query vertices with a degree floor: degree-2 queries make Theorem 5
    // vacuous (δ(H) <= 1 ⇒ unbounded budget) and degenerate every local
    // CSM into an exhaustive crawl.
    const auto sample = SampleWithDegreeAtLeast(g, 10, queries, 4400);
    std::vector<double> t_global;
    std::vector<double> t_greedy;
    std::vector<double> t_csm1;
    std::vector<double> t_csm2;
    double sum_opt = 0.0;
    double sum_csm1 = 0.0;
    double sum_csm2 = 0.0;
    for (VertexId v0 : sample) {
      Community best;
      t_global.push_back(TimeMs([&] { best = *GlobalCsm(g, v0); }));
      sum_opt += best.min_degree;
      t_greedy.push_back(TimeMs([&] { GreedyGlobalCsm(g, v0); }));

      CsmOptions options;
      options.candidate_rule = CsmCandidateRule::kFromVisited;
      options.gamma = -std::numeric_limits<double>::infinity();
      Community local;
      t_csm1.push_back(TimeMs([&] { local = *solver.Solve(v0, options); }));
      sum_csm1 += local.min_degree;

      options.candidate_rule = CsmCandidateRule::kFromNaive;
      options.gamma = 8.0;  // the Figure-15 sweet spot
      t_csm2.push_back(TimeMs([&] { local = *solver.Solve(v0, options); }));
      sum_csm2 += local.min_degree;
    }
    CsmOptions batch_options;
    batch_options.candidate_rule = CsmCandidateRule::kFromNaive;
    batch_options.gamma = 8.0;
    const BatchTiming batch = TimeCsmBatch(runner, sample, batch_options);
    const double denom = sum_opt > 0 ? sum_opt : 1.0;
    table.Row()
        .Cell(name)
        .Cell(MeanStd(Summarize(t_global)))
        .Cell(MeanStd(Summarize(t_greedy)))
        .Cell(MeanStd(Summarize(t_csm1)))
        .Cell(MeanStd(Summarize(t_csm2)))
        .Num(batch.per_query_ms, 3)
        .Num(sum_csm1 / denom, 3)
        .Num(sum_csm2 / denom, 3);
  }
  table.Print("fig11");
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
