// Figure 14: γ's effect on CSM1 — the quality ratio
//   r_a = Σ δ(H') / Σ δ(H*)
// and the time ratio
//   r_t = Σ t_CSM1 / Σ t_global
// as γ sweeps 1..15, per dataset.
//
// Paper's shape: both r_t and r_a decrease as γ grows, but performance
// drops much faster than quality — there is a critical γ before which a
// tiny quality loss buys a large speedup (the dotted lines at γ≈9..13).

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/local_csm.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 30));

  PrintBanner(
      "Figure 14 — γ's effect on CSM1 (quality ratio r_a, time ratio r_t)",
      "r_t collapses orders of magnitude while r_a stays near 1.0 until a "
      "critical γ; users trade quality for speed smoothly",
      "r_t dropping steeply with γ; r_a staying close to 1.0 for small γ "
      "and degrading slowly");

  for (const std::string& name : StandInNames()) {
    Dataset dataset = LoadStandIn(name);
    const Graph& g = dataset.graph;
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCsmSolver solver(g, &ordered, &facts);

    const auto sample = SampleWithDegreeAtLeast(g, 10, queries, 8800);
    // Global reference: time and optimal goodness per query.
    double global_ms = 0.0;
    double opt_sum = 0.0;
    for (VertexId v0 : sample) {
      Community best;
      global_ms += TimeMs([&] { best = *GlobalCsm(g, v0); });
      opt_sum += best.min_degree;
    }
    if (opt_sum == 0.0) opt_sum = 1.0;

    std::printf("dataset %s\n", name.c_str());
    TableWriter table({"gamma", "r_t", "r_a"});
    for (int gamma = 1; gamma <= 15; ++gamma) {
      CsmOptions options;
      options.candidate_rule = CsmCandidateRule::kFromVisited;
      options.gamma = gamma;
      double local_ms = 0.0;
      double local_sum = 0.0;
      for (VertexId v0 : sample) {
        Community community;
        local_ms += TimeMs([&] { community = *solver.Solve(v0, options); });
        local_sum += community.min_degree;
      }
      table.Row()
          .Num(int64_t{gamma})
          .Num(local_ms / global_ms, 4)
          .Num(local_sum / opt_sum, 4);
    }
    table.Print("fig14_" + name);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
