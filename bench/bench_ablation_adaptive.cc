// Ablation (extension, not a paper figure): the adaptive CST dispatcher.
//
// Figures 8/9 show a crossover — global search wins at very small k
// (|V≥k| ≈ |V|) while local search wins everywhere else. CstAdaptive uses
// the degree-tail fraction to pick a side per query. This bench sweeps k
// from 1 through 8·s and reports global, ls-li, and adaptive means: the
// adaptive column should track the lower envelope of the other two.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/kcore.h"
#include "core/searcher.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 30));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Ablation — adaptive CST dispatch (extension)",
      "n/a (design-choice ablation; motivated by the small-k crossover "
      "in Figures 8 and 9)",
      "the adaptive column tracking min(global, ls-li) at every k, "
      "within dispatch-overhead noise");

  Dataset dataset = LoadStandIn(name);
  CommunitySearcher searcher(std::move(dataset.graph));
  const CoreDecomposition cores = ComputeCores(searcher.graph());
  const uint32_t s = std::max(1u, cores.degeneracy / 10);

  std::vector<uint32_t> ks = {1, 2, 4};
  for (uint32_t mult = 1; mult <= 8; ++mult) ks.push_back(s * mult);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());

  std::printf("dataset %s: delta*=%u, s=%u\n", name.c_str(),
              cores.degeneracy, s);
  TableWriter table({"k", "tail |V>=k|/|V|", "global ms", "ls-li ms",
                     "adaptive ms", "picks"});
  for (uint32_t k : ks) {
    const auto sample = SampleFromKCore(cores, k, queries, 5150 + k);
    if (sample.empty()) continue;
    std::vector<double> t_global;
    std::vector<double> t_li;
    std::vector<double> t_adaptive;
    for (VertexId v0 : sample) {
      t_global.push_back(TimeMs([&] { searcher.CstGlobal(v0, k); }));
      t_li.push_back(TimeMs([&] { searcher.Cst(v0, k); }));
      t_adaptive.push_back(TimeMs([&] { searcher.CstAdaptive(v0, k); }));
    }
    const double tail = searcher.DegreeTailFraction(k);
    table.Row()
        .Num(uint64_t{k})
        .Num(tail, 3)
        .Num(Summarize(t_global).mean, 3)
        .Num(Summarize(t_li).mean, 3)
        .Num(Summarize(t_adaptive).mean, 3)
        .Cell(k > 2 && tail > 0.35 ? "global" : "local");
  }
  table.Print("ablation_adaptive_" + name);
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
