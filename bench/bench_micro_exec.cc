// Microbenchmarks (google-benchmark) for the batch execution engine.
// The headline comparison is per-batch thread management: the seed
// spawned and joined a fresh std::thread set for every SolveCstBatch
// call, so a service answering many small batches paid the spawn cost
// on each one. BM_SpawnJoinThreads reproduces that baseline;
// BM_ExecutorDispatch runs the same trivial job through the persistent
// pool. The BatchRunner benches then measure the end-to-end paths the
// figure drivers and the CLI use.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/local_cst.h"
#include "core/result.h"
#include "exec/batch_runner.h"
#include "exec/executor.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "graph/subgraph.h"

namespace locs {
namespace {

constexpr unsigned kThreads = 4;
constexpr size_t kItems = 64;

const Graph& TestGraph() {
  static const Graph graph = [] {
    gen::LfrParams params;
    params.n = 20000;
    params.min_degree = 5;
    params.max_degree = 80;
    params.min_community = 20;
    params.max_community = 150;
    params.mu = 0.1;
    params.seed = 808;
    return ExtractLargestComponent(gen::Lfr(params).graph).graph;
  }();
  return graph;
}

// Seed behavior: one std::thread spawn + join set per batch.
void BM_SpawnJoinThreads(benchmark::State& state) {
  std::atomic<uint64_t> sink{0};
  for (auto _ : state) {
    std::atomic<size_t> cursor{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        size_t i = 0;
        while ((i = cursor.fetch_add(1, std::memory_order_relaxed)) <
               kItems) {
          sink.fetch_add(i, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kItems));
}
BENCHMARK(BM_SpawnJoinThreads)->Unit(benchmark::kMicrosecond);

// Same job on the persistent pool: dispatch is a mutex hand-off, not a
// clone() per worker per batch.
void BM_ExecutorDispatch(benchmark::State& state) {
  Executor executor(kThreads);
  std::atomic<uint64_t> sink{0};
  // Warm-up spawns the pool outside the timed region, mirroring a
  // long-lived service.
  executor.ParallelFor(1, [](unsigned, size_t, size_t) {});
  for (auto _ : state) {
    executor.ParallelFor(
        kItems,
        [&](unsigned, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            sink.fetch_add(i, std::memory_order_relaxed);
          }
        },
        {.chunk_size = 1});
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kItems));
}
BENCHMARK(BM_ExecutorDispatch)->Unit(benchmark::kMicrosecond);

// Many small CST batches on one persistent BatchRunner — the serving
// pattern where per-batch spawn overhead dominated in the seed. Solver
// scratch (epoch arrays, bucket lists) is reused across batches too.
void BM_SmallCstBatchesPersistent(benchmark::State& state) {
  const Graph& g = TestGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  Executor executor(kThreads);
  BatchRunner runner(g, &ordered, &facts, &executor);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < 8; ++v) queries.push_back(v * 97 % g.NumVertices());
  runner.RunCst(queries, 6);  // warm up pool + per-worker solvers
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.RunCst(queries, 6));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_SmallCstBatchesPersistent)->Unit(benchmark::kMicrosecond);

// The same small batches through the compatibility entry point, which
// builds a fresh BatchRunner (fresh solvers) per call on the shared
// pool — isolates the cost of solver reuse.
void BM_SmallCstBatchesFreshRunner(benchmark::State& state) {
  const Graph& g = TestGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < 8; ++v) queries.push_back(v * 97 % g.NumVertices());
  BatchOptions options;
  options.num_threads = kThreads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveCstBatch(g, &ordered, &facts, queries, 6, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_SmallCstBatchesFreshRunner)->Unit(benchmark::kMicrosecond);

// One large batch (the Fig. 8/16 shape): spawn overhead is amortized
// here, so the persistent pool must simply not regress.
void BM_LargeCstBatch(benchmark::State& state) {
  const Graph& g = TestGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  Executor executor(kThreads);
  BatchRunner runner(g, &ordered, &facts, &executor);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < g.NumVertices(); v += 2) queries.push_back(v);
  runner.RunCst({0}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.RunCst(queries, 6));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_LargeCstBatch)->Unit(benchmark::kMillisecond);

// --- QueryGuard cost and latency-bound benches ---------------------------

// Fig. 8-shaped CST workload with an unlimited guard (the default every
// query now runs under): Spend() is an add + compare + never-taken
// branch. Baseline for the polling-overhead comparison below.
void BM_CstGuardUnlimited(benchmark::State& state) {
  const Graph& g = TestGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < 64; ++v) queries.push_back(v * 131 % g.NumVertices());
  for (auto _ : state) {
    for (VertexId v0 : queries) {
      benchmark::DoNotOptimize(solver.Solve(v0, 6));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_CstGuardUnlimited)->Unit(benchmark::kMillisecond);

// The same workload under a limited guard whose budget is never hit: every
// ~1024 work units the slow poll (clock read + compares) runs. The delta
// against BM_CstGuardUnlimited is the full price of enforcement — the
// acceptance target is < 2%.
void BM_CstGuardPolling(benchmark::State& state) {
  const Graph& g = TestGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < 64; ++v) queries.push_back(v * 131 % g.NumVertices());
  QueryLimits limits;
  limits.deadline_ms = 1e9;  // unreachable, but forces real polling
  limits.work_budget = uint64_t{1} << 60;
  for (auto _ : state) {
    for (VertexId v0 : queries) {
      QueryGuard guard(limits);
      benchmark::DoNotOptimize(solver.Solve(v0, 6, {}, nullptr, &guard));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_CstGuardPolling)->Unit(benchmark::kMillisecond);

// A graph where single CST queries genuinely run for tens of
// milliseconds: a large sparse G(n, p) with k chosen right at the core
// emergence threshold, so local expansion grows huge and then hands off
// to a full-graph peel.
const Graph& AdversarialGraph() {
  static const Graph graph =
      gen::ErdosRenyiGnp(400000, 10.0 / 400000, 7);
  return graph;
}

// Latency-bound check: adversarial CST queries under a 10 ms per-query
// deadline. Reports the slowest single query observed; the acceptance
// bound is ~2x the deadline (one poll interval of work plus the
// best-so-far harvest past expiry).
void BM_CstDeadline10msWorstQuery(benchmark::State& state) {
  const Graph& g = AdversarialGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < 32; ++v) queries.push_back(v * 211 % g.NumVertices());
  constexpr double kDeadlineMs = 10.0;
  double max_query_ms = 0.0;
  uint64_t interrupted = 0, total = 0;
  for (auto _ : state) {
    for (VertexId v0 : queries) {
      QueryLimits limits;
      limits.deadline_ms = kDeadlineMs;
      QueryGuard guard(limits);
      const auto start = std::chrono::steady_clock::now();
      const SearchResult result = solver.Solve(v0, 7, {}, nullptr, &guard);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      max_query_ms = std::max(max_query_ms, ms);
      ++total;
      if (result.Interrupted()) ++interrupted;
      benchmark::DoNotOptimize(result);
    }
  }
  state.counters["max_query_ms"] = max_query_ms;
  state.counters["deadline_ms"] = kDeadlineMs;
  state.counters["interrupted_pct"] =
      total == 0 ? 0.0 : 100.0 * static_cast<double>(interrupted) /
                             static_cast<double>(total);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_CstDeadline10msWorstQuery)->Unit(benchmark::kMillisecond);

// End-to-end batch variant: per-query 10 ms deadlines through BatchRunner,
// the exact configuration `locs_cli batch-cst --query-deadline-ms=10` runs.
void BM_DeadlinedCstBatch(benchmark::State& state) {
  const Graph& g = AdversarialGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  Executor executor(kThreads);
  BatchRunner runner(g, &ordered, &facts, &executor);
  std::vector<VertexId> queries;
  for (VertexId v = 0; v < 32; ++v) queries.push_back(v * 211 % g.NumVertices());
  BatchLimits limits;
  limits.query_deadline_ms = 10.0;
  runner.RunCst({0}, 6);
  uint64_t interrupted = 0, batches = 0;
  for (auto _ : state) {
    const auto batch = runner.RunCst(queries, 7, {}, limits);
    interrupted += batch.stats.CountOf(Termination::kDeadline);
    ++batches;
    benchmark::DoNotOptimize(batch);
  }
  state.counters["interrupted_per_batch"] =
      batches == 0 ? 0.0
                   : static_cast<double>(interrupted) /
                         static_cast<double>(batches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_DeadlinedCstBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace locs

BENCHMARK_MAIN();
