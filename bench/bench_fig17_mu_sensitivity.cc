// Figure 17: sensitivity to the clearness of community structure — LFR
// graphs with mixing parameter μ swept 0.1..0.5: (a) CST global vs local,
// (b) CSM2 vs global, (c) CSM1's r_t / r_a trade-off.
//
// Paper's shape: local search stays significantly better than global for
// every μ; both get slower as μ grows (vaguer communities ⇒ larger
// answers and cores); CSM1's trade-off curve is robust to μ.

#include <cstdio>
#include <limits>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 25));
  const uint32_t k = static_cast<uint32_t>(cli.GetInt("k", 25));
  const auto n = static_cast<VertexId>(
      cli.GetInt("n", 100000) * BenchScaleFromEnv());

  PrintBanner(
      "Figure 17 — sensitivity to community clearness (μ = 0.1 .. 0.5)",
      "ls-li and CSM1 consistently beat global across μ; CSM2 close to "
      "global but still better; everything slows as μ grows",
      "every row: local CST ms < global CST ms and global slows as μ "
      "grows; CSM1 r_t << 1 with r_a >= ~0.85 (γ past the Fig-14 knee); "
      "CSM2 tracks a small multiple of global (see EXPERIMENTS.md on the "
      "global-baseline strength)");

  TableWriter cst_table({"mu", "global CST ms", "ls-li CST ms"});
  TableWriter csm2_table({"mu", "global CSM ms", "CSM2 ms"});
  TableWriter csm1_table({"mu", "r_t", "r_a"});
  for (int mu10 = 1; mu10 <= 5; ++mu10) {
    const double mu = mu10 / 10.0;
    gen::LfrParams params;
    params.n = n;
    params.mu = mu;
    params.min_degree = 5;
    params.max_degree = 100;
    params.min_community = 20;
    params.max_community = 200;
    params.seed = 2700 + mu10;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "lfr_mu%02d_%u", mu10, params.n);
    Graph g = CachedLfrComponent(params, tag);
    const CoreDecomposition cores = ComputeCores(g);
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCstSolver cst_solver(g, &ordered, &facts);
    LocalCsmSolver csm_solver(g, &ordered, &facts);

    const auto cst_sample = SampleFromKCore(cores, k, queries, 2121);
    double g_cst = 0.0;
    double l_cst = 0.0;
    for (VertexId v0 : cst_sample) {
      g_cst += TimeMs([&] { GlobalCst(g, v0, k); });
      l_cst += TimeMs([&] { cst_solver.Solve(v0, k); });
    }
    const auto n_cst =
        static_cast<double>(cst_sample.empty() ? 1 : cst_sample.size());
    cst_table.Row().Num(mu, 1).Num(g_cst / n_cst, 2).Num(l_cst / n_cst, 2);

    const auto csm_sample = SampleWithDegreeAtLeast(g, 10, queries, 2222);
    double g_csm = 0.0;
    double t_csm2 = 0.0;
    double t_csm1 = 0.0;
    double opt_sum = 0.0;
    double csm1_sum = 0.0;
    for (VertexId v0 : csm_sample) {
      Community best;
      g_csm += TimeMs([&] { best = *GlobalCsm(g, v0); });
      opt_sum += best.min_degree;
      CsmOptions options;
      options.candidate_rule = CsmCandidateRule::kFromNaive;
      options.gamma = 6.0;
      t_csm2 += TimeMs([&] { csm_solver.Solve(v0, options); });
      options.candidate_rule = CsmCandidateRule::kFromVisited;
      options.gamma = 7.0;  // near the Figure-14 critical point: large
                            // speedup at a modest quality cost
      Community local;
      t_csm1 += TimeMs([&] { local = *csm_solver.Solve(v0, options); });
      csm1_sum += local.min_degree;
    }
    const auto n_csm = static_cast<double>(csm_sample.size());
    csm2_table.Row()
        .Num(mu, 1)
        .Num(g_csm / n_csm, 2)
        .Num(t_csm2 / n_csm, 2);
    csm1_table.Row()
        .Num(mu, 1)
        .Num(t_csm1 / (g_csm > 0 ? g_csm : 1.0), 4)
        .Num(csm1_sum / (opt_sum > 0 ? opt_sum : 1.0), 4);
  }
  std::printf("(a) CST\n");
  cst_table.Print("fig17a");
  std::printf("\n(b) CSM2\n");
  csm2_table.Print("fig17b");
  std::printf("\n(c) CSM1 trade-off\n");
  csm1_table.Print("fig17c");
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
