// Ablation (extension, not a paper figure): the core-hierarchy index.
//
// For query-heavy deployments (the paper's friend-recommendation and
// advertising motivations), a one-off O(|V|+|E|) index answers CST/CSM in
// output-sensitive time. This bench compares per-query cost of global
// search, local search (ls-li), and the index across k, plus the index
// build cost amortization point.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/core_index.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Ablation — core-hierarchy index vs per-query search (extension)",
      "n/a (extension; the paper precomputes only the adjacency order)",
      "index queries orders of magnitude under both global and local "
      "search; build cost comparable to a handful of global queries");

  Dataset dataset = LoadStandIn(name);
  const Graph& g = dataset.graph;
  const CoreDecomposition cores = ComputeCores(g);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);

  WallTimer build_timer;
  const CoreIndex index(g);
  const double build_ms = build_timer.Millis();
  std::printf("dataset %s: delta*=%u; index build %.1fms, %zu tree nodes\n",
              name.c_str(), cores.degeneracy, build_ms,
              index.NumTreeNodes());

  const uint32_t s = std::max(1u, cores.degeneracy / 10);
  TableWriter table({"k", "global ms", "ls-li ms", "index ms",
                     "answer size"});
  for (uint32_t mult = 1; mult <= 8; ++mult) {
    const uint32_t k = s * mult;
    const auto sample = SampleFromKCore(cores, k, queries, 6200 + k);
    if (sample.empty()) continue;
    std::vector<double> t_global;
    std::vector<double> t_li;
    std::vector<double> t_index;
    std::vector<double> sizes;
    for (VertexId v0 : sample) {
      t_global.push_back(TimeMs([&] { GlobalCst(g, v0, k); }));
      t_li.push_back(TimeMs([&] { solver.Solve(v0, k); }));
      std::vector<VertexId> members;
      t_index.push_back(TimeMs([&] { members = index.CstMembers(v0, k); }));
      sizes.push_back(static_cast<double>(members.size()));
    }
    table.Row()
        .Num(uint64_t{k})
        .Num(Summarize(t_global).mean, 3)
        .Num(Summarize(t_li).mean, 3)
        .Num(Summarize(t_index).mean, 4)
        .Num(Summarize(sizes).mean, 1);
  }
  table.Print("ablation_index_" + name);
  std::printf(
      "\nNote: the index returns the *maximal* community (the k-core "
      "component, like global search); local search may return smaller "
      "valid answers.\n");
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
