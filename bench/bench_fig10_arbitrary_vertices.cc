// Figure 10: CST performance over arbitrary query vertices — vertices
// with degree >= k that are not necessarily inside the k-core, so a valid
// community may not exist.
//
// Paper's shape: ls-li beats global in almost all cases; ls-li's mean
// time *decreases* as k grows (smaller search space), while global is
// oblivious to k and stays flat.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Figure 10 — performance over arbitrary query vertices (deg >= k)",
      "ls-li better than global in almost all cases; ls-li decreases "
      "with k while global stays flat",
      "the ls-li column shrinking as k grows; the global column roughly "
      "constant; some queries have no answer (reported separately)");

  Dataset dataset = LoadStandIn(name);
  const Graph& g = dataset.graph;
  const CoreDecomposition cores = ComputeCores(g);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);

  const uint32_t s = std::max(1u, cores.degeneracy / 10);
  std::printf("dataset %s: delta*=%u, s=%u\n", name.c_str(),
              cores.degeneracy, s);
  TableWriter table(
      {"k", "global ms", "ls-li ms", "answered", "queries"});
  for (uint32_t mult = 1; mult <= 10; ++mult) {
    const uint32_t k = s * mult;
    const auto sample = SampleWithDegreeAtLeast(g, k, queries, 1500 + k);
    if (sample.empty()) continue;
    std::vector<double> t_global;
    std::vector<double> t_li;
    uint64_t answered = 0;
    for (VertexId v0 : sample) {
      bool has = false;
      t_global.push_back(TimeMs([&] { has = GlobalCst(g, v0, k).has_value(); }));
      answered += has ? 1 : 0;
      t_li.push_back(TimeMs([&] { solver.Solve(v0, k); }));
    }
    table.Row()
        .Num(uint64_t{k})
        .Cell(MeanStd(Summarize(t_global)))
        .Cell(MeanStd(Summarize(t_li)))
        .Num(answered)
        .Num(uint64_t{sample.size()});
  }
  table.Print("fig10_" + name);
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
