// Cold-load micro-benchmark for the graph image store (src/store/):
// text-parse-and-index versus mmap zero-copy image load on a >=1M-edge
// power-law graph.
//
// The text leg is exactly what locsd pays on `LOAD` of an edge list —
// LoadEdgeList, GraphFacts (connectivity BFS), the degree-descending
// OrderedAdjacency, and the CoreIndex build. The image leg is `LOADIMG`:
// map the .limg file, verify header + checksum + structural pass, wrap
// ConstArray views. "Cold" means a fresh load into a new process-level
// object graph; the OS page cache is warm for both legs (both files were
// just written), which is the restart scenario the store targets — see
// EXPERIMENTS.md for the methodology.
//
// Flags:
//   --edges=N          approximate half-edge target (default ~2M half
//                      edges => >=1M undirected edges)
//   --repeats=R        timed repetitions per leg (default 5; min is
//                      reported — the steady-state cold-load cost)
//   --min-speedup=X    exit 1 unless text_ms/image_ms >= X (CI gate)
//   --max-image-ms=X   exit 1 unless image_ms <= X (CI gate)
//   --out=PATH         JSON artifact path (default BENCH_load.json)

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/reporting.h"
#include "core/core_index.h"
#include "core/local_cst.h"
#include "gen/barabasi.h"
#include "graph/io.h"
#include "graph/ordering.h"
#include "store/image.h"
#include "util/cli.h"

namespace locs::bench {
namespace {

std::string TempDir() {
  const char* tmp = std::getenv("TMPDIR");
  return tmp != nullptr ? tmp : "/tmp";
}

/// The full text-path cold load: parse + every serving precomputation.
/// Returns the degeneracy so the work cannot be optimized away.
uint32_t TextColdLoad(const std::string& path) {
  const std::optional<Graph> graph = LoadEdgeList(path);
  if (!graph.has_value()) std::abort();
  const GraphFacts facts = GraphFacts::Compute(*graph);
  const OrderedAdjacency ordered(*graph);
  const CoreIndex index(*graph);
  return index.Degeneracy() + facts.max_degree +
         static_cast<uint32_t>(ordered.NumVertices() != 0);
}

uint32_t ImageColdLoad(const std::string& path) {
  IoError error;
  const std::optional<store::LoadedImage> image =
      store::LoadGraphImage(path, &error);
  if (!image.has_value()) {
    std::fprintf(stderr, "image load failed: %s\n", error.message.c_str());
    std::abort();
  }
  return image->index.Degeneracy() + image->facts.max_degree;
}

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto half_edges_target = static_cast<uint64_t>(
      static_cast<double>(cli.GetInt("edges", 2'100'000)) *
      BenchScaleFromEnv());
  const auto repeats =
      static_cast<size_t>(std::max<int64_t>(1, cli.GetInt("repeats", 5)));
  const double min_speedup = cli.GetDouble("min-speedup", 0.0);
  const double max_image_ms = cli.GetDouble("max-image-ms", 0.0);
  const std::string out = cli.GetString("out", "BENCH_load.json");

  // BA with attachment degree 8: |E| ~= 8n, so n = target/16 gives the
  // requested half-edge count (>=1M edges at the default).
  constexpr uint32_t kAttach = 8;
  const auto n = static_cast<VertexId>(half_edges_target / (2 * kAttach));
  PrintBanner(
      "micro_load",
      "no direct paper figure — serving-layer cold-start extension",
      "image load should be orders of magnitude below text parse+index");

  std::printf("generating Barabasi-Albert n=%u m=%u...\n", n, kAttach);
  const Graph graph = gen::BarabasiAlbert(n, kAttach, /*seed=*/42);
  const uint64_t edges = graph.NumEdges();
  std::printf("graph: %u vertices, %" PRIu64 " edges\n", graph.NumVertices(),
              edges);

  const std::string text_path = TempDir() + "/bench_load_graph.txt";
  const std::string image_path = TempDir() + "/bench_load_graph.limg";
  if (!SaveEdgeList(graph, text_path)) std::abort();
  IoError error;
  const double compile_ms = TimeMs([&] {
    if (!store::CompileGraphImage(graph, image_path, &error)) {
      std::fprintf(stderr, "compile failed: %s\n", error.message.c_str());
      std::abort();
    }
  });
  std::printf("image compiled in %.0f ms\n", compile_ms);

  uint32_t sink = 0;
  std::vector<double> text_ms;
  std::vector<double> image_ms;
  for (size_t r = 0; r < repeats; ++r) {
    text_ms.push_back(TimeMs([&] { sink += TextColdLoad(text_path); }));
    image_ms.push_back(TimeMs([&] { sink += ImageColdLoad(image_path); }));
  }
  const double text_best = *std::min_element(text_ms.begin(), text_ms.end());
  const double image_best =
      *std::min_element(image_ms.begin(), image_ms.end());
  const double speedup =
      image_best > 0.0 ? text_best / image_best : text_best / 0.001;

  std::printf("\n%-28s %10s\n", "leg", "best ms");
  std::printf("%-28s %10.1f\n", "text parse+facts+index", text_best);
  std::printf("%-28s %10.2f\n", "image mmap load", image_best);
  std::printf("%-28s %9.0fx\n", "speedup", speedup);
  if (sink == 0) std::printf("(sink %u)\n", sink);  // defeat DCE

  JsonReport report("micro_load");
  report.Meta("generator", "barabasi_albert");
  report.Meta("attach_degree", std::to_string(kAttach));
  report.Meta("repeats", std::to_string(repeats));
  report.AddRow()
      .Num("vertices", static_cast<double>(graph.NumVertices()))
      .Num("edges", static_cast<double>(edges))
      .Num("compile_ms", compile_ms)
      .Num("text_cold_ms", text_best)
      .Num("image_cold_ms", image_best)
      .Num("speedup", speedup);
  if (!report.Write(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  std::remove(text_path.c_str());
  std::remove(image_path.c_str());
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.1fx below required %.1fx\n",
                 speedup, min_speedup);
    return 1;
  }
  if (max_image_ms > 0.0 && image_best > max_image_ms) {
    std::fprintf(stderr, "FAIL: image load %.2f ms above limit %.2f ms\n",
                 image_best, max_image_ms);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
