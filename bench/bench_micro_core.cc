// Microbenchmarks (google-benchmark) for the primitive operations behind
// the paper's algorithms — ablations for the design choices called out in
// DESIGN.md: bucket peeling, the Figure-5 incidence structure, epoch
// resets, induced subgraphs, and end-to-end local vs global queries.

#include <benchmark/benchmark.h>

#include "core/bucket_list.h"
#include "core/dynamic_cores.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "gen/lfr.h"
#include "graph/ordering.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace locs {
namespace {

const Graph& TestGraph() {
  static const Graph graph = [] {
    gen::LfrParams params;
    params.n = 50000;
    params.min_degree = 5;
    params.max_degree = 100;
    params.min_community = 20;
    params.max_community = 200;
    params.mu = 0.1;
    params.seed = 515;
    return ExtractLargestComponent(gen::Lfr(params).graph).graph;
  }();
  return graph;
}

void BM_CoreDecomposition(benchmark::State& state) {
  const Graph& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCores(g));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumVertices()));
}
BENCHMARK(BM_CoreDecomposition)->Unit(benchmark::kMillisecond);

void BM_BfsFullGraph(benchmark::State& state) {
  const Graph& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BfsOrder(g, 0));
  }
}
BENCHMARK(BM_BfsFullGraph)->Unit(benchmark::kMillisecond);

void BM_OrderedAdjacencyBuild(benchmark::State& state) {
  const Graph& g = TestGraph();
  for (auto _ : state) {
    OrderedAdjacency ordered(g);
    benchmark::DoNotOptimize(ordered.Neighbors(0).data());
  }
}
BENCHMARK(BM_OrderedAdjacencyBuild)->Unit(benchmark::kMillisecond);

void BM_EpochBucketListOps(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  EpochBucketList list(n, 64);
  Rng rng(7);
  for (auto _ : state) {
    list.NewEpoch();
    for (uint32_t v = 0; v < n; ++v) list.Insert(v, 1);
    for (uint32_t i = 0; i < n; ++i) {
      const auto v = static_cast<uint32_t>(rng.Below(n));
      if (list.Contains(v) && list.Key(v) < 60) list.Increment(v);
    }
    while (!list.Empty()) benchmark::DoNotOptimize(list.PopMax());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 3);
}
BENCHMARK(BM_EpochBucketListOps)->Arg(1024)->Arg(65536);

void BM_InducedSubgraph(benchmark::State& state) {
  const Graph& g = TestGraph();
  Rng rng(12);
  std::vector<VertexId> members;
  std::vector<uint8_t> used(g.NumVertices(), 0);
  while (members.size() < 2000) {
    const auto v = static_cast<VertexId>(rng.Below(g.NumVertices()));
    if (!used[v]) {
      used[v] = 1;
      members.push_back(v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(InducedSubgraph(g, members));
  }
}
BENCHMARK(BM_InducedSubgraph)->Unit(benchmark::kMicrosecond);

void BM_LocalCstQuery(benchmark::State& state) {
  const Graph& g = TestGraph();
  static const GraphFacts facts = GraphFacts::Compute(g);
  static const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);
  const auto strategy = static_cast<Strategy>(state.range(0));
  CstOptions options;
  options.strategy = strategy;
  Rng rng(5);
  std::vector<VertexId> queries;
  for (int i = 0; i < 64; ++i) {
    VertexId v = 0;
    do {
      v = static_cast<VertexId>(rng.Below(g.NumVertices()));
    } while (g.Degree(v) < 8);
    queries.push_back(v);
  }
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.Solve(queries[qi++ % queries.size()], 8, options));
  }
}
BENCHMARK(BM_LocalCstQuery)
    ->Arg(static_cast<int>(Strategy::kNaive))
    ->Arg(static_cast<int>(Strategy::kLG))
    ->Arg(static_cast<int>(Strategy::kLI))
    ->Unit(benchmark::kMicrosecond);

void BM_DynamicCoreUpdate(benchmark::State& state) {
  // Incremental maintenance throughput: random edge churn on a live
  // graph while core numbers stay exact. Compare against
  // BM_CoreDecomposition (the recompute-from-scratch alternative).
  const Graph& g = TestGraph();
  DynamicCores dynamic(g);
  Rng rng(99);
  std::vector<Edge> removed;
  for (auto _ : state) {
    if (!removed.empty() && rng.Chance(0.5)) {
      const Edge e = removed.back();
      removed.pop_back();
      benchmark::DoNotOptimize(dynamic.AddEdge(e.first, e.second));
    } else {
      const auto u = static_cast<VertexId>(rng.Below(g.NumVertices()));
      if (dynamic.Degree(u) == 0) continue;
      // Remove a random incident edge (remembered for re-insertion so
      // the graph stays near its original density).
      const auto& nbrs = dynamic.Neighbors(u);
      const VertexId v = nbrs[rng.Below(nbrs.size())];
      benchmark::DoNotOptimize(dynamic.RemoveEdge(u, v));
      removed.emplace_back(u, v);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DynamicCoreUpdate)->Unit(benchmark::kMicrosecond);

void BM_GlobalCstQuery(benchmark::State& state) {
  const Graph& g = TestGraph();
  Rng rng(6);
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(rng.Below(g.NumVertices()));
    benchmark::DoNotOptimize(GlobalCst(g, v, 8));
  }
}
BENCHMARK(BM_GlobalCstQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace locs

BENCHMARK_MAIN();
