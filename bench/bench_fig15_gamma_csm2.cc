// Figure 15: γ's effect on CSM2's total run time.
//
// Paper's shape: quality is unaffected by γ in CSM2 (Theorem 7), but run
// time is U-shaped in γ: small γ over-spends in the expansion phase,
// large γ hands a poor δ(H) to the Cnaive/maxcore phase; a mid-range γ
// (typically 4..12) minimizes the total.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/local_csm.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 30));

  PrintBanner(
      "Figure 15 — γ's effect on CSM2 run time (quality unaffected)",
      "per-dataset U-shaped curves with minima around γ = 4..12",
      "total ms varying with γ and a non-extreme γ achieving the minimum "
      "(exact position depends on the network structure)");

  for (const std::string& name : StandInNames()) {
    Dataset dataset = LoadStandIn(name);
    const Graph& g = dataset.graph;
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCsmSolver solver(g, &ordered, &facts);

    const auto sample = SampleWithDegreeAtLeast(g, 10, queries, 9900);
    std::printf("dataset %s\n", name.c_str());
    TableWriter table({"gamma", "total ms", "mean goodness"});
    for (int gamma = 0; gamma <= 16; gamma += 2) {
      CsmOptions options;
      options.candidate_rule = CsmCandidateRule::kFromNaive;
      options.gamma = gamma;
      double total_ms = 0.0;
      double goodness = 0.0;
      for (VertexId v0 : sample) {
        Community community;
        total_ms += TimeMs([&] { community = *solver.Solve(v0, options); });
        goodness += community.min_degree;
      }
      table.Row()
          .Num(int64_t{gamma})
          .Num(total_ms, 1)
          .Num(goodness / static_cast<double>(sample.size()), 3);
    }
    table.Print("fig15_" + name);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
