// Table 2: dataset statistics — vertex/edge counts, δ*(G) (the minimum
// degree of the maximum core), the offline adjacency-ordering cost
// ("Opt.(ms)" column), and the number of queries the exponential baseline
// (Algorithm 1) manages to answer within a bounded budget for
// k = 20, 40, 60.
//
// Paper's finding: the baseline solves almost no queries within a minute
// on any real graph (all zeros except tiny counts), which motivates the
// linear local-search framework.

#include <cstdio>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/baseline.h"
#include "core/kcore.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 20));
  const auto budget = static_cast<uint64_t>(cli.GetInt("budget", 100000));
  // The paper allowed 1 minute per baseline query; scaled-down datasets
  // get a proportionally scaled-down wall budget.
  const double millis = cli.GetDouble("millis", 50.0);

  PrintBanner(
      "Table 2 — dataset statistics and baseline feasibility",
      "4 SNAP graphs; δ*(G) 52..360; ordering precompute 0.7..2.4s; the "
      "Algorithm-1 baseline answers almost no queries within 1 minute",
      "stand-in graphs show the same pattern: nontrivial δ*, cheap "
      "one-off ordering, and a baseline that mostly exhausts its budget");

  TableWriter table({"network", "#vertex", "#edge", "delta*(G)", "opt(ms)",
                     "k=20 solved", "k=40 solved", "k=60 solved",
                     "of queries"});
  for (const std::string& name : StandInNames()) {
    Dataset dataset = LoadStandIn(name);
    const Graph& g = dataset.graph;
    const CoreDecomposition cores = ComputeCores(g);

    WallTimer timer;
    OrderedAdjacency ordered(g);
    const double opt_ms = timer.Millis();

    uint64_t solved[3] = {0, 0, 0};
    const uint32_t ks[3] = {20, 40, 60};
    for (int i = 0; i < 3; ++i) {
      const uint32_t k = ks[i];
      const auto sample =
          SampleWithDegreeAtLeast(g, k, queries, 900 + k);
      for (VertexId v0 : sample) {
        const BaselineResult result = BaselineCst(g, v0, k, budget, millis);
        if (!result.budget_exhausted) ++solved[i];
      }
    }
    table.Row()
        .Cell(dataset.name)
        .Cell(FormatCount(g.NumVertices()))
        .Cell(FormatCount(g.NumEdges()))
        .Num(uint64_t{cores.degeneracy})
        .Num(opt_ms, 1)
        .Num(solved[0])
        .Num(solved[1])
        .Num(solved[2])
        .Num(uint64_t{queries});
  }
  table.Print("table2");
  std::printf(
      "\n'solved' counts queries the baseline finished (either way) within "
      "%.0fms / %lu expansion steps; exhausted budgets mirror the paper's "
      "cannot-answer-within-a-minute entries.\n",
      millis, static_cast<unsigned long>(budget));
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
