// Figure 13: the rationale of local search — answer size and number of
// visited vertices per CST solver, across k, on the DBLP stand-in.
//
// Paper's shape: local search produces answers up to an order of
// magnitude smaller than global search (which returns the maximal k-core
// component) and visits up to two orders of magnitude fewer vertices.
//
// The visited columns are read from the per-phase obs::QueryTelemetry
// counters carried by SearchResult (TotalVisited over the phase
// breakdown), and every query cross-checks that total against the legacy
// QueryStats projection — a mismatch is a telemetry-accounting bug and
// fails the bench.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "obs/trace_sink.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

/// Dies unless the telemetry totals reproduce the legacy QueryStats
/// counters exactly (the two are one accounting, not two).
void CheckConsistent(const obs::QueryTelemetry& telemetry,
                     const QueryStats& stats, const char* solver) {
  if (telemetry.TotalVisited() == stats.visited_vertices &&
      telemetry.TotalScanned() == stats.scanned_edges) {
    return;
  }
  std::fprintf(stderr,
               "fig13: telemetry/stats divergence in %s: "
               "visited %llu vs %llu, scanned %llu vs %llu\n",
               solver,
               static_cast<unsigned long long>(telemetry.TotalVisited()),
               static_cast<unsigned long long>(stats.visited_vertices),
               static_cast<unsigned long long>(telemetry.TotalScanned()),
               static_cast<unsigned long long>(stats.scanned_edges));
  std::exit(1);
}

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Figure 13 — answer size and visited vertices per CST solver",
      "local answers ~10x smaller than global; local visits up to 100x "
      "fewer vertices; ls-li/ls-lg the smallest",
      "answer-size and visited columns for ls-li well below global; "
      "ls-naive in between");

  Dataset dataset = LoadStandIn(name);
  const Graph& g = dataset.graph;
  const CoreDecomposition cores = ComputeCores(g);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);

  // Artifacts: the BENCH_*.json report CI uploads, plus one JSONL trace
  // line per local query (--trace= overrides the path, empty disables).
  JsonReport report("fig13_visited");
  report.Meta("dataset", name);
  report.Meta("queries", std::to_string(queries));
  const std::string trace_path =
      cli.GetString("trace", "TRACE_fig13.jsonl");
  std::optional<obs::TraceSink> trace;
  obs::AggregateRecorder aggregate;
  if (!trace_path.empty()) {
    trace.emplace(trace_path);
    if (!trace->ok()) {
      // An unopenable trace file is a hard error — silently running
      // untraced would upload an artifact that looks complete but lies.
      std::fprintf(stderr, "fig13: could not open trace file '%s'\n",
                   trace_path.c_str());
      return 1;
    }
    solver.set_recorder(&*trace);
  } else {
    // No trace requested: still attach a timing-enabled sink so the
    // phase-duration columns below are measured, not zero.
    solver.set_recorder(&aggregate);
  }

  const uint32_t s = std::max(1u, cores.degeneracy / 10);
  TableWriter size_table({"k", "global size", "ls-naive size",
                          "ls-li size", "ls-lg size"});
  TableWriter visit_table({"k", "global visited", "ls-naive visited",
                           "ls-li visited", "ls-lg visited"});
  // Where the local solvers' visited effort goes: expansion-phase share
  // versus the Algorithm-2-line-6 global fallback (core decomposition +
  // connectivity phases), averaged over the ls-li queries — both as
  // visited-vertex counts (machine-independent) and as measured phase
  // time (the hot-path claim).
  TableWriter phase_table({"k", "ls-li expansion", "exp us", "ls-li fallback",
                           "fb us", "fallback rate"});
  double total_expansion_us = 0.0;
  double total_fallback_us = 0.0;
  for (uint32_t mult = 1; mult <= 8; ++mult) {
    const uint32_t k = s * mult;
    const auto sample = SampleFromKCore(cores, k, queries, 330 + k);
    if (sample.empty()) continue;
    std::vector<double> sizes[4];
    std::vector<double> visits[4];
    std::vector<double> expansion_visits;
    std::vector<double> fallback_visits;
    std::vector<double> expansion_us;
    std::vector<double> fallback_us;
    uint64_t fallbacks = 0;
    for (VertexId v0 : sample) {
      QueryStats stats;
      SearchResult result = GlobalCst(g, v0, k, &stats);
      CheckConsistent(result.telemetry, stats, "global");
      sizes[0].push_back(static_cast<double>(stats.answer_size));
      visits[0].push_back(
          static_cast<double>(result.telemetry.TotalVisited()));
      const Strategy strategies[3] = {Strategy::kNaive, Strategy::kLI,
                                      Strategy::kLG};
      for (int i = 0; i < 3; ++i) {
        CstOptions options;
        options.strategy = strategies[i];
        if (trace.has_value()) {
          trace->Annotate(std::string(StrategyName(strategies[i])) +
                          " k=" + std::to_string(k));
        }
        result = solver.Solve(v0, k, options, &stats);
        CheckConsistent(result.telemetry, stats, "local");
        sizes[i + 1].push_back(static_cast<double>(stats.answer_size));
        visits[i + 1].push_back(
            static_cast<double>(result.telemetry.TotalVisited()));
        if (strategies[i] == Strategy::kLI) {
          const obs::QueryTelemetry& t = result.telemetry;
          expansion_visits.push_back(static_cast<double>(
              t[obs::Phase::kExpansion].vertices_visited +
              t[obs::Phase::kAdmission].vertices_visited));
          fallback_visits.push_back(static_cast<double>(
              t[obs::Phase::kCoreDecomposition].vertices_visited +
              t[obs::Phase::kConnectivity].vertices_visited));
          expansion_us.push_back(
              static_cast<double>(
                  t[obs::Phase::kExpansion].duration_ns +
                  t[obs::Phase::kAdmission].duration_ns) /
              1000.0);
          fallback_us.push_back(
              static_cast<double>(
                  t[obs::Phase::kCoreDecomposition].duration_ns +
                  t[obs::Phase::kConnectivity].duration_ns) /
              1000.0);
          fallbacks += t.used_global_fallback ? 1 : 0;
        }
      }
    }
    size_table.Row()
        .Num(uint64_t{k})
        .Num(Summarize(sizes[0]).mean, 1)
        .Num(Summarize(sizes[1]).mean, 1)
        .Num(Summarize(sizes[2]).mean, 1)
        .Num(Summarize(sizes[3]).mean, 1);
    visit_table.Row()
        .Num(uint64_t{k})
        .Num(Summarize(visits[0]).mean, 1)
        .Num(Summarize(visits[1]).mean, 1)
        .Num(Summarize(visits[2]).mean, 1)
        .Num(Summarize(visits[3]).mean, 1);
    phase_table.Row()
        .Num(uint64_t{k})
        .Num(Summarize(expansion_visits).mean, 1)
        .Num(Summarize(expansion_us).mean, 2)
        .Num(Summarize(fallback_visits).mean, 1)
        .Num(Summarize(fallback_us).mean, 2)
        .Num(static_cast<double>(fallbacks) /
                 static_cast<double>(sample.size()),
             3);
    for (const double us : expansion_us) total_expansion_us += us;
    for (const double us : fallback_us) total_fallback_us += us;
    report.AddRow()
        .Num("k", k)
        .Num("samples", static_cast<double>(sample.size()))
        .Num("global_size", Summarize(sizes[0]).mean)
        .Num("naive_size", Summarize(sizes[1]).mean)
        .Num("li_size", Summarize(sizes[2]).mean)
        .Num("lg_size", Summarize(sizes[3]).mean)
        .Num("global_visited", Summarize(visits[0]).mean)
        .Num("naive_visited", Summarize(visits[1]).mean)
        .Num("li_visited", Summarize(visits[2]).mean)
        .Num("lg_visited", Summarize(visits[3]).mean)
        .Num("li_expansion_visited", Summarize(expansion_visits).mean)
        .Num("li_fallback_visited", Summarize(fallback_visits).mean)
        .Num("li_expansion_us", Summarize(expansion_us).mean)
        .Num("li_fallback_us", Summarize(fallback_us).mean)
        .Num("li_fallback_rate",
             static_cast<double>(fallbacks) /
                 static_cast<double>(sample.size()));
  }
  // Whole-run phase totals: the before/after comparison point for the
  // hot-path work (run the bench on two builds and diff these).
  report.AddRow()
      .Str("row", "phase_totals")
      .Num("li_expansion_total_us", total_expansion_us)
      .Num("li_fallback_total_us", total_fallback_us);
  std::printf("(a) answer size, dataset %s\n", name.c_str());
  size_table.Print("fig13a_" + name);
  std::printf("\n(b) visited vertices, dataset %s\n", name.c_str());
  visit_table.Print("fig13b_" + name);
  std::printf("\n(c) ls-li visited by phase, dataset %s\n", name.c_str());
  phase_table.Print("fig13c_" + name);
  const std::string out = "BENCH_fig13.json";
  if (report.Write(out)) {
    std::printf("\nreport: %s", out.c_str());
    if (trace.has_value() && trace->ok()) {
      std::printf("; trace: %s", trace_path.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
