// Figure 13: the rationale of local search — answer size and number of
// visited vertices per CST solver, across k, on the DBLP stand-in.
//
// Paper's shape: local search produces answers up to an order of
// magnitude smaller than global search (which returns the maximal k-core
// component) and visits up to two orders of magnitude fewer vertices.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Figure 13 — answer size and visited vertices per CST solver",
      "local answers ~10x smaller than global; local visits up to 100x "
      "fewer vertices; ls-li/ls-lg the smallest",
      "answer-size and visited columns for ls-li well below global; "
      "ls-naive in between");

  Dataset dataset = LoadStandIn(name);
  const Graph& g = dataset.graph;
  const CoreDecomposition cores = ComputeCores(g);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCstSolver solver(g, &ordered, &facts);

  const uint32_t s = std::max(1u, cores.degeneracy / 10);
  TableWriter size_table({"k", "global size", "ls-naive size",
                          "ls-li size", "ls-lg size"});
  TableWriter visit_table({"k", "global visited", "ls-naive visited",
                           "ls-li visited", "ls-lg visited"});
  for (uint32_t mult = 1; mult <= 8; ++mult) {
    const uint32_t k = s * mult;
    const auto sample = SampleFromKCore(cores, k, queries, 330 + k);
    if (sample.empty()) continue;
    std::vector<double> sizes[4];
    std::vector<double> visits[4];
    for (VertexId v0 : sample) {
      QueryStats stats;
      GlobalCst(g, v0, k, &stats);
      sizes[0].push_back(static_cast<double>(stats.answer_size));
      visits[0].push_back(static_cast<double>(stats.visited_vertices));
      const Strategy strategies[3] = {Strategy::kNaive, Strategy::kLI,
                                      Strategy::kLG};
      for (int i = 0; i < 3; ++i) {
        CstOptions options;
        options.strategy = strategies[i];
        solver.Solve(v0, k, options, &stats);
        sizes[i + 1].push_back(static_cast<double>(stats.answer_size));
        visits[i + 1].push_back(
            static_cast<double>(stats.visited_vertices));
      }
    }
    size_table.Row()
        .Num(uint64_t{k})
        .Num(Summarize(sizes[0]).mean, 1)
        .Num(Summarize(sizes[1]).mean, 1)
        .Num(Summarize(sizes[2]).mean, 1)
        .Num(Summarize(sizes[3]).mean, 1);
    visit_table.Row()
        .Num(uint64_t{k})
        .Num(Summarize(visits[0]).mean, 1)
        .Num(Summarize(visits[1]).mean, 1)
        .Num(Summarize(visits[2]).mean, 1)
        .Num(Summarize(visits[3]).mean, 1);
  }
  std::printf("(a) answer size, dataset %s\n", name.c_str());
  size_table.Print("fig13a_" + name);
  std::printf("\n(b) visited vertices, dataset %s\n", name.c_str());
  visit_table.Print("fig13b_" + name);
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
