#include "common/reporting.h"

#include <cstdio>

#include "util/json.h"

namespace locs::bench {

namespace {

using json::Number;
using json::Quote;

void AppendPairs(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const char* indent) {
  for (size_t i = 0; i < pairs.size(); ++i) {
    *out += indent;
    *out += Quote(pairs[i].first);
    *out += ": ";
    *out += pairs[i].second;
    if (i + 1 < pairs.size()) *out += ',';
    *out += '\n';
  }
}

}  // namespace

JsonReport::Row& JsonReport::Row::Num(const std::string& key, double value) {
  fields_.emplace_back(key, Number(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Str(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, Quote(value));
  return *this;
}

JsonReport& JsonReport::Meta(const std::string& key,
                             const std::string& value) {
  meta_.emplace_back(key, Quote(value));
  return *this;
}

JsonReport::Row& JsonReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

std::string JsonReport::Render() const {
  std::string out = "{\n";
  out += "  \"experiment\": " + Quote(experiment_) + ",\n";
  out += "  \"meta\": {\n";
  AppendPairs(&out, meta_, "    ");
  out += "  },\n";
  out += "  \"rows\": [\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += "    {\n";
    AppendPairs(&out, rows_[r].fields_, "      ");
    out += (r + 1 < rows_.size()) ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool JsonReport::Write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = Render();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

void PrintBanner(const std::string& experiment, const std::string& paper,
                 const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports : %s\n", paper.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

double TimeMs(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  return timer.Millis();
}

std::string MeanStd(const Summary& summary, int digits) {
  return FormatDouble(summary.mean, digits) + "±" +
         FormatDouble(summary.stddev, digits);
}

}  // namespace locs::bench
