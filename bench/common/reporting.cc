#include "common/reporting.h"

#include <cstdio>

namespace locs::bench {

void PrintBanner(const std::string& experiment, const std::string& paper,
                 const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports : %s\n", paper.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

double TimeMs(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  return timer.Millis();
}

std::string MeanStd(const Summary& summary, int digits) {
  return FormatDouble(summary.mean, digits) + "±" +
         FormatDouble(summary.stddev, digits);
}

}  // namespace locs::bench
