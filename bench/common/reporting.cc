#include "common/reporting.h"

#include <cmath>
#include <cstdio>

namespace locs::bench {

namespace {

/// JSON string literal with the escapes the grammar requires.
std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Shortest-round-trip number rendering; JSON has no NaN/Inf, so
/// non-finite values degrade to null.
std::string Number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  // Integral values (counts, sizes) read better undecorated.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == value) {
      return shorter;
    }
  }
  return buffer;
}

void AppendPairs(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const char* indent) {
  for (size_t i = 0; i < pairs.size(); ++i) {
    *out += indent;
    *out += Quote(pairs[i].first);
    *out += ": ";
    *out += pairs[i].second;
    if (i + 1 < pairs.size()) *out += ',';
    *out += '\n';
  }
}

}  // namespace

JsonReport::Row& JsonReport::Row::Num(const std::string& key, double value) {
  fields_.emplace_back(key, Number(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Str(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, Quote(value));
  return *this;
}

JsonReport& JsonReport::Meta(const std::string& key,
                             const std::string& value) {
  meta_.emplace_back(key, Quote(value));
  return *this;
}

JsonReport::Row& JsonReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

std::string JsonReport::Render() const {
  std::string out = "{\n";
  out += "  \"experiment\": " + Quote(experiment_) + ",\n";
  out += "  \"meta\": {\n";
  AppendPairs(&out, meta_, "    ");
  out += "  },\n";
  out += "  \"rows\": [\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += "    {\n";
    AppendPairs(&out, rows_[r].fields_, "      ");
    out += (r + 1 < rows_.size()) ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool JsonReport::Write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = Render();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

void PrintBanner(const std::string& experiment, const std::string& paper,
                 const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports : %s\n", paper.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

double TimeMs(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  return timer.Millis();
}

std::string MeanStd(const Summary& summary, int digits) {
  return FormatDouble(summary.mean, digits) + "±" +
         FormatDouble(summary.stddev, digits);
}

}  // namespace locs::bench
