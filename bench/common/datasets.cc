#include "common/datasets.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>

#include "graph/io.h"
#include "graph/traversal.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/timer.h"

namespace locs::bench {

namespace {

/// Recipe for one stand-in. Base sizes are ~5-20x below the SNAP
/// originals; relative density ordering follows the paper's Table 2
/// (LiveJournal densest and largest, Youtube sparse, Berkeley web-like
/// with tight clusters, DBLP moderate).
struct Recipe {
  const char* name;
  VertexId n;
  double degree_exponent;
  uint32_t min_degree;
  uint32_t max_degree;
  uint32_t min_community;
  uint32_t max_community;
  double mu;
  uint64_t seed;
};

// Degree exponents are steeper than the LFR default (α = 2) so that
// |V≥k| decays with k the way real SNAP graphs do — that decay is what
// gives local search its |V≥k| ≪ |V| advantage (paper §4.2.3, Figure 3).
constexpr Recipe kRecipes[] = {
    {"dblp-sim", 80000, 2.5, 4, 150, 20, 300, 0.10, 101},
    {"berkeley-sim", 100000, 2.2, 5, 300, 20, 400, 0.05, 202},
    {"youtube-sim", 150000, 2.8, 2, 120, 15, 200, 0.30, 303},
    {"livejournal-sim", 200000, 2.3, 6, 350, 30, 500, 0.10, 404},
};

const Recipe& FindRecipe(const std::string& name) {
  for (const Recipe& recipe : kRecipes) {
    if (name == recipe.name) return recipe;
  }
  LOCS_CHECK_MSG(false, "unknown dataset name");
  __builtin_unreachable();
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string ScaleTag() {
  const double scale = BenchScaleFromEnv();
  if (scale == 1.0) return "";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "_x%.2f", scale);
  return buf;
}

Graph GenerateComponent(const gen::LfrParams& params) {
  const gen::LfrGraph lfr = gen::Lfr(params);
  return ExtractLargestComponent(lfr.graph).graph;
}

Graph LoadOrGenerate(const std::string& cache_path,
                     const gen::LfrParams& params) {
  if (FileExists(cache_path)) {
    auto loaded = LoadBinary(cache_path);
    if (loaded.has_value()) return std::move(*loaded);
    std::fprintf(stderr, "[datasets] cache %s unreadable; regenerating\n",
                 cache_path.c_str());
  }
  WallTimer timer;
  Graph graph = GenerateComponent(params);
  std::fprintf(stderr,
               "[datasets] generated %s: %u vertices, %lu edges (%.1fs)\n",
               cache_path.c_str(), graph.NumVertices(),
               static_cast<unsigned long>(graph.NumEdges()),
               timer.Seconds());
  if (!SaveBinary(graph, cache_path)) {
    std::fprintf(stderr, "[datasets] warning: could not cache %s\n",
                 cache_path.c_str());
  }
  return graph;
}

}  // namespace

std::string CacheDir() {
  const std::string dir = "data";
  ::mkdir(dir.c_str(), 0755);  // best-effort; EEXIST is fine
  return dir;
}

const std::vector<std::string>& StandInNames() {
  static const std::vector<std::string> names = {
      "dblp-sim", "berkeley-sim", "youtube-sim", "livejournal-sim"};
  return names;
}

Dataset LoadStandIn(const std::string& name) {
  const Recipe& recipe = FindRecipe(name);
  const double scale = BenchScaleFromEnv();

  gen::LfrParams params;
  params.n = static_cast<VertexId>(
      std::lround(static_cast<double>(recipe.n) * scale));
  params.degree_exponent = recipe.degree_exponent;
  params.min_degree = recipe.min_degree;
  params.max_degree = recipe.max_degree;
  params.min_community = recipe.min_community;
  params.max_community = recipe.max_community;
  params.mu = recipe.mu;
  params.seed = recipe.seed;

  const std::string path = CacheDir() + "/" + name + ScaleTag() + ".lcsg";
  Dataset dataset;
  dataset.name = name;
  dataset.graph = LoadOrGenerate(path, params);
  return dataset;
}

std::vector<Dataset> LoadAllStandIns() {
  std::vector<Dataset> all;
  for (const std::string& name : StandInNames()) {
    all.push_back(LoadStandIn(name));
  }
  return all;
}

Graph CachedLfrComponent(const gen::LfrParams& params,
                         const std::string& cache_tag) {
  const std::string path = CacheDir() + "/" + cache_tag + ".lcsg";
  return LoadOrGenerate(path, params);
}

}  // namespace locs::bench
