// Reporting helpers shared by the benchmark drivers: experiment banners
// that state what the paper reports and what to look for, and timing
// utilities.

#ifndef LOCS_BENCH_COMMON_REPORTING_H_
#define LOCS_BENCH_COMMON_REPORTING_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs::bench {

/// Prints a standard banner: experiment id, what the paper's figure/table
/// shows, and what shape to expect from this run.
void PrintBanner(const std::string& experiment, const std::string& paper,
                 const std::string& expectation);

/// Runs `fn` once and returns elapsed milliseconds.
double TimeMs(const std::function<void()>& fn);

/// Formats "mean±std" with the given decimals.
std::string MeanStd(const Summary& summary, int digits = 2);

/// Machine-readable benchmark output: one experiment, flat metadata, and
/// a list of uniform result rows, written as a JSON file (the BENCH_*.json
/// artifacts CI and plotting scripts consume). Usage:
///
///   JsonReport report("serve_stdio_closed_loop");
///   report.Meta("graph", "lfr_20k");
///   report.AddRow().Num("sessions", 1).Num("qps", qps);
///   report.Write("BENCH_serve.json");
class JsonReport {
 public:
  /// One result row: ordered key -> number/string fields.
  class Row {
   public:
    Row& Num(const std::string& key, double value);
    Row& Str(const std::string& key, const std::string& value);

   private:
    friend class JsonReport;
    // (key, rendered JSON value) — numbers stay unquoted, strings are
    // escaped and quoted at insertion time.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonReport(std::string experiment)
      : experiment_(std::move(experiment)) {}

  JsonReport& Meta(const std::string& key, const std::string& value);
  Row& AddRow();

  /// Serializes the report (pretty-printed, stable field order).
  std::string Render() const;

  /// Writes Render() to `path`; false on IO failure.
  bool Write(const std::string& path) const;

 private:
  std::string experiment_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Row> rows_;
};

}  // namespace locs::bench

#endif  // LOCS_BENCH_COMMON_REPORTING_H_
