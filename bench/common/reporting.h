// Reporting helpers shared by the benchmark drivers: experiment banners
// that state what the paper reports and what to look for, and timing
// utilities.

#ifndef LOCS_BENCH_COMMON_REPORTING_H_
#define LOCS_BENCH_COMMON_REPORTING_H_

#include <functional>
#include <string>

#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs::bench {

/// Prints a standard banner: experiment id, what the paper's figure/table
/// shows, and what shape to expect from this run.
void PrintBanner(const std::string& experiment, const std::string& paper,
                 const std::string& expectation);

/// Runs `fn` once and returns elapsed milliseconds.
double TimeMs(const std::function<void()>& fn);

/// Formats "mean±std" with the given decimals.
std::string MeanStd(const Summary& summary, int digits = 2);

}  // namespace locs::bench

#endif  // LOCS_BENCH_COMMON_REPORTING_H_
