#include "common/workload.h"

#include "util/rng.h"

namespace locs::bench {

namespace {

std::vector<VertexId> SampleFromPool(std::vector<VertexId> pool,
                                     size_t count, uint64_t seed) {
  Rng rng(seed);
  rng.Shuffle(pool);
  if (pool.size() > count) pool.resize(count);
  return pool;
}

}  // namespace

std::vector<VertexId> SampleFromKCore(const CoreDecomposition& cores,
                                      uint32_t k, size_t count,
                                      uint64_t seed) {
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < cores.core.size(); ++v) {
    if (cores.core[v] >= k) pool.push_back(v);
  }
  return SampleFromPool(std::move(pool), count, seed);
}

std::vector<VertexId> SampleWithDegreeAtLeast(const Graph& graph, uint32_t k,
                                              size_t count, uint64_t seed) {
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.Degree(v) >= k) pool.push_back(v);
  }
  return SampleFromPool(std::move(pool), count, seed);
}

std::vector<VertexId> SampleUniform(const Graph& graph, size_t count,
                                    uint64_t seed) {
  std::vector<VertexId> pool(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) pool[v] = v;
  return SampleFromPool(std::move(pool), count, seed);
}

namespace {

BatchTiming ToTiming(BatchStats stats, size_t queries) {
  BatchTiming timing;
  timing.total_ms = stats.wall_ms;
  timing.per_query_ms =
      queries == 0 ? 0.0 : stats.wall_ms / static_cast<double>(queries);
  timing.stats = stats;
  return timing;
}

}  // namespace

BatchTiming TimeCstBatch(BatchRunner& runner,
                         const std::vector<VertexId>& queries, uint32_t k,
                         const CstOptions& options, unsigned num_threads) {
  BatchLimits limits;
  limits.num_threads = num_threads;
  return ToTiming(runner.RunCst(queries, k, options, limits).stats,
                  queries.size());
}

BatchTiming TimeCsmBatch(BatchRunner& runner,
                         const std::vector<VertexId>& queries,
                         const CsmOptions& options, unsigned num_threads) {
  BatchLimits limits;
  limits.num_threads = num_threads;
  return ToTiming(runner.RunCsm(queries, options, limits).stats,
                  queries.size());
}

}  // namespace locs::bench
