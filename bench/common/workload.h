// Query-workload sampling, mirroring the paper's methodology (§6.1.3):
// query vertices drawn from the k-core (guaranteeing a solution exists),
// from the set of vertices with degree >= k ("arbitrary vertices",
// Figure 10), or uniformly.

#ifndef LOCS_BENCH_COMMON_WORKLOAD_H_
#define LOCS_BENCH_COMMON_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/kcore.h"
#include "graph/graph.h"

namespace locs::bench {

/// `count` distinct vertices whose core number is >= k (fewer if the
/// k-core is smaller than count).
std::vector<VertexId> SampleFromKCore(const CoreDecomposition& cores,
                                      uint32_t k, size_t count,
                                      uint64_t seed);

/// `count` distinct vertices with degree >= k.
std::vector<VertexId> SampleWithDegreeAtLeast(const Graph& graph, uint32_t k,
                                              size_t count, uint64_t seed);

/// `count` distinct vertices, uniformly.
std::vector<VertexId> SampleUniform(const Graph& graph, size_t count,
                                    uint64_t seed);

}  // namespace locs::bench

#endif  // LOCS_BENCH_COMMON_WORKLOAD_H_
