// Query-workload sampling, mirroring the paper's methodology (§6.1.3):
// query vertices drawn from the k-core (guaranteeing a solution exists),
// from the set of vertices with degree >= k ("arbitrary vertices",
// Figure 10), or uniformly — plus helpers that push a sampled workload
// through the persistent batch engine (src/exec/), so the figure drivers
// report the same serving path the production deployment would use.

#ifndef LOCS_BENCH_COMMON_WORKLOAD_H_
#define LOCS_BENCH_COMMON_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/kcore.h"
#include "exec/batch_runner.h"
#include "graph/graph.h"

namespace locs::bench {

/// `count` distinct vertices whose core number is >= k (fewer if the
/// k-core is smaller than count).
std::vector<VertexId> SampleFromKCore(const CoreDecomposition& cores,
                                      uint32_t k, size_t count,
                                      uint64_t seed);

/// `count` distinct vertices with degree >= k.
std::vector<VertexId> SampleWithDegreeAtLeast(const Graph& graph, uint32_t k,
                                              size_t count, uint64_t seed);

/// `count` distinct vertices, uniformly.
std::vector<VertexId> SampleUniform(const Graph& graph, size_t count,
                                    uint64_t seed);

/// Batch-engine timing of a workload.
struct BatchTiming {
  double total_ms = 0.0;
  double per_query_ms = 0.0;
  BatchStats stats;
};

/// Runs `queries` as one CST(k) batch on `runner` with `num_threads`
/// workers (0 = full pool) and reports wall time.
BatchTiming TimeCstBatch(BatchRunner& runner,
                         const std::vector<VertexId>& queries, uint32_t k,
                         const CstOptions& options = {},
                         unsigned num_threads = 0);

/// Runs `queries` as one CSM batch on `runner`.
BatchTiming TimeCsmBatch(BatchRunner& runner,
                         const std::vector<VertexId>& queries,
                         const CsmOptions& options = {},
                         unsigned num_threads = 0);

}  // namespace locs::bench

#endif  // LOCS_BENCH_COMMON_WORKLOAD_H_
