// Dataset registry for the benchmark drivers.
//
// The paper evaluates on four SNAP graphs (DBLP, Berkeley, Youtube,
// LiveJournal). This environment has no network access, so the registry
// serves deterministic LFR-generated stand-ins whose density ordering and
// degree shapes echo the originals (see DESIGN.md §3 for the substitution
// rationale), scaled down so the full benchmark sweep completes quickly.
// Set LOCS_BENCH_SCALE to grow every dataset proportionally.
//
// Generated graphs are reduced to their largest connected component (as the
// paper does, §6.1.1) and cached as binary CSR files under data/.

#ifndef LOCS_BENCH_COMMON_DATASETS_H_
#define LOCS_BENCH_COMMON_DATASETS_H_

#include <string>
#include <vector>

#include "gen/lfr.h"
#include "graph/graph.h"

namespace locs::bench {

/// A benchmark dataset: the graph (largest component) plus identification.
struct Dataset {
  std::string name;
  Graph graph;
};

/// Names of the four real-graph stand-ins, in the paper's Table-2 order.
const std::vector<std::string>& StandInNames();

/// Loads (from the on-disk cache) or generates the named stand-in.
Dataset LoadStandIn(const std::string& name);

/// All four stand-ins.
std::vector<Dataset> LoadAllStandIns();

/// Generates (with caching) an LFR graph reduced to its largest component,
/// for the synthetic-network experiments (Figures 3, 16, 17).
Graph CachedLfrComponent(const gen::LfrParams& params,
                         const std::string& cache_tag);

/// Directory used for the dataset cache (created on demand).
std::string CacheDir();

}  // namespace locs::bench

#endif  // LOCS_BENCH_COMMON_DATASETS_H_
