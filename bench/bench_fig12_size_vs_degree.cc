// Figure 12: community size vs query-vertex degree on the DBLP stand-in,
// used in §6.1.4 to guide the selection of γ.
//
// Paper's shape: the average community size *decreases* as the degree of
// the query vertex increases (high-degree vertices sit in dense cores
// whose maximal communities are comparatively small; low-degree vertices
// attach to huge low-k cores).

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "core/global.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto per_degree = static_cast<size_t>(cli.GetInt("per-degree", 10));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Figure 12 — community size vs query-vertex degree",
      "average maximal-community size decreases as the query vertex's "
      "degree grows (measured on DBLP with global search)",
      "a broadly decreasing 'avg community size' column");

  Dataset dataset = LoadStandIn(name);
  const Graph& g = dataset.graph;

  // Bucket vertices by degree.
  const uint32_t degrees[] = {3, 5, 7, 9, 11, 13, 15, 17, 19};
  TableWriter table({"degree", "avg community size", "sampled"});
  Rng rng(606);
  for (uint32_t d : degrees) {
    std::vector<VertexId> pool;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (g.Degree(v) == d) pool.push_back(v);
    }
    if (pool.empty()) continue;
    rng.Shuffle(pool);
    if (pool.size() > per_degree) pool.resize(per_degree);
    std::vector<double> sizes;
    for (VertexId v0 : pool) {
      sizes.push_back(
          static_cast<double>(GlobalCsm(g, v0)->members.size()));
    }
    table.Row()
        .Num(uint64_t{d})
        .Num(Summarize(sizes).mean, 1)
        .Num(uint64_t{pool.size()});
  }
  table.Print("fig12_" + name);
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
