// Figure 9: CST performance for small k (1..8) on all four datasets.
//
// Paper's shape: for extremely small k, local search wins by up to two
// orders of magnitude (k=1: any incident edge answers; k=2: any cycle);
// the gap narrows somewhat as k approaches 8 but local remains better.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));

  PrintBanner(
      "Figure 9 — CST performance for small k (1..8)",
      "local search two orders of magnitude faster than global at very "
      "small k; advantage persists across 1..8",
      "ls-li/naive/lg orders of magnitude below global at k=1..2; gap "
      "narrows but holds through k=8");

  for (const std::string& name : StandInNames()) {
    Dataset dataset = LoadStandIn(name);
    const Graph& g = dataset.graph;
    const CoreDecomposition cores = ComputeCores(g);
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCstSolver solver(g, &ordered, &facts);

    std::printf("dataset %s\n", name.c_str());
    TableWriter table(
        {"k", "global ms", "ls-naive ms", "ls-li ms", "ls-lg ms"});
    for (uint32_t k = 1; k <= 8; ++k) {
      const auto sample = SampleFromKCore(cores, k, queries, 9100 + k);
      if (sample.empty()) continue;
      std::vector<double> t_global;
      std::vector<double> t_naive;
      std::vector<double> t_li;
      std::vector<double> t_lg;
      for (VertexId v0 : sample) {
        t_global.push_back(TimeMs([&] { GlobalCst(g, v0, k); }));
        CstOptions options;
        options.strategy = Strategy::kNaive;
        t_naive.push_back(TimeMs([&] { solver.Solve(v0, k, options); }));
        options.strategy = Strategy::kLI;
        t_li.push_back(TimeMs([&] { solver.Solve(v0, k, options); }));
        options.strategy = Strategy::kLG;
        t_lg.push_back(TimeMs([&] { solver.Solve(v0, k, options); }));
      }
      table.Row()
          .Num(uint64_t{k})
          .Cell(MeanStd(Summarize(t_global)))
          .Cell(MeanStd(Summarize(t_naive)))
          .Cell(MeanStd(Summarize(t_li)))
          .Cell(MeanStd(Summarize(t_lg)));
    }
    table.Print("fig9_" + name);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
