// Figure 6: the two case studies, reproduced on labeled planted graphs.
//
//  (a) Coauthor community: the paper queries "Jiawei Han" in DBLP with
//      k = 5 and finds a 6-author clique-like community of leading data
//      mining researchers. Stand-in: a relaxed-caveman collaboration
//      network whose first cave holds six "senior researchers".
//  (b) Semantic community: the paper queries "pot" in WordNet with k = 3
//      and finds the vessel cluster {pot, bowl, dish, vessel, container,
//      containerful}. Stand-in: a small labeled sense graph with exactly
//      that cluster plus distractor senses.
//
// The point both demonstrate: CST around a query vertex extracts its
// dense semantic cluster and nothing else, even though the graph at
// large is much bigger.

#include <cstdio>
#include <string>
#include <vector>

#include "common/reporting.h"
#include "core/searcher.h"
#include "gen/planted.h"
#include "graph/builder.h"
#include "util/check.h"

namespace locs::bench {
namespace {

void CoauthorStudy() {
  std::printf("(a) coauthor community, query \"author0\" with k = 5\n");
  // 12 caves of varied sizes; cave 0 (authors 0..5) is the senior group.
  const std::vector<uint32_t> caves = {6, 8, 5, 7, 9, 6, 5, 8, 7, 6, 5, 8};
  const gen::PlantedGraph net = gen::RelaxedCaveman(caves, 0.08, 42);
  CommunitySearcher searcher(Graph(net.graph));
  const auto community = searcher.Cst(/*v0=*/0, /*k=*/5);
  if (!community.has_value()) {
    std::printf("  no community at k=5 (rewiring removed too many edges); "
                "falling back to k=4\n");
    const auto relaxed = searcher.Cst(0, 4);
    LOCS_CHECK(relaxed.has_value());
    std::printf("  members:");
    for (VertexId v : relaxed->members) std::printf(" author%u", v);
    std::printf("\n");
    return;
  }
  std::printf("  members:");
  for (VertexId v : community->members) std::printf(" author%u", v);
  std::printf("\n  δ = %u; all members from cave 0 expected: ",
              community->min_degree);
  bool all_cave0 = true;
  for (VertexId v : community->members) all_cave0 &= net.community[v] == 0;
  std::printf("%s\n\n", all_cave0 ? "yes" : "no (rewired edge included)");
}

void WordNetStudy() {
  std::printf("(b) semantic community, query \"pot\" with k = 3\n");
  // Vessel cluster (dense) + kitchen distractors (sparse attachments) +
  // an unrelated 'marijuana' sense of pot linked weakly.
  const std::vector<std::string> senses = {
      "pot",        "bowl",   "dish",    "vessel",  "container",
      "containerful", "kitchen", "cook",  "stove",   "marijuana",
      "drug",       "plant"};
  auto id = [&senses](const std::string& name) -> VertexId {
    for (size_t i = 0; i < senses.size(); ++i) {
      if (senses[i] == name) return static_cast<VertexId>(i);
    }
    LOCS_CHECK_MSG(false, "unknown sense");
    return 0;
  };
  GraphBuilder builder(static_cast<VertexId>(senses.size()));
  auto link = [&](const std::string& a, const std::string& b) {
    builder.AddEdge(id(a), id(b));
  };
  // Dense vessel cluster (the paper's Figure 6(b) community).
  const std::vector<std::string> cluster = {"pot",       "bowl",
                                            "dish",      "vessel",
                                            "container", "containerful"};
  for (size_t i = 0; i < cluster.size(); ++i) {
    for (size_t j = i + 1; j < cluster.size(); ++j) {
      if ((i + j) % 3 != 0) link(cluster[i], cluster[j]);
    }
  }
  link("pot", "containerful");
  link("bowl", "vessel");
  // Weak attachments outside the cluster.
  link("pot", "kitchen");
  link("kitchen", "cook");
  link("cook", "stove");
  link("kitchen", "stove");
  link("pot", "marijuana");
  link("marijuana", "drug");
  link("marijuana", "plant");
  link("drug", "plant");

  CommunitySearcher searcher(builder.Build());
  const auto community = searcher.Cst(id("pot"), /*k=*/3);
  LOCS_CHECK(community.has_value());
  std::printf("  members:");
  for (VertexId v : community->members) {
    std::printf(" %s", senses[v].c_str());
  }
  std::printf("\n  δ = %u — the vessel senses, excluding the kitchen and "
              "marijuana tails\n",
              community->min_degree);
}

int Run() {
  PrintBanner(
      "Figure 6 — case studies: communities are semantically coherent",
      "(a) k=5 around Jiawei Han yields 6 leading data-mining authors; "
      "(b) k=3 around 'pot' yields the vessel senses",
      "(a) exactly the planted senior cave; (b) exactly the planted "
      "vessel cluster — no distractor senses");
  CoauthorStudy();
  WordNetStudy();
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main() { return locs::bench::Run(); }
