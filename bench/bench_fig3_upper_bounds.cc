// Figure 3: simulation of the candidate-size upper bounds of §4.2.3 —
// |V|, |V≥k|, the realized naive candidate set size |C|, and the answer
// size of the improved local search, across graph sizes, for k = 50 and
// k = 100. Also prints the Theorem-4 analytic estimates of |V≥k| and the
// edge count m' of G[V≥k].
//
// Paper's shape: |C| tracks |V≥k| closely and both sit orders of
// magnitude below |V|; the local-search answer is smaller still.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "estimate/theorem4.h"
#include "gen/lfr.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

void RunForK(uint32_t k, size_t queries) {
  std::printf("k = %u\n", k);
  TableWriter table({"|V|", "|V>=k|", "est |V>=k|", "|C| naive",
                     "local answer", "est m'"});
  const VertexId sizes[] = {20000, 40000, 60000, 80000, 100000};
  for (VertexId n : sizes) {
    gen::LfrParams params;
    params.n = n;
    params.degree_exponent = 2.0;
    params.community_exponent = 3.0;
    params.mu = 0.1;
    params.min_degree = 5;
    params.max_degree = 250;
    params.min_community = 50;
    params.max_community = 400;
    params.seed = 300 + n / 1000;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "lfr_fig3_%u", n);
    Graph g = CachedLfrComponent(params, tag);
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCstSolver naive_solver(g, &ordered, &facts);
    LocalCstSolver li_solver(g, &ordered, &facts);

    uint64_t v_ge_k = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      v_ge_k += g.Degree(v) >= k;
    }
    const auto sample = SampleWithDegreeAtLeast(g, k, queries, 3300 + k);
    std::vector<double> candidate_sizes;
    std::vector<double> answer_sizes;
    for (VertexId v0 : sample) {
      QueryStats stats;
      CstOptions options;
      options.strategy = Strategy::kNaive;
      naive_solver.Solve(v0, k, options, &stats);
      candidate_sizes.push_back(
          static_cast<double>(stats.visited_vertices));
      options.strategy = Strategy::kLI;
      const auto answer = li_solver.Solve(v0, k, options, &stats);
      answer_sizes.push_back(
          answer.has_value() ? static_cast<double>(answer->members.size())
                             : 0.0);
    }
    table.Row()
        .Cell(FormatCount(g.NumVertices()))
        .Cell(FormatCount(v_ge_k))
        .Num(estimate::EstimateVerticesAbove(g, k), 1)
        .Num(Summarize(candidate_sizes).mean, 1)
        .Num(Summarize(answer_sizes).mean, 1)
        .Num(estimate::EstimateEdgesAbove(g, k), 1);
  }
  char tag[32];
  std::snprintf(tag, sizeof(tag), "fig3_k%u", k);
  table.Print(tag);
  std::printf("\n");
}

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 10));
  PrintBanner(
      "Figure 3 — upper bounds on the candidate set size |C|",
      "|C| and the realized community size hug |V≥k| and sit far below "
      "|V| (log-scale gap of 1-3 orders of magnitude)",
      "the '|C| naive' column close to '|V>=k|' and both well under "
      "'|V|'; 'local answer' smaller still; Theorem-4 estimates tracking "
      "the measured |V>=k|");
  RunForK(50, queries);
  RunForK(100, queries);
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
