// Figure 7: effectiveness of the offline adjacency-ordering optimization
// (§4.3.2) — ls-li and ls-lg with and without degree-descending adjacency,
// on the DBLP stand-in, across k.
//
// Paper's shape: the optimized variants ("opt") are clearly faster than
// the unoptimized ones ("non-opt") for most k; the one-off sorting cost
// is linear (703ms on DBLP, Table 2).

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/kcore.h"
#include "core/local_cst.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 40));
  const std::string name = cli.GetString("dataset", "dblp-sim");

  PrintBanner(
      "Figure 7 — sorted-adjacency expansion: opt vs non-opt",
      "ls-li(opt) and ls-lg(opt) clearly faster than their non-opt "
      "variants across most k on DBLP",
      "the 'opt' columns at or below the 'non-opt' columns, with the gap "
      "largest at mid-range k where low-degree tails dominate scans");

  Dataset dataset = LoadStandIn(name);
  const Graph& g = dataset.graph;
  const CoreDecomposition cores = ComputeCores(g);
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);
  LocalCstSolver opt_solver(g, &ordered, &facts);
  LocalCstSolver plain_solver(g, nullptr, &facts);

  const uint32_t s = std::max(1u, cores.degeneracy / 10);
  std::printf("dataset %s: delta*=%u, s=%u\n", name.c_str(),
              cores.degeneracy, s);
  TableWriter table({"k", "ls-li opt ms", "ls-li non-opt ms",
                     "ls-lg opt ms", "ls-lg non-opt ms"});
  for (uint32_t mult = 1; mult <= 8; ++mult) {
    const uint32_t k = s * mult;
    const auto sample = SampleFromKCore(cores, k, queries, 7700 + k);
    if (sample.empty()) continue;
    std::vector<double> li_opt;
    std::vector<double> li_plain;
    std::vector<double> lg_opt;
    std::vector<double> lg_plain;
    for (VertexId v0 : sample) {
      CstOptions options;
      options.strategy = Strategy::kLI;
      li_opt.push_back(TimeMs([&] { opt_solver.Solve(v0, k, options); }));
      li_plain.push_back(
          TimeMs([&] { plain_solver.Solve(v0, k, options); }));
      options.strategy = Strategy::kLG;
      lg_opt.push_back(TimeMs([&] { opt_solver.Solve(v0, k, options); }));
      lg_plain.push_back(
          TimeMs([&] { plain_solver.Solve(v0, k, options); }));
    }
    table.Row()
        .Num(uint64_t{k})
        .Cell(MeanStd(Summarize(li_opt)))
        .Cell(MeanStd(Summarize(li_plain)))
        .Cell(MeanStd(Summarize(lg_opt)))
        .Cell(MeanStd(Summarize(lg_plain)));
  }
  table.Print("fig7_" + name);
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
