// Figure 16: scalability on synthetic LFR networks (α=2, β=3, μ=0.1),
// graph size swept upward — (a) CST: global vs local (ls-li);
// (b) CSM: global vs CSM1 vs CSM2.
//
// Paper's shape (200K..1M vertices): local search consistently beats
// global even at millions of vertices; CSM1 outperforms global by ~3
// orders of magnitude at 100% accuracy; local run time grows more slowly
// than global as the graph grows.
//
// Default sizes here are 100K..500K (scaled by LOCS_BENCH_SCALE) so the
// whole sweep stays fast; pass LOCS_BENCH_SCALE=2 for the paper's range.

#include <cstdio>
#include <limits>
#include <vector>

#include "common/datasets.h"
#include "common/reporting.h"
#include "common/workload.h"
#include "core/global.h"
#include "core/kcore.h"
#include "core/local_csm.h"
#include "core/local_cst.h"
#include "exec/batch_runner.h"
#include "graph/ordering.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace locs::bench {
namespace {

int Run(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto queries = static_cast<size_t>(cli.GetInt("queries", 25));
  const uint32_t k = static_cast<uint32_t>(cli.GetInt("k", 25));
  const double scale = BenchScaleFromEnv();

  PrintBanner(
      "Figure 16 — scalability on LFR graphs (α=2, β=3, μ=0.1)",
      "local search beats global at every size; gap does not shrink as "
      "graphs grow; CSM1 ~3 orders faster than global at 100% accuracy",
      "local columns growing more slowly than the global column");

  TableWriter cst_table(
      {"|V|", "global CST ms", "ls-li CST ms", "batch CST ms/q"});
  TableWriter csm_table({"|V|", "global CSM ms", "CSM1 ms", "CSM2 ms",
                         "batch CSM1 ms/q", "CSM1 quality"});
  const VertexId base_sizes[] = {100000, 200000, 300000, 400000, 500000};
  for (VertexId base : base_sizes) {
    gen::LfrParams params;
    params.n = static_cast<VertexId>(static_cast<double>(base) * scale);
    params.degree_exponent = 2.0;
    params.community_exponent = 3.0;
    params.mu = 0.1;
    params.min_degree = 5;
    params.max_degree = 100;
    params.min_community = 20;
    params.max_community = 200;
    params.seed = 1600 + base / 1000;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "lfr_scal_%u", params.n);
    Graph g = CachedLfrComponent(params, tag);
    const CoreDecomposition cores = ComputeCores(g);
    const GraphFacts facts = GraphFacts::Compute(g);
    const OrderedAdjacency ordered(g);
    LocalCstSolver cst_solver(g, &ordered, &facts);
    LocalCsmSolver csm_solver(g, &ordered, &facts);
    BatchRunner runner(g, &ordered, &facts);

    // CST sweep.
    const auto cst_sample = SampleFromKCore(cores, k, queries, 1717);
    double g_cst = 0.0;
    double l_cst = 0.0;
    for (VertexId v0 : cst_sample) {
      g_cst += TimeMs([&] { GlobalCst(g, v0, k); });
      l_cst += TimeMs([&] { cst_solver.Solve(v0, k); });
    }
    const auto n_cst = static_cast<double>(
        cst_sample.empty() ? 1 : cst_sample.size());
    const BatchTiming cst_batch = TimeCstBatch(runner, cst_sample, k);
    cst_table.Row()
        .Cell(FormatCount(g.NumVertices()))
        .Num(g_cst / n_cst, 2)
        .Num(l_cst / n_cst, 2)
        .Num(cst_batch.per_query_ms, 2);

    // CSM sweep.
    const auto csm_sample = SampleWithDegreeAtLeast(g, 10, queries, 1818);
    double g_csm = 0.0;
    double c1 = 0.0;
    double c2 = 0.0;
    double opt_sum = 0.0;
    double csm1_sum = 0.0;
    for (VertexId v0 : csm_sample) {
      Community best;
      g_csm += TimeMs([&] { best = *GlobalCsm(g, v0); });
      opt_sum += best.min_degree;
      CsmOptions options;
      options.candidate_rule = CsmCandidateRule::kFromVisited;
      options.gamma = 4.0;  // the paper's CSM1 scalability run kept 100%
                            // accuracy; a moderate γ does so here as well
      Community local;
      c1 += TimeMs([&] { local = *csm_solver.Solve(v0, options); });
      csm1_sum += local.min_degree;
      options.candidate_rule = CsmCandidateRule::kFromNaive;
      c2 += TimeMs([&] { csm_solver.Solve(v0, options); });
    }
    const auto n_csm = static_cast<double>(csm_sample.size());
    CsmOptions batch_options;
    batch_options.candidate_rule = CsmCandidateRule::kFromVisited;
    batch_options.gamma = 4.0;
    const BatchTiming csm_batch =
        TimeCsmBatch(runner, csm_sample, batch_options);
    csm_table.Row()
        .Cell(FormatCount(g.NumVertices()))
        .Num(g_csm / n_csm, 2)
        .Num(c1 / n_csm, 2)
        .Num(c2 / n_csm, 2)
        .Num(csm_batch.per_query_ms, 2)
        .Num(csm1_sum / (opt_sum > 0 ? opt_sum : 1.0), 4);
  }
  std::printf("(a) CST\n");
  cst_table.Print("fig16a");
  std::printf("\n(b) CSM\n");
  csm_table.Print("fig16b");
  return 0;
}

}  // namespace
}  // namespace locs::bench

int main(int argc, char** argv) { return locs::bench::Run(argc, argv); }
