// End-to-end tests of the locsd binary: scripted stdio sessions, the
// TCP loopback front end driven through `locs_cli client`, result
// equivalence with the one-shot CLI, malformed-input survival, and
// graceful SIGTERM drain — all via real subprocesses.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace locs {
namespace {

#ifndef LOCS_CLI_PATH
#define LOCS_CLI_PATH "locs_cli"
#endif
#ifndef LOCSD_PATH
#define LOCSD_PATH "locsd"
#endif

/// Runs `command` under sh, captures stdout; returns {exit code, output}.
std::pair<int, std::string> RunShell(const std::string& command) {
  std::FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = ::pclose(pipe);
  return {WEXITSTATUS(status), output};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

/// Extracts the value of ` key=` in a served reply line ("" if absent).
std::string Field(const std::string& line, const std::string& key) {
  const std::string needle = " " + key + "=";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const size_t begin = pos + needle.size();
  return line.substr(begin, line.find(' ', begin) - begin);
}

/// Generates the shared test graph once per process.
const std::string& GraphPath() {
  static const std::string path = [] {
    const std::string p = TempPath("locsd_it.lcsg");
    const auto [code, out] = RunShell(
        std::string(LOCS_CLI_PATH) +
        " generate --model=lfr --n=2000 --seed=5 --output=" + p);
    EXPECT_EQ(code, 0) << out;
    return p;
  }();
  return path;
}

/// Pipes `script` (one request per line) into `locsd --stdio`.
std::pair<int, std::vector<std::string>> StdioSession(
    const std::string& script, const std::string& extra_flags = "") {
  const std::string script_path = TempPath("locsd_script.txt");
  {
    std::ofstream out(script_path, std::ios::binary);
    out << script;
  }
  const auto [code, out] =
      RunShell(std::string(LOCSD_PATH) + " --stdio " + extra_flags + " < " +
               script_path + " 2>/dev/null");
  return {code, SplitLines(out)};
}

TEST(LocsdIntegrationTest, StdioSessionEndToEnd) {
  const auto [code, replies] = StdioSession(
      "PING\n"
      "LOAD g " + GraphPath() + "\n"
      "CST g 7 3 limit=5\n"
      "CSM g 7 limit=5\n"
      "MULTI g 2 7 8 limit=5\n"
      "STATS\n"
      "QUIT\n");
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 7u);
  EXPECT_EQ(replies[0], "OK pong");
  EXPECT_TRUE(StartsWith(replies[1], "OK graph=g vertices=2000"))
      << replies[1];
  EXPECT_TRUE(StartsWith(replies[2], "OK status=found")) << replies[2];
  EXPECT_TRUE(StartsWith(replies[3], "OK status=found")) << replies[3];
  EXPECT_TRUE(StartsWith(replies[4], "OK status=found")) << replies[4];
  EXPECT_TRUE(StartsWith(replies[5], "OK uptime_ms=")) << replies[5];
  EXPECT_EQ(Field(replies[5], "queries"), "3");
  EXPECT_EQ(replies[6], "OK bye");
}

/// Masks the values of duration keys (`*_ms=`, `*_us=`, `*_ns=`) in a
/// reply line; everything else — including every telemetry counter — is
/// left byte-exact.
std::string MaskDurations(const std::string& line) {
  std::string masked;
  std::istringstream stream(line);
  std::string token;
  bool first = true;
  while (stream >> token) {
    if (!first) masked += ' ';
    first = false;
    const size_t eq = token.find('=');
    bool timed = false;
    if (eq != std::string::npos && eq >= 3) {
      const std::string suffix = token.substr(eq - 3, 3);
      timed = suffix == "_ms" || suffix == "_us" || suffix == "_ns";
    }
    masked += timed ? token.substr(0, eq + 1) + "X" : token;
  }
  return masked;
}

TEST(LocsdIntegrationTest, GoldenTranscriptIsDeterministicModuloDurations) {
  // The full LOAD / traced-query / STATS / QUIT transcript must be
  // byte-identical across two independent daemon processes once the
  // wall-clock fields (keys ending _ms/_us/_ns) are masked. This pins
  // down both the trace=1 phase breakdown and the STATS per-phase
  // telemetry totals as deterministic solver facts, not timing noise.
  const std::string script =
      "LOAD g " + GraphPath() + "\n"
      "CST g 7 3 trace=1 limit=5\n"
      "CSM g 7 trace=1 limit=5\n"
      "MULTI g 2 7 8 trace=1 limit=5\n"
      "MULTI g max 7 8 trace=1 limit=5\n"
      "STATS\n"
      "QUIT\n";
  const auto [code_a, replies_a] = StdioSession(script);
  const auto [code_b, replies_b] = StdioSession(script);
  EXPECT_EQ(code_a, 0);
  EXPECT_EQ(code_b, 0);
  ASSERT_EQ(replies_a.size(), 7u);
  ASSERT_EQ(replies_b.size(), 7u);
  for (size_t i = 0; i < replies_a.size(); ++i) {
    EXPECT_EQ(MaskDurations(replies_a[i]), MaskDurations(replies_b[i]))
        << "transcript line " << i << " diverges";
  }
  // Structural golden facts of the traced replies and STATS line.
  for (const size_t traced : {1u, 2u, 3u, 4u}) {
    EXPECT_TRUE(StartsWith(replies_a[traced], "OK status="))
        << replies_a[traced];
    EXPECT_NE(replies_a[traced].find(" phases="), std::string::npos)
        << replies_a[traced];
    EXPECT_NE(Field(replies_a[traced], "fallback"), "")
        << replies_a[traced];
    EXPECT_NE(Field(replies_a[traced], "scanned"), "")
        << replies_a[traced];
  }
  // An untraced query must NOT carry the breakdown.
  const auto [code_c, replies_c] =
      StdioSession("LOAD g " + GraphPath() + "\nCST g 7 3 limit=5\nQUIT\n");
  EXPECT_EQ(code_c, 0);
  ASSERT_EQ(replies_c.size(), 3u);
  EXPECT_EQ(replies_c[1].find(" phases="), std::string::npos)
      << replies_c[1];
  // STATS carries the aggregated per-phase totals (4 solver queries).
  EXPECT_EQ(Field(replies_a[5], "solver_queries"), "4") << replies_a[5];
  EXPECT_NE(Field(replies_a[5], "ph_expansion_visited"), "")
      << replies_a[5];
}

TEST(LocsdIntegrationTest, ServedAnswersMatchOneShotCli) {
  // The daemon and the one-shot CLI must agree on community size and
  // goodness for the same (graph, query) — the serving layer adds
  // residency, not different answers.
  const auto [cli_code, cli_out] = RunShell(
      std::string(LOCS_CLI_PATH) + " cst --input=" + GraphPath() +
      " --vertex=7 --k=3 2>/dev/null");
  ASSERT_EQ(cli_code, 0);
  // CLI prints "community: <n> members, δ=<d> (...)".
  const size_t pos = cli_out.find("community: ");
  ASSERT_NE(pos, std::string::npos) << cli_out;
  unsigned long cli_n = 0, cli_delta = 0;
  ASSERT_EQ(std::sscanf(cli_out.c_str() + pos,
                        "community: %lu members, δ=%lu", &cli_n,
                        &cli_delta),
            2)
      << cli_out;

  const auto [code, replies] = StdioSession(
      "LOAD g " + GraphPath() + "\nCST g 7 3 limit=1\nQUIT\n");
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(Field(replies[1], "n"), std::to_string(cli_n)) << replies[1];
  EXPECT_EQ(Field(replies[1], "delta"), std::to_string(cli_delta))
      << replies[1];
}

TEST(LocsdIntegrationTest, PreloadServesWithoutLoad) {
  const auto [code, replies] = StdioSession(
      "LIST\nCST pre 7 3 limit=1\nQUIT\n",
      "--preload=pre=" + GraphPath());
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(StartsWith(replies[0], "OK graphs=1 pre:2000:"))
      << replies[0];
  EXPECT_TRUE(StartsWith(replies[1], "OK status=found")) << replies[1];
}

TEST(LocsdIntegrationTest, MalformedInputNeverCrashes) {
  // Garbage verbs, bad numbers, missing args, an embedded-NUL token, and
  // an 80 KiB line with no newline: every one draws a typed ERR and the
  // session keeps serving (the final PING/QUIT still answer, exit 0).
  std::string script;
  script += "FROBNICATE the server\n";
  script += "CST\n";
  script += "CST g seven 3\n";
  script += std::string("CS\0T g 1 2", 10) + "\n";
  script += std::string(80 * 1024, 'A') + "\n";
  script += "PING\nQUIT\n";
  const auto [code, replies] = StdioSession(script);
  EXPECT_EQ(code, 0);
  ASSERT_EQ(replies.size(), 7u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR unknown-verb"));
  EXPECT_TRUE(StartsWith(replies[1], "ERR missing-arg"));
  EXPECT_TRUE(StartsWith(replies[2], "ERR bad-number"));
  EXPECT_TRUE(StartsWith(replies[3], "ERR unknown-verb"));
  EXPECT_TRUE(StartsWith(replies[4], "ERR line-too-long"));
  EXPECT_EQ(replies[5], "OK pong");
  EXPECT_EQ(replies[6], "OK bye");
}

TEST(LocsdIntegrationTest, UsageAndBadFlagsFailCleanly) {
  EXPECT_NE(RunShell(std::string(LOCSD_PATH) + " 2>/dev/null").first, 0);
  EXPECT_NE(RunShell(std::string(LOCSD_PATH) +
                     " --stdio --port=4000 2>/dev/null")
                .first,
            0);
  EXPECT_NE(
      RunShell(std::string(LOCSD_PATH) + " --frobnicate 2>/dev/null").first,
      0);
}

/// Forks locsd on an ephemeral TCP port; waits for the port file.
class LocsdProcess {
 public:
  explicit LocsdProcess(const std::string& extra_flags) {
    port_file_ = TempPath("locsd_port." + std::to_string(::getpid()));
    std::remove(port_file_.c_str());
    pid_ = ::fork();
    if (pid_ == 0) {
      const std::string port_flag = "--port-file=" + port_file_;
      std::vector<std::string> args = {LOCSD_PATH, "--port=0", port_flag};
      std::istringstream flags(extra_flags);
      std::string flag;
      while (flags >> flag) args.push_back(flag);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(LOCSD_PATH, argv.data());
      ::_exit(127);  // exec failed
    }
    // Rendezvous: the daemon writes the port file after listen().
    for (int i = 0; i < 200 && port_ == 0; ++i) {
      std::ifstream in(port_file_);
      if (!(in >> port_)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
  }

  ~LocsdProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    std::remove(port_file_.c_str());
  }

  /// SIGTERM + reap; returns the exit status (-1 if it did not exit).
  int Terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    const pid_t reaped = ::waitpid(pid_, &status, 0);
    const int result =
        (reaped == pid_ && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
    pid_ = -1;
    return result;
  }

  int port() const { return port_; }

 private:
  pid_t pid_ = -1;
  std::string port_file_;
  int port_ = 0;
};

TEST(LocsdIntegrationTest, TcpSessionViaClientMatchesStdio) {
  LocsdProcess daemon("--preload=g=" + GraphPath());
  ASSERT_GT(daemon.port(), 0) << "daemon did not write its port file";

  // Drive the TCP session through the bundled client; replies are
  // deterministic by design, so they must equal the stdio transcript
  // byte for byte.
  const std::string script = "CST g 7 3 limit=5\nCSM g 7 limit=5\nQUIT\n";
  const std::string script_path = TempPath("locsd_tcp_script.txt");
  {
    std::ofstream out(script_path);
    out << script;
  }
  const auto [tcp_code, tcp_out] = RunShell(
      std::string(LOCS_CLI_PATH) + " client --port=" +
      std::to_string(daemon.port()) + " < " + script_path + " 2>/dev/null");
  EXPECT_EQ(tcp_code, 0);
  const auto [stdio_code, stdio_replies] =
      StdioSession(script, "--preload=g=" + GraphPath());
  EXPECT_EQ(stdio_code, 0);
  const std::vector<std::string> tcp_replies = SplitLines(tcp_out);
  ASSERT_EQ(tcp_replies.size(), 3u);
  ASSERT_EQ(stdio_replies.size(), 3u);
  EXPECT_EQ(tcp_replies, stdio_replies);

  // SIGTERM drains gracefully: exit 0, not a signal death.
  EXPECT_EQ(daemon.Terminate(), 0);
}

TEST(LocsdIntegrationTest, TcpSessionCapSaysBusy) {
  LocsdProcess daemon("--max-sessions=1");
  ASSERT_GT(daemon.port(), 0);
  // Holder keeps the one session slot occupied: its script has no QUIT,
  // so the `sleep` keeps the pipe (and thus the session) open while the
  // second client connects.
  const std::string port = std::to_string(daemon.port());
  const auto [code, out] = RunShell(
      "( printf 'PING\\n'; sleep 1 ) | " + std::string(LOCS_CLI_PATH) +
      " client --port=" + port + " 2>/dev/null & " +
      "sleep 0.4; printf 'PING\\nQUIT\\n' | " + std::string(LOCS_CLI_PATH) +
      " client --port=" + port + " 2>/dev/null; wait");
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("BUSY sessions=1"), std::string::npos) << out;
  EXPECT_EQ(daemon.Terminate(), 0);
}

TEST(LocsdIntegrationTest, StdioSigtermDuringBlockedReadExitsPromptly) {
  // Regression: locsd --stdio parked in a blocking read on a silent,
  // still-open stdin used to sit in read(2) until the peer spoke, so
  // SIGTERM never finished the drain. The stop flag is now observed
  // inside the transport's poll loop (EINTR wake + bounded tick), so
  // termination must complete promptly with exit 0 while stdin is still
  // open and silent.
  int stdin_pipe[2];
  ASSERT_EQ(::pipe(stdin_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(stdin_pipe[0], STDIN_FILENO);
    ::close(stdin_pipe[0]);
    ::close(stdin_pipe[1]);
    const int devnull = ::open("/dev/null", O_WRONLY);
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::execl(LOCSD_PATH, LOCSD_PATH, "--stdio",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(stdin_pipe[0]);
  // Let the daemon reach its blocking read before the signal.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  pid_t reaped = 0;
  // 3s budget: one transport stop tick is 200ms, so a healthy daemon
  // exits orders of magnitude inside this.
  for (int i = 0; i < 150; ++i) {
    reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::close(stdin_pipe[1]);
  if (reaped != pid) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    FAIL() << "locsd --stdio did not exit within 3s of SIGTERM";
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace locs
