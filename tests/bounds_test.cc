// Tests for the analytic bounds of Theorems 3 and 5 and Corollary 1,
// including property checks against actual optima on random graphs.

#include "core/bounds.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/global.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "graph/traversal.h"

namespace locs {
namespace {

TEST(MStarUpperBoundTest, TreeHasBoundOne) {
  // A tree: |E| = |V| - 1, excess clamps to 0, bound = floor((1+3)/2) = 2;
  // but the actual optimum on a path is 1. The bound only upper-bounds.
  Graph g = gen::Path(10);
  EXPECT_GE(MStarUpperBound(g), 1u);
  EXPECT_LE(MStarUpperBound(g), 2u);
}

TEST(MStarUpperBoundTest, CliqueIsTight) {
  // K_n: |E|-|V| = n(n-3)/2, bound evaluates to exactly n-1 — tight.
  for (VertexId n : {3u, 4u, 5u, 8u, 12u, 20u}) {
    Graph g = gen::Clique(n);
    EXPECT_EQ(MStarUpperBound(g), n - 1) << "n=" << n;
  }
}

TEST(MStarUpperBoundTest, PaperFigure1) {
  Graph g = gen::PaperFigure1();
  // 26 edges, 14 vertices: floor((1+sqrt(9+96))/2) = 5; m* max is 4.
  EXPECT_EQ(g.NumEdges(), 26u);
  EXPECT_EQ(MStarUpperBound(g), 5u);
}

TEST(MStarUpperBoundTest, DominatesActualOptimumOnConnectedGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    Graph g = ExtractLargestComponent(
                  gen::ErdosRenyiGnp(50, 0.1, seed)).graph;
    const uint32_t bound = MStarUpperBound(g);
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 5) {
      EXPECT_LE(GlobalCsm(g, v0)->min_degree, bound) << "seed=" << seed;
    }
  }
}

TEST(CstSizeUpperBoundTest, DegeneratesForSmallK) {
  EXPECT_EQ(CstSizeUpperBound(100, 50, 0),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(CstSizeUpperBound(100, 50, 1),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(CstSizeUpperBound(100, 50, 2),
            std::numeric_limits<uint64_t>::max());
}

TEST(CstSizeUpperBoundTest, CliqueIsTight) {
  // K_n with k = n-1: bound = (n(n-1)/2 - n) / ((n-1)/2 - 1) = n.
  for (uint64_t n : {4u, 6u, 10u}) {
    const uint64_t edges = n * (n - 1) / 2;
    EXPECT_EQ(CstSizeUpperBound(edges, n, static_cast<uint32_t>(n - 1)), n);
  }
}

TEST(CstSizeUpperBoundTest, DominatesActualAnswersOnConnectedGraphs) {
  for (uint64_t seed : {11u, 21u, 31u}) {
    Graph g = ExtractLargestComponent(
                  gen::ErdosRenyiGnp(60, 0.12, seed)).graph;
    for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 7) {
      const Community best = *GlobalCsm(g, v0);
      for (uint32_t k = 3; k <= best.min_degree; ++k) {
        const auto cst = GlobalCst(g, v0, k);
        ASSERT_TRUE(cst.has_value());
        // Theorem 5 bounds the size of *minimal* answers... in fact of any
        // answer H: k|H|/2 + (|V|-|H|) <= |E|. The maximal component also
        // satisfies it.
        EXPECT_LE(cst->members.size(),
                  CstSizeUpperBound(g.NumEdges(), g.NumVertices(), k))
            << "seed=" << seed << " k=" << k;
      }
    }
  }
}

TEST(CsmExpansionBudgetTest, ZeroWhenBoundExceeded) {
  // If |H| already exceeds the k+1 size bound, no extra vertices remain.
  EXPECT_EQ(CsmExpansionBudget(100, 90, 6, 1000), 0u);
}

TEST(CsmExpansionBudgetTest, UnboundedForTinyDelta) {
  // delta_h + 1 <= 2 ⇒ denominator non-positive ⇒ unbounded.
  EXPECT_EQ(CsmExpansionBudget(100, 50, 0, 3),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(CsmExpansionBudget(100, 50, 1, 3),
            std::numeric_limits<uint64_t>::max());
}

TEST(GammaScaledBudgetTest, GammaZeroMatchesCorollary1) {
  EXPECT_EQ(GammaScaledBudget(200, 100, 5, 10, 0.0),
            CsmExpansionBudget(200, 100, 5, 10));
}

TEST(GammaScaledBudgetTest, NegativeInfinityIsUnbounded) {
  EXPECT_EQ(GammaScaledBudget(200, 100, 5, 10,
                              -std::numeric_limits<double>::infinity()),
            std::numeric_limits<uint64_t>::max());
}

TEST(GammaScaledBudgetTest, MonotoneDecreasingInGamma) {
  uint64_t prev = std::numeric_limits<uint64_t>::max();
  for (double gamma : {-3.0, -1.0, 0.0, 1.0, 3.0, 8.0}) {
    const uint64_t budget = GammaScaledBudget(5000, 1000, 7, 20, gamma);
    EXPECT_LE(budget, prev);
    prev = budget;
  }
  // Large γ collapses the budget to zero.
  EXPECT_EQ(GammaScaledBudget(5000, 1000, 7, 20, 40.0), 0u);
}

TEST(GammaScaledBudgetTest, LargeNegativeGammaSaturates) {
  EXPECT_EQ(GammaScaledBudget(5000, 1000, 7, 20, -100.0),
            std::numeric_limits<uint64_t>::max());
}

}  // namespace
}  // namespace locs
