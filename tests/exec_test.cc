// Tests for the exec subsystem: the persistent Executor (exception
// capture, deadlines, cancellation, lazy start, reuse) and the
// BatchRunner (thread-count-invariant results, stat aggregation,
// per-worker solver reuse across batches).

#include "exec/batch_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "gen/erdos_renyi.h"
#include "util/thread_annotations.h"
#include "gen/lfr.h"
#include "obs/recorder.h"

namespace locs {
namespace {

TEST(ExecutorTest, RunsEveryItemExactlyOnce) {
  Executor exec(4);
  std::vector<std::atomic<int>> hits(1000);
  const auto run = exec.ParallelFor(
      hits.size(), [&](unsigned, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  EXPECT_EQ(run.items_run, hits.size());
  EXPECT_EQ(run.cause, Executor::StopCause::kCompleted);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorTest, LazyStartAndSerialExecutorNeverSpawns) {
  Executor serial(1);
  EXPECT_FALSE(serial.started());
  int sum = 0;
  serial.ParallelFor(10, [&](unsigned worker, size_t begin, size_t end) {
    EXPECT_EQ(worker, 0u);
    for (size_t i = begin; i < end; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
  EXPECT_FALSE(serial.started());

  Executor pool(4);
  EXPECT_FALSE(pool.started());
  // A single item never needs the pool either.
  pool.ParallelFor(1, [](unsigned, size_t, size_t) {});
  EXPECT_FALSE(pool.started());
  pool.ParallelFor(100, [](unsigned, size_t, size_t) {});
  EXPECT_TRUE(pool.started());
}

// Regression for the old core/parallel.cc RunWorkers: a throwing task
// (here a stand-in for a throwing solver stub) used to leave joinable
// std::threads behind and end in std::terminate. The executor must join
// on all paths, rethrow the first exception on the caller, and stay
// usable afterwards.
TEST(ExecutorTest, ThrowingTaskPropagatesAndPoolSurvives) {
  Executor exec(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        exec.ParallelFor(256,
                         [&](unsigned, size_t begin, size_t end) {
                           if (begin <= 17 && 17 < end) {
                             throw std::runtime_error("solver stub blew up");
                           }
                         }),
        std::runtime_error);
    // The pool is intact and processes a full batch right after.
    std::atomic<size_t> done{0};
    const auto run = exec.ParallelFor(
        128, [&](unsigned, size_t begin, size_t end) {
          done.fetch_add(end - begin, std::memory_order_relaxed);
        });
    EXPECT_EQ(run.items_run, 128u);
    EXPECT_EQ(done.load(), 128u);
  }
}

TEST(ExecutorTest, ThrowOnEveryItemStillRethrowsOnce) {
  Executor exec(2);
  EXPECT_THROW(exec.ParallelFor(64,
                                [](unsigned, size_t, size_t) {
                                  throw std::logic_error("always");
                                }),
               std::logic_error);
}

TEST(ExecutorTest, DeadlineStopsEarlyWithPrefixSemantics) {
  Executor exec(4);
  std::vector<std::atomic<int>> hits(200);
  Executor::RunOptions options;
  options.chunk_size = 1;
  options.deadline_ms = 10.0;
  const auto run = exec.ParallelFor(
      hits.size(),
      [&](unsigned, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(3));
        }
      },
      options);
  EXPECT_EQ(run.cause, Executor::StopCause::kDeadline);
  EXPECT_LT(run.items_run, hits.size());
  // Claimed chunks always complete: the executed items are exactly the
  // prefix [0, items_run).
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i < run.items_run ? 1 : 0) << "i=" << i;
  }
}

TEST(ExecutorTest, PreSetCancelRunsNothing) {
  Executor exec(4);
  std::atomic<bool> cancel{true};
  Executor::RunOptions options;
  options.cancel = &cancel;
  std::atomic<size_t> ran{0};
  const auto run = exec.ParallelFor(
      1000,
      [&](unsigned, size_t begin, size_t end) {
        ran.fetch_add(end - begin, std::memory_order_relaxed);
      },
      options);
  EXPECT_EQ(run.items_run, 0u);
  EXPECT_EQ(run.cause, Executor::StopCause::kCancelled);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ExecutorTest, CancelMidFlightStops) {
  Executor exec(4);
  std::atomic<bool> cancel{false};
  Executor::RunOptions options;
  options.chunk_size = 1;
  options.cancel = &cancel;
  const auto run = exec.ParallelFor(
      10000,
      [&](unsigned, size_t begin, size_t) {
        if (begin >= 8) cancel.store(true, std::memory_order_relaxed);
      },
      options);
  EXPECT_EQ(run.cause, Executor::StopCause::kCancelled);
  EXPECT_LT(run.items_run, 10000u);
}

TEST(ExecutorTest, MaxWorkersCapsWorkerIds) {
  Executor exec(8);
  Executor::RunOptions options;
  options.max_workers = 2;
  options.chunk_size = 1;
  locs::Mutex mutex;
  std::set<unsigned> seen;
  exec.ParallelFor(
      500,
      [&](unsigned worker, size_t, size_t) {
        locs::MutexLock lock(mutex);
        seen.insert(worker);
      },
      options);
  EXPECT_LE(seen.size(), 2u);
  for (unsigned w : seen) EXPECT_LT(w, 2u);
}

TEST(ExecutorTest, NestedParallelForRunsInline) {
  Executor exec(4);
  std::atomic<size_t> inner_total{0};
  const auto run = exec.ParallelFor(16, [&](unsigned, size_t, size_t) {
    // A task that re-enters the same executor must not deadlock.
    exec.ParallelFor(8, [&](unsigned worker, size_t begin, size_t end) {
      EXPECT_EQ(worker, 0u);
      inner_total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(run.items_run, 16u);
  EXPECT_EQ(inner_total.load(), 16u * 8u);
}

TEST(ExecutorTest, ManySmallBatchesReuseThePool) {
  Executor exec(4);
  for (int batch = 0; batch < 200; ++batch) {
    std::atomic<size_t> ran{0};
    const auto run = exec.ParallelFor(
        8, [&](unsigned, size_t begin, size_t end) {
          ran.fetch_add(end - begin, std::memory_order_relaxed);
        });
    ASSERT_EQ(run.items_run, 8u);
    ASSERT_EQ(ran.load(), 8u);
  }
}

TEST(ExecutorTest, SubmitRunsDetachedTasks) {
  Executor exec(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 32;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(exec.Submit([&] {
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ExecutorTest, SerialExecutorRejectsSubmit) {
  // A 1-wide executor has no pool thread to detach onto; Submit must
  // refuse rather than run inline (the caller would block on itself).
  Executor serial(1);
  EXPECT_FALSE(serial.Submit([] {}));
  EXPECT_FALSE(serial.started());
}

TEST(ExecutorTest, ParallelForCompletesWithWorkersParkedInTasks) {
  // Park every pool thread in a long-lived task, then run a batch: the
  // calling thread alone must still complete it (the serving layer's
  // sessions-plus-queries coexistence guarantee).
  Executor exec(3);
  std::atomic<bool> release{false};
  std::atomic<int> parked{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(exec.Submit([&] {
      parked.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }));
  }
  while (parked.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(exec.active_tasks(), 2u);
  std::atomic<size_t> items{0};
  const auto run = exec.ParallelFor(
      100, [&](unsigned, size_t begin, size_t end) {
        items.fetch_add(end - begin, std::memory_order_relaxed);
      });
  EXPECT_EQ(run.items_run, 100u);
  EXPECT_EQ(items.load(), 100u);
  release.store(true);
  while (exec.active_tasks() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ExecutorTest, ThrowingSubmittedTaskIsSwallowed) {
  Executor exec(2);
  std::atomic<bool> threw{false};
  ASSERT_TRUE(exec.Submit([&] {
    threw.store(true);
    throw std::runtime_error("detached");
  }));
  while (!threw.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The worker survives the escaped exception and serves new work.
  std::atomic<int> after{0};
  ASSERT_TRUE(exec.Submit([&] { after.store(1); }));
  while (after.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(after.load(), 1);
}

TEST(ExecutorTest, ZeroItemsIsANoOp) {
  Executor exec(4);
  const auto run =
      exec.ParallelFor(0, [](unsigned, size_t, size_t) { FAIL(); });
  EXPECT_EQ(run.items_run, 0u);
  EXPECT_EQ(run.cause, Executor::StopCause::kCompleted);
}

class BatchRunnerTest : public ::testing::Test {
 protected:
  BatchRunnerTest()
      : graph_(gen::ErdosRenyiGnp(300, 0.04, 17)),
        facts_(GraphFacts::Compute(graph_)),
        ordered_(graph_) {
    for (VertexId v = 0; v < graph_.NumVertices(); v += 2) {
      queries_.push_back(v);
    }
  }

  Graph graph_;
  GraphFacts facts_;
  OrderedAdjacency ordered_;
  std::vector<VertexId> queries_;
};

TEST_F(BatchRunnerTest, CstResultsAreByteIdenticalAcrossThreadCounts) {
  // Serial reference: one reused solver, plain loop.
  LocalCstSolver solver(graph_, &ordered_, &facts_);
  std::vector<std::optional<Community>> expected;
  for (VertexId v : queries_) {
    expected.push_back(solver.Solve(v, 3).community);
  }

  BatchRunner runner(graph_, &ordered_, &facts_);
  for (unsigned threads : {1u, 2u, 8u}) {
    BatchLimits limits;
    limits.num_threads = threads;
    const auto batch = runner.RunCst(queries_, 3, {}, limits);
    ASSERT_EQ(batch.results.size(), expected.size());
    EXPECT_EQ(batch.stats.completed, queries_.size());
    EXPECT_FALSE(batch.stats.deadline_hit);
    EXPECT_EQ(batch.stats.CountOf(Termination::kFound) +
                  batch.stats.CountOf(Termination::kNotExists),
              queries_.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(batch.results[i].has_value(), expected[i].has_value())
          << "threads=" << threads << " i=" << i;
      if (!expected[i].has_value()) continue;
      // Byte-identical: same members in the same order, same goodness.
      EXPECT_EQ(batch.results[i]->members, expected[i]->members)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch.results[i]->min_degree, expected[i]->min_degree);
    }
  }
}

TEST_F(BatchRunnerTest, CsmResultsAreByteIdenticalAcrossThreadCounts) {
  LocalCsmSolver solver(graph_, &ordered_, &facts_);
  std::vector<Community> expected;
  for (VertexId v : queries_) expected.push_back(*solver.Solve(v));

  BatchRunner runner(graph_, &ordered_, &facts_);
  for (unsigned threads : {1u, 2u, 8u}) {
    BatchLimits limits;
    limits.num_threads = threads;
    const auto batch = runner.RunCsm(queries_, {}, limits);
    ASSERT_EQ(batch.results.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch.results[i]->members, expected[i].members)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch.results[i]->min_degree, expected[i].min_degree);
    }
  }
}

TEST_F(BatchRunnerTest, RepeatedBatchesOnOneRunnerStayIdentical) {
  // Per-worker solvers persist across batches; the O(1) epoch reset must
  // keep later batches byte-identical to the first.
  BatchRunner runner(graph_, &ordered_, &facts_);
  const auto first = runner.RunCst(queries_, 3);
  for (int round = 0; round < 3; ++round) {
    const auto again = runner.RunCst(queries_, 3);
    ASSERT_EQ(again.results.size(), first.results.size());
    for (size_t i = 0; i < first.results.size(); ++i) {
      ASSERT_EQ(again.results[i].has_value(), first.results[i].has_value());
      if (first.results[i].has_value()) {
        EXPECT_EQ(again.results[i]->members, first.results[i]->members);
      }
    }
    EXPECT_EQ(again.stats.visited_vertices, first.stats.visited_vertices);
    EXPECT_EQ(again.stats.scanned_edges, first.stats.scanned_edges);
  }
}

TEST_F(BatchRunnerTest, ReusedWorkerSolverResetsTelemetryBetweenQueries) {
  // One worker thread means every query funnels through the same reused
  // solver slot. Each query's telemetry must match a brand-new solver's
  // — any counter carried over from the previous query would show up as
  // an inflated phase total here.
  LocalCstSolver reused(graph_, &ordered_, &facts_);
  LocalCsmSolver reused_csm(graph_, &ordered_, &facts_);
  for (int round = 0; round < 2; ++round) {
    for (const VertexId v : {queries_[0], queries_[1], queries_[7]}) {
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " v=" + std::to_string(v));
      const SearchResult got = reused.Solve(v, 3);
      LocalCstSolver fresh(graph_, &ordered_, &facts_);
      const SearchResult want = fresh.Solve(v, 3);
      for (size_t i = 0; i < obs::kNumPhases; ++i) {
        EXPECT_EQ(got.telemetry.phases[i].vertices_visited,
                  want.telemetry.phases[i].vertices_visited);
        EXPECT_EQ(got.telemetry.phases[i].edges_scanned,
                  want.telemetry.phases[i].edges_scanned);
        EXPECT_EQ(got.telemetry.phases[i].entered,
                  want.telemetry.phases[i].entered);
      }
      EXPECT_EQ(got.telemetry.answer_size, want.telemetry.answer_size);

      const SearchResult got_csm = reused_csm.Solve(v);
      LocalCsmSolver fresh_csm(graph_, &ordered_, &facts_);
      const SearchResult want_csm = fresh_csm.Solve(v);
      EXPECT_EQ(got_csm.telemetry.TotalVisited(),
                want_csm.telemetry.TotalVisited());
      EXPECT_EQ(got_csm.telemetry.TotalScanned(),
                want_csm.telemetry.TotalScanned());
    }
  }
}

TEST_F(BatchRunnerTest, RecorderSeesEveryQueryAcrossBatches) {
  BatchRunner runner(graph_, &ordered_, &facts_);
  obs::AggregateRecorder recorder;
  runner.set_recorder(&recorder);
  BatchLimits limits;
  limits.num_threads = 1;  // every query reuses one worker solver slot
  const auto batch = runner.RunCst(queries_, 3, {}, limits);
  obs::AggregateRecorder::Totals totals = recorder.Snapshot();
  EXPECT_EQ(totals.queries, queries_.size());
  // The recorded per-phase sums must agree with the batch's own stat
  // aggregation — the recorder sees each query's telemetry exactly once.
  EXPECT_EQ(totals.sum.TotalVisited(), batch.stats.visited_vertices);
  EXPECT_EQ(totals.sum.TotalScanned(), batch.stats.scanned_edges);
  EXPECT_EQ(totals.fallbacks, batch.stats.global_fallbacks);
  EXPECT_EQ(totals.sum.answer_size, batch.stats.total_answer_size);

  // A second batch on the same runner doubles the totals exactly, and a
  // multi-threaded batch lands the same counts (worker-count invariant).
  limits.num_threads = 4;
  runner.RunCst(queries_, 3, {}, limits);
  totals = recorder.Snapshot();
  EXPECT_EQ(totals.queries, 2 * queries_.size());
  EXPECT_EQ(totals.sum.TotalVisited(), 2 * batch.stats.visited_vertices);

  // Detaching restores the null sink: nothing further is recorded.
  runner.set_recorder(nullptr);
  runner.RunCst(queries_, 3, {}, limits);
  EXPECT_EQ(recorder.Snapshot().queries, 2 * queries_.size());
}

TEST_F(BatchRunnerTest, StatsAggregateThePerQueryCounters) {
  // The batch totals must equal the sum of per-query QueryStats,
  // regardless of thread count (each query's stats are deterministic).
  LocalCstSolver solver(graph_, &ordered_, &facts_);
  BatchStats expected;
  for (VertexId v : queries_) {
    QueryStats stats;
    const auto community = solver.Solve(v, 3, {}, &stats);
    expected.visited_vertices += stats.visited_vertices;
    expected.scanned_edges += stats.scanned_edges;
    expected.global_fallbacks += stats.used_global_fallback ? 1 : 0;
    expected.total_answer_size += stats.answer_size;
    if (community.has_value()) ++expected.answered;
  }

  BatchRunner runner(graph_, &ordered_, &facts_);
  for (unsigned threads : {1u, 4u}) {
    BatchLimits limits;
    limits.num_threads = threads;
    const auto batch = runner.RunCst(queries_, 3, {}, limits);
    EXPECT_EQ(batch.stats.completed, queries_.size());
    EXPECT_EQ(batch.stats.answered, expected.answered);
    EXPECT_EQ(batch.stats.visited_vertices, expected.visited_vertices);
    EXPECT_EQ(batch.stats.scanned_edges, expected.scanned_edges);
    EXPECT_EQ(batch.stats.global_fallbacks, expected.global_fallbacks);
    EXPECT_EQ(batch.stats.total_answer_size, expected.total_answer_size);
    EXPECT_GE(batch.stats.wall_ms, 0.0);
  }
}

TEST_F(BatchRunnerTest, CancelledBatchReportsCompletedPrefix) {
  BatchRunner runner(graph_, &ordered_, &facts_);
  std::atomic<bool> cancel{true};
  BatchLimits limits;
  limits.cancel = &cancel;
  const auto batch = runner.RunCst(queries_, 3, {}, limits);
  EXPECT_TRUE(batch.stats.cancelled);
  EXPECT_EQ(batch.stats.completed, 0u);
  EXPECT_EQ(batch.stats.CountOf(Termination::kCancelled), queries_.size());
  for (const auto& result : batch.results) {
    EXPECT_FALSE(result.has_value());
    EXPECT_EQ(result.status, Termination::kCancelled);
  }
}

TEST_F(BatchRunnerTest, EmptyBatchIsANoOp) {
  BatchRunner runner(graph_, &ordered_, &facts_);
  const auto cst = runner.RunCst({}, 3);
  EXPECT_TRUE(cst.results.empty());
  EXPECT_EQ(cst.stats.completed, 0u);
  const auto csm = runner.RunCsm({});
  EXPECT_TRUE(csm.results.empty());
}

TEST(BatchRunnerDeadlineTest, DeadlineYieldsCompletedPrefix) {
  // A graph big enough that thousands of CSM queries cannot finish in a
  // fraction of a millisecond, so the deadline reliably truncates.
  gen::LfrParams params;
  params.n = 3000;
  params.min_degree = 4;
  params.max_degree = 40;
  params.min_community = 20;
  params.max_community = 80;
  params.seed = 77;
  Graph g = gen::Lfr(params).graph;
  const GraphFacts facts = GraphFacts::Compute(g);
  const OrderedAdjacency ordered(g);

  std::vector<VertexId> queries;
  for (int rep = 0; rep < 4; ++rep) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) queries.push_back(v);
  }

  BatchRunner runner(g, &ordered, &facts);
  BatchLimits limits;
  limits.deadline_ms = 0.05;
  const auto batch = runner.RunCsm(queries, {}, limits);
  ASSERT_LT(batch.stats.completed, queries.size());
  EXPECT_TRUE(batch.stats.deadline_hit);

  // Queries in the executed prefix either finished (and then match the
  // serial reference) or were interrupted mid-search by the batch
  // deadline, which now reaches into in-flight queries via their guards.
  LocalCsmSolver solver(g, &ordered, &facts);
  for (size_t i = 0; i < batch.stats.completed; ++i) {
    const SearchResult& result = batch.results[i];
    if (result.Found()) {
      EXPECT_EQ(result->min_degree, solver.Solve(queries[i])->min_degree)
          << "i=" << i;
    } else {
      EXPECT_EQ(result.status, Termination::kDeadline) << "i=" << i;
    }
  }
  // Never-started tail slots report the batch stop cause with the
  // singleton query vertex as the trivial partial answer.
  for (size_t i = batch.stats.completed; i < queries.size(); ++i) {
    const SearchResult& result = batch.results[i];
    EXPECT_FALSE(result.has_value());
    EXPECT_EQ(result.status, Termination::kDeadline);
    ASSERT_EQ(result.best_so_far.members.size(), 1u);
    EXPECT_EQ(result.best_so_far.members[0], queries[i]);
  }
}

}  // namespace
}  // namespace locs
