// Tests for the CommunitySearcher facade.

#include "core/searcher.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

TEST(CommunitySearcherTest, FacadeBasics) {
  CommunitySearcher searcher(gen::PaperFigure1());
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  EXPECT_TRUE(searcher.has_ordered_adjacency());
  EXPECT_TRUE(searcher.facts().connected);
  EXPECT_EQ(searcher.facts().num_vertices, 14u);
  EXPECT_EQ(searcher.facts().num_edges, 26u);

  const auto cst = searcher.Cst(v('a'), 3);
  ASSERT_TRUE(cst.has_value());
  EXPECT_EQ(ToSet(cst->members),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));

  const Community csm = *searcher.Csm(v('j'));
  EXPECT_EQ(csm.min_degree, 4u);
}

TEST(CommunitySearcherTest, LocalAgreesWithGlobalEndToEnd) {
  CommunitySearcher searcher(gen::ErdosRenyiGnp(100, 0.08, 8));
  for (VertexId v0 = 0; v0 < 100; v0 += 9) {
    const Community local = *searcher.Csm(v0);
    const Community global = *searcher.CsmGlobal(v0);
    EXPECT_EQ(local.min_degree, global.min_degree);
    for (uint32_t k = 1; k <= global.min_degree + 1; ++k) {
      EXPECT_EQ(searcher.Cst(v0, k).has_value(),
                searcher.CstGlobal(v0, k).has_value());
    }
  }
}

TEST(CommunitySearcherTest, OrderingCanBeDisabled) {
  CommunitySearcher::Options options;
  options.build_ordered_adjacency = false;
  CommunitySearcher searcher(gen::Clique(10), options);
  EXPECT_FALSE(searcher.has_ordered_adjacency());
  EXPECT_DOUBLE_EQ(searcher.ordering_build_ms(), 0.0);
  EXPECT_TRUE(searcher.Cst(0, 5).has_value());
}

TEST(CommunitySearcherTest, OrderingBuildTimeReported) {
  CommunitySearcher searcher(gen::ErdosRenyiGnp(2000, 0.01, 77));
  EXPECT_GT(searcher.ordering_build_ms(), 0.0);
}

TEST(CommunitySearcherTest, DegreeTailFraction) {
  CommunitySearcher searcher(gen::Star(10));  // center deg 9, leaves deg 1
  EXPECT_DOUBLE_EQ(searcher.DegreeTailFraction(0), 1.0);
  EXPECT_DOUBLE_EQ(searcher.DegreeTailFraction(1), 1.0);
  EXPECT_DOUBLE_EQ(searcher.DegreeTailFraction(2), 0.1);
  EXPECT_DOUBLE_EQ(searcher.DegreeTailFraction(9), 0.1);
  EXPECT_DOUBLE_EQ(searcher.DegreeTailFraction(10), 0.0);
  EXPECT_DOUBLE_EQ(searcher.DegreeTailFraction(1000), 0.0);
}

TEST(CommunitySearcherTest, AdaptiveAlwaysExact) {
  CommunitySearcher searcher(gen::ErdosRenyiGnp(120, 0.07, 21));
  for (VertexId v0 = 0; v0 < 120; v0 += 7) {
    for (uint32_t k = 0; k <= 10; ++k) {
      const auto adaptive = searcher.CstAdaptive(v0, k);
      const auto global = searcher.CstGlobal(v0, k);
      ASSERT_EQ(adaptive.has_value(), global.has_value())
          << "v0=" << v0 << " k=" << k;
      if (adaptive.has_value()) {
        EXPECT_TRUE(IsValidCommunity(searcher.graph(), adaptive->members,
                                     v0, k));
      }
    }
  }
}

TEST(CommunitySearcherTest, AdaptiveDispatchBoundary) {
  // Fraction forced to 0: every query goes local; forced to 1: global.
  CommunitySearcher::Options local_only;
  local_only.adaptive_global_fraction = 1.1;  // never exceeded
  CommunitySearcher a(gen::Clique(8), local_only);
  QueryStats stats;
  a.CstAdaptive(0, 3, {}, &stats);
  EXPECT_LT(stats.visited_vertices, 8u);  // local path (stops early)

  CommunitySearcher::Options global_only;
  global_only.adaptive_global_fraction = 0.0;
  CommunitySearcher b(gen::Clique(8), global_only);
  b.CstAdaptive(0, 3, {}, &stats);
  EXPECT_EQ(stats.visited_vertices, 8u);  // global path (whole graph)
}

TEST(CommunitySearcherTest, StatsPlumbing) {
  CommunitySearcher searcher(gen::Clique(12));
  QueryStats stats;
  searcher.Cst(0, 6, {}, &stats);
  EXPECT_GT(stats.visited_vertices, 0u);
  EXPECT_EQ(stats.answer_size, 7u);
  searcher.CstGlobal(0, 6, &stats);
  EXPECT_EQ(stats.visited_vertices, 12u);
  searcher.Csm(0, {}, &stats);
  EXPECT_EQ(stats.answer_size, 12u);
  searcher.CsmGlobal(0, &stats);
  EXPECT_EQ(stats.answer_size, 12u);
}

}  // namespace
}  // namespace locs
