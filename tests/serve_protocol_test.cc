// Adversarial coverage of the locsd wire protocol: the parser is total,
// so every byte sequence — overlong lines, embedded NUL, missing args,
// non-numeric ids, surplus tokens, hostile options — must map to a typed
// WireError, never an abort. Also covers the FdTransport line framing
// (CRLF peers, unterminated tails, the too-long discard path).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "serve/transport.h"
#include "serve/wire.h"

namespace locs::serve {
namespace {

ParseResult Parse(std::string_view line) { return ParseRequest(line); }

TEST(WireParseTest, BlankLinesAreIgnorable) {
  for (const char* line : {"", "   ", "\t", " \t  "}) {
    const ParseResult result = Parse(line);
    ASSERT_TRUE(result.ok()) << '"' << line << '"';
    EXPECT_EQ(result.request.verb, Verb::kNone);
  }
}

TEST(WireParseTest, EveryVerbRoundTrips) {
  EXPECT_EQ(Parse("LOAD g /tmp/g.lcsg").request.verb, Verb::kLoad);
  EXPECT_EQ(Parse("LOADIMG g /tmp/g.limg").request.verb, Verb::kLoadImg);
  EXPECT_EQ(Parse("EVICT g").request.verb, Verb::kEvict);
  EXPECT_EQ(Parse("LIST").request.verb, Verb::kList);
  EXPECT_EQ(Parse("CST g 7 3").request.verb, Verb::kCst);
  EXPECT_EQ(Parse("CSM g 7").request.verb, Verb::kCsm);
  EXPECT_EQ(Parse("MULTI g 3 1 2").request.verb, Verb::kMulti);
  EXPECT_EQ(Parse("STATS").request.verb, Verb::kStats);
  EXPECT_EQ(Parse("PING").request.verb, Verb::kPing);
  EXPECT_EQ(Parse("QUIT").request.verb, Verb::kQuit);
}

TEST(WireParseTest, CstCarriesAllFields) {
  const ParseResult result =
      Parse("CST web 42 5 deadline_ms=250 budget=100000 limit=10");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request.graph, "web");
  EXPECT_EQ(result.request.vertices, std::vector<VertexId>{42});
  EXPECT_EQ(result.request.k, 5u);
  EXPECT_DOUBLE_EQ(result.request.limits.deadline_ms, 250.0);
  EXPECT_EQ(result.request.limits.work_budget, 100000u);
  EXPECT_EQ(result.request.member_limit, 10u);
}

TEST(WireParseTest, LoadImgCarriesGraphAndPath) {
  const ParseResult result = Parse("LOADIMG web /data/web.limg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request.verb, Verb::kLoadImg);
  EXPECT_EQ(result.request.graph, "web");
  EXPECT_EQ(result.request.path, "/data/web.limg");
}

TEST(WireParseTest, MultiParsesKOrMax) {
  const ParseResult with_k = Parse("MULTI g 4 1 2 3");
  ASSERT_TRUE(with_k.ok());
  EXPECT_FALSE(with_k.request.multi_max);
  EXPECT_EQ(with_k.request.k, 4u);
  EXPECT_EQ(with_k.request.vertices, (std::vector<VertexId>{1, 2, 3}));

  const ParseResult with_max = Parse("MULTI g max 9 8");
  ASSERT_TRUE(with_max.ok());
  EXPECT_TRUE(with_max.request.multi_max);
  EXPECT_EQ(with_max.request.vertices, (std::vector<VertexId>{9, 8}));
}

TEST(WireParseTest, ExtraWhitespaceBetweenTokensIsFine) {
  const ParseResult result = Parse("  CST   g\t7   3  ");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request.verb, Verb::kCst);
  EXPECT_EQ(result.request.k, 3u);
}

TEST(WireParseTest, UnknownVerbIsTyped) {
  for (const char* line :
       {"BOGUS", "cst g 1 2", "Load g p", "LOADX g p", "CST3 g", "42 CST"}) {
    const ParseResult result = Parse(line);
    EXPECT_EQ(result.error, WireError::kUnknownVerb) << line;
  }
}

TEST(WireParseTest, UnknownVerbDetailIsSanitizedAndBounded) {
  // Control bytes must not leak into the (printable) reply line, and a
  // huge token must not echo back at full size.
  std::string line(1024, 'X');
  line[1] = '\x01';
  line[2] = '\n';
  const ParseResult result = Parse(line);
  ASSERT_EQ(result.error, WireError::kUnknownVerb);
  const std::string reply = FormatError(result.error, result.detail);
  EXPECT_LT(reply.size(), 128u);
  for (const char c : reply) {
    EXPECT_TRUE(c >= 0x20 && c < 0x7f) << static_cast<int>(c);
  }
}

TEST(WireParseTest, MissingArgsForEveryVerb) {
  for (const char* line :
       {"LOAD", "LOAD g", "LOADIMG", "LOADIMG g", "EVICT", "CST", "CST g",
        "CST g 7", "CSM", "CSM g", "MULTI", "MULTI g", "MULTI g 3",
        "MULTI g max"}) {
    EXPECT_EQ(Parse(line).error, WireError::kMissingArg) << line;
  }
}

TEST(WireParseTest, SurplusArgsAreRejected) {
  for (const char* line :
       {"LIST extra", "STATS now", "PING x", "QUIT y", "EVICT g h",
        "LOAD g path extra", "LOADIMG g path extra", "CST g 7 3 9",
        "CSM g 7 9"}) {
    EXPECT_EQ(Parse(line).error, WireError::kExtraArg) << line;
  }
}

TEST(WireParseTest, NonNumericIdsAreTyped) {
  for (const char* line :
       {"CST g seven 3", "CST g 7 three", "CST g 7.5 3", "CST g -1 3",
        "CST g 0x10 3", "CST g 7e2 3", "CST g 99999999999999999999 3",
        "CSM g vertex", "MULTI g k 1", "MULTI g 3 1 two",
        "MULTI g 3 18446744073709551616"}) {
    EXPECT_EQ(Parse(line).error, WireError::kBadNumber) << line;
  }
}

TEST(WireParseTest, BadOptionsAreTyped) {
  for (const char* line :
       {"CST g 7 3 deadline_ms=", "CST g 7 3 deadline_ms=soon",
        "CST g 7 3 budget=big", "CST g 7 3 budget=-5",
        "CST g 7 3 frobnicate=1", "CSM g 7 limit=ten", "CSM g 7 =5"}) {
    EXPECT_EQ(Parse(line).error, WireError::kBadOption) << line;
  }
}

TEST(WireParseTest, EmbeddedNulIsRejectedNotFatal) {
  // A NUL is an ordinary byte to the tokenizer; the resulting token is
  // simply not a verb / not a number. Nothing may abort.
  const std::string nul_verb = std::string("CS\0T g 1 2", 10);
  EXPECT_EQ(Parse(nul_verb).error, WireError::kUnknownVerb);
  const std::string nul_arg = std::string("CST g 1\0 2", 10);
  EXPECT_EQ(Parse(nul_arg).error, WireError::kBadNumber);
  const std::string nul_only = std::string("\0\0\0", 3);
  EXPECT_EQ(Parse(nul_only).error, WireError::kUnknownVerb);
}

TEST(WireParseTest, OverlongLineIsTyped) {
  std::string line = "MULTI g 3";
  while (line.size() <= kMaxLineBytes) line += " 7";
  EXPECT_EQ(Parse(line).error, WireError::kLineTooLong);
  // One byte under the cap parses normally.
  std::string ok_line = "CSM g 7";
  ok_line += std::string(kMaxLineBytes - ok_line.size() - 1, ' ');
  EXPECT_TRUE(Parse(ok_line).ok());
}

TEST(WireParseTest, FuzzNeverAborts) {
  // 20k random byte strings through the parser: every outcome must be
  // either a parsed request or a typed error — this test passing at all
  // is the assertion (no crash, no sanitizer report).
  std::mt19937 rng(20140612);  // the paper's publication date as a seed
  std::uniform_int_distribution<int> len_dist(0, 200);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> mode_dist(0, 2);
  const std::string alphabet = "CSTMULIODAEVQPNG 0123456789=_.max";
  for (int i = 0; i < 20000; ++i) {
    std::string line;
    const int length = len_dist(rng);
    const int mode = mode_dist(rng);
    for (int b = 0; b < length; ++b) {
      if (mode == 0) {
        line += static_cast<char>(byte_dist(rng));
      } else {
        // Structured-ish noise: more likely to reach deep parser states.
        line += alphabet[static_cast<size_t>(byte_dist(rng)) %
                         alphabet.size()];
      }
    }
    const ParseResult result = Parse(line);
    if (!result.ok()) {
      // Errors render without surprises, too.
      const std::string reply = FormatError(result.error, result.detail);
      EXPECT_EQ(reply.rfind("ERR ", 0), 0u);
    }
  }
}

TEST(WireParseTest, ErrorAndVerbNamesAreStable) {
  EXPECT_EQ(VerbName(Verb::kMulti), "MULTI");
  EXPECT_EQ(WireErrorName(WireError::kLineTooLong), "line-too-long");
  EXPECT_EQ(WireErrorName(WireError::kShuttingDown), "shutting-down");
  EXPECT_EQ(FormatError(WireError::kBadNumber, "token 'x'"),
            "ERR bad-number token 'x'");
}

// --- FdTransport framing -------------------------------------------------

/// Feeds `bytes` through a file-backed fd (payloads exceed the pipe
/// buffer) and drains the transport; returns the (status, line) sequence
/// until EOF/error.
std::vector<std::pair<Transport::ReadStatus, std::string>> Feed(
    const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/transport_feed.bin";
  const int write_fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  EXPECT_GE(write_fd, 0);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::write(write_fd, bytes.data() + off, bytes.size() - off);
    EXPECT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  ::close(write_fd);
  const int read_fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(read_fd, 0);
  FdTransport transport(read_fd, -1);
  std::vector<std::pair<Transport::ReadStatus, std::string>> out;
  for (;;) {
    std::string line;
    const Transport::ReadStatus status = transport.ReadLine(&line);
    out.emplace_back(status, line);
    if (status == Transport::ReadStatus::kEof ||
        status == Transport::ReadStatus::kError) {
      break;
    }
  }
  ::close(read_fd);
  return out;
}

TEST(FdTransportTest, SplitsLinesAndStripsCr) {
  const auto out = Feed("PING\r\nSTATS\nQUIT\n");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].second, "PING");
  EXPECT_EQ(out[1].second, "STATS");
  EXPECT_EQ(out[2].second, "QUIT");
  EXPECT_EQ(out[3].first, Transport::ReadStatus::kEof);
}

TEST(FdTransportTest, UnterminatedTailIsStillALine) {
  const auto out = Feed("PING\nQUIT");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].first, Transport::ReadStatus::kLine);
  EXPECT_EQ(out[1].second, "QUIT");
  EXPECT_EQ(out[2].first, Transport::ReadStatus::kEof);
}

TEST(FdTransportTest, OverlongLineIsDiscardedSessionSurvives) {
  // 80 KiB of garbage with no newline, then a valid request: the reader
  // must report kTooLong once (bounded buffering) and then resume.
  std::string bytes(80 * 1024, 'A');
  bytes += "\nPING\n";
  const auto out = Feed(bytes);
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out[0].first, Transport::ReadStatus::kTooLong);
  EXPECT_EQ(out[1].first, Transport::ReadStatus::kLine);
  EXPECT_EQ(out[1].second, "PING");
}

TEST(FdTransportTest, PreservesEmbeddedNul) {
  const auto out = Feed(std::string("A\0B\n", 4));
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out[0].second, std::string("A\0B", 3));
}

TEST(FdTransportTest, WriteSideClosedMidLineSurfacesPartialThenEof) {
  // A peer torn down mid-line (pipe writer closes without the final
  // newline) already sent a complete request — it must surface as a
  // line, then a clean EOF.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "PING\nSTA", 8), 8);
  ::close(fds[1]);  // mid-line hangup
  FdTransport transport(fds[0], -1);
  std::string line;
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kLine);
  EXPECT_EQ(line, "PING");
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kLine);
  EXPECT_EQ(line, "STA");
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kEof);
  ::close(fds[0]);
}

TEST(FdTransportTest, SocketShutdownMidLineSurfacesPartialThenEof) {
  // Same contract over a socketpair with SHUT_WR — the TCP-shaped
  // variant of the mid-line hangup.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[1], "QUIT", 4, 0), 4);
  ASSERT_EQ(::shutdown(fds[1], SHUT_WR), 0);
  FdTransport transport(fds[0], -1);
  std::string line;
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kLine);
  EXPECT_EQ(line, "QUIT");
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kEof);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(BusyReplyTest, FormatCarriesCountsAndRetryHint) {
  EXPECT_EQ(FormatBusy(3, 7, 200),
            "BUSY inflight=3 queued=7 retry_after_ms=200");
  // The hint rides last so historical "BUSY inflight=... queued=..."
  // prefix matchers keep working.
  EXPECT_EQ(FormatBusy(0, 0, 25).find("BUSY inflight=0 queued=0"), 0u);
}

TEST(BusyReplyTest, FormatParseRoundTrip) {
  for (const uint64_t hint : {uint64_t{0}, uint64_t{25}, uint64_t{2000},
                              uint64_t{123456789}}) {
    uint64_t parsed = ~uint64_t{0};
    EXPECT_TRUE(ParseBusyReply(FormatBusy(1, 2, hint), &parsed));
    EXPECT_EQ(parsed, hint);
  }
}

TEST(BusyReplyTest, ParseToleratesLegacyAndForeignShapes) {
  uint64_t hint = ~uint64_t{0};
  // Pre-hint servers and the session-cap fast-reject carry no field:
  // still BUSY, hint degrades to 0.
  EXPECT_TRUE(ParseBusyReply("BUSY inflight=1 queued=0", &hint));
  EXPECT_EQ(hint, 0u);
  EXPECT_TRUE(ParseBusyReply("BUSY sessions=8", &hint));
  EXPECT_EQ(hint, 0u);
  EXPECT_TRUE(ParseBusyReply("BUSY", &hint));
  EXPECT_EQ(hint, 0u);
  // Malformed values degrade to 0 rather than mis-parse.
  EXPECT_TRUE(ParseBusyReply("BUSY retry_after_ms=12x queued=0", &hint));
  EXPECT_EQ(hint, 0u);
  EXPECT_TRUE(ParseBusyReply("BUSY retry_after_ms=", &hint));
  EXPECT_EQ(hint, 0u);
  // The field must sit on a token boundary.
  EXPECT_TRUE(ParseBusyReply("BUSY xretry_after_ms=99", &hint));
  EXPECT_EQ(hint, 0u);
  // Non-BUSY replies are not BUSY.
  EXPECT_FALSE(ParseBusyReply("OK pong", &hint));
  EXPECT_FALSE(ParseBusyReply("ERR busy", &hint));
  EXPECT_FALSE(ParseBusyReply("BUSYx", &hint));
  EXPECT_FALSE(ParseBusyReply("", &hint));
}

TEST(BusyReplyTest, NewWireErrorKindsHaveStableNames) {
  EXPECT_EQ(WireErrorName(WireError::kReplyTooLarge), "too-large");
  EXPECT_EQ(WireErrorName(WireError::kIoTimeout), "io-timeout");
  EXPECT_EQ(WireErrorName(WireError::kInternal), "internal");
}

TEST(FdTransportTest, ReadErrorAfterPartialLineSurfacesLineThenError) {
  // An errno-level read failure must not swallow a buffered partial
  // line: the line is delivered first, the error on the next call.
  // A non-blocking pipe makes the failure deterministic — the first
  // read drains the buffered bytes, the second fails with EAGAIN.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);
  ASSERT_EQ(::write(fds[1], "STATS", 5), 5);
  FdTransport transport(fds[0], -1);
  std::string line;
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kLine);
  EXPECT_EQ(line, "STATS");
  EXPECT_EQ(transport.ReadLine(&line), Transport::ReadStatus::kError);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace locs::serve
