// Tests for constrained community search (FilteredCommunitySearcher).

#include "core/filtered.h"

#include <gtest/gtest.h>

#include "core/global.h"
#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

TEST(FilteredSearchTest, AllAdmittedEqualsUnconstrained) {
  Graph g = gen::PaperFigure1();
  const std::vector<uint8_t> all(g.NumVertices(), 1);
  FilteredCommunitySearcher filtered(g, all);
  for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
    const auto constrained = filtered.Csm(v0);
    ASSERT_TRUE(constrained.has_value());
    EXPECT_EQ(constrained->min_degree, GlobalCsm(g, v0)->min_degree);
  }
}

TEST(FilteredSearchTest, UnadmittedQueryRejected) {
  Graph g = gen::Clique(6);
  std::vector<uint8_t> admitted(6, 1);
  admitted[3] = 0;
  FilteredCommunitySearcher filtered(g, admitted);
  EXPECT_FALSE(filtered.Cst(3, 1).has_value());
  EXPECT_FALSE(filtered.Csm(3).has_value());
  EXPECT_FALSE(filtered.IsAdmitted(3));
  EXPECT_TRUE(filtered.IsAdmitted(0));
  EXPECT_EQ(filtered.NumAdmitted(), 5u);
}

TEST(FilteredSearchTest, MaskExcludesVerticesFromCommunities) {
  // K6 with vertex 5 masked out: the best constrained community is K5.
  Graph g = gen::Clique(6);
  std::vector<uint8_t> admitted(6, 1);
  admitted[5] = 0;
  FilteredCommunitySearcher filtered(g, admitted);
  const auto best = filtered.Csm(0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->min_degree, 4u);
  EXPECT_EQ(ToSet(best->members), ToSet({0, 1, 2, 3, 4}));
}

TEST(FilteredSearchTest, MaskCanDisconnectCommunities) {
  // Figure 1 with the bridge f masked: queries in V1 can never reach V2
  // even at k = 1..2, and V1's own community is unchanged.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  std::vector<uint8_t> admitted(g.NumVertices(), 1);
  admitted[v('f')] = 0;
  FilteredCommunitySearcher filtered(g, admitted);
  const auto cst2 = filtered.Cst(v('e'), 2);
  ASSERT_TRUE(cst2.has_value());
  // Without f, any min-degree-2 answer around e must stay inside V1 (V2
  // is unreachable): local search returns some valid subset of it.
  const auto v1 = ToSet({v('a'), v('b'), v('c'), v('d'), v('e')});
  for (VertexId member : cst2->members) {
    EXPECT_TRUE(v1.count(member) > 0);
  }
  EXPECT_GE(MinDegreeOfInduced(g, cst2->members), 2u);
  const auto best = filtered.Csm(v('e'));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->min_degree, 3u);
}

TEST(FilteredSearchTest, ResultsAreValidInOriginalGraphSemantics) {
  Graph g = gen::ErdosRenyiGnp(80, 0.12, 5);
  Rng rng(9);
  std::vector<uint8_t> admitted(g.NumVertices(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    admitted[v] = rng.Chance(0.7) ? 1 : 0;
  }
  FilteredCommunitySearcher filtered(g, admitted);
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 7) {
    if (admitted[v0] == 0) {
      EXPECT_FALSE(filtered.Csm(v0).has_value());
      continue;
    }
    const auto best = filtered.Csm(v0);
    ASSERT_TRUE(best.has_value());
    // Every member admitted, community connected in G, and the reported
    // δ matches the induced min degree in G (admitted-only edges equal
    // induced edges because all members are admitted).
    for (VertexId member : best->members) {
      EXPECT_NE(admitted[member], 0);
    }
    EXPECT_TRUE(IsValidCommunity(g, best->members, v0, best->min_degree));
  }
}

TEST(FilteredSearchTest, LabelConstrainedCaseStudy) {
  // Planted graph, communities 0..3; admit only "opted-in" communities
  // {0, 1}: queries in community 0 get their cave; queries in community 2
  // are rejected.
  const gen::PlantedGraph net = gen::PlantedPartition(4, 18, 0.5, 0.02, 8);
  std::vector<uint8_t> admitted(net.graph.NumVertices(), 0);
  for (VertexId v = 0; v < net.graph.NumVertices(); ++v) {
    admitted[v] = net.community[v] <= 1 ? 1 : 0;
  }
  FilteredCommunitySearcher filtered(net.graph, admitted);
  const auto best = filtered.Csm(0);  // community 0
  ASSERT_TRUE(best.has_value());
  for (VertexId member : best->members) {
    EXPECT_LE(net.community[member], 1u);
  }
  EXPECT_FALSE(filtered.Csm(net.graph.NumVertices() - 1).has_value());
}

}  // namespace
}  // namespace locs
