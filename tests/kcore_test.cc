// Tests for k-core decomposition and maxcore extraction.

#include "core/kcore.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::Sorted;
using testing::ToSet;

/// Reference core decomposition: repeated linear scans (O(n^2), tiny
/// graphs only).
std::vector<uint32_t> NaiveCores(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<uint32_t> core(n, 0);
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  uint32_t current = 0;
  for (VertexId removed = 0; removed < n; ++removed) {
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && (best == kInvalidVertex || deg[v] < deg[best])) {
        best = v;
      }
    }
    current = std::max(current, deg[best]);
    core[best] = current;
    alive[best] = 0;
    for (VertexId w : g.Neighbors(best)) {
      if (alive[w]) --deg[w];
    }
  }
  return core;
}

TEST(KCoreTest, CliqueCores) {
  Graph g = gen::Clique(7);
  const CoreDecomposition cores = ComputeCores(g);
  EXPECT_EQ(cores.degeneracy, 6u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(cores.core[v], 6u);
}

TEST(KCoreTest, CycleCores) {
  Graph g = gen::Cycle(10);
  const CoreDecomposition cores = ComputeCores(g);
  EXPECT_EQ(cores.degeneracy, 2u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(cores.core[v], 2u);
}

TEST(KCoreTest, StarCores) {
  Graph g = gen::Star(12);
  const CoreDecomposition cores = ComputeCores(g);
  EXPECT_EQ(cores.degeneracy, 1u);
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(cores.core[v], 1u);
}

TEST(KCoreTest, PathEndpoints) {
  Graph g = gen::Path(6);
  const CoreDecomposition cores = ComputeCores(g);
  EXPECT_EQ(cores.degeneracy, 1u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(cores.core[v], 1u);
}

TEST(KCoreTest, EmptyAndSingleton) {
  EXPECT_EQ(ComputeCores(Graph()).degeneracy, 0u);
  Graph singleton = BuildGraph(1, {});
  const CoreDecomposition cores = ComputeCores(singleton);
  EXPECT_EQ(cores.degeneracy, 0u);
  EXPECT_EQ(cores.core[0], 0u);
}

TEST(KCoreTest, PaperFigure1Cores) {
  // Example 5: 3-core = {a..e, g..l}; 4-core = {g..l}; f, m, n below.
  Graph g = gen::PaperFigure1();
  const CoreDecomposition cores = ComputeCores(g);
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  for (char c : {'a', 'b', 'c', 'd', 'e'}) EXPECT_EQ(cores.core[v(c)], 3u);
  for (char c : {'g', 'h', 'i', 'j', 'k', 'l'}) {
    EXPECT_EQ(cores.core[v(c)], 4u) << c;
  }
  EXPECT_LT(cores.core[v('f')], 3u);
  EXPECT_LE(cores.core[v('m')], 1u);
  EXPECT_LE(cores.core[v('n')], 1u);
  EXPECT_EQ(cores.degeneracy, 4u);

  EXPECT_EQ(ToSet(KCoreMembers(cores, 4)),
            ToSet({v('g'), v('h'), v('i'), v('j'), v('k'), v('l')}));
  // maxcore(G, e) = {a,b,c,d,e} (Example 5).
  EXPECT_EQ(ToSet(MaxCoreComponentOf(g, cores, v('e'))),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
}

TEST(KCoreTest, PeelOrderIsNonDecreasingInCore) {
  Graph g = gen::Barbell(5, 3);
  const CoreDecomposition cores = ComputeCores(g);
  ASSERT_EQ(cores.peel_order.size(), g.NumVertices());
  // Peeling never removes a vertex whose final core number is below the
  // current level once that level has been reached.
  uint32_t level = 0;
  for (VertexId v : cores.peel_order) {
    EXPECT_GE(cores.core[v], level);
    level = std::max(level, cores.core[v]);
  }
}

TEST(KCoreTest, KCoreComponentIsValidCst) {
  Graph g = gen::Barbell(5, 2);
  const CoreDecomposition cores = ComputeCores(g);
  const std::vector<VertexId> comp = KCoreComponentOf(g, cores, 0, 4);
  ASSERT_FALSE(comp.empty());
  EXPECT_TRUE(IsValidCommunity(g, comp, 0, 4));
  EXPECT_EQ(comp.size(), 5u);  // the left K5 only
}

TEST(KCoreTest, KCoreComponentEmptyWhenOutside) {
  Graph g = gen::Barbell(5, 2);
  const CoreDecomposition cores = ComputeCores(g);
  // A bridge vertex has core 1: no 4-core component for it.
  EXPECT_TRUE(KCoreComponentOf(g, cores, 5, 4).empty());
}

class KCoreRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KCoreRandomTest, MatchesNaiveReference) {
  Graph g = gen::ErdosRenyiGnp(40, 0.15, GetParam());
  const CoreDecomposition fast = ComputeCores(g);
  const std::vector<uint32_t> slow = NaiveCores(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(fast.core[v], slow[v]) << "vertex " << v;
  }
}

TEST_P(KCoreRandomTest, KCoreIsMaximalAndQualified) {
  Graph g = gen::ErdosRenyiGnp(60, 0.1, GetParam() + 1000);
  const CoreDecomposition cores = ComputeCores(g);
  for (uint32_t k = 1; k <= cores.degeneracy; ++k) {
    const std::vector<VertexId> members = KCoreMembers(cores, k);
    if (members.empty()) continue;
    // Every member has >= k neighbors within the k-core.
    std::vector<uint8_t> in(g.NumVertices(), 0);
    for (VertexId v : members) in[v] = 1;
    for (VertexId v : members) {
      uint32_t deg = 0;
      for (VertexId w : g.Neighbors(v)) deg += in[w];
      EXPECT_GE(deg, k);
    }
    // Maximality: no vertex outside has >= k neighbors inside a k-core
    // after augmenting... (sufficient check: peeling a vertex set keeps
    // the k-core unique, so adding any excluded vertex must violate the
    // degree constraint somewhere; verify the direct condition instead:
    // iteratively adding excluded vertices with >= k inside-neighbors must
    // reach a fixpoint equal to the k-core itself).
    bool grew = true;
    while (grew) {
      grew = false;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (in[v]) continue;
        uint32_t deg = 0;
        for (VertexId w : g.Neighbors(v)) deg += in[w];
        if (deg >= k) {
          in[v] = 1;
          grew = true;
        }
      }
    }
    // The grown set may violate the k-core property for the added
    // vertices' *own* degree only if the original was not maximal; verify
    // no strictly larger qualified set exists by peeling the grown set.
    std::vector<VertexId> grown;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (in[v]) grown.push_back(v);
    }
    // Peel grown down to its k-core: it must equal `members`.
    bool removed = true;
    while (removed) {
      removed = false;
      std::vector<uint8_t> in2(g.NumVertices(), 0);
      for (VertexId v : grown) in2[v] = 1;
      std::vector<VertexId> next;
      for (VertexId v : grown) {
        uint32_t deg = 0;
        for (VertexId w : g.Neighbors(v)) deg += in2[w];
        if (deg >= k) {
          next.push_back(v);
        } else {
          removed = true;
        }
      }
      grown = next;
    }
    EXPECT_EQ(Sorted(grown), Sorted(members)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 99));

}  // namespace
}  // namespace locs
