// Tests for util: RNG, statistics, tables, CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace locs {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (uint64_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.Range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleDistinctProducesDistinctSorted) {
  Rng rng(13);
  for (size_t count : {0u, 1u, 5u, 50u, 99u}) {
    const auto sample = rng.SampleDistinct(100, count);
    ASSERT_EQ(sample.size(), count);
    for (size_t i = 1; i < sample.size(); ++i) {
      EXPECT_LT(sample[i - 1], sample[i]);
    }
    for (uint64_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, PowerLawBoundsRespected) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.PowerLaw(3, 50, 2.0);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 50);
  }
}

TEST(RngTest, PowerLawSkewsLow) {
  Rng rng(19);
  int low = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    low += rng.PowerLaw(1, 100, 2.5) <= 2;
  }
  // For exponent 2.5 over [1,100] the mass at {1,2} is > 80%.
  EXPECT_GT(low, kDraws * 7 / 10);
}

TEST(StatsTest, EmptySummary) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, SingleSample) {
  const Summary s = Summarize({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(StatsTest, KnownValues) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, OnlineMatchesBatch) {
  std::vector<double> samples;
  Rng rng(23);
  OnlineStats online;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 10.0;
    samples.push_back(x);
    online.Add(x);
  }
  const Summary batch = Summarize(samples);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(online.stddev(), batch.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(online.min(), batch.min);
  EXPECT_DOUBLE_EQ(online.max(), batch.max);
  EXPECT_EQ(online.count(), batch.count);
}

TEST(TableTest, AlignedRendering) {
  TableWriter table({"name", "value"});
  table.Row().Cell("alpha").Num(int64_t{1});
  table.Row().Cell("b").Num(2.5, 1);
  const std::string out = table.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  TableWriter table({"a", "b"});
  table.Row().Num(int64_t{1}).Num(int64_t{2});
  const std::string csv = table.RenderCsv("tag");
  EXPECT_NE(csv.find("CSV,tag,a,b"), std::string::npos);
  EXPECT_NE(csv.find("CSV,tag,1,2"), std::string::npos);
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(CliTest, ParsesFlags) {
  const char* argv[] = {"prog", "--alpha=2.5", "--name=foo", "--flag",
                        "--count=42"};
  CommandLine cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.Has("alpha"));
  EXPECT_FALSE(cli.Has("beta"));
  EXPECT_DOUBLE_EQ(cli.GetDouble("alpha", 0.0), 2.5);
  EXPECT_EQ(cli.GetString("name", ""), "foo");
  EXPECT_TRUE(cli.GetBool("flag", false));
  EXPECT_EQ(cli.GetInt("count", 0), 42);
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
}

TEST(CliTest, BenchScaleDefault) {
  unsetenv("LOCS_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  setenv("LOCS_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 2.5);
  setenv("LOCS_BENCH_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  unsetenv("LOCS_BENCH_SCALE");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0.0;
  // Plain assignment: compound assignment to a volatile is deprecated in
  // C++20.
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(timer.Micros(), 0.0);
  EXPECT_GE(timer.Millis(), 0.0);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 1.0);
}

}  // namespace
}  // namespace locs
