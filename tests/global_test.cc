// Tests for global CST/CSM search (§3), cross-validated against brute
// force and against each other.

#include "core/global.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "graph/builder.h"
#include "gen/erdos_renyi.h"
#include "gen/lfr.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::BruteForceCsmGoodness;
using testing::ToSet;

TEST(GlobalCstTest, CliqueWholeGraph) {
  Graph g = gen::Clique(6);
  const auto result = GlobalCst(g, 0, 5);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->members.size(), 6u);
  EXPECT_EQ(result->min_degree, 5u);
}

TEST(GlobalCstTest, InfeasibleThreshold) {
  Graph g = gen::Clique(6);
  EXPECT_FALSE(GlobalCst(g, 0, 6).has_value());
}

TEST(GlobalCstTest, ThresholdZeroAlwaysSolvable) {
  Graph g = gen::Path(4);
  const auto result = GlobalCst(g, 0, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsValidCommunity(g, result->members, 0, 0));
}

TEST(GlobalCstTest, PaperExample4) {
  // Example 4: query a. CST(3) = {a,b,c,d,e}; CST(2) answers exist.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const auto cst3 = GlobalCst(g, v('a'), 3);
  ASSERT_TRUE(cst3.has_value());
  EXPECT_EQ(ToSet(cst3->members),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
  const auto cst2 = GlobalCst(g, v('a'), 2);
  ASSERT_TRUE(cst2.has_value());
  EXPECT_TRUE(IsValidCommunity(g, cst2->members, v('a'), 2));
}

TEST(GlobalCstTest, PaperExample6AdmissibleSet) {
  // Example 6: for query e, the CST(2) maximal answer is V - {m, n}.
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const auto cst2 = GlobalCst(g, v('e'), 2);
  ASSERT_TRUE(cst2.has_value());
  std::set<VertexId> expected;
  for (char c = 'a'; c <= 'l'; ++c) expected.insert(v(c));
  EXPECT_EQ(ToSet(cst2->members), expected);
}

TEST(GlobalCstTest, StatsCountWholeGraph) {
  Graph g = gen::Cycle(20);
  QueryStats stats;
  GlobalCst(g, 0, 2, &stats);
  EXPECT_EQ(stats.visited_vertices, 20u);
  EXPECT_EQ(stats.scanned_edges, 40u);
  EXPECT_EQ(stats.answer_size, 20u);
}

TEST(GlobalCsmTest, PaperExample2BestCommunityForJ) {
  // The best community for j is the 4-core {g,...,l} (Example 5; see the
  // PaperFigure1 doc comment about Example 2's typo).
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const Community best = *GlobalCsm(g, v('j'));
  EXPECT_EQ(best.min_degree, 4u);
  EXPECT_EQ(ToSet(best.members),
            ToSet({v('g'), v('h'), v('i'), v('j'), v('k'), v('l')}));
}

TEST(GlobalCsmTest, PaperExample6BestCommunityForE) {
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const Community best = *GlobalCsm(g, v('e'));
  EXPECT_EQ(best.min_degree, 3u);
  EXPECT_EQ(ToSet(best.members),
            ToSet({v('a'), v('b'), v('c'), v('d'), v('e')}));
}

TEST(GlobalCsmTest, IsolatedVertex) {
  Graph g = BuildGraph(3, {{0, 1}});
  const Community best = *GlobalCsm(g, 2);
  EXPECT_EQ(best.min_degree, 0u);
  EXPECT_EQ(best.members, std::vector<VertexId>{2});
}

TEST(GlobalCsmTest, GreedyAgreesOnClassicFamilies) {
  for (const Graph& g :
       {gen::Clique(8), gen::Cycle(11), gen::Star(9), gen::Barbell(5, 2),
        gen::Grid(4, 5), gen::PaperFigure1()}) {
    for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
      const Community a = *GlobalCsm(g, v0);
      const Community b = GreedyGlobalCsm(g, v0);
      EXPECT_EQ(a.min_degree, b.min_degree) << "v0=" << v0;
      EXPECT_EQ(ToSet(a.members), ToSet(b.members)) << "v0=" << v0;
      EXPECT_TRUE(IsValidCommunity(g, a.members, v0, a.min_degree));
    }
  }
}

class GlobalRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobalRandomTest, CsmMatchesBruteForce) {
  Graph g = gen::ErdosRenyiGnp(12, 0.3, GetParam());
  for (VertexId v0 = 0; v0 < g.NumVertices(); ++v0) {
    const Community best = *GlobalCsm(g, v0);
    EXPECT_EQ(best.min_degree, BruteForceCsmGoodness(g, v0)) << "v0=" << v0;
    EXPECT_TRUE(IsValidCommunity(g, best.members, v0, best.min_degree));
  }
}

TEST_P(GlobalRandomTest, CstConsistentWithCsm) {
  Graph g = gen::ErdosRenyiGnp(30, 0.2, GetParam() + 7);
  for (VertexId v0 = 0; v0 < g.NumVertices(); v0 += 3) {
    const Community best = *GlobalCsm(g, v0);
    // CST(k) solvable exactly for k <= m*(G, v0) (Propositions 1 and 2).
    for (uint32_t k = 0; k <= best.min_degree + 2; ++k) {
      const auto cst = GlobalCst(g, v0, k);
      if (k <= best.min_degree) {
        ASSERT_TRUE(cst.has_value()) << "k=" << k << " v0=" << v0;
        EXPECT_TRUE(IsValidCommunity(g, cst->members, v0, k));
      } else {
        EXPECT_FALSE(cst.has_value()) << "k=" << k << " v0=" << v0;
      }
    }
  }
}

TEST_P(GlobalRandomTest, GreedyAgreesWithDecompositionOnLfr) {
  gen::LfrParams params;
  params.n = 300;
  params.seed = GetParam();
  params.min_community = 10;
  params.max_community = 60;
  params.min_degree = 3;
  params.max_degree = 20;
  const gen::LfrGraph lfr = gen::Lfr(params);
  for (VertexId v0 = 0; v0 < lfr.graph.NumVertices(); v0 += 37) {
    const Community a = *GlobalCsm(lfr.graph, v0);
    const Community b = GreedyGlobalCsm(lfr.graph, v0);
    EXPECT_EQ(a.min_degree, b.min_degree);
    EXPECT_EQ(ToSet(a.members), ToSet(b.members));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace locs
