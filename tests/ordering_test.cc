// Tests for the degree-descending ordered adjacency (§4.3.2).

#include "graph/ordering.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "gen/powerlaw.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::Sorted;

TEST(OrderedAdjacencyTest, SortedByDescendingDegree) {
  Graph g = gen::PowerLawGraph(300, 2.0, 2, 40, 3);
  OrderedAdjacency ordered(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto nbrs = ordered.Neighbors(v);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      const uint32_t prev = g.Degree(nbrs[i - 1]);
      const uint32_t cur = g.Degree(nbrs[i]);
      EXPECT_GE(prev, cur);
      if (prev == cur) {  // stable ties
        EXPECT_LT(nbrs[i - 1], nbrs[i]);
      }
    }
  }
}

TEST(OrderedAdjacencyTest, SameNeighborMultiset) {
  Graph g = gen::ErdosRenyiGnp(120, 0.06, 9);
  OrderedAdjacency ordered(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::vector<VertexId> a(g.Neighbors(v).begin(), g.Neighbors(v).end());
    std::vector<VertexId> b(ordered.Neighbors(v).begin(),
                            ordered.Neighbors(v).end());
    EXPECT_EQ(Sorted(a), Sorted(b));
  }
}

TEST(OrderedAdjacencyTest, PrefixPruningIsLossless) {
  // Stopping the scan at the first neighbor below k must see exactly the
  // neighbors with degree >= k.
  Graph g = gen::PowerLawGraph(500, 2.1, 2, 50, 13);
  OrderedAdjacency ordered(g);
  for (uint32_t k : {3u, 6u, 12u}) {
    for (VertexId v = 0; v < g.NumVertices(); v += 17) {
      std::vector<VertexId> via_prefix;
      for (VertexId w : ordered.Neighbors(v)) {
        if (g.Degree(w) < k) break;
        via_prefix.push_back(w);
      }
      std::vector<VertexId> via_filter;
      for (VertexId w : g.Neighbors(v)) {
        if (g.Degree(w) >= k) via_filter.push_back(w);
      }
      EXPECT_EQ(Sorted(via_prefix), Sorted(via_filter));
    }
  }
}

TEST(OrderedAdjacencyTest, EmptyAndTrivialGraphs) {
  OrderedAdjacency empty(Graph{});
  EXPECT_EQ(empty.NumVertices(), 0u);
  Graph star = gen::Star(5);
  OrderedAdjacency ordered(star);
  EXPECT_EQ(ordered.Neighbors(0).size(), 4u);
  // All leaves have equal degree 1 — ties by ascending id.
  EXPECT_EQ(ordered.Neighbors(0)[0], 1u);
  EXPECT_EQ(ordered.Neighbors(0)[3], 4u);
}

}  // namespace
}  // namespace locs
