// Shared helpers for the test suite: brute-force reference solvers (only
// feasible on tiny graphs) and set utilities.

#ifndef LOCS_TESTS_TEST_UTIL_H_
#define LOCS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"

namespace locs::testing {

/// Sorted copy of a vertex set for order-insensitive comparison.
inline std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Converts to std::set for readable gtest failures.
inline std::set<VertexId> ToSet(const std::vector<VertexId>& v) {
  return {v.begin(), v.end()};
}

/// Brute force m*(G, v0): the maximum over all connected subsets H
/// containing v0 of δ(G[H]). Enumerate all 2^(n-1) subsets — graphs must
/// be tiny (n <= ~20).
inline uint32_t BruteForceCsmGoodness(const Graph& graph, VertexId v0) {
  const VertexId n = graph.NumVertices();
  uint32_t best = 0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if ((mask & (uint64_t{1} << v0)) == 0) continue;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (uint64_t{1} << v)) members.push_back(v);
    }
    if (!IsConnectedSubset(graph, members)) continue;
    best = std::max(best, MinDegreeOfInduced(graph, members));
  }
  return best;
}

/// Brute force: does CST(k) have a solution for v0?
inline bool BruteForceCstExists(const Graph& graph, VertexId v0,
                                uint32_t k) {
  return BruteForceCsmGoodness(graph, v0) >= k;
}

/// Brute force smallest CST(k) answer size (0 when infeasible).
inline size_t BruteForceMcstSize(const Graph& graph, VertexId v0,
                                 uint32_t k) {
  const VertexId n = graph.NumVertices();
  size_t best = 0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if ((mask & (uint64_t{1} << v0)) == 0) continue;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (uint64_t{1} << v)) members.push_back(v);
    }
    if (best != 0 && members.size() >= best) continue;
    if (!IsConnectedSubset(graph, members)) continue;
    if (MinDegreeOfInduced(graph, members) >= k) best = members.size();
  }
  return best;
}

}  // namespace locs::testing

#endif  // LOCS_TESTS_TEST_UTIL_H_
