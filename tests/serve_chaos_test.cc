// Fault-injection coverage of the hardened serving path: every
// LOCS_FAILPOINT site on the request/reply path (transport read/write,
// registry load, cache insert, solver dispatch), the transport lifecycle
// guards (io-timeout on a stalled request, idle reaper, stop-flag wakeup
// from a silent peer), the reply-size cap, the query conservation
// ledger, and the RetryClient failure discipline. Each test asserts the
// session terminates cleanly AND that metrics record the right terminal
// cause — a fault must degrade to a typed ERR or a counted close, never
// a hang or a crash.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gen/classic.h"
#include "graph/io.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/failpoint.h"

namespace locs::serve {
namespace {

using failpoint::ScopedFailpoint;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

size_t ErrCount(const MetricsSnapshot& snap, WireError kind) {
  return snap.errors_by_kind[static_cast<size_t>(kind)];
}

/// Reads every line (terminated or not) the session wrote to `path`.
std::vector<std::string> ReadReplies(const std::string& path) {
  std::vector<std::string> replies;
  const int fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0);
  FdTransport reader(fd, -1);
  std::string line;
  while (reader.ReadLine(&line) == Transport::ReadStatus::kLine) {
    replies.push_back(line);
  }
  ::close(fd);
  return replies;
}

/// Shared server state plus two drivers: scripted file-backed sessions
/// (the serve_session_test idiom) and live pipe-fed sessions for the
/// timing-sensitive guard tests.
struct ChaosFixture {
  GraphRegistry registry{16};
  AdmissionController admission;
  ServerMetrics metrics;
  SessionOptions options;
  ResultCache cache{64};

  void Register(const std::string& name, const Graph& graph) {
    const std::string path = TempPath("chaos_fix_" + name + ".lcsg");
    ASSERT_TRUE(SaveBinary(graph, path));
    IoError error;
    bool full = false;
    ASSERT_NE(registry.Load(name, path, &error, &full), nullptr)
        << error.message;
  }

  /// Runs one scripted session over file-backed fds; returns the path
  /// of the reply file. Tests arming transport failpoints read replies
  /// through this split so the reply reader (itself an FdTransport) runs
  /// after the failpoint is disarmed.
  std::string RunSession(const std::vector<std::string>& script,
                         const std::string& tag,
                         FdTransportOptions transport_options = {}) {
    const std::string in_path = TempPath("chaos_in_" + tag);
    const std::string out_path = TempPath("chaos_out_" + tag);
    {
      const int fd =
          ::open(in_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
      EXPECT_GE(fd, 0);
      for (const std::string& line : script) {
        const std::string framed = line + "\n";
        EXPECT_EQ(::write(fd, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
      }
      ::close(fd);
    }
    const int in_fd = ::open(in_path.c_str(), O_RDONLY);
    const int out_fd =
        ::open(out_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    EXPECT_GE(in_fd, 0);
    EXPECT_GE(out_fd, 0);
    {
      FdTransport transport(in_fd, out_fd, false, transport_options);
      Session session(transport, registry, admission, metrics, options);
      session.Run();
    }
    ::close(in_fd);
    ::close(out_fd);
    return out_path;
  }

  /// Scripted session + reply readback in one step (for tests whose
  /// failpoints do not touch the read path).
  std::vector<std::string> Run(const std::vector<std::string>& script,
                               const std::string& tag,
                               FdTransportOptions transport_options = {}) {
    return ReadReplies(RunSession(script, tag, transport_options));
  }

  /// Runs a session reading a live pipe: the test holds the write end,
  /// so stalls and silence are real, not simulated. `feed` receives the
  /// pipe's write fd and drives the peer side; replies are read back by
  /// the caller (after any scoped failpoint is gone).
  struct LiveResult {
    std::string out_path;
    uint64_t session_ms = 0;
  };
  template <typename Feed>
  LiveResult RunLive(const std::string& tag,
                     FdTransportOptions transport_options, Feed feed) {
    int pipe_fds[2];
    EXPECT_EQ(::pipe(pipe_fds), 0);
    const std::string out_path = TempPath("chaos_live_" + tag);
    const int out_fd =
        ::open(out_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    EXPECT_GE(out_fd, 0);
    LiveResult result;
    std::thread session_thread([&] {
      const auto start = std::chrono::steady_clock::now();
      FdTransport transport(pipe_fds[0], out_fd, false, transport_options);
      Session session(transport, registry, admission, metrics, options);
      session.Run();
      result.session_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    });
    feed(pipe_fds[1]);
    session_thread.join();
    ::close(pipe_fds[1]);
    ::close(pipe_fds[0]);
    ::close(out_fd);
    result.out_path = out_path;
    return result;
  }
};

// ---------------------------------------------------------------------
// Transport failpoints: write-side faults.

TEST(ServeChaosTest, PartialWriteTearsReplyAndEndsSessionCleanly) {
  ChaosFixture fix;
  std::vector<std::string> replies;
  {
    ScopedFailpoint tear("serve.transport.partial_write");
    replies = fix.Run({"PING", "PING"}, "partial_write");
  }
  // The peer sees a torn prefix of "OK pong\n" and nothing further: the
  // session treated the failed write as peer-gone and exited before the
  // second request.
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], "OK p");
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.sessions_opened, 1u);
  EXPECT_EQ(snap.sessions_closed, 1u);
  // A mid-write disconnect is not a deadline expiry.
  EXPECT_EQ(snap.io_timeouts, 0u);
}

TEST(ServeChaosTest, WriteErrorEndsSessionWithoutReply) {
  ChaosFixture fix;
  std::vector<std::string> replies;
  {
    ScopedFailpoint drop("serve.transport.write_error");
    replies = fix.Run({"PING"}, "write_error");
  }
  EXPECT_TRUE(replies.empty());
  EXPECT_EQ(fix.metrics.Snapshot().sessions_closed, 1u);
}

// ---------------------------------------------------------------------
// Transport failpoints: read-side faults.

TEST(ServeChaosTest, ReadErrorAfterSkipServesEarlierRequests) {
  // skip=2: the first two ReadLine calls succeed, the third fails —
  // the session must deliver the replies it owes before dying.
  ChaosFixture fix;
  std::string out_path;
  {
    ScopedFailpoint fault("serve.transport.read_error", /*skip=*/2);
    out_path = fix.RunSession({"PING", "PING", "PING", "QUIT"}, "read_error");
  }
  const auto replies = ReadReplies(out_path);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], "OK pong");
  EXPECT_EQ(replies[1], "OK pong");
  EXPECT_EQ(fix.metrics.Snapshot().sessions_closed, 1u);
}

TEST(ServeChaosTest, DelayedReadStraddlingIoTimeoutClosesWithTypedError) {
  // The peer sends one whole request plus the first bytes of a second,
  // then stalls; the injected 50ms read delay sits on top. The io clock
  // (20ms) starts when the partial request's bytes are seen, so the
  // stall must terminate the session with ERR io-timeout — and only the
  // io_timeouts counter (not idle_reaped) may move.
  ChaosFixture fix;
  FdTransportOptions guards;
  guards.io_timeout_ms = 20;
  ChaosFixture::LiveResult result;
  {
    ScopedFailpoint delay("serve.transport.read_delay");
    result = fix.RunLive("io_timeout", guards, [](int write_fd) {
      const char bytes[] = "PING\nPIN";
      ASSERT_EQ(::write(write_fd, bytes, sizeof(bytes) - 1),
                static_cast<ssize_t>(sizeof(bytes) - 1));
      // Stall: keep the pipe open, never finish the second line.
    });
  }
  const auto replies = ReadReplies(result.out_path);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], "OK pong");
  EXPECT_TRUE(StartsWith(replies[1], "ERR io-timeout")) << replies[1];
  EXPECT_NE(replies[1].find("stalled"), std::string::npos);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.io_timeouts, 1u);
  EXPECT_EQ(snap.idle_reaped, 0u);
  EXPECT_EQ(ErrCount(snap, WireError::kIoTimeout), 1u);
}

// ---------------------------------------------------------------------
// Lifecycle guards without failpoints: idle reaper and stop flag.

TEST(ServeChaosTest, IdleReaperClosesQuietSession) {
  ChaosFixture fix;
  FdTransportOptions guards;
  guards.idle_timeout_ms = 30;
  const auto result = fix.RunLive("idle", guards, [](int) {
    // Open, connected, and silent: the definition of reapable.
  });
  const auto replies = ReadReplies(result.out_path);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR io-timeout")) << replies[0];
  EXPECT_NE(replies[0].find("idle"), std::string::npos);
  EXPECT_GE(result.session_ms, 25u);  // it actually waited the window out
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.idle_reaped, 1u);
  EXPECT_EQ(snap.io_timeouts, 0u);
}

TEST(ServeChaosTest, StopFlagUnblocksSessionParkedOnSilentPeer) {
  // The SIGTERM-drain scenario at unit scale: a session blocked reading
  // a peer that never speaks must notice the stop flag promptly (poll
  // tick), not wait for input. No timeout is configured, so without the
  // stop observation this read would block forever.
  ChaosFixture fix;
  std::atomic<bool> stop{false};
  FdTransportOptions guards;
  guards.stop = &stop;
  fix.options.stop = &stop;
  const auto result = fix.RunLive("stop", guards, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
  });
  EXPECT_TRUE(ReadReplies(result.out_path).empty());
  // One stop tick (200ms) is the worst case; 3s means the fix is broken.
  EXPECT_LT(result.session_ms, 3000u);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.sessions_closed, 1u);
  EXPECT_EQ(snap.idle_reaped, 0u);
  EXPECT_EQ(snap.io_timeouts, 0u);
}

// ---------------------------------------------------------------------
// Reply-size cap.

TEST(ServeChaosTest, OversizedReplyBecomesTypedErrorAndSessionContinues) {
  ChaosFixture fix;
  fix.Register("kq", gen::Clique(48));
  fix.options.max_reply_bytes = 96;
  const auto replies = fix.Run(
      {
          "CST kq 0 47",           // 48 members: far past a 96-byte line
          "CST kq 0 47 limit=3",   // paged as the error suggests: fits
          "PING",                  // the session survived the cap
      },
      "too_large");
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR too-large")) << replies[0];
  EXPECT_NE(replies[0].find("page with limit="), std::string::npos);
  EXPECT_TRUE(StartsWith(replies[1], "OK status=found n=48")) << replies[1];
  EXPECT_LE(replies[1].size(), 96u);
  EXPECT_EQ(replies[2], "OK pong");
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(ErrCount(snap, WireError::kReplyTooLarge), 1u);
  // Ledger: the capped reply reached the client as ERR, so it is a
  // failed query, not a completed one.
  EXPECT_EQ(snap.q_attempted, 2u);
  EXPECT_EQ(snap.q_completed, 1u);
  EXPECT_EQ(snap.q_failed, 1u);
}

// ---------------------------------------------------------------------
// Deep-path failpoints: solver, registry, cache.

TEST(ServeChaosTest, SolverFaultDegradesToTypedErrorPerRequest) {
  ChaosFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  std::vector<std::string> replies;
  {
    ScopedFailpoint fault("serve.solver.error");
    replies = fix.Run({"CST bb 0 5", "PING"}, "solver_fault");
  }
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], "ERR internal injected solver fault");
  EXPECT_EQ(replies[1], "OK pong");
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(ErrCount(snap, WireError::kInternal), 1u);
  EXPECT_EQ(snap.q_attempted, 1u);
  EXPECT_EQ(snap.q_failed, 1u);
  EXPECT_EQ(snap.q_completed, 0u);
}

TEST(ServeChaosTest, PeriodicSolverFaultFiresEveryOtherQuery) {
  // every=2 is the chaos-soak mode: the fault recurs throughout the run
  // (hits 1, 3, ... fire) without killing every request. No cache here,
  // so all four identical queries reach the solver dispatch site.
  ChaosFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  std::vector<std::string> replies;
  {
    ScopedFailpoint fault("serve.solver.error", /*skip=*/0, /*every=*/2);
    replies = fix.Run(
        {"CST bb 0 5", "CST bb 0 5", "CST bb 0 5", "CST bb 0 5"},
        "periodic_fault");
  }
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR internal")) << replies[0];
  EXPECT_TRUE(StartsWith(replies[1], "OK status=found")) << replies[1];
  EXPECT_TRUE(StartsWith(replies[2], "ERR internal")) << replies[2];
  EXPECT_TRUE(StartsWith(replies[3], "OK status=found")) << replies[3];
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.q_attempted, 4u);
  EXPECT_EQ(snap.q_completed, 2u);
  EXPECT_EQ(snap.q_failed, 2u);
}

TEST(ServeChaosTest, RegistryLoadFaultIsTypedIoErrorAndRecoverable) {
  ChaosFixture fix;
  const std::string path = TempPath("chaos_load.lcsg");
  ASSERT_TRUE(SaveBinary(gen::Clique(8), path));
  std::vector<std::string> faulted;
  {
    ScopedFailpoint fault("serve.registry.load_error");
    faulted = fix.Run({"LOAD g " + path}, "registry_fault");
  }
  ASSERT_EQ(faulted.size(), 1u);
  EXPECT_TRUE(StartsWith(faulted[0], "ERR io")) << faulted[0];
  EXPECT_NE(faulted[0].find("injected registry load fault"),
            std::string::npos);
  // Disarmed, the same LOAD succeeds: the fault was per-attempt, not
  // sticky registry state.
  const auto healthy = fix.Run({"LOAD g " + path}, "registry_ok");
  ASSERT_EQ(healthy.size(), 1u);
  EXPECT_TRUE(StartsWith(healthy[0], "OK graph=g")) << healthy[0];
  EXPECT_GE(ErrCount(fix.metrics.Snapshot(), WireError::kIo), 1u);
}

TEST(ServeChaosTest, CacheInsertDropForcesRepeatedMisses) {
  ChaosFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  fix.options.cache = &fix.cache;
  {
    ScopedFailpoint fault("serve.cache.insert_drop");
    const auto replies =
        fix.Run({"CST bb 0 5", "CST bb 0 5"}, "cache_drop");
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_TRUE(StartsWith(replies[0], "OK status=found")) << replies[0];
    EXPECT_EQ(replies[0], replies[1]);  // same answer, just re-solved
  }
  MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 2u);
  EXPECT_EQ(fix.cache.size(), 0u);
  // Disarmed, the insert lands and the next repeat is a hit.
  const auto replies = fix.Run({"CST bb 0 5", "CST bb 0 5"}, "cache_ok");
  ASSERT_EQ(replies.size(), 2u);
  snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 3u);
  EXPECT_EQ(fix.cache.size(), 1u);
}

// ---------------------------------------------------------------------
// Conservation ledger across a mixed script.

TEST(ServeChaosTest, QueryLedgerConservesAcrossMixedOutcomes) {
  ChaosFixture fix;
  fix.Register("bb", gen::Barbell(6, 2));
  fix.options.cache = &fix.cache;
  const auto replies = fix.Run(
      {
          "PING",              // control verb: not in the ledger
          "CST bb 0 5",        // completed (miss + insert)
          "CST bb 0 5",        // completed (cache hit)
          "CST nosuch 0 5",    // failed (unknown graph)
          "CSM bb 0",          // completed
          "definitely not a verb",  // parse error: never attempted
          "STATS",
          "QUIT",
      },
      "ledger");
  ASSERT_EQ(replies.size(), 8u);
  const MetricsSnapshot snap = fix.metrics.Snapshot();
  EXPECT_EQ(snap.q_attempted, 4u);
  EXPECT_EQ(snap.q_completed, 3u);
  EXPECT_EQ(snap.q_failed, 1u);
  EXPECT_EQ(snap.q_shed, 0u);
  EXPECT_EQ(snap.q_attempted,
            snap.q_completed + snap.q_failed + snap.q_shed);
  // The STATS line carries the ledger so chaos_serve.sh can assert the
  // same identity from outside the process.
  EXPECT_NE(replies[6].find("q_attempted=4"), std::string::npos)
      << replies[6];
  EXPECT_NE(replies[6].find("q_completed=3"), std::string::npos)
      << replies[6];
  EXPECT_NE(replies[6].find("q_failed=1"), std::string::npos) << replies[6];
}

// ---------------------------------------------------------------------
// RetryClient failure discipline.

TEST(ServeChaosTest, RetryClientOpensBreakerOnDeadPort) {
  // Reserve a port with no listener: bind, read it back, close.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  RetryClientOptions options;
  options.port = dead_port;
  options.max_attempts = 6;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 4;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 5;
  options.request_deadline_ms = 2000;
  RetryClient client(options);
  std::string reply;
  EXPECT_FALSE(client.Request("PING", &reply));
  EXPECT_FALSE(reply.empty());  // diagnostic, not silence
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.stats().connects, 0u);
  EXPECT_GE(client.stats().breaker_opens, 1u);
  EXPECT_GE(client.stats().retries, 1u);
}

TEST(ServeChaosTest, RetryClientServesThenReportsFailureAfterServerStop) {
  ServerOptions options;
  CommunityServer shared(options);
  Executor executor(3);
  TcpServer server(shared, executor, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::thread accept_thread([&] { server.Run(); });

  RetryClientOptions client_options;
  client_options.port = server.port();
  client_options.max_attempts = 3;
  client_options.backoff_base_ms = 1;
  client_options.backoff_cap_ms = 4;
  client_options.breaker_threshold = 100;  // keep the breaker out of this
  client_options.request_deadline_ms = 5000;
  RetryClient client(client_options);
  std::string reply;
  ASSERT_TRUE(client.Request("PING", &reply));
  EXPECT_EQ(reply, "OK pong");
  EXPECT_EQ(client.stats().connects, 1u);

  server.Stop();
  accept_thread.join();
  // Dead server: the client retries (reconnect attempts fail against
  // the closed listener) and then reports the failure instead of
  // hanging or crashing.
  EXPECT_FALSE(client.Request("PING", &reply));
  EXPECT_FALSE(reply.empty());
  EXPECT_GE(client.stats().retries, 1u);
}

}  // namespace
}  // namespace locs::serve
