// The solver-postcondition oracle must trap every contract violation it
// exists to catch: a corrupted result that claims the wrong min degree,
// drops connectivity, or loses the query vertex has to abort loudly, and
// a genuine solver answer has to pass untouched. Also covers the CSR
// well-formedness layer (graph/invariants.h) the oracle leans on.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/common.h"
#include "core/local_cst.h"
#include "core/result.h"
#include "core/validate.h"
#include "gen/classic.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/invariants.h"

namespace locs {
namespace {

// gmock is not available in every environment this suite builds in, so
// substring assertions are spelled directly.
void ExpectContains(const std::string& message, const std::string& needle) {
  EXPECT_NE(message.find(needle), std::string::npos)
      << "message: \"" << message << "\" lacks \"" << needle << "\"";
}

// Two disjoint triangles: {0,1,2} and {3,4,5}.
Graph TwoTriangles() {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(3, 5);
  builder.AddEdge(4, 5);
  return builder.Build();
}

SearchResult FoundTriangle() {
  return SearchResult::MakeFound(Community{{0, 1, 2}, 2});
}

// ---------------------------------------------------------------------------
// Death tests: each injected corruption must abort through the oracle.

using ValidateDeathTest = ::testing::Test;

TEST(ValidateDeathTest, TrapsWrongMinDegree) {
  const Graph graph = TwoTriangles();
  SearchResult result = FoundTriangle();
  result.community->min_degree = 5;  // actual induced min degree is 2
  EXPECT_DEATH(
      validate::DieOnViolation("test", graph, result, VertexId{0}, 2),
      "LOCS_VALIDATE.*min degree");
}

TEST(ValidateDeathTest, TrapsDisconnectedCommunity) {
  const Graph graph = TwoTriangles();
  // Members span both triangles: every vertex still has induced degree 2,
  // so only the connectivity check can catch this.
  const SearchResult result =
      SearchResult::MakeFound(Community{{0, 1, 2, 3, 4, 5}, 2});
  EXPECT_DEATH(
      validate::DieOnViolation("test", graph, result, VertexId{0}, 2),
      "LOCS_VALIDATE.*disconnected");
}

TEST(ValidateDeathTest, TrapsMissingQueryVertex) {
  const Graph graph = TwoTriangles();
  const SearchResult result = FoundTriangle();  // members {0,1,2}
  EXPECT_DEATH(
      validate::DieOnViolation("test", graph, result, VertexId{4}, 2),
      "LOCS_VALIDATE.*not a member");
}

TEST(ValidateDeathTest, TrapsViolatedMultiVertexQuery) {
  const Graph graph = TwoTriangles();
  const SearchResult result = FoundTriangle();
  const std::vector<VertexId> query = {0, 4};  // 4 is in the other triangle
  EXPECT_DEATH(validate::DieOnViolation("test", graph, result, query, 2),
               "LOCS_VALIDATE.*not a member");
}

TEST(ValidateDeathTest, TrapsNotExistsWithLeftoverPartial) {
  const Graph graph = TwoTriangles();
  SearchResult result = SearchResult::MakeNotExists();
  result.best_so_far = Community{{0, 1, 2}, 2};  // contract: must be empty
  EXPECT_DEATH(
      validate::DieOnViolation("test", graph, result, VertexId{0}, 9),
      "LOCS_VALIDATE.*best_so_far");
}

TEST(ValidateDeathTest, PassesGenuineSolverAnswer) {
  const Graph graph = TwoTriangles();
  // A real answer sails through: no death, no output.
  validate::DieOnViolation("test", graph, FoundTriangle(), VertexId{0}, 2);
  validate::DieOnViolation("test", graph, SearchResult::MakeNotExists(),
                           VertexId{0}, 9);
}

// ---------------------------------------------------------------------------
// Non-death coverage of the checking functions (exact messages).

TEST(CheckCommunityTest, AcceptsSoundCommunity) {
  const Graph graph = TwoTriangles();
  EXPECT_EQ(validate::CheckCommunity(graph, Community{{0, 1, 2}, 2}, {0}),
            "");
}

TEST(CheckCommunityTest, RejectsEmptyDuplicateAndOutOfRange) {
  const Graph graph = TwoTriangles();
  ExpectContains(validate::CheckCommunity(graph, Community{{}, 0}, {0}), "no members");
  ExpectContains(validate::CheckCommunity(graph, Community{{0, 1, 1, 2}, 2}, {0}), "duplicate");
  ExpectContains(validate::CheckCommunity(graph, Community{{0, 1, 99}, 0}, {0}), "out of range");
}

TEST(CheckSearchResultTest, ChecksThresholdAndStatusShape) {
  const Graph graph = TwoTriangles();
  // min_degree 2 below requested threshold 3.
  ExpectContains(validate::CheckSearchResult(graph, FoundTriangle(), {0}, 3), "below requested threshold");
  // kFound must engage a community.
  SearchResult hollow;
  hollow.status = Termination::kFound;
  ExpectContains(validate::CheckSearchResult(graph, hollow, {0}, 0), "no community engaged");
  // Interrupted partials only need the first query vertex.
  const SearchResult partial = SearchResult::MakeInterrupted(
      Termination::kDeadline, Community{{0, 1, 2}, 2});
  EXPECT_EQ(validate::CheckSearchResult(graph, partial, {0, 4}, 5), "");
}

TEST(CheckSearchResultTest, InterruptedPartialMustContainFirstQueryVertex) {
  const Graph graph = TwoTriangles();
  const SearchResult partial = SearchResult::MakeInterrupted(
      Termination::kBudgetExhausted, Community{{3, 4, 5}, 2});
  ExpectContains(validate::CheckSearchResult(graph, partial, {0}, 5), "not a member");
}

// ---------------------------------------------------------------------------
// The oracle end-to-end over a real solver (hooks active only under
// -DLOCS_VALIDATE=ON builds; under a normal build this just checks the
// solver directly against the checker).

TEST(ValidateIntegrationTest, LocalCstAnswerSatisfiesOracle) {
  const Graph graph = gen::PaperFigure1();
  LocalCstSolver solver(graph, /*ordered=*/nullptr, /*facts=*/nullptr);
  const SearchResult result = solver.Solve(gen::Figure1Vertex('a'), 3);
  ASSERT_TRUE(result.Found());
  EXPECT_EQ(validate::CheckSearchResult(
                graph, result, {gen::Figure1Vertex('a')}, 3),
            "");
}

// ---------------------------------------------------------------------------
// CSR well-formedness layer: graph/invariants.h must reject malformed
// adjacency. Release builds can materialize a malformed Graph through
// FromCsr (its deep checks are debug-only); debug builds trap at
// construction, which is equally acceptable coverage.

TEST(InvariantsTest, RejectsUnsortedAdjacency) {
  // Triangle with vertex 0's adjacency listed {2,1} instead of {1,2}.
#ifdef NDEBUG
  const Graph graph = Graph::FromCsr({0, 2, 4, 6}, {2, 1, 0, 2, 0, 1});
  ExpectContains(ValidateGraph(graph), "not sorted");
#else
  EXPECT_DEATH(Graph::FromCsr({0, 2, 4, 6}, {2, 1, 0, 2, 0, 1}),
               "LOCS_CHECK");
#endif
}

TEST(InvariantsTest, RejectsDuplicateAdjacency) {
  // Single edge (0,1) listed twice on each side.
#ifdef NDEBUG
  const Graph graph = Graph::FromCsr({0, 2, 4}, {1, 1, 0, 0});
  ExpectContains(ValidateGraph(graph), "not sorted");
#else
  EXPECT_DEATH(Graph::FromCsr({0, 2, 4}, {1, 1, 0, 0}),
               "LOCS_CHECK");
#endif
}

TEST(InvariantsTest, AcceptsWellFormedGraph) {
  EXPECT_EQ(ValidateGraph(TwoTriangles()), "");
  EXPECT_EQ(ValidateGraph(gen::PaperFigure1()), "");
}

}  // namespace
}  // namespace locs
