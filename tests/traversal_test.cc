// Tests for BFS, connected components, largest-component extraction, and
// induced subgraphs.

#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "gen/classic.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/invariants.h"
#include "graph/subgraph.h"
#include "test_util.h"

namespace locs {
namespace {

using testing::ToSet;

TEST(BfsOrderTest, ReachesWholeConnectedGraph) {
  Graph g = gen::Grid(4, 4);
  const auto order = BfsOrder(g, 0);
  EXPECT_EQ(order.size(), 16u);
  EXPECT_EQ(order[0], 0u);
}

TEST(BfsOrderTest, LevelsAreNonDecreasing) {
  Graph g = gen::Grid(5, 5);
  const auto order = BfsOrder(g, 12);  // center
  std::vector<int> dist(g.NumVertices(), -1);
  dist[12] = 0;
  for (VertexId u : order) {
    for (VertexId w : g.Neighbors(u)) {
      if (dist[w] == -1) dist[w] = dist[u] + 1;
    }
  }
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(dist[order[i]], dist[order[i - 1]]);
  }
}

TEST(BfsOrderTest, StaysInComponent) {
  Graph g = BuildGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(ToSet(BfsOrder(g, 0)), ToSet({0, 1, 2}));
  EXPECT_EQ(ToSet(BfsOrder(g, 4)), ToSet({3, 4}));
  EXPECT_EQ(ToSet(BfsOrder(g, 5)), ToSet({5}));
}

TEST(ConnectedComponentsTest, CountsAndSizes) {
  Graph g = BuildGraph(7, {{0, 1}, {1, 2}, {3, 4}});
  const Components comps = ConnectedComponents(g);
  EXPECT_EQ(comps.count, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(comps.size[comps.LargestId()], 3u);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[0], comps.label[3]);
}

TEST(ConnectedComponentsTest, SingleComponent) {
  Graph g = gen::Cycle(9);
  const Components comps = ConnectedComponents(g);
  EXPECT_EQ(comps.count, 1u);
  EXPECT_EQ(comps.size[0], 9u);
}

TEST(ExtractLargestComponentTest, KeepsLargestOnly) {
  GraphBuilder builder(10);
  // Component A: triangle {0,1,2}. Component B: K4 {3,4,5,6}. Isolated:
  // 7, 8, 9.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  for (VertexId u = 3; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) builder.AddEdge(u, v);
  }
  const MappedSubgraph sub = ExtractLargestComponent(builder.Build());
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  EXPECT_EQ(sub.graph.NumEdges(), 6u);
  EXPECT_EQ(ToSet(sub.original_id), ToSet({3, 4, 5, 6}));
  EXPECT_EQ(ValidateGraph(sub.graph), "");
}

TEST(ExtractLargestComponentTest, EmptyGraph) {
  const MappedSubgraph sub = ExtractLargestComponent(Graph());
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
  EXPECT_TRUE(sub.original_id.empty());
}

TEST(InducedSubgraphTest, MappingRoundTrip) {
  Graph g = gen::PaperFigure1();
  auto v = [](char c) { return gen::Figure1Vertex(c); };
  const std::vector<VertexId> members = {v('a'), v('b'), v('c'), v('d'),
                                         v('e')};
  const MappedSubgraph sub = InducedSubgraph(g, members);
  EXPECT_EQ(sub.graph.NumVertices(), 5u);
  EXPECT_EQ(sub.graph.NumEdges(), 8u);
  EXPECT_EQ(sub.graph.MinDegree(), 3u);
  EXPECT_EQ(ValidateGraph(sub.graph), "");
  // Edges map back to original edges.
  for (VertexId u = 0; u < sub.graph.NumVertices(); ++u) {
    for (VertexId w : sub.graph.Neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(sub.original_id[u], sub.original_id[w]));
    }
  }
}

TEST(InducedSubgraphTest, PreservesInternalEdgesExactly) {
  Graph g = gen::ErdosRenyiGnp(30, 0.2, 3);
  const std::vector<VertexId> members = {1, 4, 9, 16, 25, 2, 7};
  const MappedSubgraph sub = InducedSubgraph(g, members);
  uint64_t expected_edges = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      expected_edges += g.HasEdge(members[i], members[j]);
    }
  }
  EXPECT_EQ(sub.graph.NumEdges(), expected_edges);
}

TEST(SubgraphDegreeTest, DegreesWithinMatchInduced) {
  Graph g = gen::ErdosRenyiGnp(25, 0.25, 5);
  const std::vector<VertexId> members = {0, 3, 6, 9, 12, 15, 18};
  const auto degrees = DegreesWithin(g, members);
  const MappedSubgraph sub = InducedSubgraph(g, members);
  for (size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(degrees[i], sub.graph.Degree(static_cast<VertexId>(i)));
  }
}

TEST(SubgraphDeltaTest, MinDegreeOfInducedEdgeCases) {
  Graph g = gen::Clique(5);
  EXPECT_EQ(MinDegreeOfInduced(g, {}), 0u);
  EXPECT_EQ(MinDegreeOfInduced(g, {2}), 0u);
  EXPECT_EQ(MinDegreeOfInduced(g, {0, 1}), 1u);
  EXPECT_EQ(MinDegreeOfInduced(g, {0, 1, 2, 3, 4}), 4u);
}

TEST(IsConnectedSubsetTest, Cases) {
  Graph g = BuildGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_TRUE(IsConnectedSubset(g, {}));
  EXPECT_TRUE(IsConnectedSubset(g, {5}));
  EXPECT_TRUE(IsConnectedSubset(g, {0, 1, 2}));
  EXPECT_FALSE(IsConnectedSubset(g, {0, 2}));
  EXPECT_FALSE(IsConnectedSubset(g, {0, 1, 3}));
  EXPECT_TRUE(IsConnectedSubset(g, {3, 4}));
}

TEST(IsValidCommunityTest, AllClauses) {
  Graph g = gen::Clique(4);
  EXPECT_FALSE(IsValidCommunity(g, {}, 0, 0));           // empty
  EXPECT_FALSE(IsValidCommunity(g, {1, 2}, 0, 1));       // missing v0
  EXPECT_TRUE(IsValidCommunity(g, {0, 1, 2}, 0, 2));     // triangle
  EXPECT_FALSE(IsValidCommunity(g, {0, 1, 2}, 0, 3));    // δ too low
  Graph h = BuildGraph(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(IsValidCommunity(h, {0, 1, 2, 3}, 0, 1));  // disconnected
}

}  // namespace
}  // namespace locs
